// latest_loadgen: multi-connection load generator for latest_serve.
//
// Replays a scenario-catalog stream (including the flip/burst drift
// shapes) against a running serve daemon over N concurrent loopback
// connections with open-loop pacing, and reports qps + latency
// percentiles + shed/error counts as one RESULT_JSON line.
//
// Exit codes: 0 = run completed (shedding is a *result*, not an error),
// 1 = flag error or no connection could be established.
//
// Usage:
//   latest_loadgen --port P [--connections N] [--scenario NAME]
//                  [--objects N] [--duration MS] [--seed S]
//                  [--speedup X] [--max-outstanding N] [--list]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/loadgen.h"
#include "result_json.h"
#include "workload/scenario.h"

namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "latest_loadgen: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  latest::net::LoadgenConfig config;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(
          std::strtoul(value().c_str(), nullptr, 10));
      have_port = true;
    } else if (arg == "--connections") {
      config.connections = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--scenario") {
      config.scenario = value();
    } else if (arg == "--objects") {
      config.objects = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      config.duration_ms = std::strtoll(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--speedup") {
      config.speedup = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--max-outstanding") {
      config.max_outstanding = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--list") {
      for (const std::string& name : latest::workload::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      Die("unknown flag " + arg);
    }
  }
  if (!have_port) Die("--port is required");

  auto report = latest::net::RunLoadgen(config);
  if (!report.ok()) Die(report.status().ToString());

  latest::tools::ResultJson("loadgen")
      .Str("scenario", config.scenario)
      .U64("connections", config.connections)
      .U64("queries_sent", report->queries_sent)
      .U64("queries_answered", report->queries_answered)
      .U64("ingests_sent", report->ingests_sent)
      .U64("ingests_acked", report->ingests_acked)
      .U64("shed", report->shed)
      .U64("errors", report->errors)
      .U64("protocol_errors", report->protocol_errors)
      .Dbl("wall_seconds", report->wall_seconds)
      .Dbl("qps", report->qps)
      .Dbl("p50_ms", report->p50_ms)
      .Dbl("p95_ms", report->p95_ms)
      .Dbl("p99_ms", report->p99_ms)
      .Print();
  return 0;
}
