// latest_loadgen: multi-connection load generator for latest_serve.
//
// Replays a scenario-catalog stream (including the flip/burst drift
// shapes) against a running serve daemon over N concurrent loopback
// connections with open-loop pacing, and reports qps + latency
// percentiles + shed/error counts as one RESULT_JSON line. Latencies
// are reported per request class — QUERY round-trips and INGEST acks
// behave differently under shed pressure, so one merged distribution
// hides the tail that matters.
//
// Tracing: by default every connection negotiates the trace-context
// wire extension (HELLO handshake; old servers fall back to untraced
// transparently) and stamps a deterministic trace id on each request,
// sampling every 16th for span capture. `--no-trace` sends the
// pre-extension wire format; `--trace-sample-every N` tunes sampling
// (0 = stamp ids but never sample).
//
// Server attribution: `--metrics-port P` scrapes the daemon's /vars
// JSON after the run and folds the server-measured queue-wait
// percentiles (latest_serve_queue_wait_ms, per class) into the
// RESULT_JSON line, so one line shows client-observed latency next to
// the server-side component it decomposes into.
//
// Exit codes: 0 = run completed (shedding is a *result*, not an error),
// 1 = flag error or no connection could be established.
//
// Usage:
//   latest_loadgen --port P [--connections N] [--scenario NAME]
//                  [--objects N] [--duration MS] [--seed S]
//                  [--speedup X] [--max-outstanding N] [--list]
//                  [--no-trace] [--trace-sample-every N]
//                  [--metrics-port P]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/loadgen.h"
#include "net/socket.h"
#include "result_json.h"
#include "util/json.h"
#include "workload/scenario.h"

namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "latest_loadgen: %s\n", message.c_str());
  std::exit(1);
}

/// Server-attributed queue-wait percentiles scraped from /vars.
struct ServerQueueWait {
  bool ok = false;
  double query_p50_ms = 0.0;
  double query_p99_ms = 0.0;
  double ingest_p50_ms = 0.0;
  double ingest_p99_ms = 0.0;
};

/// Minimal blocking HTTP GET against the loopback introspection port.
/// Returns the response body, or empty on any failure — the scrape is
/// best-effort and must never fail the load run.
std::string HttpGetBody(uint16_t port, const std::string& path) {
  auto fd = latest::net::ConnectLoopback(port);
  if (!fd.ok()) return "";
  latest::net::SetIoTimeouts(fd->get(), 2000);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Connection: close\r\n\r\n";
  if (!latest::net::SendAll(fd->get(), request.data(), request.size())) {
    return "";
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd->get(), buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return "";
  return response.substr(header_end + 4);
}

/// Pulls latest_serve_queue_wait_ms{class=query|ingest} p50/p99 out of
/// the /vars JSON exposition.
ServerQueueWait ScrapeQueueWait(uint16_t metrics_port) {
  ServerQueueWait result;
  const std::string body = HttpGetBody(metrics_port, "/vars");
  if (body.empty()) return result;
  auto parsed = latest::util::ParseJson(body);
  if (!parsed.ok()) return result;
  for (const auto& metric : parsed->Get("metrics").items()) {
    if (metric.Get("name").AsString() != "latest_serve_queue_wait_ms") {
      continue;
    }
    const std::string klass =
        metric.Get("labels").Get("class").AsString();
    const double p50 = metric.Get("p50").AsDouble();
    const double p99 = metric.Get("p99").AsDouble();
    if (klass == "query") {
      result.query_p50_ms = p50;
      result.query_p99_ms = p99;
      result.ok = true;
    } else if (klass == "ingest") {
      result.ingest_p50_ms = p50;
      result.ingest_p99_ms = p99;
      result.ok = true;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  latest::net::LoadgenConfig config;
  bool have_port = false;
  int metrics_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(
          std::strtoul(value().c_str(), nullptr, 10));
      have_port = true;
    } else if (arg == "--connections") {
      config.connections = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--scenario") {
      config.scenario = value();
    } else if (arg == "--objects") {
      config.objects = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      config.duration_ms = std::strtoll(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--speedup") {
      config.speedup = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--max-outstanding") {
      config.max_outstanding = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--no-trace") {
      config.trace = false;
    } else if (arg == "--trace-sample-every") {
      config.trace_sample_every =
          std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--metrics-port") {
      metrics_port = std::atoi(value().c_str());
    } else if (arg == "--list") {
      for (const std::string& name : latest::workload::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      Die("unknown flag " + arg);
    }
  }
  if (!have_port) Die("--port is required");

  auto report = latest::net::RunLoadgen(config);
  if (!report.ok()) Die(report.status().ToString());

  auto result = latest::tools::ResultJson("loadgen");
  result.Str("scenario", config.scenario)
      .U64("connections", config.connections)
      .U64("traced_connections", report->traced_connections)
      .U64("queries_sent", report->queries_sent)
      .U64("queries_answered", report->queries_answered)
      .U64("ingests_sent", report->ingests_sent)
      .U64("ingests_acked", report->ingests_acked)
      .U64("shed", report->shed)
      .U64("errors", report->errors)
      .U64("protocol_errors", report->protocol_errors)
      .Dbl("wall_seconds", report->wall_seconds)
      .Dbl("qps", report->qps)
      .Dbl("p50_ms", report->p50_ms)
      .Dbl("p95_ms", report->p95_ms)
      .Dbl("p99_ms", report->p99_ms)
      .Dbl("ingest_p50_ms", report->ingest_p50_ms)
      .Dbl("ingest_p95_ms", report->ingest_p95_ms)
      .Dbl("ingest_p99_ms", report->ingest_p99_ms);
  if (metrics_port >= 0) {
    const ServerQueueWait server =
        ScrapeQueueWait(static_cast<uint16_t>(metrics_port));
    if (server.ok) {
      result.Dbl("server_queue_wait_query_p50_ms", server.query_p50_ms)
          .Dbl("server_queue_wait_query_p99_ms", server.query_p99_ms)
          .Dbl("server_queue_wait_ingest_p50_ms", server.ingest_p50_ms)
          .Dbl("server_queue_wait_ingest_p99_ms", server.ingest_p99_ms);
    }
  }
  result.Print();
  return 0;
}
