// latest_ckpt: checkpoint inspector.
//
// Usage:
//   latest_ckpt <snapshot.ckpt>   dump header + section table, verify CRCs
//   latest_ckpt <checkpoint-dir>  list snapshot files with their status
//
// Exit code 0 when everything verified, 1 on any corruption or error, so
// CI jobs can assert snapshot health with a bare invocation.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "persist/checkpoint_format.h"
#include "persist/checkpoint_manager.h"

namespace {

using latest::persist::CheckpointManager;
using latest::persist::CheckpointReader;

int InspectFile(const std::string& path) {
  CheckpointReader reader;
  const latest::util::Status open = reader.Open(path);
  if (!open.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), open.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", path.c_str());
  std::printf("  magic            LCKP (ok)\n");
  std::printf("  format version   %u\n", latest::persist::kCheckpointVersion);
  std::printf("  sequence         %" PRIu64 "\n", reader.sequence());
  std::printf("  file size        %zu bytes\n", reader.file_size());
  std::printf("  sections         %zu\n", reader.sections().size());
  int bad = 0;
  for (const auto& info : reader.sections()) {
    const latest::util::Status verify = reader.VerifySection(info);
    std::printf("    %-12s offset=%-10" PRIu64 " size=%-10" PRIu64
                " crc=%08x  %s\n",
                info.name.c_str(), info.offset, info.size, info.crc,
                verify.ok() ? "OK" : "CRC MISMATCH");
    bad += verify.ok() ? 0 : 1;
  }
  if (bad != 0) {
    std::fprintf(stderr, "%s: %d corrupt section(s)\n", path.c_str(), bad);
    return 1;
  }
  return 0;
}

int InspectDir(const std::string& dir) {
  const auto seqs = CheckpointManager::ListSnapshots(dir);
  if (seqs.empty()) {
    std::fprintf(stderr, "%s: no snapshots\n", dir.c_str());
    return 1;
  }
  int rc = 0;
  for (const uint64_t seq : seqs) {
    rc |= InspectFile(latest::persist::SnapshotPath(dir, seq));
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: latest_ckpt <snapshot.ckpt | checkpoint-dir>\n");
    return argc == 2 ? 0 : 1;
  }
  const std::string target = argv[1];
  if (std::filesystem::is_directory(target)) return InspectDir(target);
  return InspectFile(target);
}
