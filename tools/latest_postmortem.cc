// latest_postmortem: inspector for flight-recorder postmortem bundles.
//
// Reads one bundle written by obs::FlightRecorder::WriteBundle (see
// obs/flight_recorder.h for the format) and renders a human-readable
// incident report: the trigger and annotations, the frame timeline of
// selected metric series, the recent lifecycle events by severity, the
// switch-audit entries with their post-hoc regret, and the slowest
// spans. The parse is strict (util/json.h); a torn or truncated file is
// an error, which is the point — bundles are written atomically, so a
// parse failure means something other than the recorder produced it.
//
// Usage:
//   latest_postmortem BUNDLE.json                  # full report
//   latest_postmortem BUNDLE.json --section events # one section
//   latest_postmortem BUNDLE.json --series NAME    # one frame series
//
// Sections: header, frames, events, audit, spans (default: all).
// Exit codes: 0 ok, 1 usage/IO error, 3 parse/validation failure.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "persist/file_io.h"
#include "util/json.h"
#include "util/status.h"

namespace {

using latest::util::JsonValue;

struct Options {
  std::string path;
  std::string section;  // Empty = all.
  std::string series;   // Frame-series filter.
};

[[noreturn]] void Die(int code, const std::string& message) {
  std::fprintf(stderr, "latest_postmortem: %s\n", message.c_str());
  std::exit(code);
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die(1, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--section") {
      options.section = value();
    } else if (arg == "--series") {
      options.series = value();
    } else if (!arg.empty() && arg[0] == '-') {
      Die(1, "unknown flag: " + arg);
    } else if (options.path.empty()) {
      options.path = arg;
    } else {
      Die(1, "multiple bundle paths given");
    }
  }
  if (options.path.empty()) {
    Die(1, "usage: latest_postmortem BUNDLE.json [--section NAME] "
           "[--series METRIC]");
  }
  return options;
}

bool Wants(const Options& options, const char* section) {
  return options.section.empty() || options.section == section;
}

void PrintHeader(const JsonValue& doc) {
  std::printf("bundle:  %s v%" PRId64 "\n",
              doc.Get("bundle").AsString().c_str(),
              doc.Get("version").AsInt());
  std::printf("reason:  %s\n", doc.Get("reason").AsString().c_str());
  for (const JsonValue& annotation : doc.Get("annotations").items()) {
    std::printf("         %s\n", annotation.AsString().c_str());
  }
  const JsonValue& frames = doc.Get("frames");
  if (frames.size() > 0) {
    std::printf("frames:  %zu spanning t=[%" PRId64 ", %" PRId64
                "] q=[%" PRId64 ", %" PRId64 "]\n",
                frames.size(), frames.At(0).Get("t").AsInt(),
                frames.At(frames.size() - 1).Get("t").AsInt(),
                frames.At(0).Get("q").AsInt(),
                frames.At(frames.size() - 1).Get("q").AsInt());
  } else {
    std::printf("frames:  0\n");
  }
  std::printf("events:  %zu   audit: %zu   spans: %zu\n",
              doc.Get("events").size(), doc.Get("audit").size(),
              doc.Get("spans").size());
}

void PrintFrames(const JsonValue& doc, const std::string& series_filter) {
  const JsonValue& frames = doc.Get("frames");
  if (frames.size() == 0) return;
  std::printf("\n-- frames (counters are deltas vs previous frame) --\n");
  if (!series_filter.empty()) {
    // One series as a timeline: "t q value" per frame.
    for (const JsonValue& frame : frames.items()) {
      for (const auto& [key, value] : frame.Get("samples").members()) {
        // Match the family name with or without labels/#delta suffix.
        if (key.compare(0, series_filter.size(), series_filter) != 0) {
          continue;
        }
        std::printf("t=%-10" PRId64 " q=%-8" PRId64 " %s = %.6g\n",
                    frame.Get("t").AsInt(), frame.Get("q").AsInt(),
                    key.c_str(), value.AsDouble());
      }
    }
    return;
  }
  // No filter: the final frame in full (the state at the trigger).
  const JsonValue& last = frames.At(frames.size() - 1);
  std::printf("final frame t=%" PRId64 " q=%" PRId64 ":\n",
              last.Get("t").AsInt(), last.Get("q").AsInt());
  for (const auto& [key, value] : last.Get("samples").members()) {
    std::printf("  %-56s %.6g\n", key.c_str(), value.AsDouble());
  }
}

void PrintEvents(const JsonValue& doc) {
  const JsonValue& events = doc.Get("events");
  if (events.size() == 0) return;
  std::printf("\n-- events --\n");
  for (const JsonValue& event : events.items()) {
    std::printf("t=%-10" PRId64 " q=%-8" PRId64 " [%-7s] %s",
                event.Get("t").AsInt(), event.Get("q").AsInt(),
                event.Get("severity").AsString().c_str(),
                event.Get("type").AsString().c_str());
    const std::string& note = event.Get("note").AsString();
    if (!note.empty()) std::printf(" (%s)", note.c_str());
    const std::string& to = event.Get("to").AsString();
    if (to != "-") {
      std::printf(" %s -> %s", event.Get("from").AsString().c_str(),
                  to.c_str());
    }
    std::printf("\n");
  }
}

void PrintAudit(const JsonValue& doc) {
  const JsonValue& audit = doc.Get("audit");
  const JsonValue& summary = doc.Get("audit_summary");
  if (audit.size() == 0 && summary.is_null()) return;
  std::printf("\n-- switch audit --\n");
  if (!summary.is_null()) {
    std::printf("recorded=%" PRId64 " resolved=%" PRId64 " optimal=%" PRId64
                " cumulative_regret=%.4f\n",
                summary.Get("recorded").AsInt(),
                summary.Get("resolved").AsInt(),
                summary.Get("optimal").AsInt(),
                summary.Get("cumulative_regret").AsDouble());
  }
  for (const JsonValue& entry : audit.items()) {
    std::printf("#%-4" PRId64 " t=%-10" PRId64 " %-10s %s -> %s",
                entry.Get("id").AsInt(), entry.Get("t").AsInt(),
                entry.Get("trigger").AsString().c_str(),
                entry.Get("from").AsString().c_str(),
                entry.Get("chosen").AsString().c_str());
    if (entry.Get("resolved").AsBool()) {
      std::printf("  best=%s regret=%.4f",
                  entry.Get("counterfactual_best").AsString().c_str(),
                  entry.Get("regret").AsDouble());
    } else {
      std::printf("  (unresolved)");
    }
    std::printf("\n");
    const JsonValue& scores = entry.Get("scores");
    if (scores.size() > 0) {
      std::printf("      scores:");
      for (const auto& [kind, score] : scores.members()) {
        std::printf(" %s=%.4f", kind.c_str(), score.AsDouble());
      }
      std::printf("\n");
    }
  }
}

void PrintSpans(const JsonValue& doc) {
  const JsonValue& spans = doc.Get("spans");
  if (spans.size() == 0) return;
  // Slowest first; the bundle already holds only the newest few.
  std::vector<const JsonValue*> sorted;
  sorted.reserve(spans.size());
  for (const JsonValue& span : spans.items()) sorted.push_back(&span);
  std::sort(sorted.begin(), sorted.end(),
            [](const JsonValue* a, const JsonValue* b) {
              return a->Get("duration_ns").AsInt() >
                     b->Get("duration_ns").AsInt();
            });
  std::printf("\n-- slowest spans --\n");
  const size_t limit = std::min<size_t>(sorted.size(), 16);
  for (size_t i = 0; i < limit; ++i) {
    std::printf("%-14s %10.3fus\n",
                sorted[i]->Get("name").AsString().c_str(),
                static_cast<double>(sorted[i]->Get("duration_ns").AsInt()) /
                    1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  std::string contents;
  const latest::util::Status read_status =
      latest::persist::ReadFile(options.path, &contents);
  if (!read_status.ok()) Die(1, read_status.ToString());

  const latest::util::Result<JsonValue> parsed =
      latest::util::ParseJson(contents);
  if (!parsed.ok()) Die(3, "parse failed: " + parsed.status().ToString());
  const JsonValue& doc = parsed.value();

  if (doc.Get("bundle").AsString() != "latest_postmortem") {
    Die(3, "not a postmortem bundle (missing bundle tag)");
  }
  const int64_t version = doc.Get("version").AsInt();
  if (version != latest::obs::kPostmortemBundleVersion) {
    Die(3, "unsupported bundle version " + std::to_string(version));
  }

  if (Wants(options, "header")) PrintHeader(doc);
  if (Wants(options, "frames")) PrintFrames(doc, options.series);
  if (Wants(options, "events")) PrintEvents(doc);
  if (Wants(options, "audit")) PrintAudit(doc);
  if (Wants(options, "spans")) PrintSpans(doc);
  return 0;
}
