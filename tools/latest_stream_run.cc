// latest_stream_run: deterministic streaming run with optional durability
// and crash/resume, for the crash-recovery smoke test.
//
// The stream (clustered objects; 70/15/15 keyword/spatial/hybrid queries
// every 10th object once the window filled) is a pure function of
// --seed/--objects/--duration, so two processes fed the same flags see
// identical events. With --checkpoint-dir every event is write-ahead
// logged and the module snapshots every --checkpoint-every events;
// --kill-after N raises SIGKILL (no cleanup, a real crash) after N events
// reach the module; --resume recovers from the newest snapshot + WAL and
// fast-forwards the generators to the recovered position before
// continuing.
//
// The final RESULT_JSON line carries the CRC-32 of the module's
// deterministic lifecycle digest (SaveDeterministicState): a killed-and-resumed run must print the
// same state_crc as an uninterrupted one — that is the bit-identical
// recovery contract, asserted by scripts/crash_recovery_smoke.sh.
//
// Live introspection: --metrics-port P starts the embedded HTTP server
// (0 binds an ephemeral port; the bound port is printed to stderr) with
// /metrics, /vars, /healthz, /statusz, and /tracez. --trace-out FILE
// enables span tracing (sampling every Nth root with --span-sample) and
// writes Chrome trace-event JSON loadable in Perfetto at exit.
// --pace-us D sleeps D microseconds per event so a human (or a CI curl
// loop) can scrape the endpoints mid-run.
//
// The stream itself comes from the adversarial scenario library
// (src/workload/scenario.h): --scenario NAME replays any catalog
// scenario under durability/introspection; the default is the
// stationary `baseline`. --flip-workload-at N is kept as an alias for
// the `flip` scenario with its abrupt cluster + vocabulary jump pinned
// at object N.
//
// Postmortems: --postmortem-dir DIR arms the flight recorder — a bundle
// is dumped there on a fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE), on
// an SLO breach mid-run (the module dumps on the healthy -> degraded
// edge), and at shutdown ("shutdown" reason) so every run leaves a
// parseable trace. When the module is still degraded at shutdown the
// process exits 2 (distinguishable from flag errors, which exit 1).
//
// Usage:
//   latest_stream_run [--scenario NAME] [--objects N] [--duration MS]
//                     [--seed S] [--threads N] [--checkpoint-dir DIR]
//                     [--checkpoint-every N] [--kill-after N] [--resume]
//                     [--metrics-port P] [--trace-out FILE]
//                     [--span-sample N] [--pace-us D]
//                     [--postmortem-dir DIR] [--flip-workload-at N]

#include <signal.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "persist/checkpoint_manager.h"
#include "persist/crc32.h"
#include "result_json.h"
#include "stream/object.h"
#include "stream/query.h"
#include "workload/scenario.h"

namespace {

using latest::core::LatestConfig;
using latest::core::LatestModule;
using latest::persist::CheckpointManager;
using latest::persist::DurabilityConfig;

struct Options {
  uint64_t objects = 8000;
  int64_t duration_ms = 4000;
  uint64_t seed = 5;
  uint32_t threads = 0;
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 1000;
  uint64_t kill_after = 0;  // 0 = run to completion.
  bool resume = false;
  int metrics_port = -1;  // -1 = no server; 0 = ephemeral port.
  std::string trace_out;
  uint32_t span_sample = 1;
  uint64_t pace_us = 0;  // Sleep per event (for live scraping).
  std::string postmortem_dir;
  std::string scenario = "baseline";
  uint64_t flip_workload_at = 0;  // != 0 forces the `flip` scenario.
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "latest_stream_run: %s\n", message.c_str());
  std::exit(1);
}

// The stream is a scenario-library replay: --scenario picks the shape,
// --flip-workload-at N overrides it with the `flip` scenario whose
// abrupt cluster + vocabulary jump lands at object N.
latest::workload::ScenarioSpec MakeSpec(const Options& options) {
  const bool forced_flip = options.flip_workload_at != 0;
  auto entry = latest::workload::MakeScenario(
      forced_flip ? "flip" : options.scenario, options.objects,
      options.duration_ms, options.seed);
  if (!entry.ok()) Die(entry.status().ToString());
  latest::workload::ScenarioSpec spec = std::move(entry).value().spec;
  if (forced_flip) {
    const double at = static_cast<double>(options.flip_workload_at) /
                      static_cast<double>(options.objects);
    spec.spatial_shift_begin = spec.spatial_shift_end = at;
    spec.vocab_shift_begin = spec.vocab_shift_end = at;
  }
  return spec;
}

LatestConfig MakeConfig(const Options& options,
                        const latest::workload::ScenarioSpec& spec) {
  LatestConfig config;
  config.bounds = spec.bounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = latest::estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = options.seed;
  config.num_threads = options.threads;
  if (options.metrics_port >= 0) {
    config.enable_introspection = true;
    config.introspection_port = static_cast<uint16_t>(options.metrics_port);
    config.slo_tick_ms = 250;  // Keep /healthz fresh for short CI runs.
  }
  if (!options.postmortem_dir.empty()) {
    config.quality.postmortem_dir = options.postmortem_dir;
  }
  return config;
}

// Fatal-signal postmortem: dump a bundle before dying so a crash leaves
// the same evidence an SLO breach would. Best-effort — the handler runs
// on the crashed thread and re-raises with default disposition after.
LatestModule* g_signal_module = nullptr;
volatile sig_atomic_t g_in_signal_handler = 0;

void FatalSignalHandler(int signo) {
  if (g_in_signal_handler == 0) {
    g_in_signal_handler = 1;
    if (g_signal_module != nullptr) {
      (void)g_signal_module->DumpPostmortem("signal");
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

void InstallFatalSignalHandlers(LatestModule* module) {
  g_signal_module = module;
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::signal(signo, FatalSignalHandler);
  }
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--objects") {
      options.objects = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      options.duration_ms = std::strtoll(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads =
          static_cast<uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = value();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--kill-after") {
      options.kill_after = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--metrics-port") {
      options.metrics_port =
          static_cast<int>(std::strtol(value().c_str(), nullptr, 10));
    } else if (arg == "--trace-out") {
      options.trace_out = value();
    } else if (arg == "--span-sample") {
      options.span_sample =
          static_cast<uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--pace-us") {
      options.pace_us = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--postmortem-dir") {
      options.postmortem_dir = value();
    } else if (arg == "--scenario") {
      options.scenario = value();
    } else if (arg == "--flip-workload-at") {
      options.flip_workload_at = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      Die("unknown flag: " + arg);
    }
  }
  if (options.objects == 0) Die("--objects must be > 0");
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const latest::workload::ScenarioSpec spec = MakeSpec(options);
  const LatestConfig config = MakeConfig(options, spec);

  // Span tracing: install the process-global collector before the first
  // event so ingest/query roots are captured from the start.
  std::unique_ptr<latest::obs::SpanCollector> spans;
  if (!options.trace_out.empty()) {
    spans = std::make_unique<latest::obs::SpanCollector>(
        /*capacity=*/1 << 18, options.span_sample);
    latest::obs::SetSpanCollector(spans.get());
  }

  std::unique_ptr<LatestModule> module;
  uint64_t recovered_objects = 0;
  uint64_t recovered_queries = 0;
  uint64_t replayed = 0;
  if (options.resume) {
    if (options.checkpoint_dir.empty()) {
      Die("--resume requires --checkpoint-dir");
    }
    auto recovered =
        CheckpointManager::Recover(options.checkpoint_dir, config);
    if (!recovered.ok()) Die(recovered.status().ToString());
    module = std::move(recovered.value().module);
    recovered_objects = module->objects_ingested();
    recovered_queries = module->queries_answered();
    replayed = recovered.value().replayed_objects +
               recovered.value().replayed_queries;
    std::fprintf(stderr,
                 "resumed from snapshot %" PRIu64 " (+%" PRIu64
                 " WAL events): %" PRIu64 " objects, %" PRIu64
                 " queries already consumed\n",
                 recovered.value().snapshot_seq, replayed, recovered_objects,
                 recovered_queries);
  } else {
    auto created = LatestModule::Create(config);
    if (!created.ok()) Die(created.status().ToString());
    module = std::move(created).value();
  }
  if (module->introspection() != nullptr) {
    std::fprintf(stderr, "introspection server on http://127.0.0.1:%u\n",
                 module->introspection()->port());
  }
  if (!options.postmortem_dir.empty()) {
    InstallFatalSignalHandlers(module.get());
  }

  std::unique_ptr<CheckpointManager> manager;
  if (!options.checkpoint_dir.empty()) {
    DurabilityConfig durability;
    durability.dir = options.checkpoint_dir;
    durability.checkpoint_every = options.checkpoint_every;
    auto attached = CheckpointManager::Attach(durability, module.get());
    if (!attached.ok()) Die(attached.status().ToString());
    manager = std::move(attached).value();
  }

  const auto feed_object = [&](const latest::stream::GeoTextObject& obj) {
    if (manager != nullptr) {
      const latest::util::Status status = manager->OnObject(obj);
      if (!status.ok()) Die(status.ToString());
    } else {
      module->OnObject(obj);
    }
  };
  const auto feed_query = [&](const latest::stream::Query& q) {
    if (manager != nullptr) {
      const auto outcome = manager->OnQuery(q);
      if (!outcome.ok()) Die(outcome.status().ToString());
    } else {
      module->OnQuery(q);
    }
  };

  // The scenario stream is replayed from event 0 on every run; events
  // the recovered module already consumed are generated (to advance the
  // RNG streams identically) but not fed again.
  const auto kill_if_due = [&]() {
    if (options.kill_after != 0 &&
        module->objects_ingested() + module->queries_answered() >=
            options.kill_after) {
      ::kill(::getpid(), SIGKILL);  // A real crash: no destructors run.
    }
  };
  latest::workload::ScenarioStream stream(spec);
  uint64_t objects_generated = 0;
  uint64_t queries_generated = 0;
  while (stream.HasNext()) {
    const latest::workload::ScenarioEvent event = stream.Next();
    if (!event.is_query) {
      ++objects_generated;
      if (objects_generated > recovered_objects) {
        feed_object(event.object);
        kill_if_due();
      }
      if (options.pace_us != 0) ::usleep(options.pace_us);
      continue;
    }
    ++queries_generated;
    if (queries_generated > recovered_queries) {
      feed_query(event.query);
      kill_if_due();
    }
  }
  if (manager != nullptr) {
    const latest::util::Status status = manager->Sync();
    if (!status.ok()) Die(status.ToString());
  }

  if (spans != nullptr) {
    latest::obs::SetSpanCollector(nullptr);
    const latest::util::Status status =
        latest::obs::WriteTraceEventFile(*spans, options.trace_out);
    if (!status.ok()) Die(status.ToString());
    std::fprintf(stderr,
                 "wrote %" PRIu64 " spans (%" PRIu64
                 " dropped) to %s — load in ui.perfetto.dev\n",
                 spans->recorded(), spans->dropped(),
                 options.trace_out.c_str());
  }

  // Digest of the serialized lifecycle (minus wall-clock latency stats,
  // which are re-measured on replay): identical streams must end in
  // byte-identical state, crash or no crash.
  latest::util::BinaryWriter state;
  module->SaveDeterministicState(&state);
  const uint32_t state_crc = latest::persist::Crc32(state.buffer());

  // Quality-observability outcome: drift detections across all monitored
  // series, audit-trail totals, and the shutdown postmortem.
  const uint64_t drift_detections =
      module->telemetry()
          .events()
          .SnapshotOfType(latest::obs::EventType::kDriftDetected)
          .size();
  uint64_t audit_entries = 0;
  if (module->audit_trail() != nullptr) {
    audit_entries = module->audit_trail()->GetSummary().total_recorded;
  }
  const bool degraded = module->slo_monitor().degraded();
  if (!options.postmortem_dir.empty()) {
    g_signal_module = nullptr;  // Shutdown is no longer a crash window.
    const auto written = module->DumpPostmortem("shutdown");
    if (!written.ok()) Die(written.status().ToString());
    std::fprintf(stderr, "postmortem bundle: %s\n", written.value().c_str());
  }

  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", state_crc);
  latest::tools::ResultJson("stream_run")
      .U64("objects", module->objects_ingested())
      .U64("queries", module->queries_answered())
      .U64("switches", module->switch_log().size())
      .Str("final_phase", latest::core::PhaseName(module->phase()))
      .Str("active",
           latest::estimators::EstimatorKindName(module->active_kind()))
      .U64("model_leaves",
           static_cast<uint64_t>(module->model().num_leaves()))
      .U64("resumed", options.resume ? 1 : 0)
      .U64("replayed", replayed)
      .U64("snapshots",
           manager != nullptr ? manager->snapshots_taken() : 0)
      .Str("state_crc", crc_hex)
      .U64("drift_detections", drift_detections)
      .U64("audit_entries", audit_entries)
      .U64("degraded", degraded ? 1 : 0)
      .Print();
  // Exit 2 signals "ran to completion but degraded at shutdown" — CI
  // treats it as a soft failure distinct from flag/IO errors (exit 1).
  return degraded ? 2 : 0;
}
