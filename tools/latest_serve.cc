// latest_serve: the network query-serving daemon (ROADMAP item 1).
//
// Hosts one LatestModule behind the src/net RPC plane: a loopback
// length-prefixed binary protocol accepting concurrent INGEST / QUERY /
// STATUS frames, tick-batched admission into the module (so the batch
// kernels see real batches), and SLO-driven load shedding (RETRY_LATER
// with backoff hints; QUERY sheds before INGEST).
//
// Durability: --checkpoint-dir DIR recovers the newest snapshot + WAL
// tail at boot (fresh module when the directory is empty), write-ahead
// logs every ingest, and syncs at shutdown. Queries bypass the WAL —
// they mutate only learned state, which the next snapshot captures.
//
// Introspection: --metrics-port P serves /metrics, /healthz, /statusz
// etc. from the embedded HTTP plane, including the latest_serve_*
// series, and arms the serve-specific SLO rules. The serve daemon also
// installs the request-tracing plane: a process-global span collector
// (per-request trace trees on /tracez?dump, linked across the IO and
// batch threads), the request waterfall store (/requestz), and the
// SIGPROF sampling self-profiler (/profilez?seconds=N), whose latest
// profile rides along in flight-recorder postmortem bundles.
//
// The daemon prints `SERVE_READY port=<port>` once accepting, runs
// until SIGINT/SIGTERM, then drains admitted work and prints one
// RESULT_JSON line with lifetime serve counters.
//
// Usage:
//   latest_serve [--port P] [--tick-us T] [--max-batch N]
//                [--max-query-queue N] [--max-ingest-queue N]
//                [--degraded-divisor N] [--max-connections N]
//                [--threads N] [--metrics-port P]
//                [--checkpoint-dir DIR] [--run-for-ms MS]
//                [--span-capacity N] [--no-profiler]

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/latest_module.h"
#include "net/serve_server.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "persist/checkpoint_manager.h"
#include "result_json.h"
#include "workload/scenario.h"

namespace {

using latest::core::LatestConfig;
using latest::core::LatestModule;

struct Options {
  uint16_t port = 0;
  uint32_t tick_us = 2000;
  uint32_t max_batch = 64;
  uint32_t max_query_queue = 4096;
  uint32_t max_ingest_queue = 65536;
  uint32_t degraded_divisor = 8;
  uint32_t max_connections = 256;
  uint32_t threads = 0;
  int metrics_port = -1;
  std::string checkpoint_dir;
  int64_t run_for_ms = 0;  // 0 = until signal.
  uint64_t seed = 5;
  /// Span-collector ring capacity; 0 disables span tracing entirely.
  size_t span_capacity = 8192;
  bool profiler = true;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "latest_serve: %s\n", message.c_str());
  std::exit(1);
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::strtoul(
          value().c_str(), nullptr, 10));
    } else if (arg == "--tick-us") {
      options.tick_us = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--max-batch") {
      options.max_batch = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--max-query-queue") {
      options.max_query_queue = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--max-ingest-queue") {
      options.max_ingest_queue =
          std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--degraded-divisor") {
      options.degraded_divisor =
          std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--max-connections") {
      options.max_connections =
          std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoul(value().c_str(), nullptr, 10);
    } else if (arg == "--metrics-port") {
      options.metrics_port = std::atoi(value().c_str());
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = value();
    } else if (arg == "--run-for-ms") {
      options.run_for_ms = std::strtoll(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--span-capacity") {
      options.span_capacity = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--no-profiler") {
      options.profiler = false;
    } else {
      Die("unknown flag " + arg);
    }
  }
  return options;
}

/// Module config matching the driver tools' serving shape: the scenario
/// catalog's spatial bounds, deterministic alpha = 0 lifecycle.
LatestConfig MakeConfig(const Options& options) {
  auto entry = latest::workload::MakeScenario("baseline");
  if (!entry.ok()) Die(entry.status().ToString());
  LatestConfig config;
  config.bounds = entry->spec.bounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = latest::estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = options.seed;
  config.num_threads = options.threads;
  if (options.metrics_port >= 0) {
    config.enable_introspection = true;
    config.introspection_port =
        static_cast<uint16_t>(options.metrics_port);
    config.slo_tick_ms = 250;
  }
  return config;
}

volatile std::sig_atomic_t g_stop = 0;

void StopHandler(int /*signo*/) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const LatestConfig config = MakeConfig(options);

  // Install the tracing plane before the module exists: the module's
  // flight recorder attaches the process-global span collector at
  // Create, so the collector must already be in place.
  std::unique_ptr<latest::obs::SpanCollector> spans;
  if (options.span_capacity > 0) {
    spans = std::make_unique<latest::obs::SpanCollector>(
        options.span_capacity);
    latest::obs::SetSpanCollector(spans.get());
  }
  std::unique_ptr<latest::obs::Profiler> profiler;
  if (options.profiler) {
    profiler = std::make_unique<latest::obs::Profiler>();
    latest::obs::SetProfiler(profiler.get());
  }

  // Recover from the checkpoint directory when one is given; NotFound
  // (empty dir) starts fresh.
  std::unique_ptr<LatestModule> module;
  uint64_t replayed = 0;
  if (!options.checkpoint_dir.empty()) {
    auto recovered = latest::persist::CheckpointManager::Recover(
        options.checkpoint_dir, config);
    if (recovered.ok()) {
      module = std::move(recovered->module);
      replayed =
          recovered->replayed_objects + recovered->replayed_queries;
    } else if (recovered.status().code() !=
               latest::util::StatusCode::kNotFound) {
      Die("recover failed: " + recovered.status().ToString());
    }
  }
  if (module == nullptr) {
    auto created = LatestModule::Create(config);
    if (!created.ok()) Die(created.status().ToString());
    module = std::move(created).value();
  }

  // Arm the serve-plane SLO rules next to the module's defaults.
  for (const latest::obs::SloRule& rule : latest::obs::ServeSloRules()) {
    module->slo_monitor().AddRule(rule);
  }

  // Postmortem bundles carry the latest folded CPU profile.
  if (profiler != nullptr && module->flight_recorder() != nullptr) {
    module->flight_recorder()->AttachProfiler(profiler.get());
  }

  std::unique_ptr<latest::persist::CheckpointManager> manager;
  if (!options.checkpoint_dir.empty()) {
    latest::persist::DurabilityConfig durability;
    durability.dir = options.checkpoint_dir;
    durability.checkpoint_every = 200000;
    auto attached = latest::persist::CheckpointManager::Attach(
        durability, module.get());
    if (!attached.ok()) Die(attached.status().ToString());
    manager = std::move(attached).value();
  }

  latest::net::ServeServerConfig serve_config;
  serve_config.port = options.port;
  serve_config.batcher.tick_us = options.tick_us;
  serve_config.batcher.max_batch = options.max_batch;
  serve_config.batcher.max_query_queue = options.max_query_queue;
  serve_config.batcher.max_ingest_queue = options.max_ingest_queue;
  serve_config.batcher.degraded_divisor = options.degraded_divisor;
  serve_config.max_connections = options.max_connections;

  // Route ingest through the WAL when durability is on.
  std::function<void(const latest::stream::GeoTextObject&)> ingest_hook;
  if (manager != nullptr) {
    ingest_hook = [&manager](const latest::stream::GeoTextObject& obj) {
      (void)manager->OnObject(obj);
    };
  }
  latest::net::ServeServer server(serve_config, module.get(),
                                  std::move(ingest_hook));
  if (const auto status = server.Start(); !status.ok()) {
    Die(status.ToString());
  }

  std::signal(SIGINT, StopHandler);
  std::signal(SIGTERM, StopHandler);

  std::printf("SERVE_READY port=%u\n", server.port());
  std::fflush(stdout);
  if (module->introspection() != nullptr) {
    std::fprintf(stderr, "metrics on 127.0.0.1:%u\n",
                 module->introspection()->port());
  }

  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.run_for_ms > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(options.run_for_ms)) {
      break;
    }
  }

  server.Stop();
  if (manager != nullptr) (void)manager->Sync();

  // Tear the tracing globals down before their owners go out of scope.
  if (latest::obs::GetProfiler() == profiler.get()) {
    latest::obs::SetProfiler(nullptr);
  }
  if (latest::obs::GetSpanCollector() == spans.get()) {
    latest::obs::SetSpanCollector(nullptr);
  }

  const latest::net::ServeStats& stats = server.stats();
  latest::tools::ResultJson("serve")
      .U64("queries", stats.queries_answered.load())
      .U64("ingests", stats.objects_ingested.load())
      .U64("frames_in", stats.frames_in.load())
      .U64("frames_out", stats.frames_out.load())
      .U64("shed_queries", stats.shed_queries.load())
      .U64("shed_ingests", stats.shed_ingests.load())
      .U64("protocol_errors", stats.protocol_errors.load())
      .U64("batches", stats.batches.load())
      .U64("replayed", replayed)
      .Str("final_phase", latest::core::PhaseName(module->phase()))
      .Str("active",
           latest::estimators::EstimatorKindName(module->active_kind()))
      .Print();
  return 0;
}
