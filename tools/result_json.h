// Shared RESULT_JSON emission for the driver tools and benches.
//
// Every tool in this repo reports its machine-readable outcome as one
// stdout line of the form `RESULT_JSON {...}`; CI and
// scripts/bench_regress.py grep for that prefix. This header is the one
// place that knows the prefix and the JSON formatting rules (stable key
// order, %.6g doubles, no trailing comma), so the tools stop hand-rolling
// printf format strings.

#ifndef LATEST_TOOLS_RESULT_JSON_H_
#define LATEST_TOOLS_RESULT_JSON_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace latest::tools {

/// Incremental builder for one flat RESULT_JSON object. Keys are emitted
/// in insertion order; values are typed (no quoting surprises).
class ResultJson {
 public:
  /// Every result line starts with its experiment name.
  explicit ResultJson(std::string_view experiment) {
    body_.push_back('{');
    Str("experiment", experiment);
  }

  ResultJson& Str(std::string_view key, std::string_view value) {
    AppendKey(key);
    body_ += '"';
    // Tool strings are identifiers (scenario names, phase names); escape
    // the two characters that could still break the line.
    for (const char c : value) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
    body_ += '"';
    return *this;
  }

  ResultJson& U64(std::string_view key, uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
    AppendKey(key);
    body_ += buffer;
    return *this;
  }

  ResultJson& I64(std::string_view key, int64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
    AppendKey(key);
    body_ += buffer;
    return *this;
  }

  ResultJson& Dbl(std::string_view key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    AppendKey(key);
    body_ += buffer;
    return *this;
  }

  ResultJson& Bool(std::string_view key, bool value) {
    AppendKey(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  /// Pre-formatted JSON value (nested object/array built elsewhere).
  ResultJson& Raw(std::string_view key, std::string_view raw_json) {
    AppendKey(key);
    body_.append(raw_json);
    return *this;
  }

  /// The finished object, "{...}".
  std::string str() const { return body_ + "}"; }

  /// Prints the canonical `RESULT_JSON {...}` stdout line.
  void Print() const { PrintResultJsonLine(str()); }

  /// Emits an already-built JSON object under the canonical prefix
  /// (tools whose library layer returns finished JSON).
  static void PrintResultJsonLine(const std::string& json) {
    std::printf("RESULT_JSON %s\n", json.c_str());
    std::fflush(stdout);
  }

 private:
  void AppendKey(std::string_view key) {
    if (body_.size() > 1) body_ += ',';
    body_ += '"';
    body_.append(key);
    body_ += "\":";
  }

  std::string body_;
};

}  // namespace latest::tools

#endif  // LATEST_TOOLS_RESULT_JSON_H_
