// latest_scenario_run: end-to-end replay of one named adversarial
// scenario (src/workload/scenario.h) with per-scenario acceptance gates.
//
// Runs the deterministic alpha = 0 lifecycle over the scenario stream
// and prints a RESULT_JSON line with the accuracy trajectory, tau hit
// rate, switch count, drift detections, counterfactual regret, and the
// detection-delay / time-to-recover verdict for every injected drift.
//
// Exit codes: 0 = gates passed, 1 = flag/spec/IO error, 3 = one or more
// acceptance gates failed (the failures are listed in the JSON and on
// stderr). The CI scenario matrix runs each catalog scenario through
// this binary and archives the --postmortem-dir bundle on failure.
//
// Usage:
//   latest_scenario_run --scenario NAME [--objects N] [--duration MS]
//                       [--seed S] [--threads N] [--postmortem-dir DIR]
//   latest_scenario_run --list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "result_json.h"
#include "workload/scenario.h"
#include "workload/scenario_runner.h"

namespace {

struct Options {
  std::string scenario;
  bool list = false;
  uint64_t objects = 16000;
  int64_t duration_ms = 8000;
  uint64_t seed = 5;
  uint32_t threads = 0;
  std::string postmortem_dir;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "latest_scenario_run: %s\n", message.c_str());
  std::exit(1);
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scenario") {
      options.scenario = value();
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--objects") {
      options.objects = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      options.duration_ms = std::strtoll(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads =
          static_cast<uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--postmortem-dir") {
      options.postmortem_dir = value();
    } else {
      Die("unknown flag: " + arg);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  if (options.list) {
    for (const std::string& name : latest::workload::ScenarioNames()) {
      const auto entry = latest::workload::MakeScenario(name);
      std::printf("%-16s %s\n", name.c_str(),
                  entry.ok() ? entry->spec.description.c_str() : "?");
    }
    return 0;
  }
  if (options.scenario.empty()) {
    Die("--scenario NAME is required (see --list)");
  }

  auto entry = latest::workload::MakeScenario(
      options.scenario, options.objects, options.duration_ms, options.seed);
  if (!entry.ok()) Die(entry.status().ToString());

  latest::workload::ScenarioRunOptions run_options;
  run_options.threads = options.threads;
  run_options.postmortem_dir = options.postmortem_dir;

  auto outcome = latest::workload::RunScenario(*entry, run_options);
  if (!outcome.ok()) Die(outcome.status().ToString());

  latest::tools::ResultJson::PrintResultJsonLine(
      latest::workload::ToResultJson(*outcome));
  if (!outcome->gates_passed) {
    for (const std::string& failure : outcome->gate_failures) {
      std::fprintf(stderr, "GATE FAILED [%s]: %s\n",
                   options.scenario.c_str(), failure.c_str());
    }
    return 3;
  }
  return 0;
}
