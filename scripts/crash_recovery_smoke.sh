#!/usr/bin/env bash
# Crash-recovery smoke test: SIGKILL a checkpointed streaming run mid-phase,
# resume it from the last snapshot + WAL, and require the final module state
# to be byte-identical (same state_crc in RESULT_JSON) to an uninterrupted
# baseline run of the same stream.
#
# Usage: scripts/crash_recovery_smoke.sh <build-dir>
set -euo pipefail

BUILD_DIR="${1:-build}"
RUN_BIN="$BUILD_DIR/tools/latest_stream_run"
CKPT_BIN="$BUILD_DIR/tools/latest_ckpt"

if [[ ! -x "$RUN_BIN" ]]; then
  echo "error: $RUN_BIN not built (cmake --build $BUILD_DIR --target latest_stream_run)" >&2
  exit 1
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

OBJECTS=8000
DURATION=4000
SEED=5
# Checkpoint often enough that the kill lands several snapshots in; kill
# mid-incremental phase (the stream produces ~8000 objects + ~630 queries,
# pretraining completes around event ~2040).
CHECKPOINT_EVERY=500
# Deliberately off the checkpoint interval so the crash leaves a WAL tail
# behind the last snapshot and recovery must replay it.
KILL_AFTER=5250

json_field() {  # json_field <file> <key>
  python3 - "$1" "$2" <<'EOF'
import json, sys
line = [l for l in open(sys.argv[1]) if l.startswith("RESULT_JSON ")][-1]
print(json.loads(line[len("RESULT_JSON "):])[sys.argv[2]])
EOF
}

echo "== baseline: uninterrupted run (no durability) =="
"$RUN_BIN" --objects "$OBJECTS" --duration "$DURATION" --seed "$SEED" \
  | tee "$WORK_DIR/baseline.log"

echo "== durable run, SIGKILL after $KILL_AFTER events =="
mkdir -p "$WORK_DIR/ckpt"
rc=0
"$RUN_BIN" --objects "$OBJECTS" --duration "$DURATION" --seed "$SEED" \
  --checkpoint-dir "$WORK_DIR/ckpt" --checkpoint-every "$CHECKPOINT_EVERY" \
  --kill-after "$KILL_AFTER" >"$WORK_DIR/killed.log" 2>&1 || rc=$?
if [[ "$rc" -eq 0 ]]; then
  echo "error: run with --kill-after $KILL_AFTER exited cleanly" >&2
  exit 1
fi
echo "killed as expected (exit $rc)"

echo "== snapshot health after the crash =="
if [[ -x "$CKPT_BIN" ]]; then
  "$CKPT_BIN" "$WORK_DIR/ckpt"
fi

echo "== resume from snapshot + WAL and run to completion =="
"$RUN_BIN" --objects "$OBJECTS" --duration "$DURATION" --seed "$SEED" \
  --checkpoint-dir "$WORK_DIR/ckpt" --checkpoint-every "$CHECKPOINT_EVERY" \
  --resume | tee "$WORK_DIR/resumed.log"

baseline_crc="$(json_field "$WORK_DIR/baseline.log" state_crc)"
resumed_crc="$(json_field "$WORK_DIR/resumed.log" state_crc)"
resumed_flag="$(json_field "$WORK_DIR/resumed.log" resumed)"
replayed="$(json_field "$WORK_DIR/resumed.log" replayed)"

if [[ "$resumed_flag" != "1" ]]; then
  echo "error: resumed run did not recover from a snapshot" >&2
  exit 1
fi
if [[ "$replayed" == "0" ]]; then
  echo "error: recovery replayed no WAL records; the kill point should" \
       "land between checkpoints" >&2
  exit 1
fi
if [[ "$baseline_crc" != "$resumed_crc" ]]; then
  echo "error: state diverged: baseline state_crc=$baseline_crc," \
       "resumed state_crc=$resumed_crc" >&2
  exit 1
fi
echo "OK: crash-resumed run is bit-identical to baseline" \
     "(state_crc=$baseline_crc)"
