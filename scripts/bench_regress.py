#!/usr/bin/env python3
"""Compare bench RESULT_JSON output against a checked-in baseline.

Every bench harness prints one or more ``RESULT_JSON {...}`` lines. This
script parses those lines out of bench logs (or accepts a previously
written baseline file), matches each record to the corresponding baseline
record, and applies per-metric tolerance bands:

* throughput-style metrics (objects/s, queries/s) regress when they drop
  more than the band below baseline;
* cost-style metrics (ns/op) regress when they rise more than the band
  above baseline;
* everything else is informational — printed, never failing, because
  values like fsync-bound throughput or wall-clock seconds are too
  machine-dependent to gate on.

Records whose workload context differs from the baseline (object counts,
thread counts — i.e. a different LATEST_BENCH_SCALE) are skipped with a
warning rather than compared apples-to-oranges.

Usage:
    bench_regress.py --baseline BENCH_baseline.json log1 [log2 ...]
    bench_regress.py --baseline BENCH_baseline.json --update log1 [...]

Exit status: 0 when every gated metric is inside its band (or --update),
1 on any regression, 2 on usage/parse errors.
"""

import argparse
import json
import os
import sys

RESULT_PREFIX = "RESULT_JSON "

# metric -> (direction, relative tolerance). "higher" means larger is
# better (fail when current < baseline * (1 - tol)); "lower" means
# smaller is better (fail when current > baseline * (1 + tol)).
# The 0.30 band on ingest throughput is the CI gate the repo documents:
# a >30% drop fails the build. Micro benches and fsync-bound paths get
# wider bands — they are noisier on shared runners.
METRIC_SPECS = {
    "ingest_objects_per_s": ("higher", 0.30),
    "spatial_qps": ("higher", 0.30),
    "keyword_qps": ("higher", 0.30),
    "mixed_qps": ("higher", 0.30),
    "exact_eval_qps": ("higher", 0.30),
    "pretrain_qps": ("higher", 0.35),
    "ns_per_op": ("lower", 0.50),
    "ingest_base_ops": ("higher", 0.35),
    "ingest_wal_group_ops": ("higher", 0.40),
    # Estimation-quality gates from the switching benches. Unlike the
    # rate metrics above, accuracy is deterministic for a fixed workload
    # seed, so the bands are tight: they catch an estimator or switching
    # regression, not machine noise.
    "mean_accuracy": ("higher", 0.05),
    "tau_hit_rate": ("higher", 0.10),
    # Scenario-replay drift gates (bench_scenario_recovery /
    # latest_scenario_run). Deterministic for a fixed seed and scale:
    # a slower detection or recovery is a real sensitivity regression.
    "detection_delay_queries_max": ("lower", 0.50),
    "recover_slices_max": ("lower", 1.00),
    # SIMD batch-evaluation gates (bench_batch_query plus the batched
    # columns of bench_ingest_throughput). Rates take the standard
    # throughput band; the spatial batch/scalar speedup is the kernel
    # layer's headline >=3x claim and gets a tight band of its own —
    # being a ratio of two rates from the same run, it cancels most
    # machine noise, and it is the one number a batch-path regression
    # cannot hide behind a generally-faster runner.
    "spatial_scalar_qps": ("higher", 0.35),
    "keyword_scalar_qps": ("higher", 0.35),
    "mixed_scalar_qps": ("higher", 0.35),
    "batch_spatial_qps": ("higher", 0.35),
    "batch_keyword_qps": ("higher", 0.35),
    "batch_mixed_qps": ("higher", 0.35),
    "batch_exact_eval_qps": ("higher", 0.35),
    "batch_spatial_speedup": ("higher", 0.12),
    "hist_insert_scalar_ops": ("higher", 0.35),
    "hist_insert_batch_ops": ("higher", 0.35),
    # Serve-plane gates (bench_serve_latency). Socket + scheduler noise
    # on shared runners is worse than CPU-bound noise, so the rate bands
    # are wide; the batched/unbatched ratio comes from the same machine
    # in the same run and gates the admission-batching claim itself —
    # below 1.0 the tick batcher would be pure overhead. Latency
    # percentiles stay informational (open-loop flood measurements).
    "conns1_qps": ("higher", 0.40),
    "conns16_qps": ("higher", 0.40),
    "conns64_qps": ("higher", 0.40),
    "serve_batched_qps": ("higher", 0.40),
    "serve_unbatched_qps": ("higher", 0.40),
    "serve_batch_speedup": ("higher", 0.20),
    # Server-attributed admission queue wait (query class, 16 conns,
    # tracing disabled): the component of end-to-end latency the tick
    # batcher controls. An open-loop flood measurement on a shared
    # runner, so the band is the widest in the file — it exists to catch
    # an always-on tracing cost creeping into the admission path (a
    # many-fold blowup under flood), not scheduler jitter, which alone
    # swings this tail 2x between runs on the same machine.
    "queue_wait_p99_ms": ("lower", 1.50),
}

# Context fields that define the workload shape: when these differ from
# the baseline the scales differ and rate comparisons are meaningless.
# incremental_queries plays that role for the timeline (switching)
# benches: a different LATEST_BENCH_SCALE changes the query volume and
# with it the accuracy trajectory.
CONTEXT_FIELDS = ("objects", "threads", "pretrain_queries",
                  "incremental_queries")


def parse_result_lines(path):
    """Yields the JSON payload of every RESULT_JSON line in `path`."""
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line.startswith(RESULT_PREFIX):
                continue
            try:
                yield json.loads(line[len(RESULT_PREFIX):])
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"{path}:{line_number}: unparseable RESULT_JSON: {error}"
                )


def flatten(record):
    """Splits one RESULT_JSON record into keyed flat records.

    micro_estimators nests a benchmark list; each entry becomes its own
    record keyed by benchmark name. parallel_scaling emits one record per
    thread count, keyed by `threads`.
    """
    experiment = record.get("experiment", "<unknown>")
    if experiment == "micro_estimators":
        for bench in record.get("benchmarks", []):
            yield (experiment, bench["name"]), {"ns_per_op": bench["ns_per_op"]}
        return
    discriminator = ""
    if "threads" in record and experiment == "parallel_scaling":
        discriminator = f"threads={record['threads']}"
    if "point" in record:
        discriminator = str(record["point"])
    yield (experiment, discriminator), dict(record)


def collect(paths):
    """Flat {key: record} map over all RESULT_JSON lines in `paths`."""
    out = {}
    for path in paths:
        for record in parse_result_lines(path):
            for key, flat in flatten(record):
                out[key] = flat
    return out


def key_name(key):
    experiment, discriminator = key
    return f"{experiment}[{discriminator}]" if discriminator else experiment


def compare(baseline, current):
    """Prints a comparison table; returns the list of regression strings."""
    regressions = []
    for key, base_record in sorted(baseline.items()):
        name = key_name(key)
        cur_record = current.get(key)
        if cur_record is None:
            print(f"MISSING  {name}: no current result (bench not run?)")
            regressions.append(f"{name}: missing from current run")
            continue
        mismatched = [
            field
            for field in CONTEXT_FIELDS
            if field in base_record
            and field in cur_record
            and base_record[field] != cur_record[field]
        ]
        if mismatched:
            detail = ", ".join(
                f"{field} {base_record[field]} -> {cur_record[field]}"
                for field in mismatched
            )
            print(f"SKIP     {name}: workload context differs ({detail}); "
                  f"set the same LATEST_BENCH_SCALE as the baseline")
            continue
        for metric, base_value in sorted(base_record.items()):
            if not isinstance(base_value, (int, float)) or isinstance(
                base_value, bool
            ):
                continue
            cur_value = cur_record.get(metric)
            if not isinstance(cur_value, (int, float)):
                continue
            spec = METRIC_SPECS.get(metric)
            ratio = cur_value / base_value if base_value else float("inf")
            if spec is None or metric in CONTEXT_FIELDS:
                print(f"info     {name}.{metric}: {base_value:g} -> "
                      f"{cur_value:g}")
                continue
            direction, tolerance = spec
            if direction == "higher":
                bad = cur_value < base_value * (1.0 - tolerance)
                verb = "dropped"
            else:
                bad = cur_value > base_value * (1.0 + tolerance)
                verb = "rose"
            status = "REGRESS" if bad else "ok"
            print(f"{status:8s} {name}.{metric}: {base_value:g} -> "
                  f"{cur_value:g} ({ratio:.2f}x, band {tolerance:.0%} "
                  f"{direction}-is-better)")
            if bad:
                regressions.append(
                    f"{name}.{metric} {verb} beyond the {tolerance:.0%} "
                    f"band: {base_value:g} -> {cur_value:g}"
                )
    for key in sorted(set(current) - set(baseline)):
        print(f"NEW      {key_name(key)}: no baseline entry (add with "
              f"--update)")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the given logs")
    parser.add_argument("logs", nargs="+",
                        help="bench log files containing RESULT_JSON lines")
    args = parser.parse_args()

    current = collect(args.logs)
    if not current:
        print("error: no RESULT_JSON lines found in the given logs",
              file=sys.stderr)
        return 2

    if args.update:
        payload = {
            "scale": os.environ.get("LATEST_BENCH_SCALE", "1"),
            "records": [
                {"experiment": key[0], "discriminator": key[1], **record}
                for key, record in sorted(current.items())
            ],
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(payload['records'])} records, "
              f"scale {payload['scale']})")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read baseline {args.baseline}: {error}",
              file=sys.stderr)
        return 2
    baseline = {
        (record["experiment"], record.get("discriminator", "")): {
            k: v
            for k, v in record.items()
            if k not in ("experiment", "discriminator")
        }
        for record in payload.get("records", [])
    }
    expected_scale = payload.get("scale")
    actual_scale = os.environ.get("LATEST_BENCH_SCALE", "1")
    if expected_scale is not None and str(expected_scale) != actual_scale:
        print(f"note: baseline was recorded at LATEST_BENCH_SCALE="
              f"{expected_scale}, current env says {actual_scale}; context "
              f"checks will skip mismatched records")

    regressions = compare(baseline, current)
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print("\nall gated metrics inside their tolerance bands")
    return 0


if __name__ == "__main__":
    sys.exit(main())
