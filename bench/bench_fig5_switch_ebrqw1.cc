// Figure 5: estimator switching on the eBird real-request workload
// EbRQW1 (100% spatial range queries). The paper observes one switch,
// RSH -> H4096: the histogram has both the lowest latency and the highest
// accuracy on pure spatial ranges.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::EbirdLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kEbRQW1, num_queries);
  const auto config = bench::DefaultModuleConfig(dataset, num_queries);

  bench::PrintHeader(
      "Figure 5 - Estimator switches for query workload EbRQW1",
      "eBird-like stream; 100% spatial dataset-search requests");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 5: latency/accuracy timeline with LATEST switching (EbRQW1)",
      result);
  return 0;
}
