// Table I: index overhead comparison. Full spatial indexes (Grid,
// QuadTree) answer the query exactly by scanning candidate objects, which
// costs an order of magnitude more than the estimators LATEST chooses
// between. The paper reports 1450%-1600% overhead for the indexes versus
// the estimator chosen by LATEST.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "bench/portfolio_harness.h"
#include "exact/grid_index.h"
#include "exact/quadtree_index.h"
#include "stream/window_store.h"
#include "util/stopwatch.h"
#include "workload/stream_driver.h"

namespace {

using namespace latest;

struct DatasetCase {
  workload::DatasetSpec dataset;
  workload::WorkloadSpec workload;
  const char* label;
};

// Measures the mean exact-query latency of the two full indexes over a
// query sample, after streaming the whole dataset into them.
void MeasureIndexes(const workload::DatasetSpec& dataset_spec,
                    const std::vector<stream::Query>& sample,
                    stream::Timestamp window_ms, double* grid_ms,
                    double* quadtree_ms) {
  stream::WindowStore store(window_ms / 16);
  exact::GridIndex grid(&store, dataset_spec.bounds, 64, 64);
  exact::QuadTreeIndex quadtree(&store, dataset_spec.bounds,
                                /*leaf_capacity=*/256, /*max_depth=*/12);
  workload::DatasetGenerator gen(dataset_spec);
  stream::Timestamp now = 0;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    const stream::WindowStore::Row row = store.Append(obj);
    grid.Insert(row);
    quadtree.Insert(row);
    now = obj.timestamp;
  }
  const stream::Timestamp cutoff = now - window_ms;
  grid.EvictBefore(cutoff);
  quadtree.EvictBefore(cutoff);

  double grid_total = 0.0;
  double quadtree_total = 0.0;
  for (stream::Query q : sample) {
    q.timestamp = now;
    util::Stopwatch watch;
    (void)grid.CountMatches(q, cutoff);
    grid_total += watch.ElapsedMillis();
    watch.Restart();
    (void)quadtree.CountMatches(q, cutoff);
    quadtree_total += watch.ElapsedMillis();
  }
  *grid_ms = grid_total / static_cast<double>(sample.size());
  *quadtree_ms = quadtree_total / static_cast<double>(sample.size());
}

void RunCase(const DatasetCase& c) {
  const stream::WindowConfig window{60LL * 60 * 1000, 16};

  // Query batches: a training batch for the FFN feedback and an
  // evaluation batch.
  workload::QueryGenerator query_gen(c.workload, c.dataset);
  std::vector<stream::Query> feedback;
  std::vector<stream::Query> eval;
  while (query_gen.HasNext()) {
    if (feedback.size() < c.workload.num_queries / 2) {
      feedback.push_back(query_gen.Next());
    } else {
      eval.push_back(query_gen.Next());
    }
  }
  const std::vector<stream::Query> index_sample(
      eval.begin(), eval.begin() + std::min<size_t>(eval.size(), 60));

  // Estimators.
  bench::PortfolioHarness harness(c.dataset, window,
                                  {estimators::EstimatorConfig{}});
  harness.Feed(feedback);
  const bench::SweepPoint point =
      harness.Evaluate(0, c.label, eval, /*alpha=*/0.5);

  // Full indexes.
  double grid_ms = 0.0;
  double quadtree_ms = 0.0;
  MeasureIndexes(c.dataset, index_sample, window.window_length_ms, &grid_ms,
                 &quadtree_ms);

  std::printf("%s (workload %s)\n", c.label, c.workload.name.c_str());
  std::printf("  %-26s %12s %12s\n", "structure", "latency(ms)",
              "accuracy");
  std::printf("  %-26s %12.4f %12s\n", "Grid index (exact)", grid_ms,
              "100%");
  std::printf("  %-26s %12.4f %12s\n", "QuadTree index (exact)",
              quadtree_ms, "100%");
  const double chosen_latency =
      point.latency_ms[static_cast<uint32_t>(point.choice)];
  for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
    char name[32];
    std::snprintf(name, sizeof(name), "%s%s",
                  estimators::EstimatorKindName(
                      static_cast<estimators::EstimatorKind>(k)),
                  static_cast<uint32_t>(point.choice) == k
                      ? " (LATEST choice)"
                      : "");
    std::printf("  %-26s %12.4f %11.0f%%\n", name, point.latency_ms[k],
                100.0 * point.accuracy[k]);
  }
  std::printf(
      "  index overhead vs LATEST-chosen estimator: Grid %.0f%%, "
      "QuadTree %.0f%%\n\n",
      100.0 * grid_ms / std::max(1e-9, chosen_latency),
      100.0 * quadtree_ms / std::max(1e-9, chosen_latency));
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const auto nq = static_cast<uint32_t>(
      std::max(600.0, 1200 * scale));

  bench::PrintHeader(
      "Table I - Index overhead comparison",
      "full Grid/QuadTree index latency vs estimator latency+accuracy");

  RunCase({workload::EbirdLikeSpec(scale),
           workload::MakeWorkloadSpec(workload::WorkloadId::kEbRQW1, nq),
           "eBird-like"});
  RunCase({workload::CheckinLikeSpec(scale),
           workload::MakeWorkloadSpec(workload::WorkloadId::kCiQW1, nq),
           "CheckIn-like"});
  RunCase({workload::TwitterLikeSpec(scale),
           workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW4, nq),
           "Twitter-like"});

  std::printf(
      "Expected shape (paper): both exact indexes cost an order of "
      "magnitude more than the estimator LATEST selects.\n");
  return 0;
}
