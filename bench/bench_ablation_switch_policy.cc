// Ablation: value of LATEST's learned switching. Compares the accuracy
// LATEST actually delivered on TwQW1 against (a) every static
// single-estimator policy, (b) a per-bin oracle that always uses the
// best estimator, and (c) the expected accuracy of switching at random.
// LATEST should beat every static policy and approach the oracle.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(4000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  const auto config = bench::DefaultModuleConfig(dataset, num_queries);

  bench::PrintHeader(
      "Ablation - switching policy value (TwQW1)",
      "LATEST vs static single-estimator vs per-bin oracle vs random");

  const auto result = bench::RunTimeline(dataset, workload_spec, config);

  // Only the paper's portfolio is active under the default module config.
  constexpr uint32_t kKinds = estimators::kNumPaperEstimatorKinds;
  double static_acc[estimators::kNumEstimatorKinds] = {};
  double oracle_acc = 0.0;
  double random_acc = 0.0;
  uint64_t total = 0;
  for (const auto& bin : result.bins) {
    if (bin.count == 0) continue;
    total += bin.count;
    double best = 0.0;
    double sum = 0.0;
    for (uint32_t k = 0; k < kKinds; ++k) {
      const double acc = bin.MeanAccuracy(k);
      static_acc[k] += acc * static_cast<double>(bin.count);
      best = std::max(best, acc);
      sum += acc;
    }
    oracle_acc += best * static_cast<double>(bin.count);
    random_acc += sum / kKinds * static_cast<double>(bin.count);
  }

  std::printf("%-28s %10s\n", "policy", "accuracy");
  std::printf("%-28s %10.3f\n", "per-bin oracle (upper bound)",
              oracle_acc / static_cast<double>(total));
  std::printf("%-28s %10.3f  (%zu switches)\n", "LATEST (learned switching)",
              result.mean_active_accuracy, result.switches.size());
  for (uint32_t k = 0; k < kKinds; ++k) {
    char label[32];
    std::snprintf(label, sizeof(label), "static %s",
                  estimators::EstimatorKindName(
                      static_cast<estimators::EstimatorKind>(k)));
    std::printf("%-28s %10.3f\n", label,
                static_acc[k] / static_cast<double>(total));
  }
  std::printf("%-28s %10.3f\n", "random estimator per query",
              random_acc / static_cast<double>(total));
  std::printf(
      "\nExpected shape: oracle >= LATEST >= best static >= random; the "
      "gap LATEST closes over the best static policy is the value of "
      "adaptive switching.\n");
  return 0;
}
