// Figure 11: impact of the number of query keywords (1..5) on query
// workload TwQW5 (pure multi-keyword queries). H4096 is excluded — it
// keeps purely spatial statistics. The paper finds RSH consistently
// chosen with the highest accuracy, stable latency for all estimators,
// and slightly decreasing accuracy for FFN and SPN as keywords grow.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "bench/portfolio_harness.h"

int main(int argc, char** argv) {
  using namespace latest;
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const auto dataset = workload::TwitterLikeSpec(scale);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};

  bench::PrintHeader(
      "Figure 11 - Varying keyword set size on query workload TwQW5",
      "pure keyword queries, 1..5 keywords; H4096 excluded (spatial-only "
      "statistics)");

  const auto feedback_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW5,
      std::max<uint32_t>(400, static_cast<uint32_t>(800 * scale)));
  workload::QueryGenerator feedback_gen(feedback_spec, dataset);
  std::vector<stream::Query> feedback;
  while (feedback_gen.HasNext()) feedback.push_back(feedback_gen.Next());

  bench::PortfolioHarness harness(dataset, window,
                                  {estimators::EstimatorConfig{}}, threads);
  harness.Feed(feedback);

  const std::set<estimators::EstimatorKind> excluded = {
      estimators::EstimatorKind::kH4096};
  std::vector<bench::SweepPoint> points;
  for (uint32_t num_keywords = 1; num_keywords <= 5; ++num_keywords) {
    auto spec = workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW5,
                                           /*num_queries=*/300);
    spec.min_query_keywords = num_keywords;
    spec.max_query_keywords = num_keywords;
    spec.seed = 555;
    workload::QueryGenerator gen(spec, dataset);
    std::vector<stream::Query> batch;
    while (gen.HasNext()) batch.push_back(gen.Next());
    char label[32];
    std::snprintf(label, sizeof(label), "%u keyword%s", num_keywords,
                  num_keywords > 1 ? "s" : "");
    points.push_back(
        harness.Evaluate(0, label, batch, /*alpha=*/0.5, excluded));
  }

  bench::PrintSweepFigure("Fig. 11: keyword-count impact (TwQW5)",
                          "keywords", points);
  std::printf(
      "Expected shape (paper): RSH chosen throughout with the highest "
      "accuracy; latencies stable; FFN/SPN accuracy lower and slightly "
      "decreasing with more keywords.\n");
  return 0;
}
