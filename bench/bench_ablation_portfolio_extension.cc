// Ablation: extending the portfolio beyond the paper's six estimators.
// Section IV notes that administrators can deploy a different estimator
// set; this harness runs the TwQW1 evaluation once with the paper's
// portfolio and once with the CMS (Count-Min sketch) extension enabled,
// and reports the per-estimator profile plus LATEST's outcomes.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "workload/stream_driver.h"

namespace {

using namespace latest;

struct RunSummary {
  double accuracy = 0.0;
  double latency_ms = 0.0;
  size_t switches = 0;
  // Per-kind means across the incremental phase.
  std::array<double, estimators::kNumEstimatorKinds> kind_accuracy = {};
  std::array<double, estimators::kNumEstimatorKinds> kind_latency = {};
  std::array<uint64_t, estimators::kNumEstimatorKinds> kind_count = {};
};

RunSummary Run(const workload::DatasetSpec& dataset_spec,
               uint32_t num_queries, bool enable_cms) {
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  auto config = bench::DefaultModuleConfig(dataset_spec, num_queries);
  config.enabled_estimators[static_cast<uint32_t>(
      estimators::EstimatorKind::kCmSketch)] = enable_cms;

  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) std::exit(1);
  core::LatestModule& module = **module_result;

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);
  RunSummary summary;
  uint64_t incremental = 0;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        const auto outcome = module.OnQuery(q);
        if (outcome.phase != core::Phase::kIncremental) return;
        ++incremental;
        summary.accuracy += outcome.accuracy;
        summary.latency_ms += outcome.latency_ms;
        for (const auto& m : outcome.measurements) {
          const auto k = static_cast<uint32_t>(m.kind);
          summary.kind_accuracy[k] += m.accuracy;
          summary.kind_latency[k] += m.latency_ms;
          ++summary.kind_count[k];
        }
      });
  if (incremental > 0) {
    summary.accuracy /= static_cast<double>(incremental);
    summary.latency_ms /= static_cast<double>(incremental);
  }
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    if (summary.kind_count[k] == 0) continue;
    summary.kind_accuracy[k] /= static_cast<double>(summary.kind_count[k]);
    summary.kind_latency[k] /= static_cast<double>(summary.kind_count[k]);
  }
  summary.switches = module.switch_log().size();
  return summary;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));

  bench::PrintHeader(
      "Ablation - portfolio extension (TwQW1, +CMS sketch estimator)",
      "the paper's six-member portfolio vs the same plus a Count-Min "
      "sketch member");

  const RunSummary base = Run(dataset, num_queries, /*enable_cms=*/false);
  const RunSummary extended = Run(dataset, num_queries, /*enable_cms=*/true);

  std::printf("per-estimator profile on the extended run (mean over the "
              "incremental phase):\n");
  std::printf("  %-8s %10s %12s\n", "member", "accuracy", "latency(ms)");
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    if (extended.kind_count[k] == 0) continue;
    std::printf("  %-8s %10.3f %12.4f\n",
                estimators::EstimatorKindName(
                    static_cast<estimators::EstimatorKind>(k)),
                extended.kind_accuracy[k], extended.kind_latency[k]);
  }

  std::printf("\nLATEST outcome:\n");
  std::printf("  %-24s %10s %12s %9s\n", "portfolio", "accuracy",
              "latency(ms)", "switches");
  std::printf("  %-24s %10.3f %12.4f %9zu\n", "paper (6 members)",
              base.accuracy, base.latency_ms, base.switches);
  std::printf("  %-24s %10.3f %12.4f %9zu\n", "extended (+CMS)",
              extended.accuracy, extended.latency_ms, extended.switches);
  std::printf(
      "\nExpected shape: the CMS member sits between the histogram and "
      "the samplers (fast, moderately accurate on every predicate type); "
      "with it enabled, LATEST trades some accuracy for latency at the "
      "default alpha because a near-sampler-accuracy estimator is now "
      "available at histogram-like speed.\n");
  return 0;
}
