// Figure 6: TwQW3 (50% spatial / 50% hybrid) with alpha = 0 — accuracy is
// the only weighted feature, latency is ignored. LATEST must always sit
// on the best-accuracy estimator even when it is slow.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW3, num_queries);
  auto config = bench::DefaultModuleConfig(dataset, num_queries);
  config.alpha = 0.0;

  bench::PrintHeader(
      "Figure 6 - TwQW3 with alpha = 0 (accuracy-only reward)",
      "Twitter-like stream; 50% pure spatial, 50% spatial-keyword");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 6: LATEST always selects the best-accuracy estimator", result);
  return 0;
}
