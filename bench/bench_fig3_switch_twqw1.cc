// Figure 3: real-time estimator switching on query workload TwQW1
// (one-third pure spatial / pure keyword / hybrid, with the dominant type
// rotating through phases). The paper observes four switches
// (RSH -> H4096 -> RSH -> RSL -> RSH); the reproduction should show the
// same pattern: a histogram excursion during the spatial-dominated phase
// and sampler switches elsewhere.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(4000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  const auto config = bench::DefaultModuleConfig(dataset, num_queries);

  bench::PrintHeader(
      "Figure 3 - Estimator switches for query workload TwQW1",
      "Twitter-like stream; mixed workload with rotating dominant type");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 3: latency/accuracy timeline with LATEST switching (TwQW1)",
      result);
  return 0;
}
