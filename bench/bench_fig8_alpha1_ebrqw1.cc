// Figure 8: the eBird workload EbRQW1 with alpha = 1 (latency-only
// reward). Same behaviour as Figure 5 but driven by latency: LATEST
// switches to the estimator with the lowest latency.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::EbirdLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kEbRQW1, num_queries);
  auto config = bench::DefaultModuleConfig(dataset, num_queries);
  config.alpha = 1.0;

  bench::PrintHeader(
      "Figure 8 - EbRQW1 with alpha = 1 (latency-only reward)",
      "eBird-like stream; 100% spatial dataset-search requests");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 8: LATEST switches to the lowest-latency estimator", result);
  return 0;
}
