// Drift-recovery benchmark over the adversarial scenario library.
//
// Replays the three detection-gated catalog scenarios (flip, flash_crowd,
// vocab_churn) at bench volume and reports how fast the lifecycle notices
// and recovers from each injected drift: detection delay in answered
// queries, time-to-recover in window slices, switch count, tau hit rate,
// and counterfactual regret. One RESULT_JSON line per scenario feeds
// scripts/bench_regress.py — detection delay and recovery are
// deterministic for a fixed seed, so the tolerance bands are tight.
//
// Honours LATEST_BENCH_SCALE (object volume) and --threads /
// LATEST_BENCH_THREADS (estimation pool; the outcome is thread-count
// invariant at alpha = 0).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "workload/scenario.h"
#include "workload/scenario_runner.h"

int main(int argc, char** argv) {
  using namespace latest;

  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  // The stock smoke stream is 16000 objects over 8000 event-time ms
  // (2 objects/ms); scale the volume and keep the cadence.
  const uint64_t objects = std::max<uint64_t>(
      4000, static_cast<uint64_t>(320000.0 * scale));
  const int64_t duration_ms = static_cast<int64_t>(objects / 2);

  bench::PrintHeader("Scenario drift recovery",
                     "detection delay and time-to-recover per adversarial "
                     "scenario");
  std::printf("objects: %llu over %lld ms, threads: %u\n\n",
              static_cast<unsigned long long>(objects),
              static_cast<long long>(duration_ms), threads);

  int failures = 0;
  for (const char* name : {"flip", "flash_crowd", "vocab_churn"}) {
    auto entry = workload::MakeScenario(name, objects, duration_ms);
    if (!entry.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, entry.status().ToString().c_str());
      return 1;
    }
    workload::ScenarioRunOptions options;
    options.threads = threads;
    auto outcome = workload::RunScenario(*entry, options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", name,
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-12s detect %4llu queries  recover %3lld slices  switches %2llu  "
        "tau-hit %.3f  regret %.3f%s\n",
        name,
        static_cast<unsigned long long>(outcome->DetectionDelayMax()),
        static_cast<long long>(outcome->RecoverSlicesMax()),
        static_cast<unsigned long long>(outcome->switches),
        outcome->tau_hit_rate, outcome->cumulative_regret,
        outcome->gates_passed ? "" : "  [GATE FAILED]");
    for (const std::string& failure : outcome->gate_failures) {
      std::printf("             ! %s\n", failure.c_str());
    }
    if (!outcome->gates_passed) ++failures;
    std::printf("RESULT_JSON %s\n",
                workload::ToResultJson(*outcome).c_str());
  }
  return failures > 0 ? 3 : 0;
}
