// Table II: impact of alpha on LATEST's choice for query workload TwQW3.
// For each alpha, the table reports the estimator LATEST employs at three
// time points of the incremental phase (t = 20, 60, 100). The paper finds
// accuracy-leaning alphas (<= 0.5) pick the sampling estimators and
// latency-leaning alphas (> 0.5) pick H4096 / FFN.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW3, num_queries);

  bench::PrintHeader(
      "Table II - Impact of alpha on query workload TwQW3",
      "LATEST's employed estimator at t=20/60/100 per alpha value");

  const double alphas[] = {0.0, 0.3, 0.5, 0.7, 1.0};
  std::printf("%-6s %10s %10s %10s\n", "alpha", "t=20", "t=60", "t=100");
  for (const double alpha : alphas) {
    auto config = bench::DefaultModuleConfig(dataset, num_queries);
    config.alpha = alpha;
    const auto result =
        bench::RunTimeline(dataset, workload_spec, config, /*num_bins=*/20);
    // Bin b covers t in [5b, 5b+5): t=20 -> bin 4, t=60 -> bin 12,
    // t=100 -> final bin.
    const auto at = [&](uint32_t bin) {
      return estimators::EstimatorKindName(result.bins[bin].active);
    };
    std::printf("%-6.1f %10s %10s %10s\n", alpha, at(4), at(12), at(19));
  }
  std::printf(
      "\nExpected shape (paper): alpha <= 0.5 favours the accuracy "
      "winners (RSL/RSH); alpha > 0.5 favours the latency winners "
      "(H4096/FFN).\n");
  return 0;
}
