// Figure 9: impact of the spatial range size on estimation latency and
// accuracy for query workload TwQW1 (Twitter-like stream). The paper
// finds the H4096 histogram superior across range sizes, AASP with the
// highest latency, and only mild sensitivity of each estimator to the
// range itself.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/portfolio_harness.h"

int main(int argc, char** argv) {
  using namespace latest;
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const auto dataset = workload::TwitterLikeSpec(scale);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};

  bench::PrintHeader(
      "Figure 9 - Varying spatial ranges on query workload TwQW1",
      "per-estimator latency/accuracy vs query range side (fraction of "
      "the domain side)");

  // FFN training feedback uses the TwQW1 mix.
  const auto feedback_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1,
      std::max<uint32_t>(400, static_cast<uint32_t>(800 * scale)));
  workload::QueryGenerator feedback_gen(feedback_spec, dataset);
  std::vector<stream::Query> feedback;
  while (feedback_gen.HasNext()) feedback.push_back(feedback_gen.Next());

  bench::PortfolioHarness harness(dataset, window,
                                  {estimators::EstimatorConfig{}}, threads);
  harness.Feed(feedback);

  const double side_fractions[] = {0.0025, 0.005, 0.01, 0.02, 0.04};
  std::vector<bench::SweepPoint> points;
  for (const double side : side_fractions) {
    auto spec = workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW2,
                                           /*num_queries=*/300);
    spec.min_side_fraction = side;
    spec.max_side_fraction = side;
    spec.seed = 1234;
    workload::QueryGenerator gen(spec, dataset);
    std::vector<stream::Query> batch;
    while (gen.HasNext()) batch.push_back(gen.Next());
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", 100.0 * side);
    points.push_back(harness.Evaluate(0, label, batch, /*alpha=*/0.5));
  }

  bench::PrintSweepFigure("Fig. 9: spatial-range impact (TwQW1 context)",
                          "range side", points);
  std::printf(
      "Expected shape (paper): H4096 wins latency and accuracy across "
      "range sizes; range size itself has only mild impact per "
      "estimator.\n");
  return 0;
}
