// Durability overhead: what checkpointing and write-ahead logging cost a
// streaming LATEST deployment.
//
// Three measurements over the same clustered stream:
//   1. snapshot latency + size: time and bytes to serialize the complete
//      lifecycle (module snapshot) at end-of-stream, mean over repeats;
//   2. ingest throughput without durability (baseline objects/s);
//   3. ingest throughput with the WAL + periodic snapshots enabled, for
//      the default group commit and for fsync-per-record (the worst
//      case), giving the WAL append overhead as a ratio.
//
// Honours LATEST_BENCH_SCALE; emits one RESULT_JSON line.

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "persist/checkpoint_manager.h"
#include "stream/object.h"
#include "stream/query.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace latest;

core::LatestConfig BenchConfig() {
  core::LatestConfig config;
  config.bounds = {0, 0, 100, 100};
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = 5;
  return config;
}

std::vector<stream::GeoTextObject> MakeStream(uint64_t n) {
  util::Rng rng(13);
  std::vector<stream::GeoTextObject> objects;
  objects.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    if (rng.NextBool(0.7)) {
      obj.loc = {rng.NextDouble(20, 40), rng.NextDouble(20, 40)};
    } else {
      obj.loc = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    }
    const int num_kw = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < num_kw; ++k) {
      const double u = rng.NextDouble();
      obj.keywords.push_back(static_cast<stream::KeywordId>(u * u * 50));
    }
    stream::CanonicalizeKeywords(&obj.keywords);
    obj.timestamp = static_cast<int64_t>(4000 * i / n);
    objects.push_back(std::move(obj));
  }
  return objects;
}

struct IngestResult {
  double objects_per_sec = 0.0;
  uint64_t snapshots = 0;
  uint64_t wal_bytes = 0;
};

// Streams all objects (plus the usual 1-in-10 query mix) into a fresh
// module, optionally through a CheckpointManager.
IngestResult RunIngest(const std::vector<stream::GeoTextObject>& objects,
                       const persist::DurabilityConfig* durability) {
  auto created = core::LatestModule::Create(BenchConfig());
  if (!created.ok()) {
    std::fprintf(stderr, "module: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<core::LatestModule> module = std::move(created).value();
  std::unique_ptr<persist::CheckpointManager> manager;
  if (durability != nullptr) {
    auto attached = persist::CheckpointManager::Attach(*durability,
                                                       module.get());
    if (!attached.ok()) {
      std::fprintf(stderr, "attach: %s\n",
                   attached.status().ToString().c_str());
      std::exit(1);
    }
    manager = std::move(attached).value();
  }

  util::Rng query_rng(99);
  const util::Stopwatch watch;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (manager != nullptr) {
      (void)manager->OnObject(objects[i]);
    } else {
      module->OnObject(objects[i]);
    }
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q;
    q.keywords = {
        static_cast<stream::KeywordId>(query_rng.NextBounded(50))};
    q.timestamp = objects[i].timestamp;
    if (manager != nullptr) {
      (void)manager->OnQuery(q);
    } else {
      module->OnQuery(q);
    }
  }
  if (manager != nullptr) (void)manager->Sync();
  const double seconds = watch.ElapsedMillis() / 1000.0;

  IngestResult result;
  result.objects_per_sec =
      seconds > 0.0 ? static_cast<double>(objects.size()) / seconds : 0.0;
  if (manager != nullptr) {
    result.snapshots = manager->snapshots_taken();
  }
  if (durability != nullptr) {
    for (const auto& entry :
         std::filesystem::directory_iterator(durability->dir)) {
      if (entry.path().extension() == ".log") {
        result.wal_bytes += entry.file_size();
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const uint64_t num_objects =
      static_cast<uint64_t>(20000 * scale) < 2000
          ? 2000
          : static_cast<uint64_t>(20000 * scale);
  bench::PrintHeader("checkpoint_overhead",
                     "durability cost: snapshot latency/size + WAL ingest "
                     "overhead (" +
                         std::to_string(num_objects) + " objects)");
  const auto objects = MakeStream(num_objects);

  // --- Snapshot latency and size at end-of-stream state. -------------
  auto created = core::LatestModule::Create(BenchConfig());
  if (!created.ok()) return 1;
  std::unique_ptr<core::LatestModule> module = std::move(created).value();
  util::Rng query_rng(99);
  for (size_t i = 0; i < objects.size(); ++i) {
    module->OnObject(objects[i]);
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q;
    q.keywords = {
        static_cast<stream::KeywordId>(query_rng.NextBounded(50))};
    q.timestamp = objects[i].timestamp;
    module->OnQuery(q);
  }
  constexpr int kSnapshotRepeats = 10;
  uint64_t snapshot_bytes = 0;
  double snapshot_ms_total = 0.0;
  for (int r = 0; r < kSnapshotRepeats; ++r) {
    const util::Stopwatch watch;
    util::BinaryWriter writer;
    module->SaveState(&writer);
    snapshot_ms_total += watch.ElapsedMillis();
    snapshot_bytes = writer.buffer().size();
  }
  const double snapshot_ms = snapshot_ms_total / kSnapshotRepeats;
  std::printf("snapshot: %.3f ms, %" PRIu64 " bytes (%.1f KiB)\n",
              snapshot_ms, snapshot_bytes,
              static_cast<double>(snapshot_bytes) / 1024.0);

  // --- Ingest throughput: WAL off vs on. -----------------------------
  const IngestResult off = RunIngest(objects, nullptr);
  std::printf("ingest, durability off:           %10.0f objects/s\n",
              off.objects_per_sec);

  const auto run_durable = [&](uint32_t group_commit, const char* label) {
    std::string dir =
        (std::filesystem::temp_directory_path() / "latest_bench_ckpt_XXXXXX")
            .string();
    if (mkdtemp(dir.data()) == nullptr) std::exit(1);
    persist::DurabilityConfig durability;
    durability.dir = dir;
    durability.checkpoint_every = num_objects / 4;
    durability.wal_group_commit = group_commit;
    const IngestResult on = RunIngest(objects, &durability);
    std::printf("ingest, WAL %-20s %10.0f objects/s (%.1f%% of baseline, "
                "%" PRIu64 " snapshots, %" PRIu64 " WAL bytes)\n",
                label, on.objects_per_sec,
                off.objects_per_sec > 0.0
                    ? 100.0 * on.objects_per_sec / off.objects_per_sec
                    : 0.0,
                on.snapshots, on.wal_bytes);
    std::filesystem::remove_all(dir);
    return on;
  };
  const IngestResult group = run_durable(64, "(group commit 64):");
  const IngestResult every = run_durable(1, "(fsync per record):");

  std::printf(
      "RESULT_JSON {\"experiment\":\"checkpoint_overhead\","
      "\"objects\":%" PRIu64 ",\"snapshot_ms\":%.4f,\"snapshot_bytes\":%" PRIu64
      ",\"ingest_base_ops\":%.0f,\"ingest_wal_group_ops\":%.0f,"
      "\"ingest_wal_fsync_ops\":%.0f,\"wal_overhead_pct\":%.2f}\n",
      num_objects, snapshot_ms, snapshot_bytes, off.objects_per_sec,
      group.objects_per_sec, every.objects_per_sec,
      off.objects_per_sec > 0.0
          ? 100.0 * (1.0 - group.objects_per_sec / off.objects_per_sec)
          : 0.0);
  return 0;
}
