// Ingest & exact-evaluation throughput of the windowed ground-truth data
// path (the "query processor + system logs" the LATEST lifecycle leans on
// for every pre-training query and every incremental tree label).
//
// Two measurements over a Twitter-like stream:
//   1. ingest: objects/s streamed into the ExactEvaluator with the same
//      rotation-driven eviction cadence LatestModule uses, and
//   2. exact-eval: queries/s answered exactly at end-of-stream, per
//      workload mix (pure spatial, single keyword, mixed) and overall.
//
// Honours LATEST_BENCH_SCALE and --threads / LATEST_BENCH_THREADS (spatial
// scans shard grid-row bands across the estimation pool). Emits one
// RESULT_JSON line so the speedup lands in the bench trajectory.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exact/exact_evaluator.h"
#include "simd/kernels.h"
#include "stream/sliding_window.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace {

using namespace latest;

struct QueryMix {
  const char* label;
  workload::WorkloadId id;
  double qps = 0.0;
  double batch_qps = 0.0;
};

/// Minimum wall-clock per measurement pass (sub-millisecond timings are
/// all noise) and passes per measurement: the best of three time-bounded
/// passes is the most reproducible summary of a short CPU-bound loop,
/// since transients only ever slow a pass down.
constexpr double kMinMeasureMillis = 100.0;
constexpr int kMeasurePasses = 3;

/// Repeats the batch until `min_iters` queries ran, returns queries/s.
double MeasureQps(exact::ExactEvaluator* evaluator,
                  const std::vector<stream::Query>& batch,
                  uint64_t min_iters) {
  uint64_t sink = 0;
  double best = 0.0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (done < min_iters || watch.ElapsedMillis() < kMinMeasureMillis) {
      for (const stream::Query& q : batch) {
        sink += evaluator->TrueSelectivity(q);
      }
      done += batch.size();
    }
    const double seconds = watch.ElapsedMillis() / 1000.0;
    if (seconds > 0.0) best = std::max(best, done / seconds);
  }
  // Keep the accumulated selectivity observable so the loop can't be
  // optimized away.
  std::printf("  (checksum %llu)\n", static_cast<unsigned long long>(sink));
  return best;
}

/// Same workload through TrueSelectivityBatch in 64-query slices.
double MeasureBatchQps(exact::ExactEvaluator* evaluator,
                       const std::vector<stream::Query>& batch,
                       uint64_t min_iters) {
  constexpr size_t kBatchK = 64;
  std::vector<uint64_t> counts(batch.size());
  uint64_t sink = 0;
  double best = 0.0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (done < min_iters || watch.ElapsedMillis() < kMinMeasureMillis) {
      for (size_t begin = 0; begin < batch.size(); begin += kBatchK) {
        const size_t k = std::min(kBatchK, batch.size() - begin);
        evaluator->TrueSelectivityBatch(batch.data() + begin, k,
                                        counts.data() + begin);
      }
      for (const uint64_t c : counts) sink += c;
      done += batch.size();
    }
    const double seconds = watch.ElapsedMillis() / 1000.0;
    if (seconds > 0.0) best = std::max(best, done / seconds);
  }
  std::printf("  (batch checksum %llu)\n",
              static_cast<unsigned long long>(sink));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};
  const auto spec = workload::TwitterLikeSpec(scale);

  bench::PrintHeader("Ingest & exact-eval throughput",
                     "columnar window store data path (objects/s, qps)");
  std::printf("threads: %u (pass --threads N or set LATEST_BENCH_THREADS)\n\n",
              threads);

  util::ThreadPool pool(threads);
  exact::ExactEvaluator evaluator(spec.bounds, window.window_length_ms);
  if (threads > 0) evaluator.set_thread_pool(&pool);

  // --- Ingest: the module's cadence (rotation-driven eviction). ---
  workload::DatasetGenerator gen(spec);
  std::vector<stream::GeoTextObject> objects;
  while (gen.HasNext()) objects.push_back(gen.Next());

  // Replaying the stream shifted forward by one period keeps timestamps
  // strictly advancing, so the window keeps sliding (rotation-driven
  // eviction stays on the measured path) and each pass can run until the
  // minimum wall clock regardless of LATEST_BENCH_SCALE. A single cold
  // fill was too short at small scales to measure above the noise.
  const stream::Timestamp span = objects.back().timestamp -
                                 objects.front().timestamp +
                                 window.window_length_ms / window.num_slices;
  stream::SliceClock clock(window);
  double ingest_rate = 0.0;
  uint64_t ingested = 0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (done == 0 || watch.ElapsedMillis() < kMinMeasureMillis) {
      for (auto& obj : objects) {
        obj.timestamp += span;
        if (clock.Advance(obj.timestamp) > 0) {
          evaluator.EvictExpired(clock.now());
        }
        evaluator.Insert(obj);
      }
      done += objects.size();
    }
    const double s = watch.ElapsedMillis() / 1000.0;
    if (s > 0.0) ingest_rate = std::max(ingest_rate, done / s);
    ingested += done;
  }
  const stream::Timestamp now = clock.now();
  std::printf("ingested %llu objects (steady-state sliding window) -> "
              "%.0f objects/s\n\n",
              static_cast<unsigned long long>(ingested), ingest_rate);

  // --- Exact evaluation at end-of-stream. ---
  QueryMix mixes[] = {
      {"spatial", workload::WorkloadId::kTwQW2},
      {"keyword", workload::WorkloadId::kTwQW4},
      {"mixed", workload::WorkloadId::kTwQW1},
  };
  const auto min_iters = static_cast<uint64_t>(2000 * scale) + 500;
  double total_qps = 0.0;
  double total_batch_qps = 0.0;
  for (QueryMix& mix : mixes) {
    const auto wspec = workload::MakeWorkloadSpec(mix.id, 256);
    workload::QueryGenerator qgen(wspec, spec);
    std::vector<stream::Query> batch;
    while (qgen.HasNext()) {
      stream::Query q = qgen.Next();
      q.timestamp = now;
      batch.push_back(std::move(q));
    }
    mix.qps = MeasureQps(&evaluator, batch, min_iters);
    mix.batch_qps = MeasureBatchQps(&evaluator, batch, min_iters);
    std::printf("  %-8s %12.0f queries/s (batched: %12.0f)\n", mix.label,
                mix.qps, mix.batch_qps);
    total_qps += mix.qps;
    total_batch_qps += mix.batch_qps;
  }
  const double exact_eval_qps = total_qps / 3.0;
  const double batch_exact_eval_qps = total_batch_qps / 3.0;
  std::printf("\nmean exact-eval throughput: %.0f queries/s "
              "(batched: %.0f, kernel tier %s)\n",
              exact_eval_qps, batch_exact_eval_qps,
              simd::KernelTierName(simd::ActiveTier()));

  std::printf(
      "RESULT_JSON {\"experiment\":\"ingest_throughput\",\"objects\":%zu,"
      "\"threads\":%u,\"kernel_tier\":\"%s\",\"ingest_objects_per_s\":%.1f,"
      "\"spatial_qps\":%.1f,\"keyword_qps\":%.1f,\"mixed_qps\":%.1f,"
      "\"exact_eval_qps\":%.1f,\"batch_spatial_qps\":%.1f,"
      "\"batch_keyword_qps\":%.1f,\"batch_mixed_qps\":%.1f,"
      "\"batch_exact_eval_qps\":%.1f}\n",
      objects.size(), threads, simd::KernelTierName(simd::ActiveTier()),
      ingest_rate, mixes[0].qps, mixes[1].qps, mixes[2].qps, exact_eval_qps,
      mixes[0].batch_qps, mixes[1].batch_qps, mixes[2].batch_qps,
      batch_exact_eval_qps);
  return 0;
}
