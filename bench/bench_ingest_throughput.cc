// Ingest & exact-evaluation throughput of the windowed ground-truth data
// path (the "query processor + system logs" the LATEST lifecycle leans on
// for every pre-training query and every incremental tree label).
//
// Two measurements over a Twitter-like stream:
//   1. ingest: objects/s streamed into the ExactEvaluator with the same
//      rotation-driven eviction cadence LatestModule uses, and
//   2. exact-eval: queries/s answered exactly at end-of-stream, per
//      workload mix (pure spatial, single keyword, mixed) and overall.
//
// Honours LATEST_BENCH_SCALE and --threads / LATEST_BENCH_THREADS (spatial
// scans shard grid-row bands across the estimation pool). Emits one
// RESULT_JSON line so the speedup lands in the bench trajectory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exact/exact_evaluator.h"
#include "stream/sliding_window.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace {

using namespace latest;

struct QueryMix {
  const char* label;
  workload::WorkloadId id;
  double qps = 0.0;
};

/// Repeats the batch until `min_iters` queries ran, returns queries/s.
double MeasureQps(exact::ExactEvaluator* evaluator,
                  const std::vector<stream::Query>& batch,
                  uint64_t min_iters) {
  uint64_t sink = 0;
  uint64_t done = 0;
  const util::Stopwatch watch;
  while (done < min_iters) {
    for (const stream::Query& q : batch) {
      sink += evaluator->TrueSelectivity(q);
    }
    done += batch.size();
  }
  const double seconds = watch.ElapsedMillis() / 1000.0;
  // Keep the accumulated selectivity observable so the loop can't be
  // optimized away.
  std::printf("  (checksum %llu)\n", static_cast<unsigned long long>(sink));
  return seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};
  const auto spec = workload::TwitterLikeSpec(scale);

  bench::PrintHeader("Ingest & exact-eval throughput",
                     "columnar window store data path (objects/s, qps)");
  std::printf("threads: %u (pass --threads N or set LATEST_BENCH_THREADS)\n\n",
              threads);

  util::ThreadPool pool(threads);
  exact::ExactEvaluator evaluator(spec.bounds, window.window_length_ms);
  if (threads > 0) evaluator.set_thread_pool(&pool);

  // --- Ingest: the module's cadence (rotation-driven eviction). ---
  workload::DatasetGenerator gen(spec);
  std::vector<stream::GeoTextObject> objects;
  while (gen.HasNext()) objects.push_back(gen.Next());

  stream::SliceClock clock(window);
  const util::Stopwatch ingest_watch;
  for (const auto& obj : objects) {
    if (clock.Advance(obj.timestamp) > 0) {
      evaluator.EvictExpired(clock.now());
    }
    evaluator.Insert(obj);
  }
  const double ingest_s = ingest_watch.ElapsedMillis() / 1000.0;
  const double ingest_rate =
      ingest_s > 0.0 ? static_cast<double>(objects.size()) / ingest_s : 0.0;
  const stream::Timestamp now = clock.now();
  std::printf("ingested %zu objects in %.3f s -> %.0f objects/s\n\n",
              objects.size(), ingest_s, ingest_rate);

  // --- Exact evaluation at end-of-stream. ---
  QueryMix mixes[] = {
      {"spatial", workload::WorkloadId::kTwQW2},
      {"keyword", workload::WorkloadId::kTwQW4},
      {"mixed", workload::WorkloadId::kTwQW1},
  };
  const auto min_iters = static_cast<uint64_t>(2000 * scale) + 500;
  double total_qps = 0.0;
  for (QueryMix& mix : mixes) {
    const auto wspec = workload::MakeWorkloadSpec(mix.id, 256);
    workload::QueryGenerator qgen(wspec, spec);
    std::vector<stream::Query> batch;
    while (qgen.HasNext()) {
      stream::Query q = qgen.Next();
      q.timestamp = now;
      batch.push_back(std::move(q));
    }
    mix.qps = MeasureQps(&evaluator, batch, min_iters);
    std::printf("  %-8s %12.0f queries/s\n", mix.label, mix.qps);
    total_qps += mix.qps;
  }
  const double exact_eval_qps = total_qps / 3.0;
  std::printf("\nmean exact-eval throughput: %.0f queries/s\n",
              exact_eval_qps);

  std::printf(
      "RESULT_JSON {\"experiment\":\"ingest_throughput\",\"objects\":%zu,"
      "\"threads\":%u,\"ingest_objects_per_s\":%.1f,"
      "\"spatial_qps\":%.1f,\"keyword_qps\":%.1f,\"mixed_qps\":%.1f,"
      "\"exact_eval_qps\":%.1f}\n",
      objects.size(), threads, ingest_rate, mixes[0].qps, mixes[1].qps,
      mixes[2].qps, exact_eval_qps);
  return 0;
}
