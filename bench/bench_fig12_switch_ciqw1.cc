// Figure 12: estimator switching on the CheckIn workload CiQW1 (100%
// single-keyword queries). The paper observes one switch driven by the
// improving accuracy of a sampling estimator; the histogram is never
// competitive because it keeps purely spatial statistics.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::CheckinLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kCiQW1, num_queries);
  const auto config = bench::DefaultModuleConfig(dataset, num_queries);

  bench::PrintHeader(
      "Figure 12 - Estimator switches for query workload CiQW1",
      "CheckIn-like stream; 100% single-keyword queries");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 12: latency/accuracy timeline with LATEST switching (CiQW1)",
      result);
  return 0;
}
