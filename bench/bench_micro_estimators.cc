// Micro-benchmarks (google-benchmark) for the hot paths of every
// estimator, the Hoeffding tree, and the exact evaluator. These are not
// paper figures; they pin down per-operation costs so regressions in the
// portfolio's insert/estimate paths are visible.
//
// Honours LATEST_BENCH_SCALE (multiplies the prefill dataset size) and
// emits one RESULT_JSON line summarising ns/op per benchmark so the CI
// smoke step and the bench trajectory can parse the results.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "estimators/estimator.h"
#include "exact/exact_evaluator.h"
#include "ml/hoeffding_tree.h"
#include "stream/sliding_window.h"
#include "util/rng.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace {

using namespace latest;

// Twitter-like stream kept micro-sized: the interesting cost is per
// operation, not per window. LATEST_BENCH_SCALE still shrinks/grows it.
workload::DatasetSpec MicroSpec() {
  return workload::TwitterLikeSpec(0.05 * bench::BenchScale());
}

estimators::EstimatorConfig MicroConfig(const workload::DatasetSpec& spec) {
  estimators::EstimatorConfig config;
  config.bounds = spec.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.window.num_slices = 16;
  return config;
}

// Builds a prefilled estimator over a small Twitter-like stream.
std::unique_ptr<estimators::Estimator> Prefilled(
    estimators::EstimatorKind kind, const workload::DatasetSpec& spec) {
  auto result = estimators::CreateEstimator(kind, MicroConfig(spec));
  auto estimator = std::move(result).value();
  workload::DatasetGenerator gen(spec);
  stream::SliceClock clock(MicroConfig(spec).window);
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    const uint32_t rotations = clock.Advance(obj.timestamp);
    for (uint32_t r = 0; r < rotations; ++r) estimator->OnSliceRotate();
    estimator->Insert(obj);
  }
  return estimator;
}

std::vector<stream::Query> QueryBatch(const workload::DatasetSpec& spec,
                                      workload::WorkloadId id) {
  auto wspec = workload::MakeWorkloadSpec(id, 512);
  workload::QueryGenerator gen(wspec, spec);
  std::vector<stream::Query> out;
  while (gen.HasNext()) out.push_back(gen.Next());
  return out;
}

void BM_EstimatorInsert(benchmark::State& state) {
  const auto kind = static_cast<estimators::EstimatorKind>(state.range(0));
  const auto spec = MicroSpec();
  auto estimator =
      estimators::CreateEstimator(kind, MicroConfig(spec)).value();
  workload::DatasetGenerator gen(spec);
  std::vector<stream::GeoTextObject> objects;
  while (gen.HasNext()) objects.push_back(gen.Next());
  size_t i = 0;
  for (auto _ : state) {
    // Timestamps are ignored here (no rotation): pure insert cost.
    estimator->Insert(objects[i++ % objects.size()]);
  }
  state.SetLabel(estimators::EstimatorKindName(kind));
}

void BM_EstimatorEstimateSpatial(benchmark::State& state) {
  const auto kind = static_cast<estimators::EstimatorKind>(state.range(0));
  const auto spec = MicroSpec();
  auto estimator = Prefilled(kind, spec);
  const auto batch = QueryBatch(spec, workload::WorkloadId::kTwQW2);
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += estimator->Estimate(batch[i++ % batch.size()]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(estimators::EstimatorKindName(kind));
}

void BM_EstimatorEstimateKeyword(benchmark::State& state) {
  const auto kind = static_cast<estimators::EstimatorKind>(state.range(0));
  const auto spec = MicroSpec();
  auto estimator = Prefilled(kind, spec);
  const auto batch = QueryBatch(spec, workload::WorkloadId::kTwQW4);
  size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += estimator->Estimate(batch[i++ % batch.size()]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(estimators::EstimatorKindName(kind));
}

void BM_HoeffdingTreeTrain(benchmark::State& state) {
  ml::FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 5;
  schema.num_classes = 6;
  ml::HoeffdingTree tree(schema, ml::HoeffdingTreeConfig{});
  util::Rng rng(1);
  ml::TrainingExample ex;
  ex.features.categorical.resize(1);
  ex.features.numeric.resize(5);
  for (auto _ : state) {
    ex.features.categorical[0] = static_cast<int>(rng.NextBounded(3));
    for (auto& v : ex.features.numeric) v = rng.NextDouble();
    ex.label = static_cast<uint32_t>(rng.NextBounded(6));
    tree.Train(ex);
  }
}

void BM_HoeffdingTreePredict(benchmark::State& state) {
  ml::FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 5;
  schema.num_classes = 6;
  ml::HoeffdingTree tree(schema, ml::HoeffdingTreeConfig{});
  util::Rng rng(2);
  ml::TrainingExample ex;
  ex.features.categorical.resize(1);
  ex.features.numeric.resize(5);
  for (int i = 0; i < 20000; ++i) {
    ex.features.categorical[0] = static_cast<int>(rng.NextBounded(3));
    for (auto& v : ex.features.numeric) v = rng.NextDouble();
    ex.label = static_cast<uint32_t>(ex.features.categorical[0]);
    tree.Train(ex);
  }
  uint32_t sink = 0;
  for (auto _ : state) {
    ex.features.categorical[0] = static_cast<int>(rng.NextBounded(3));
    sink += tree.Predict(ex.features);
  }
  benchmark::DoNotOptimize(sink);
}

void BM_ExactEvaluator(benchmark::State& state) {
  const auto spec = MicroSpec();
  exact::ExactEvaluator evaluator(spec.bounds, 60LL * 60 * 1000);
  workload::DatasetGenerator gen(spec);
  stream::Timestamp now = 0;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    evaluator.Insert(obj);
    now = obj.timestamp;
  }
  auto batch = QueryBatch(spec, workload::WorkloadId::kTwQW1);
  for (auto& q : batch) q.timestamp = now;
  size_t i = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += evaluator.TrueSelectivity(batch[i++ % batch.size()]);
  }
  benchmark::DoNotOptimize(sink);
}

// Console reporter that also collects per-benchmark ns/op so a single
// machine-readable RESULT_JSON summary can be printed after the run.
class ResultJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      results_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void PrintResultJson() const {
    // The leading newline keeps the line clean of the console reporter's
    // trailing colour-reset escape.
    std::printf("\nRESULT_JSON {\"experiment\":\"micro_estimators\","
                "\"benchmarks\":[");
    for (size_t i = 0; i < results_.size(); ++i) {
      std::printf("%s{\"name\":\"%s\",\"ns_per_op\":%.1f}",
                  i == 0 ? "" : ",", results_[i].first.c_str(),
                  results_[i].second);
    }
    std::printf("]}\n");
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

BENCHMARK(BM_EstimatorInsert)->DenseRange(0, 5);
BENCHMARK(BM_EstimatorEstimateSpatial)->DenseRange(0, 5);
BENCHMARK(BM_EstimatorEstimateKeyword)->DenseRange(0, 5);
BENCHMARK(BM_HoeffdingTreeTrain);
BENCHMARK(BM_HoeffdingTreePredict);
BENCHMARK(BM_ExactEvaluator);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ResultJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.PrintResultJson();
  benchmark::Shutdown();
  return 0;
}
