// Parallel scaling of the estimation pool: pre-training throughput at
// 1/2/4/8 worker threads vs the inline serial path (threads = 0).
//
// Pre-training fans every query out across the six estimators, so it is
// the module's most parallel phase; the per-query critical path is the
// slowest estimator instead of the sum of all six. The lifecycle is
// deterministic in the thread count (see LatestConfig::num_threads), so
// the run also cross-checks that every point ends in the same phase with
// the same active estimator and switch count as the serial run.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "workload/stream_driver.h"

namespace {

struct ScalingPoint {
  uint32_t threads = 0;
  uint64_t pretrain_queries = 0;
  double pretrain_seconds = 0.0;
  double total_seconds = 0.0;
  latest::estimators::EstimatorKind final_active =
      latest::estimators::EstimatorKind::kRsh;
  size_t switches = 0;

  double PretrainQps() const {
    return pretrain_seconds > 0.0
               ? static_cast<double>(pretrain_queries) / pretrain_seconds
               : 0.0;
  }
};

ScalingPoint RunPoint(const latest::workload::DatasetSpec& dataset_spec,
                      const latest::workload::WorkloadSpec& workload_spec,
                      latest::core::LatestConfig config, uint32_t threads) {
  using namespace latest;
  config.num_threads = threads;
  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "bad module config: %s\n",
                 module_result.status().ToString().c_str());
    std::exit(1);
  }
  core::LatestModule& module = **module_result;

  ScalingPoint point;
  point.threads = threads;
  workload::StreamDriver driver(&dataset, &queries,
                                /*query_start_ms=*/config.window
                                    .window_length_ms,
                                dataset_spec.duration_ms);
  util::Stopwatch total_watch;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t /*index*/) {
        util::Stopwatch watch;
        const core::QueryOutcome outcome = module.OnQuery(q);
        if (outcome.phase == core::Phase::kPretraining) {
          point.pretrain_seconds += watch.ElapsedMillis() / 1000.0;
          ++point.pretrain_queries;
        }
      });
  point.total_seconds = total_watch.ElapsedMillis() / 1000.0;
  point.final_active = module.active_kind();
  point.switches = module.switch_log().size();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latest;
  const double scale = bench::BenchScale();
  (void)argc;
  (void)argv;

  const auto dataset = workload::TwitterLikeSpec(scale);
  const uint32_t num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec =
      workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW1, num_queries);
  core::LatestConfig config = bench::DefaultModuleConfig(dataset, num_queries);
  // A long pre-training phase is the point of this benchmark.
  config.pretrain_queries = std::max<uint32_t>(800, num_queries / 2);

  bench::PrintHeader(
      "Parallel scaling - pre-training throughput vs estimation threads",
      "same stream and seed at every point; speedup is relative to the "
      "inline serial path (threads=0)");

  const uint32_t thread_counts[] = {0, 1, 2, 4, 8};
  std::vector<ScalingPoint> points;
  for (const uint32_t threads : thread_counts) {
    points.push_back(RunPoint(dataset, workload_spec, config, threads));
  }
  const double serial_qps = points[0].PretrainQps();

  std::printf("  %-8s %14s %14s %12s %10s %9s\n", "threads", "pretrain_q",
              "pretrain_qps", "speedup", "active", "switches");
  bool deterministic = true;
  for (const ScalingPoint& p : points) {
    const double speedup =
        serial_qps > 0.0 ? p.PretrainQps() / serial_qps : 0.0;
    std::printf("  %-8u %14llu %14.1f %11.2fx %10s %9zu\n", p.threads,
                static_cast<unsigned long long>(p.pretrain_queries),
                p.PretrainQps(), speedup,
                estimators::EstimatorKindName(p.final_active), p.switches);
    deterministic = deterministic && p.final_active == points[0].final_active &&
                    p.switches == points[0].switches &&
                    p.pretrain_queries == points[0].pretrain_queries;
    std::printf(
        "RESULT_JSON {\"experiment\":\"parallel_scaling\",\"threads\":%u,"
        "\"pretrain_queries\":%llu,\"pretrain_qps\":%.3f,"
        "\"speedup_vs_serial\":%.4f,\"total_seconds\":%.3f,"
        "\"final_active\":\"%s\",\"switches\":%zu}\n",
        p.threads, static_cast<unsigned long long>(p.pretrain_queries),
        p.PretrainQps(), speedup, p.total_seconds,
        estimators::EstimatorKindName(p.final_active), p.switches);
  }
  std::printf(
      "\nlifecycle deterministic across thread counts: %s\n",
      deterministic ? "yes" : "NO (bug: selections must not depend on the "
                              "thread count)");
  std::printf(
      "Expected shape: pretrain_qps grows with threads until the slowest "
      "estimator dominates the critical path (~the AASP share of the "
      "portfolio); speedup at 4 threads should exceed 2.5x on multicore "
      "hardware.\n");
  return deterministic ? 0 : 1;
}
