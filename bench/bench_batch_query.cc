// Batched vs per-query exact evaluation over the columnar window store.
//
// The SIMD kernel layer's headline win: ExactEvaluator::TrueSelectivityBatch
// amortizes cell eviction, slab resolution, and gathering over K queries
// per pass and sweeps the gathered columns with vector kernels, where the
// scalar path re-walks the store per query. This bench pins the speedup
// per workload mix (pure spatial, single keyword, mixed) plus the
// vectorized histogram ingest rate, and emits one RESULT_JSON line gated
// by scripts/bench_regress.py.
//
// Honours LATEST_BENCH_SCALE and --threads / LATEST_BENCH_THREADS (the
// batch paths shard grid row bands and inverted query bands across the
// pool; threads=0 keeps both serial so the speedup is pure kernel+batch).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "estimators/histogram2d_estimator.h"
#include "exact/exact_evaluator.h"
#include "simd/kernels.h"
#include "stream/sliding_window.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace {

using namespace latest;

/// Queries per TrueSelectivityBatch call: the slice the paper's system
/// log accumulates between ground-truth flushes.
constexpr size_t kBatchK = 64;

struct MixResult {
  const char* label;
  workload::WorkloadId id;
  double scalar_qps = 0.0;
  double batch_qps = 0.0;

  double speedup() const {
    return scalar_qps > 0.0 ? batch_qps / scalar_qps : 0.0;
  }
};

/// Minimum wall-clock per measurement pass: sub-millisecond timings are
/// all noise, so each pass repeats the workload until this much time
/// elapsed AND `min_iters` queries ran.
constexpr double kMinMeasureMillis = 100.0;

/// Passes per measurement; the best pass is reported. Scheduler and
/// frequency transients only ever slow a pass down, so the max is the
/// most reproducible summary of a short CPU-bound loop.
constexpr int kMeasurePasses = 3;

double MeasureScalarQps(exact::ExactEvaluator* evaluator,
                        const std::vector<stream::Query>& queries,
                        uint64_t min_iters) {
  uint64_t sink = 0;
  double best = 0.0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (done < min_iters || watch.ElapsedMillis() < kMinMeasureMillis) {
      for (const stream::Query& q : queries) {
        sink += evaluator->TrueSelectivity(q);
      }
      done += queries.size();
    }
    const double seconds = watch.ElapsedMillis() / 1000.0;
    if (seconds > 0.0) best = std::max(best, done / seconds);
  }
  std::printf("  (scalar checksum %llu)\n",
              static_cast<unsigned long long>(sink));
  return best;
}

double MeasureBatchQps(exact::ExactEvaluator* evaluator,
                       const std::vector<stream::Query>& queries,
                       uint64_t min_iters) {
  std::vector<uint64_t> counts(queries.size());
  uint64_t sink = 0;
  double best = 0.0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (done < min_iters || watch.ElapsedMillis() < kMinMeasureMillis) {
      for (size_t begin = 0; begin < queries.size(); begin += kBatchK) {
        const size_t k = std::min(kBatchK, queries.size() - begin);
        evaluator->TrueSelectivityBatch(queries.data() + begin, k,
                                        counts.data() + begin);
      }
      for (const uint64_t c : counts) sink += c;
      done += queries.size();
    }
    const double seconds = watch.ElapsedMillis() / 1000.0;
    if (seconds > 0.0) best = std::max(best, done / seconds);
  }
  std::printf("  (batch  checksum %llu)\n",
              static_cast<unsigned long long>(sink));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};
  const auto spec = workload::TwitterLikeSpec(scale);

  bench::PrintHeader("Batched exact evaluation",
                     "K-query SIMD batches vs per-query scans (queries/s)");
  std::printf("threads: %u, kernel tier: %s, batch K: %zu\n\n", threads,
              simd::KernelTierName(simd::ActiveTier()), kBatchK);

  util::ThreadPool pool(threads);
  exact::ExactEvaluator evaluator(spec.bounds, window.window_length_ms);
  if (threads > 0) evaluator.set_thread_pool(&pool);

  workload::DatasetGenerator gen(spec);
  std::vector<stream::GeoTextObject> objects;
  while (gen.HasNext()) objects.push_back(gen.Next());
  stream::SliceClock clock(window);
  for (const auto& obj : objects) {
    if (clock.Advance(obj.timestamp) > 0) evaluator.EvictExpired(clock.now());
    evaluator.Insert(obj);
  }
  const stream::Timestamp now = clock.now();
  std::printf("window holds %llu objects at end of stream\n\n",
              static_cast<unsigned long long>(
                  evaluator.store().resident_rows()));

  MixResult mixes[] = {
      {"spatial", workload::WorkloadId::kTwQW2},
      {"keyword", workload::WorkloadId::kTwQW4},
      {"mixed", workload::WorkloadId::kTwQW1},
  };
  const auto min_iters = static_cast<uint64_t>(2000 * scale) + 500;
  for (MixResult& mix : mixes) {
    const auto wspec = workload::MakeWorkloadSpec(mix.id, 256);
    workload::QueryGenerator qgen(wspec, spec);
    std::vector<stream::Query> queries;
    while (qgen.HasNext()) {
      stream::Query q = qgen.Next();
      q.timestamp = now;  // Uniform window end: cutoffs are batch-safe.
      queries.push_back(std::move(q));
    }
    std::printf("%s:\n", mix.label);
    mix.scalar_qps = MeasureScalarQps(&evaluator, queries, min_iters);
    mix.batch_qps = MeasureBatchQps(&evaluator, queries, min_iters);
    std::printf("  scalar %12.0f q/s   batch %12.0f q/s   speedup %.2fx\n\n",
                mix.scalar_qps, mix.batch_qps, mix.speedup());
  }

  // --- Vectorized histogram ingest (HistogramCellIds batch inserts). ---
  auto make_config = [&] {
    estimators::EstimatorConfig config;
    config.bounds = spec.bounds;
    config.window = window;
    return config;
  };
  const auto config = make_config();
  double hist_scalar_rate = 0.0;
  double hist_batch_rate = 0.0;
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    estimators::Histogram2dEstimator est(config);
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (watch.ElapsedMillis() < kMinMeasureMillis) {
      for (const auto& obj : objects) est.Insert(obj);
      done += objects.size();
    }
    const double s = watch.ElapsedMillis() / 1000.0;
    if (s > 0.0) hist_scalar_rate = std::max(hist_scalar_rate, done / s);
  }
  for (int pass = 0; pass < kMeasurePasses; ++pass) {
    estimators::Histogram2dEstimator est(config);
    uint64_t done = 0;
    const util::Stopwatch watch;
    while (watch.ElapsedMillis() < kMinMeasureMillis) {
      est.InsertBatch(objects.data(), objects.size());
      done += objects.size();
    }
    const double s = watch.ElapsedMillis() / 1000.0;
    if (s > 0.0) hist_batch_rate = std::max(hist_batch_rate, done / s);
  }
  std::printf("histogram insert: scalar %.0f obj/s, batch %.0f obj/s "
              "(%.2fx)\n\n",
              hist_scalar_rate, hist_batch_rate,
              hist_scalar_rate > 0.0 ? hist_batch_rate / hist_scalar_rate
                                     : 0.0);

  std::printf(
      "RESULT_JSON {\"experiment\":\"batch_query\",\"objects\":%zu,"
      "\"threads\":%u,\"kernel_tier\":\"%s\",\"batch_k\":%zu,"
      "\"spatial_scalar_qps\":%.1f,\"batch_spatial_qps\":%.1f,"
      "\"batch_spatial_speedup\":%.3f,"
      "\"keyword_scalar_qps\":%.1f,\"batch_keyword_qps\":%.1f,"
      "\"batch_keyword_speedup\":%.3f,"
      "\"mixed_scalar_qps\":%.1f,\"batch_mixed_qps\":%.1f,"
      "\"batch_mixed_speedup\":%.3f,"
      "\"hist_insert_scalar_ops\":%.1f,\"hist_insert_batch_ops\":%.1f}\n",
      objects.size(), threads, simd::KernelTierName(simd::ActiveTier()),
      kBatchK, mixes[0].scalar_qps, mixes[0].batch_qps, mixes[0].speedup(),
      mixes[1].scalar_qps, mixes[1].batch_qps, mixes[1].speedup(),
      mixes[2].scalar_qps, mixes[2].batch_qps, mixes[2].speedup(),
      hist_scalar_rate, hist_batch_rate);
  return 0;
}
