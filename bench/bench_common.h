// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (Section VI) as aligned text tables: timeline experiments
// (estimator switching, Figs. 3-8 and 12), portfolio sweeps (Figs. 9-11
// and 13), and the index-overhead comparison (Table I).
//
// Scaling: every harness honours LATEST_BENCH_SCALE (a double; default 1)
// multiplying dataset sizes and query volumes, so the same binaries run
// from smoke-test size to paper-like volume.

#ifndef LATEST_BENCH_BENCH_COMMON_H_
#define LATEST_BENCH_BENCH_COMMON_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"

namespace latest::bench {

/// LATEST_BENCH_SCALE environment knob (default 1.0, clamped to
/// [0.05, 100]).
double BenchScale();

/// Worker threads for harnesses that support parallel execution: the
/// value of a `--threads N` argument when present, else the
/// LATEST_BENCH_THREADS environment knob, else 0 (serial). Clamped to
/// [0, 128].
uint32_t BenchThreads(int argc, char** argv);

/// Default module configuration for a dataset: one-hour window, shadow
/// (evaluation) mode, pre-training sized to the query volume.
core::LatestConfig DefaultModuleConfig(const workload::DatasetSpec& dataset,
                                       uint32_t num_queries);

/// Per-estimator aggregates within one timeline bin.
struct BinStats {
  std::array<double, estimators::kNumEstimatorKinds> latency_sum_ms = {};
  std::array<double, estimators::kNumEstimatorKinds> accuracy_sum = {};
  uint64_t count = 0;
  estimators::EstimatorKind active = estimators::EstimatorKind::kRsh;

  double MeanLatency(uint32_t kind) const {
    return count ? latency_sum_ms[kind] / static_cast<double>(count) : 0.0;
  }
  double MeanAccuracy(uint32_t kind) const {
    return count ? accuracy_sum[kind] / static_cast<double>(count) : 0.0;
  }
};

/// A switch event mapped onto the t0..t100 timeline.
struct TimelineSwitch {
  uint32_t t = 0;  // Percent of the incremental phase.
  estimators::EstimatorKind from;
  estimators::EstimatorKind to;
};

/// Result of a timeline experiment over the incremental learning phase.
struct TimelineResult {
  std::vector<BinStats> bins;  // One per timeline step.
  std::vector<TimelineSwitch> switches;
  double mean_active_accuracy = 0.0;
  double mean_active_latency_ms = 0.0;
  /// Active-estimator estimate-latency percentiles over the incremental
  /// phase (telemetry histogram, linear interpolation within buckets).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Fraction of incremental queries whose active-estimator accuracy met
  /// the switching threshold tau — the paper's quality target, and the
  /// accuracy metric bench_regress.py gates on (it is deterministic for
  /// a fixed workload seed, unlike latency).
  double tau_hit_rate = 0.0;
  uint64_t incremental_queries = 0;
  estimators::EstimatorKind final_active = estimators::EstimatorKind::kRsh;
};

/// Runs the full three-phase stream in shadow (evaluation) mode and
/// aggregates the incremental phase into `num_bins` timeline bins.
TimelineResult RunTimeline(const workload::DatasetSpec& dataset_spec,
                           const workload::WorkloadSpec& workload_spec,
                           const core::LatestConfig& config,
                           uint32_t num_bins = 20);

/// Prints the two panels of a switching figure: (a) latency and (b)
/// accuracy per timeline bin per estimator, the active estimator starred
/// (the paper's dotted line), plus the switch list.
void PrintTimelineFigure(const std::string& title,
                         const TimelineResult& result);

/// One sweep point of a portfolio sweep: per-estimator mean latency and
/// accuracy over a query batch, plus LATEST's alpha-blended choice.
struct SweepPoint {
  std::string label;
  std::array<double, estimators::kNumEstimatorKinds> latency_ms = {};
  std::array<double, estimators::kNumEstimatorKinds> accuracy = {};
  /// Per-estimator latency percentiles over the evaluation batch.
  std::array<double, estimators::kNumEstimatorKinds> p95_latency_ms = {};
  std::array<double, estimators::kNumEstimatorKinds> p99_latency_ms = {};
  std::array<bool, estimators::kNumEstimatorKinds> included = {};
  estimators::EstimatorKind choice = estimators::EstimatorKind::kRsh;
};

/// Prints the two panels of a sweep figure (latency and accuracy vs the
/// swept parameter), LATEST's choice starred.
void PrintSweepFigure(const std::string& title, const std::string& x_label,
                      const std::vector<SweepPoint>& points);

/// Simple header line for a bench binary.
void PrintHeader(const std::string& experiment, const std::string& detail);

}  // namespace latest::bench

#endif  // LATEST_BENCH_BENCH_COMMON_H_
