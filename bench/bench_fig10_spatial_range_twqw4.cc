// Figure 10: impact of the spatial range size on query workload TwQW4
// (single-keyword queries augmented with a spatial range of the swept
// size, i.e. hybrid queries). LATEST's choice tracks the best accuracy
// for each range size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/portfolio_harness.h"

int main(int argc, char** argv) {
  using namespace latest;
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const auto dataset = workload::TwitterLikeSpec(scale);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};

  bench::PrintHeader(
      "Figure 10 - Varying spatial ranges on query workload TwQW4",
      "single-keyword queries with a swept spatial range (hybrid)");

  const auto feedback_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW4,
      std::max<uint32_t>(400, static_cast<uint32_t>(800 * scale)));
  workload::QueryGenerator feedback_gen(feedback_spec, dataset);
  std::vector<stream::Query> feedback;
  while (feedback_gen.HasNext()) feedback.push_back(feedback_gen.Next());

  bench::PortfolioHarness harness(dataset, window,
                                  {estimators::EstimatorConfig{}}, threads);
  harness.Feed(feedback);

  const double side_fractions[] = {0.0025, 0.005, 0.01, 0.02, 0.04};
  std::vector<bench::SweepPoint> points;
  for (const double side : side_fractions) {
    // Hybrid batch: single keyword + range of the swept size.
    workload::WorkloadSpec spec;
    spec.name = "TwQW4-range";
    spec.segments = {{{0.0, 0.0, 1.0}, 1.0}};
    spec.min_side_fraction = side;
    spec.max_side_fraction = side;
    spec.min_query_keywords = 1;
    spec.max_query_keywords = 1;
    spec.num_queries = 300;
    spec.seed = 4321;
    workload::QueryGenerator gen(spec, dataset);
    std::vector<stream::Query> batch;
    while (gen.HasNext()) batch.push_back(gen.Next());
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", 100.0 * side);
    points.push_back(harness.Evaluate(0, label, batch, /*alpha=*/0.5));
  }

  bench::PrintSweepFigure("Fig. 10: spatial-range impact (TwQW4 context)",
                          "range side", points);
  std::printf(
      "Expected shape (paper): LATEST selects the estimator with the "
      "highest accuracy at every range size; per-estimator curves are "
      "nearly flat.\n");
  return 0;
}
