// Figure 13: impact of the estimation memory budget on latency and
// accuracy (Twitter-like stream, mixed queries). The paper finds an
// accuracy uptrend for every estimator as the budget grows, a linear
// latency increase for AASP and SPN, sub-linear for the rest, and RSH
// the accuracy winner (hence LATEST's choice) at every budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/portfolio_harness.h"

int main(int argc, char** argv) {
  using namespace latest;
  const double scale = bench::BenchScale();
  const uint32_t threads = bench::BenchThreads(argc, argv);
  const auto dataset = workload::TwitterLikeSpec(scale);
  const stream::WindowConfig window{60LL * 60 * 1000, 16};

  bench::PrintHeader(
      "Figure 13 - Varying memory budget (Twitter-like stream)",
      "per-estimator latency/accuracy at 0.25x..4x of the default budget");

  // One estimator group per budget multiplier, all fed in a single
  // stream pass.
  const double budgets[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<estimators::EstimatorConfig> configs;
  for (const double m : budgets) {
    estimators::EstimatorConfig config;
    config.histogram_cells =
        std::max(64u, static_cast<uint32_t>(config.histogram_cells * m));
    config.reservoir_capacity =
        std::max(64u, static_cast<uint32_t>(config.reservoir_capacity * m));
    config.rsh_grid_cells =
        std::max(64u, static_cast<uint32_t>(config.rsh_grid_cells * m));
    config.aasp_max_nodes =
        std::max(40u, static_cast<uint32_t>(config.aasp_max_nodes * m));
    config.aasp_kmv_size =
        std::max(16u, static_cast<uint32_t>(config.aasp_kmv_size * m));
    config.spn_clusters =
        std::max(2u, static_cast<uint32_t>(config.spn_clusters * m));
    config.spn_bins_per_dim =
        std::max(4u, static_cast<uint32_t>(config.spn_bins_per_dim * m));
    config.spn_keyword_buckets = std::max(
        16u, static_cast<uint32_t>(config.spn_keyword_buckets * m));
    config.ffn_hidden_units =
        std::max(4u, static_cast<uint32_t>(config.ffn_hidden_units * m));
    configs.push_back(config);
  }

  const auto feedback_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1,
      std::max<uint32_t>(400, static_cast<uint32_t>(800 * scale)));
  workload::QueryGenerator feedback_gen(feedback_spec, dataset);
  std::vector<stream::Query> feedback;
  while (feedback_gen.HasNext()) feedback.push_back(feedback_gen.Next());

  bench::PortfolioHarness harness(dataset, window, configs, threads);
  harness.Feed(feedback);

  // Mixed evaluation batch (TwQW1-style, no phase rotation needed).
  auto eval_spec = workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW1,
                                              /*num_queries=*/400);
  eval_spec.segments = {{{0.34, 0.33, 0.33}, 1.0}};
  eval_spec.seed = 777;
  workload::QueryGenerator eval_gen(eval_spec, dataset);
  std::vector<stream::Query> batch;
  while (eval_gen.HasNext()) batch.push_back(eval_gen.Next());

  std::vector<bench::SweepPoint> points;
  for (size_t g = 0; g < configs.size(); ++g) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.2fx", budgets[g]);
    points.push_back(harness.Evaluate(g, label, batch, /*alpha=*/0.5));
  }
  bench::PrintSweepFigure("Fig. 13: memory-budget impact", "budget",
                          points);

  std::printf("per-estimator memory footprint (KiB) by budget:\n");
  std::printf("  %-8s", "budget");
  for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
    std::printf(" %10s",
                estimators::EstimatorKindName(
                    static_cast<estimators::EstimatorKind>(k)));
  }
  std::printf("\n");
  for (size_t g = 0; g < configs.size(); ++g) {
    std::printf("  %-8.2f", budgets[g]);
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      std::printf(" %10zu",
                  harness.MemoryBytes(
                      g, static_cast<estimators::EstimatorKind>(k)) /
                      1024);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): accuracy uptrend with budget for all; "
      "AASP/SPN latency grows ~linearly with budget, others "
      "sub-linearly; RSH best accuracy at every budget.\n");
  return 0;
}
