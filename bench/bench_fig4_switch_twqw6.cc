// Figure 4: estimator switching on query workload TwQW6 (same one-third
// composition as TwQW1 but with phases in a different order). The paper
// observes two switches: RSH -> H4096 when the spatial-dominated phase
// starts, and back to RSH when keyword predicates resume.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(4000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW6, num_queries);
  const auto config = bench::DefaultModuleConfig(dataset, num_queries);

  bench::PrintHeader(
      "Figure 4 - Estimator switches for query workload TwQW6",
      "Twitter-like stream; mixed workload, phases in a different order");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 4: latency/accuracy timeline with LATEST switching (TwQW6)",
      result);
  return 0;
}
