#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/metrics_registry.h"
#include "workload/stream_driver.h"

namespace latest::bench {

double BenchScale() {
  const char* env = std::getenv("LATEST_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return std::clamp(scale, 0.05, 100.0);
}

uint32_t BenchThreads(int argc, char** argv) {
  long threads = 0;
  if (const char* env = std::getenv("LATEST_BENCH_THREADS")) {
    threads = std::atol(env);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads") {
      threads = std::atol(argv[i + 1]);
      break;
    }
  }
  return static_cast<uint32_t>(std::clamp<long>(threads, 0, 128));
}

core::LatestConfig DefaultModuleConfig(const workload::DatasetSpec& dataset,
                                       uint32_t num_queries) {
  core::LatestConfig config;
  config.bounds = dataset.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.window.num_slices = 16;
  config.pretrain_queries =
      std::max<uint32_t>(200, static_cast<uint32_t>(num_queries / 10));
  // Monitoring and hysteresis windows scale with the query volume so a
  // LATEST_BENCH_SCALE=4 run behaves like the default run stretched in
  // time rather than a jitterier one.
  config.monitor_window = std::max<uint32_t>(128, num_queries / 32);
  config.min_queries_between_switches =
      std::max<uint32_t>(256, num_queries / 16);
  config.maintain_shadow_estimators = true;
  config.seed = 42;
  return config;
}

TimelineResult RunTimeline(const workload::DatasetSpec& dataset_spec,
                           const workload::WorkloadSpec& workload_spec,
                           const core::LatestConfig& config,
                           uint32_t num_bins) {
  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) {
    std::fprintf(stderr, "bad module config: %s\n",
                 module_result.status().ToString().c_str());
    std::exit(1);
  }
  core::LatestModule& module = **module_result;

  TimelineResult result;
  result.bins.resize(num_bins);
  const uint32_t incremental_total =
      workload_spec.num_queries > config.pretrain_queries
          ? workload_spec.num_queries - config.pretrain_queries
          : 1;

  workload::StreamDriver driver(&dataset, &queries,
                                /*query_start_ms=*/config.window
                                    .window_length_ms,
                                dataset_spec.duration_ms);
  driver.AttachTelemetry(&module.telemetry().registry());
  obs::Histogram active_latency(obs::Histogram::LatencyBucketsMs());
  uint64_t incremental_index = 0;
  uint64_t tau_hits = 0;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t /*index*/) {
        const core::QueryOutcome outcome = module.OnQuery(q);
        if (outcome.phase != core::Phase::kIncremental) return;
        const uint32_t bin = std::min<uint32_t>(
            num_bins - 1,
            static_cast<uint32_t>(incremental_index * num_bins /
                                  incremental_total));
        BinStats& stats = result.bins[bin];
        for (const auto& m : outcome.measurements) {
          const auto k = static_cast<uint32_t>(m.kind);
          stats.latency_sum_ms[k] += m.latency_ms;
          stats.accuracy_sum[k] += m.accuracy;
        }
        ++stats.count;
        stats.active = outcome.active;
        result.mean_active_accuracy += outcome.accuracy;
        result.mean_active_latency_ms += outcome.latency_ms;
        if (outcome.accuracy >= config.tau) ++tau_hits;
        active_latency.Observe(outcome.latency_ms);
        ++incremental_index;
      });

  result.incremental_queries = incremental_index;
  if (incremental_index > 0) {
    result.mean_active_accuracy /= static_cast<double>(incremental_index);
    result.mean_active_latency_ms /= static_cast<double>(incremental_index);
    result.tau_hit_rate =
        static_cast<double>(tau_hits) / static_cast<double>(incremental_index);
    result.p50_latency_ms = active_latency.Percentile(50.0);
    result.p95_latency_ms = active_latency.Percentile(95.0);
    result.p99_latency_ms = active_latency.Percentile(99.0);
  }
  for (const auto& sw : module.switch_log()) {
    result.switches.push_back(TimelineSwitch{
        static_cast<uint32_t>(std::min<uint64_t>(
            100, sw.query_index * 100 / std::max<uint64_t>(1,
                                                           incremental_index))),
        sw.from, sw.to});
  }
  result.final_active = module.active_kind();
  return result;
}

namespace {

void PrintTimelinePanel(const char* panel_title, const TimelineResult& result,
                        bool latency) {
  std::printf("%s\n", panel_title);
  std::printf("  %-5s", "t");
  for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
    std::printf(" %10s",
                estimators::EstimatorKindName(
                    static_cast<estimators::EstimatorKind>(k)));
  }
  std::printf("\n");
  const uint32_t num_bins = static_cast<uint32_t>(result.bins.size());
  for (uint32_t b = 0; b < num_bins; ++b) {
    const BinStats& stats = result.bins[b];
    std::printf("  t%-4u", b * 100 / num_bins);
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      const double v = latency ? stats.MeanLatency(k) : stats.MeanAccuracy(k);
      const char mark =
          static_cast<uint32_t>(stats.active) == k ? '*' : ' ';
      if (latency) {
        std::printf("  %8.4f%c", v, mark);
      } else {
        std::printf("  %8.3f%c", v, mark);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

void PrintTimelineFigure(const std::string& title,
                         const TimelineResult& result) {
  std::printf("%s\n", title.c_str());
  std::printf("(* = estimator currently employed by LATEST, the paper's "
              "dotted line)\n\n");
  PrintTimelinePanel("(a) estimation query latency (ms)", result,
                     /*latency=*/true);
  std::printf("\n");
  PrintTimelinePanel("(b) estimation accuracy", result, /*latency=*/false);
  std::printf("\nswitches during the incremental phase:\n");
  if (result.switches.empty()) {
    std::printf("  (none — the workload never degrades the active "
                "estimator below tau)\n");
  }
  for (size_t i = 0; i < result.switches.size(); ++i) {
    const auto& sw = result.switches[i];
    std::printf("  S%zu at t%u: %s -> %s\n", i + 1, sw.t,
                estimators::EstimatorKindName(sw.from),
                estimators::EstimatorKindName(sw.to));
  }
  std::printf(
      "\nmean active-estimator accuracy %.3f (tau hit rate %.3f), latency "
      "%.4f ms over %llu incremental queries; final estimator %s\n",
      result.mean_active_accuracy, result.tau_hit_rate,
      result.mean_active_latency_ms,
      static_cast<unsigned long long>(result.incremental_queries),
      estimators::EstimatorKindName(result.final_active));
  std::printf(
      "active-estimator latency percentiles: p50 %.4f ms, p95 %.4f ms, "
      "p99 %.4f ms\n",
      result.p50_latency_ms, result.p95_latency_ms, result.p99_latency_ms);
  // One machine-readable line per figure for log scraping / regression
  // tracking.
  std::printf(
      "RESULT_JSON {\"experiment\":\"%s\",\"incremental_queries\":%llu,"
      "\"mean_accuracy\":%.6f,\"tau_hit_rate\":%.6f,\"mean_latency_ms\":%.6f,"
      "\"p50_latency_ms\":%.6f,\"p95_latency_ms\":%.6f,"
      "\"p99_latency_ms\":%.6f,\"switches\":%zu,\"final_active\":\"%s\"}\n\n",
      title.c_str(),
      static_cast<unsigned long long>(result.incremental_queries),
      result.mean_active_accuracy, result.tau_hit_rate,
      result.mean_active_latency_ms,
      result.p50_latency_ms, result.p95_latency_ms, result.p99_latency_ms,
      result.switches.size(),
      estimators::EstimatorKindName(result.final_active));
}

void PrintSweepFigure(const std::string& title, const std::string& x_label,
                      const std::vector<SweepPoint>& points) {
  std::printf("%s\n", title.c_str());
  std::printf("(* = LATEST choice at this sweep point)\n\n");
  for (const bool latency : {true, false}) {
    std::printf("(%c) estimation %s\n", latency ? 'a' : 'b',
                latency ? "query latency (ms)" : "accuracy");
    std::printf("  %-14s", x_label.c_str());
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      std::printf(" %10s",
                  estimators::EstimatorKindName(
                      static_cast<estimators::EstimatorKind>(k)));
    }
    std::printf("\n");
    for (const SweepPoint& p : points) {
      std::printf("  %-14s", p.label.c_str());
      for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
        if (!p.included[k]) {
          std::printf("  %9s", "-");
          continue;
        }
        const char mark = static_cast<uint32_t>(p.choice) == k ? '*' : ' ';
        if (latency) {
          std::printf("  %8.4f%c", p.latency_ms[k], mark);
        } else {
          std::printf("  %8.3f%c", p.accuracy[k], mark);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  // Machine-readable summary: one line per sweep point with mean and tail
  // latency per included estimator.
  for (const SweepPoint& p : points) {
    std::printf("RESULT_JSON {\"experiment\":\"%s\",\"point\":\"%s\","
                "\"estimators\":{",
                title.c_str(), p.label.c_str());
    bool first = true;
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      if (!p.included[k]) continue;
      std::printf("%s\"%s\":{\"mean_latency_ms\":%.6f,"
                  "\"p95_latency_ms\":%.6f,\"p99_latency_ms\":%.6f,"
                  "\"accuracy\":%.6f}",
                  first ? "" : ",",
                  estimators::EstimatorKindName(
                      static_cast<estimators::EstimatorKind>(k)),
                  p.latency_ms[k], p.p95_latency_ms[k], p.p99_latency_ms[k],
                  p.accuracy[k]);
      first = false;
    }
    std::printf("},\"choice\":\"%s\"}\n",
                estimators::EstimatorKindName(p.choice));
  }
  std::printf("\n");
}

void PrintHeader(const std::string& experiment, const std::string& detail) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n%s\n", experiment.c_str(), detail.c_str());
  std::printf("bench scale: %.2f (set LATEST_BENCH_SCALE to change)\n",
              BenchScale());
  std::printf("==============================================================="
              "=\n\n");
}

}  // namespace latest::bench
