// Figure 7: TwQW3 with alpha = 1 — latency is the only weighted feature,
// accuracy is ignored. LATEST must sit on the fastest estimator
// regardless of its sub-optimal accuracy (in practice H4096 or the FFN).

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW3, num_queries);
  auto config = bench::DefaultModuleConfig(dataset, num_queries);
  config.alpha = 1.0;

  bench::PrintHeader(
      "Figure 7 - TwQW3 with alpha = 1 (latency-only reward)",
      "Twitter-like stream; 50% pure spatial, 50% spatial-keyword");
  const auto result = bench::RunTimeline(dataset, workload_spec, config);
  bench::PrintTimelineFigure(
      "Fig. 7: LATEST always selects the fastest estimator", result);
  return 0;
}
