// Ablation: Hoeffding-tree hyperparameters. The paper calls systematic
// tuning of the learning model (splitting criteria, leaf strategy,
// bounds) an open area (Section V-D); this harness sweeps the three VFDT
// knobs — grace period, split confidence (delta), tie threshold — on the
// TwQW1 evaluation run and reports how the recommendation quality and
// tree structure respond.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/minmax_scaler.h"
#include "workload/stream_driver.h"

namespace {

using namespace latest;

struct SweepResult {
  double agree = 0.0;   // Top-1 agreement with the realized best.
  double regret = 0.0;  // Mean blended-score regret.
  uint64_t leaves = 0;
  uint32_t depth = 0;
};

SweepResult RunWithTree(const workload::DatasetSpec& dataset_spec,
                        uint32_t num_queries,
                        const ml::HoeffdingTreeConfig& tree) {
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  auto config = bench::DefaultModuleConfig(dataset_spec, num_queries);
  config.tree = tree;

  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) std::exit(1);
  core::LatestModule& module = **module_result;

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);
  SweepResult result;
  uint64_t total = 0;
  util::MinMaxScaler latency_scaler;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        const auto recommended = module.Recommend(q);
        const auto outcome = module.OnQuery(q);
        if (outcome.phase != core::Phase::kIncremental ||
            outcome.measurements.size() !=
                estimators::kNumPaperEstimatorKinds) {
          return;
        }
        for (const auto& m : outcome.measurements) {
          latency_scaler.Observe(m.latency_ms);
        }
        double scores[estimators::kNumEstimatorKinds] = {};
        uint32_t best = static_cast<uint32_t>(outcome.measurements[0].kind);
        for (const auto& m : outcome.measurements) {
          const auto k = static_cast<uint32_t>(m.kind);
          scores[k] = core::BlendedScore(
              m.accuracy, latency_scaler.Scale(m.latency_ms), config.alpha);
          if (scores[k] > scores[best]) best = k;
        }
        const auto pick = static_cast<uint32_t>(recommended);
        result.agree += pick == best;
        result.regret += scores[best] - scores[pick];
        ++total;
      });
  if (total > 0) {
    result.agree /= static_cast<double>(total);
    result.regret /= static_cast<double>(total);
  }
  result.leaves = module.model().num_leaves();
  result.depth = module.model().depth();
  return result;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(3000 * scale));

  bench::PrintHeader(
      "Ablation - Hoeffding tree hyperparameters (TwQW1)",
      "recommendation agreement/regret and tree shape per VFDT setting");

  struct Setting {
    const char* label;
    ml::HoeffdingTreeConfig tree;
  };
  const Setting settings[] = {
      {"WEKA defaults (200/1e-7/.05)",
       {.grace_period = 200, .split_confidence = 1e-7, .tie_threshold = 0.05}},
      {"module default (100/1e-3/.15)",
       {.grace_period = 100, .split_confidence = 1e-3, .tie_threshold = 0.15}},
      {"eager (50/1e-2/.25)",
       {.grace_period = 50, .split_confidence = 1e-2, .tie_threshold = 0.25}},
      {"conservative (400/1e-7/.02)",
       {.grace_period = 400, .split_confidence = 1e-7, .tie_threshold = 0.02}},
      {"tie-driven (100/1e-7/.30)",
       {.grace_period = 100, .split_confidence = 1e-7, .tie_threshold = 0.30}},
  };

  std::printf("%-32s %10s %10s %8s %6s\n", "setting", "agree", "regret",
              "leaves", "depth");
  for (const auto& setting : settings) {
    const auto r = RunWithTree(dataset, num_queries, setting.tree);
    std::printf("%-32s %9.1f%% %10.4f %8llu %6u\n", setting.label,
                100.0 * r.agree, r.regret,
                static_cast<unsigned long long>(r.leaves), r.depth);
  }
  std::printf(
      "\nExpected shape: the WEKA-default bounds barely split at this "
      "query volume (stump-like tree); looser bounds buy structure and "
      "lower regret, while overly eager settings add depth without "
      "improving agreement.\n");
  return 0;
}
