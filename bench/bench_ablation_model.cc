// Ablation: quality of the Hoeffding-tree recommendation versus simpler
// recommenders. For every incremental query of a TwQW1 shadow run, the
// realized best estimator (by alpha-blended score over the per-query
// shadow measurements) is compared against (a) the tree's prediction,
// (b) the scoreboard's EWMA-based best, and (c) a static RSH policy.
// Reported: top-1 agreement and mean score regret.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/minmax_scaler.h"
#include "workload/stream_driver.h"

int main() {
  using namespace latest;
  const double scale = bench::BenchScale();
  const auto dataset_spec = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(4000 * scale));
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  auto config = bench::DefaultModuleConfig(dataset_spec, num_queries);

  bench::PrintHeader(
      "Ablation - recommendation model quality (TwQW1)",
      "Hoeffding tree vs scoreboard EWMA vs static RSH, against the "
      "realized per-query best");

  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) return 1;
  core::LatestModule& module = **module_result;

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);

  enum Policy { kTree = 0, kScoreboard = 1, kStaticRsh = 2, kNumPolicies };
  const char* policy_names[kNumPolicies] = {"Hoeffding tree",
                                            "scoreboard EWMA", "static RSH"};
  uint64_t agree[kNumPolicies] = {};
  double regret[kNumPolicies] = {};
  uint64_t total = 0;
  util::MinMaxScaler latency_scaler;

  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        // Ask the recommenders BEFORE the query trains the model.
        const auto tree_rec = module.Recommend(q);
        const auto board_rec =
            module.scoreboard().BestFor(q.Type(), config.alpha);
        const auto outcome = module.OnQuery(q);
        if (outcome.phase != core::Phase::kIncremental ||
            outcome.measurements.size() !=
                estimators::kNumPaperEstimatorKinds) {
          return;
        }
        // Realized per-query blended scores (indexed by kind).
        for (const auto& m : outcome.measurements) {
          latency_scaler.Observe(m.latency_ms);
        }
        double scores[estimators::kNumEstimatorKinds] = {};
        uint32_t best = static_cast<uint32_t>(outcome.measurements[0].kind);
        for (const auto& m : outcome.measurements) {
          const auto k = static_cast<uint32_t>(m.kind);
          scores[k] = core::BlendedScore(
              m.accuracy, latency_scaler.Scale(m.latency_ms), config.alpha);
          if (scores[k] > scores[best]) best = k;
        }
        const uint32_t picks[kNumPolicies] = {
            static_cast<uint32_t>(tree_rec), static_cast<uint32_t>(board_rec),
            static_cast<uint32_t>(estimators::EstimatorKind::kRsh)};
        for (int p = 0; p < kNumPolicies; ++p) {
          agree[p] += picks[p] == best;
          regret[p] += scores[best] - scores[picks[p]];
        }
        ++total;
      });

  std::printf("%-20s %12s %12s\n", "recommender", "top-1 agree",
              "mean regret");
  for (int p = 0; p < kNumPolicies; ++p) {
    std::printf("%-20s %11.1f%% %12.4f\n", policy_names[p],
                100.0 * static_cast<double>(agree[p]) /
                    static_cast<double>(std::max<uint64_t>(1, total)),
                regret[p] / static_cast<double>(std::max<uint64_t>(1, total)));
  }
  std::printf(
      "\nExpected shape: the learned recommenders (tree, scoreboard) beat "
      "the static policy on regret; the tree matches or beats the "
      "scoreboard as it conditions on query features.\n");
  return 0;
}
