// Portfolio harness for the sweep experiments (Figs. 9-11 and 13).
//
// Unlike the timeline experiments, the sweeps report per-estimator
// performance on controlled query batches at the end of the stream (the
// paper reports "the end of the incremental learning phase"). The harness
// streams one dataset pass into any number of estimator groups (e.g. one
// per memory budget) plus the exact evaluator, then measures each group
// on caller-supplied query batches and computes LATEST's alpha-blended
// choice per batch.

#ifndef LATEST_BENCH_PORTFOLIO_HARNESS_H_
#define LATEST_BENCH_PORTFOLIO_HARNESS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "estimators/estimator.h"
#include "exact/exact_evaluator.h"
#include "stream/sliding_window.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"

namespace latest::bench {

/// Streams a dataset into estimator groups and measures query batches.
class PortfolioHarness {
 public:
  /// One group per estimator configuration (bounds/window are overridden
  /// from the dataset and the shared window config). With
  /// `num_threads > 0`, Feed replays the stream into the groups
  /// concurrently (one task per group) and exact ground truth shards
  /// grid-row bands; estimator contents and ground truth stay
  /// bit-identical to the serial run because each group's insert/rotate/
  /// feedback sequence is unchanged — only which thread replays it
  /// differs. Evaluate always measures serially so per-estimator
  /// latencies are not distorted by contention.
  PortfolioHarness(const workload::DatasetSpec& dataset_spec,
                   const stream::WindowConfig& window,
                   const std::vector<estimators::EstimatorConfig>& configs,
                   uint32_t num_threads = 0);

  /// Streams the whole dataset (one pass, all groups fed). Also trains
  /// the workload-driven FFN by feeding periodic query feedback drawn
  /// from `feedback_queries` against the exact evaluator.
  void Feed(const std::vector<stream::Query>& feedback_queries);

  /// Measures one group on a query batch at end-of-stream time and
  /// returns the sweep point. `excluded` kinds are skipped (the paper
  /// excludes H4096 from pure-keyword comparisons).
  SweepPoint Evaluate(size_t group, const std::string& label,
                      const std::vector<stream::Query>& queries, double alpha,
                      const std::set<estimators::EstimatorKind>& excluded = {});

  /// End-of-stream event time (timestamp assigned to evaluation queries).
  stream::Timestamp now() const { return now_; }

  /// Exact ground truth at end-of-stream.
  uint64_t TrueSelectivity(stream::Query q);

  /// Memory footprint of one estimator instance.
  size_t MemoryBytes(size_t group, estimators::EstimatorKind kind) const;

 private:
  struct Group {
    std::vector<std::unique_ptr<estimators::Estimator>> members;
  };

  /// One stream position where FFN feedback fires during Feed.
  struct FeedbackPoint {
    size_t object_index = 0;
    stream::Query query;
    uint64_t actual = 0;
  };

  /// Replays `objects` into one group (rotations, inserts, feedback) —
  /// the per-group body of Feed, safe to run concurrently across groups.
  void ReplayGroup(Group* group,
                   const std::vector<stream::GeoTextObject>& objects,
                   const std::vector<FeedbackPoint>& feedback_points);

  workload::DatasetSpec dataset_spec_;
  stream::WindowConfig window_;
  stream::SliceClock clock_;
  stream::WindowPopulation population_;
  std::unique_ptr<util::ThreadPool> pool_;  // Before exact_, which borrows it.
  exact::ExactEvaluator exact_;
  std::vector<Group> groups_;
  stream::Timestamp now_ = 0;
};

}  // namespace latest::bench

#endif  // LATEST_BENCH_PORTFOLIO_HARNESS_H_
