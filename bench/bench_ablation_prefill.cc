// Ablation: value of the pre-filling threshold beta (Section V-D). In
// production mode (single active structure), a switch lands on a
// structure that only holds data collected since pre-filling began.
// Larger anticipation (lower prefill trigger distance) means a fuller
// structure at switch time and a smaller post-switch accuracy dip.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "workload/stream_driver.h"

namespace {

using namespace latest;

struct PrefillResult {
  double overall_accuracy = 0.0;
  double post_switch_accuracy = 0.0;
  size_t switches = 0;
  uint64_t post_switch_samples = 0;
};

PrefillResult RunWithBeta(const workload::DatasetSpec& dataset_spec,
                          uint32_t num_queries, double beta) {
  const auto workload_spec = workload::MakeWorkloadSpec(
      workload::WorkloadId::kTwQW1, num_queries);
  auto config = bench::DefaultModuleConfig(dataset_spec, num_queries);
  config.maintain_shadow_estimators = false;  // Production mode.
  config.beta = beta;

  workload::DatasetGenerator dataset(dataset_spec);
  workload::QueryGenerator queries(workload_spec, dataset_spec);
  auto module_result = core::LatestModule::Create(config);
  if (!module_result.ok()) std::exit(1);
  core::LatestModule& module = **module_result;

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);
  PrefillResult result;
  uint64_t incremental = 0;
  int64_t since_switch = -1;
  constexpr int64_t kPostWindow = 100;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        const auto outcome = module.OnQuery(q);
        if (outcome.phase != core::Phase::kIncremental) return;
        ++incremental;
        result.overall_accuracy += outcome.accuracy;
        if (outcome.switched) since_switch = 0;
        if (since_switch >= 0 && since_switch < kPostWindow) {
          result.post_switch_accuracy += outcome.accuracy;
          ++result.post_switch_samples;
          ++since_switch;
        }
      });
  if (incremental > 0) {
    result.overall_accuracy /= static_cast<double>(incremental);
  }
  if (result.post_switch_samples > 0) {
    result.post_switch_accuracy /=
        static_cast<double>(result.post_switch_samples);
  }
  result.switches = module.switch_log().size();
  return result;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const auto dataset = workload::TwitterLikeSpec(scale);
  const auto num_queries =
      std::max<uint32_t>(1500, static_cast<uint32_t>(4000 * scale));

  bench::PrintHeader(
      "Ablation - pre-fill threshold beta (TwQW1, production mode)",
      "post-switch accuracy vs anticipation: prefill starts at accuracy "
      "tau/beta");

  std::printf("%-8s %12s %18s %10s\n", "beta", "overall acc",
              "post-switch acc", "switches");
  for (const double beta : {0.65, 0.8, 0.95}) {
    const auto r = RunWithBeta(dataset, num_queries, beta);
    std::printf("%-8.2f %12.3f %18.3f %10zu\n", beta, r.overall_accuracy,
                r.post_switch_accuracy, r.switches);
  }
  std::printf(
      "\nExpected shape: smaller beta anticipates earlier (longer "
      "pre-fill), so the new structure is fuller at switch time and the "
      "post-switch accuracy dip shrinks.\n");
  return 0;
}
