#include "bench/portfolio_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "obs/metrics_registry.h"
#include "util/minmax_scaler.h"
#include "util/stopwatch.h"

namespace latest::bench {

PortfolioHarness::PortfolioHarness(
    const workload::DatasetSpec& dataset_spec,
    const stream::WindowConfig& window,
    const std::vector<estimators::EstimatorConfig>& configs,
    uint32_t num_threads)
    : dataset_spec_(dataset_spec),
      window_(window),
      clock_(window),
      population_(window.num_slices),
      pool_(std::make_unique<util::ThreadPool>(num_threads)),
      exact_(dataset_spec.bounds, window.window_length_ms) {
  exact_.set_thread_pool(pool_.get());
  groups_.reserve(configs.size());
  for (size_t g = 0; g < configs.size(); ++g) {
    estimators::EstimatorConfig config = configs[g];
    config.bounds = dataset_spec.bounds;
    config.window = window;
    Group group;
    // The sweep experiments reproduce the paper's six-member portfolio.
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      config.seed = 42 * (g + 1) * estimators::kNumEstimatorKinds + k;
      auto result = estimators::CreateEstimator(
          static_cast<estimators::EstimatorKind>(k), config);
      if (!result.ok()) {
        std::fprintf(stderr, "bad estimator config: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      group.members.push_back(std::move(result).value());
    }
    groups_.push_back(std::move(group));
  }
}

void PortfolioHarness::Feed(const std::vector<stream::Query>& feedback_queries) {
  // Pass 1 (serial): materialize the stream, drive the shared clock /
  // population / exact evaluator, and resolve the ground truth of every
  // feedback point. Feedback cadence: spread the feedback queries across
  // the stream after the first window has filled.
  workload::DatasetGenerator dataset(dataset_spec_);
  std::vector<stream::GeoTextObject> objects;
  objects.reserve(dataset_spec_.num_objects);
  std::vector<FeedbackPoint> feedback_points;
  size_t next_feedback = 0;
  const uint64_t feedback_every =
      feedback_queries.empty()
          ? 0
          : std::max<uint64_t>(1, dataset_spec_.num_objects /
                                      (2 * feedback_queries.size()));
  while (dataset.HasNext()) {
    const stream::GeoTextObject obj = dataset.Next();
    const uint32_t rotations = clock_.Advance(obj.timestamp);
    for (uint32_t r = 0; r < rotations; ++r) population_.Rotate();
    if (rotations > 0) exact_.EvictExpired(clock_.now());
    exact_.Insert(obj);
    population_.Add();
    if (feedback_every > 0 && next_feedback < feedback_queries.size() &&
        obj.timestamp >= window_.window_length_ms &&
        dataset.produced() % feedback_every == 0) {
      stream::Query q = feedback_queries[next_feedback++];
      q.timestamp = obj.timestamp;
      FeedbackPoint point;
      point.object_index = objects.size();
      point.actual = exact_.TrueSelectivity(q);
      point.query = std::move(q);
      feedback_points.push_back(std::move(point));
    }
    now_ = obj.timestamp;
    objects.push_back(obj);
  }

  // Pass 2: replay the stream into every group — concurrently when the
  // pool has workers. Groups share nothing mutable (each task owns its
  // group's estimators and a private SliceClock), so any thread count
  // yields the same estimator contents as the original serial loop.
  pool_->ParallelFor(groups_.size(), [&](size_t g) {
    ReplayGroup(&groups_[g], objects, feedback_points);
  });
}

void PortfolioHarness::ReplayGroup(
    Group* group, const std::vector<stream::GeoTextObject>& objects,
    const std::vector<FeedbackPoint>& feedback_points) {
  stream::SliceClock clock(window_);
  size_t next_feedback = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    const stream::GeoTextObject& obj = objects[i];
    const uint32_t rotations = clock.Advance(obj.timestamp);
    for (uint32_t r = 0; r < rotations; ++r) {
      for (auto& est : group->members) est->OnSliceRotate();
    }
    for (auto& est : group->members) est->Insert(obj);
    // Workload-driven training feedback for the FFN members, against the
    // ground truth resolved in pass 1.
    while (next_feedback < feedback_points.size() &&
           feedback_points[next_feedback].object_index == i) {
      const FeedbackPoint& point = feedback_points[next_feedback++];
      for (auto& est : group->members) {
        est->OnFeedback(point.query, est->Estimate(point.query),
                        point.actual);
      }
    }
  }
}

uint64_t PortfolioHarness::TrueSelectivity(stream::Query q) {
  q.timestamp = now_;
  return exact_.TrueSelectivity(q);
}

SweepPoint PortfolioHarness::Evaluate(
    size_t group_index, const std::string& label,
    const std::vector<stream::Query>& queries, double alpha,
    const std::set<estimators::EstimatorKind>& excluded) {
  Group& group = groups_[group_index];
  SweepPoint point;
  point.label = label;
  uint64_t batch = 0;
  // The latency scaler sees every per-query measurement, exactly like the
  // module's scoreboard does: the normalization range is then set by the
  // portfolio's real worst case, not by compressed batch means.
  util::MinMaxScaler scaler;
  std::vector<std::unique_ptr<obs::Histogram>> latency_histograms;
  latency_histograms.reserve(estimators::kNumPaperEstimatorKinds);
  for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
    latency_histograms.push_back(
        std::make_unique<obs::Histogram>(obs::Histogram::LatencyBucketsMs()));
  }
  for (const stream::Query& q_in : queries) {
    stream::Query q = q_in;
    q.timestamp = now_;
    const uint64_t actual = exact_.TrueSelectivity(q);
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      const auto kind = static_cast<estimators::EstimatorKind>(k);
      if (excluded.count(kind) > 0) continue;
      estimators::Estimator* est = group.members[k].get();
      util::Stopwatch watch;
      const double estimate = est->Estimate(q);
      const double latency = watch.ElapsedMillis();
      scaler.Observe(latency);
      latency_histograms[k]->Observe(latency);
      point.latency_ms[k] += latency;
      point.accuracy[k] += core::EstimationAccuracy(estimate, actual);
      point.included[k] = true;
    }
    ++batch;
  }
  if (batch > 0) {
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      point.latency_ms[k] /= static_cast<double>(batch);
      point.accuracy[k] /= static_cast<double>(batch);
    }
    for (uint32_t k = 0; k < estimators::kNumPaperEstimatorKinds; ++k) {
      if (!point.included[k]) continue;
      point.p95_latency_ms[k] = latency_histograms[k]->Percentile(95.0);
      point.p99_latency_ms[k] = latency_histograms[k]->Percentile(99.0);
    }
  }
  // LATEST's alpha-blended choice across the batch.
  double best_score = -1.0;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    if (!point.included[k]) continue;
    const double score = core::BlendedScore(
        point.accuracy[k], scaler.Scale(point.latency_ms[k]), alpha);
    if (score > best_score) {
      best_score = score;
      point.choice = static_cast<estimators::EstimatorKind>(k);
    }
  }
  return point;
}

size_t PortfolioHarness::MemoryBytes(size_t group,
                                     estimators::EstimatorKind kind) const {
  return groups_[group].members[static_cast<uint32_t>(kind)]->MemoryBytes();
}

}  // namespace latest::bench
