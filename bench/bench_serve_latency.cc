// Serve-plane latency/throughput bench: an in-process ServeServer driven
// by the loadgen library over real loopback sockets at 1, 16, and 64
// connections, plus a batched-vs-unbatched admission comparison.
//
// The headline number is `serve_batch_speedup`: query throughput of the
// tick-batched server (tick coalescing into OnQueryBatch) over the same
// server with --tick-us 0 --max-batch 1 (every admission processed
// alone). Being a ratio of two rates from the same run it cancels most
// machine noise; it is the acceptance gate for the serving data plane's
// batching claim. Latency percentiles are reported for context (open-loop
// flood, so they measure queueing + service, not paced tail latency).
//
// Honours LATEST_BENCH_SCALE (scales the scenario's object volume).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "core/latest_module.h"
#include "net/loadgen.h"
#include "net/serve_server.h"
#include "workload/scenario.h"

namespace {

using namespace latest;

core::LatestConfig ServeModuleConfig(uint64_t seed) {
  auto entry = workload::MakeScenario("baseline");
  core::LatestConfig config;
  if (entry.ok()) config.bounds = entry->spec.bounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = seed;
  return config;
}

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Server-attributed admission queue wait (query class), read from the
  /// in-process metrics registry — the decomposed component of p99_ms
  /// that batching policy actually controls.
  double queue_wait_p99_ms = 0.0;
};

/// One fresh module + server + loadgen flood at `connections`. A fresh
/// module per run keeps the lifecycle (pretrain -> incremental) identical
/// across configurations, so the rates are comparable.
RunResult RunOne(uint32_t connections, uint32_t tick_us, uint32_t max_batch,
                 uint64_t objects) {
  auto created = core::LatestModule::Create(ServeModuleConfig(5));
  if (!created.ok()) {
    std::fprintf(stderr, "module: %s\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  auto module = std::move(created).value();

  net::ServeServerConfig serve_config;
  serve_config.batcher.tick_us = tick_us;
  serve_config.batcher.max_batch = max_batch;
  serve_config.max_connections = 256;
  net::ServeServer server(serve_config, module.get());
  if (const auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
    std::exit(1);
  }

  net::LoadgenConfig load;
  load.port = server.port();
  load.connections = connections;
  load.scenario = "baseline";
  load.objects = objects;
  load.duration_ms = 8000;
  load.speedup = 0.0;  // Flood: measure service rate, not pacing.
  load.max_outstanding = 128;
  load.trace = false;  // The gated numbers pin the untraced fast path.
  auto report = net::RunLoadgen(load);
  server.Stop();
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  if (report->protocol_errors != 0 || report->errors != 0) {
    std::fprintf(stderr, "loadgen saw %llu protocol errors, %llu errors\n",
                 static_cast<unsigned long long>(report->protocol_errors),
                 static_cast<unsigned long long>(report->errors));
    std::exit(1);
  }
  double queue_wait_p99_ms = 0.0;
  if (const obs::Histogram* wait =
          module->telemetry().registry().FindHistogram(
              "latest_serve_queue_wait_ms", {{"class", "query"}})) {
    queue_wait_p99_ms = wait->Quantile(0.99);
  }
  return {report->qps, report->p50_ms, report->p95_ms, report->p99_ms,
          queue_wait_p99_ms};
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const auto objects =
      static_cast<uint64_t>(20000 * scale) + 2000;

  bench::PrintHeader("Serve-plane latency",
                     "loopback RPC qps + latency by connection count");
  std::printf("objects per run: %llu\n\n",
              static_cast<unsigned long long>(objects));

  const uint32_t kTickUs = 2000;
  const uint32_t kMaxBatch = 64;

  RunResult by_conns[3];
  const uint32_t conn_counts[3] = {1, 16, 64};
  for (int i = 0; i < 3; ++i) {
    by_conns[i] = RunOne(conn_counts[i], kTickUs, kMaxBatch, objects);
    std::printf(
        "%2u conns: %10.0f qps   p50 %7.3f ms   p95 %7.3f ms   "
        "p99 %7.3f ms   queue-wait p99 %7.3f ms\n",
        conn_counts[i], by_conns[i].qps, by_conns[i].p50_ms,
        by_conns[i].p95_ms, by_conns[i].p99_ms,
        by_conns[i].queue_wait_p99_ms);
  }

  // Batched vs unbatched admission at 16 connections: best of two
  // passes each (transients only slow a pass down).
  double batched_qps = 0.0;
  double unbatched_qps = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    batched_qps = std::max(
        batched_qps, RunOne(16, kTickUs, kMaxBatch, objects).qps);
    unbatched_qps = std::max(
        unbatched_qps,
        RunOne(16, /*tick_us=*/0, /*max_batch=*/1, objects).qps);
  }
  const double speedup =
      unbatched_qps > 0.0 ? batched_qps / unbatched_qps : 0.0;
  std::printf(
      "\nbatched (tick %u us, K=%u): %10.0f qps\n"
      "unbatched (tick 0, K=1):    %10.0f qps\n"
      "batch speedup: %.2fx\n",
      kTickUs, kMaxBatch, batched_qps, unbatched_qps, speedup);

  std::printf(
      "RESULT_JSON {\"experiment\":\"serve_latency\",\"objects\":%llu,"
      "\"conns1_qps\":%.1f,\"conns1_p50_ms\":%.3f,\"conns1_p99_ms\":%.3f,"
      "\"conns16_qps\":%.1f,\"conns16_p50_ms\":%.3f,"
      "\"conns16_p99_ms\":%.3f,"
      "\"conns64_qps\":%.1f,\"conns64_p50_ms\":%.3f,"
      "\"conns64_p99_ms\":%.3f,"
      "\"serve_batched_qps\":%.1f,\"serve_unbatched_qps\":%.1f,"
      "\"serve_batch_speedup\":%.3f,\"queue_wait_p99_ms\":%.3f}\n",
      static_cast<unsigned long long>(objects), by_conns[0].qps,
      by_conns[0].p50_ms, by_conns[0].p99_ms, by_conns[1].qps,
      by_conns[1].p50_ms, by_conns[1].p99_ms, by_conns[2].qps,
      by_conns[2].p50_ms, by_conns[2].p99_ms, batched_qps, unbatched_qps,
      speedup, by_conns[1].queue_wait_p99_ms);
  return 0;
}
