// Tests for src/exact: grid index, quadtree index, inverted index, and the
// exact evaluator, cross-validated against a brute-force scan.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "exact/exact_evaluator.h"
#include "exact/grid_index.h"
#include "exact/inverted_index.h"
#include "exact/quadtree_index.h"
#include "tests/test_stream.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace latest::exact {
namespace {

using stream::GeoTextObject;
using stream::KeywordId;
using stream::Query;
using stream::Timestamp;

using testing_support::BruteForceCount;
using testing_support::kTestBounds;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::MakeUniformObjects;

constexpr geo::Rect kBounds = kTestBounds;

// --------------------------------------------------------------------
// GridIndex

TEST(GridIndexTest, EmptyIndexCountsZero) {
  GridIndex index(kBounds, 8, 8);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({0, 0, 50, 50}), 0), 0u);
}

TEST(GridIndexTest, CountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 1);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);

  util::Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 40), rng.NextDouble(1, 40)));
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(GridIndexTest, HybridPredicateExact) {
  const auto objects = MakeUniformObjects(1000, 3);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeHybridQuery({20, 20, 70, 70}, {1, 5});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(GridIndexTest, WindowCutoffExcludesExpired) {
  const auto objects = MakeUniformObjects(1000, 4);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeSpatialQuery({0, 0, 100, 100});
  EXPECT_EQ(index.CountMatches(q, 5000), BruteForceCount(objects, q, 5000));
}

TEST(GridIndexTest, LazyEvictionShrinksSize) {
  const auto objects = MakeUniformObjects(1000, 5);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);
  EXPECT_EQ(index.size(), 1000u);
  index.EvictBefore(5000);
  EXPECT_EQ(index.size(), BruteForceCount(objects, MakeSpatialQuery(kBounds), 5000));
}

TEST(GridIndexTest, ClearEmpties) {
  const auto objects = MakeUniformObjects(100, 6);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery(kBounds), 0), 0u);
}

TEST(GridIndexTest, FullDomainQueryCountsEverything) {
  const auto objects = MakeUniformObjects(500, 7);
  GridIndex index(kBounds, 8, 8);
  for (const auto& obj : objects) index.Insert(obj);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({-10, -10, 110, 110}), 0), 500u);
}

TEST(GridIndexTest, ShardedCountsMatchSerialBitForBit) {
  // Same stream into a serial index and one counting on a 4-thread pool:
  // counts (unsigned sums) and lazy-eviction sizes must agree exactly on
  // every query, including cutoffs that trigger concurrent eviction.
  const auto objects = MakeUniformObjects(3000, 30);
  util::ThreadPool pool(4);
  GridIndex serial(kBounds, 8, 8);
  GridIndex sharded(kBounds, 8, 8);
  sharded.set_thread_pool(&pool);
  for (const auto& obj : objects) {
    serial.Insert(obj);
    sharded.Insert(obj);
  }
  util::Rng rng(31);
  for (int iter = 0; iter < 60; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(geo::Rect::FromCenter(
        c, rng.NextDouble(1, 80), rng.NextDouble(1, 80)));
    const Timestamp cutoff = static_cast<Timestamp>(rng.NextBounded(9000));
    EXPECT_EQ(sharded.CountMatches(q, cutoff), serial.CountMatches(q, cutoff));
    EXPECT_EQ(sharded.size(), serial.size());
  }
}

// --------------------------------------------------------------------
// QuadTreeIndex

TEST(QuadTreeIndexTest, CountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 8);
  QuadTreeIndex index(kBounds, 32, 10);
  for (const auto& obj : objects) index.Insert(obj);

  util::Rng rng(9);
  for (int iter = 0; iter < 50; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 40), rng.NextDouble(1, 40)));
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(QuadTreeIndexTest, SplitsUnderLoad) {
  const auto objects = MakeUniformObjects(2000, 10);
  QuadTreeIndex index(kBounds, 32, 10);
  for (const auto& obj : objects) index.Insert(obj);
  EXPECT_GT(index.num_nodes(), 1u);
  EXPECT_EQ(index.size(), 2000u);
}

TEST(QuadTreeIndexTest, WindowCutoffMatchesBruteForce) {
  const auto objects = MakeUniformObjects(2000, 11);
  QuadTreeIndex index(kBounds, 32, 10);
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeSpatialQuery({10, 10, 60, 60});
  EXPECT_EQ(index.CountMatches(q, 7000), BruteForceCount(objects, q, 7000));
}

TEST(QuadTreeIndexTest, EvictionCollapsesEmptySubtrees) {
  const auto objects = MakeUniformObjects(2000, 12);
  QuadTreeIndex index(kBounds, 32, 10);
  for (const auto& obj : objects) index.Insert(obj);
  const uint64_t nodes_full = index.num_nodes();
  index.EvictBefore(20000);  // Everything expires.
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_nodes(), 1u);
  EXPECT_GT(nodes_full, 1u);
}

TEST(QuadTreeIndexTest, HybridPredicate) {
  const auto objects = MakeUniformObjects(1000, 13);
  QuadTreeIndex index(kBounds, 16, 10);
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeHybridQuery({0, 0, 50, 100}, {2, 3, 4});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(QuadTreeIndexTest, DegenerateAllSamePoint) {
  // All objects at one location: depth cap must prevent infinite splits.
  QuadTreeIndex index(kBounds, 4, 6);
  for (int i = 0; i < 1000; ++i) {
    GeoTextObject obj;
    obj.oid = static_cast<stream::ObjectId>(i);
    obj.loc = {50, 50};
    obj.timestamp = i;
    index.Insert(obj);
  }
  EXPECT_EQ(index.size(), 1000u);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({49, 49, 51, 51}), 0), 1000u);
}

// --------------------------------------------------------------------
// InvertedIndex

TEST(InvertedIndexTest, KeywordCountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 14);
  InvertedIndex index;
  for (const auto& obj : objects) index.Insert(obj);
  for (KeywordId kw = 0; kw < 30; kw += 3) {
    const Query q = MakeKeywordQuery({kw});
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(InvertedIndexTest, MultiKeywordDeduplicatesObjects) {
  // An object carrying both query keywords must count once.
  InvertedIndex index;
  GeoTextObject obj;
  obj.oid = 1;
  obj.loc = {1, 1};
  obj.keywords = {3, 7};
  obj.timestamp = 0;
  index.Insert(obj);
  EXPECT_EQ(index.CountMatches(MakeKeywordQuery({3, 7}), 0), 1u);
}

TEST(InvertedIndexTest, MultiKeywordMatchesBruteForce) {
  const auto objects = MakeUniformObjects(2000, 15);
  InvertedIndex index;
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeKeywordQuery({1, 4, 9, 16, 25});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(InvertedIndexTest, HybridFiltersByRange) {
  const auto objects = MakeUniformObjects(2000, 16);
  InvertedIndex index;
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeHybridQuery({25, 25, 75, 75}, {0, 1, 2});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(InvertedIndexTest, CutoffExpiresPostings) {
  const auto objects = MakeUniformObjects(2000, 17);
  InvertedIndex index;
  for (const auto& obj : objects) index.Insert(obj);
  const Query q = MakeKeywordQuery({2});
  EXPECT_EQ(index.CountMatches(q, 6000), BruteForceCount(objects, q, 6000));
  index.EvictBefore(6000);
  EXPECT_EQ(index.CountMatches(q, 6000), BruteForceCount(objects, q, 6000));
}

TEST(InvertedIndexTest, UnknownKeywordCountsZero) {
  InvertedIndex index;
  EXPECT_EQ(index.CountMatches(MakeKeywordQuery({999}), 0), 0u);
}

// --------------------------------------------------------------------
// ExactEvaluator

class ExactEvaluatorTest : public ::testing::Test {
 protected:
  static constexpr Timestamp kWindow = 4000;

  void SetUp() override {
    objects_ = MakeUniformObjects(3000, 18);
    evaluator_.emplace(kBounds, kWindow);
    for (const auto& obj : objects_) evaluator_->Insert(obj);
  }

  uint64_t Truth(const Query& q) const {
    return BruteForceCount(objects_, q, q.timestamp - kWindow);
  }

  std::vector<GeoTextObject> objects_;
  std::optional<ExactEvaluator> evaluator_;
};

TEST_F(ExactEvaluatorTest, SpatialQueriesExact) {
  util::Rng rng(20);
  for (int iter = 0; iter < 30; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 50), rng.NextDouble(1, 50)),
        /*t=*/8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, KeywordQueriesExact) {
  for (KeywordId kw = 0; kw < 30; kw += 5) {
    Query q = MakeKeywordQuery({kw, static_cast<KeywordId>(kw + 1)}, 8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, HybridQueriesExact) {
  util::Rng rng(21);
  for (int iter = 0; iter < 30; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    Query q = MakeHybridQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(5, 60), rng.NextDouble(5, 60)),
        {static_cast<KeywordId>(rng.NextBounded(30)),
         static_cast<KeywordId>(rng.NextBounded(30))},
        8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, WindowSlides) {
  // A query at t=14000 sees only objects newer than 10000: none.
  Query q = MakeSpatialQuery({0, 0, 100, 100}, 14001);
  EXPECT_EQ(evaluator_->TrueSelectivity(q), 0u);
}

TEST_F(ExactEvaluatorTest, EvictExpiredKeepsAnswersCorrect) {
  evaluator_->EvictExpired(9000);
  Query q = MakeSpatialQuery({0, 0, 100, 100}, 9000);
  EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
}

}  // namespace
}  // namespace latest::exact
