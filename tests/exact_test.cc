// Tests for src/exact: grid index, quadtree index, inverted index, and the
// exact evaluator, cross-validated against a brute-force scan.

#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "exact/exact_evaluator.h"
#include "exact/grid_index.h"
#include "exact/inverted_index.h"
#include "exact/quadtree_index.h"
#include "stream/window_store.h"
#include "tests/test_stream.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace latest::exact {
namespace {

using stream::GeoTextObject;
using stream::KeywordId;
using stream::Query;
using stream::Timestamp;
using stream::WindowStore;

using testing_support::BruteForceCount;
using testing_support::kTestBounds;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::MakeUniformObjects;

constexpr geo::Rect kBounds = kTestBounds;

/// Slice duration for test stores; the 10s default streams span 10 slices.
constexpr Timestamp kSliceMs = 1000;

/// Appends every object to the store and indexes the resulting row.
template <typename Index>
void FeedStore(WindowStore* store, Index* index,
               const std::vector<GeoTextObject>& objects) {
  for (const auto& obj : objects) index->Insert(store->Append(obj));
}

// --------------------------------------------------------------------
// GridIndex

TEST(GridIndexTest, EmptyIndexCountsZero) {
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({0, 0, 50, 50}), 0), 0u);
}

TEST(GridIndexTest, CountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 1);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);

  util::Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 40), rng.NextDouble(1, 40)));
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(GridIndexTest, HybridPredicateExact) {
  const auto objects = MakeUniformObjects(1000, 3);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);
  const Query q = MakeHybridQuery({20, 20, 70, 70}, {1, 5});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(GridIndexTest, WindowCutoffExcludesExpired) {
  const auto objects = MakeUniformObjects(1000, 4);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);
  const Query q = MakeSpatialQuery({0, 0, 100, 100});
  EXPECT_EQ(index.CountMatches(q, 5000), BruteForceCount(objects, q, 5000));
}

TEST(GridIndexTest, LazyEvictionShrinksSize) {
  const auto objects = MakeUniformObjects(1000, 5);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);
  EXPECT_EQ(index.size(), 1000u);
  index.EvictBefore(5000);
  EXPECT_EQ(index.size(), BruteForceCount(objects, MakeSpatialQuery(kBounds), 5000));
}

TEST(GridIndexTest, ClearEmpties) {
  const auto objects = MakeUniformObjects(100, 6);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);
  index.Clear();
  store.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery(kBounds), 0), 0u);
}

TEST(GridIndexTest, FullDomainQueryCountsEverything) {
  const auto objects = MakeUniformObjects(500, 7);
  WindowStore store(kSliceMs);
  GridIndex index(&store, kBounds, 8, 8);
  FeedStore(&store, &index, objects);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({-10, -10, 110, 110}), 0), 500u);
}

TEST(GridIndexTest, ShardedCountsMatchSerialBitForBit) {
  // Same stream into a serial index and one counting on a 4-thread pool:
  // counts (unsigned sums) and lazy-eviction sizes must agree exactly on
  // every query, including cutoffs that trigger concurrent eviction.
  const auto objects = MakeUniformObjects(3000, 30);
  util::ThreadPool pool(4);
  WindowStore store(kSliceMs);
  GridIndex serial(&store, kBounds, 8, 8);
  GridIndex sharded(&store, kBounds, 8, 8);
  sharded.set_thread_pool(&pool);
  for (const auto& obj : objects) {
    const WindowStore::Row row = store.Append(obj);
    serial.Insert(row);
    sharded.Insert(row);
  }
  util::Rng rng(31);
  for (int iter = 0; iter < 60; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(geo::Rect::FromCenter(
        c, rng.NextDouble(1, 80), rng.NextDouble(1, 80)));
    const Timestamp cutoff = static_cast<Timestamp>(rng.NextBounded(9000));
    EXPECT_EQ(sharded.CountMatches(q, cutoff), serial.CountMatches(q, cutoff));
    EXPECT_EQ(sharded.size(), serial.size());
  }
}

// --------------------------------------------------------------------
// QuadTreeIndex

TEST(QuadTreeIndexTest, CountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 8);
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 32, 10);
  FeedStore(&store, &index, objects);

  util::Rng rng(9);
  for (int iter = 0; iter < 50; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 40), rng.NextDouble(1, 40)));
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(QuadTreeIndexTest, SplitsUnderLoad) {
  const auto objects = MakeUniformObjects(2000, 10);
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 32, 10);
  FeedStore(&store, &index, objects);
  EXPECT_GT(index.num_nodes(), 1u);
  EXPECT_EQ(index.size(), 2000u);
}

TEST(QuadTreeIndexTest, WindowCutoffMatchesBruteForce) {
  const auto objects = MakeUniformObjects(2000, 11);
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 32, 10);
  FeedStore(&store, &index, objects);
  const Query q = MakeSpatialQuery({10, 10, 60, 60});
  EXPECT_EQ(index.CountMatches(q, 7000), BruteForceCount(objects, q, 7000));
}

TEST(QuadTreeIndexTest, EvictionCollapsesEmptySubtrees) {
  const auto objects = MakeUniformObjects(2000, 12);
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 32, 10);
  FeedStore(&store, &index, objects);
  const uint64_t nodes_full = index.num_nodes();
  index.EvictBefore(20000);  // Everything expires.
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_nodes(), 1u);
  EXPECT_GT(nodes_full, 1u);
}

TEST(QuadTreeIndexTest, HybridPredicate) {
  const auto objects = MakeUniformObjects(1000, 13);
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 16, 10);
  FeedStore(&store, &index, objects);
  const Query q = MakeHybridQuery({0, 0, 50, 100}, {2, 3, 4});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(QuadTreeIndexTest, DegenerateAllSamePoint) {
  // All objects at one location: depth cap must prevent infinite splits.
  WindowStore store(kSliceMs);
  QuadTreeIndex index(&store, kBounds, 4, 6);
  for (int i = 0; i < 1000; ++i) {
    GeoTextObject obj;
    obj.oid = static_cast<stream::ObjectId>(i);
    obj.loc = {50, 50};
    obj.timestamp = i;
    index.Insert(store.Append(obj));
  }
  EXPECT_EQ(index.size(), 1000u);
  EXPECT_EQ(index.CountMatches(MakeSpatialQuery({49, 49, 51, 51}), 0), 1000u);
}

// --------------------------------------------------------------------
// InvertedIndex

TEST(InvertedIndexTest, KeywordCountsMatchBruteForce) {
  const auto objects = MakeUniformObjects(2000, 14);
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  FeedStore(&store, &index, objects);
  for (KeywordId kw = 0; kw < 30; kw += 3) {
    const Query q = MakeKeywordQuery({kw});
    EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
  }
}

TEST(InvertedIndexTest, MultiKeywordDeduplicatesObjects) {
  // An object carrying both query keywords must count once.
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  GeoTextObject obj;
  obj.oid = 1;
  obj.loc = {1, 1};
  obj.keywords = {3, 7};
  obj.timestamp = 0;
  index.Insert(store.Append(obj));
  EXPECT_EQ(index.CountMatches(MakeKeywordQuery({3, 7}), 0), 1u);
}

TEST(InvertedIndexTest, MultiKeywordMatchesBruteForce) {
  const auto objects = MakeUniformObjects(2000, 15);
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  FeedStore(&store, &index, objects);
  const Query q = MakeKeywordQuery({1, 4, 9, 16, 25});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(InvertedIndexTest, HybridFiltersByRange) {
  const auto objects = MakeUniformObjects(2000, 16);
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  FeedStore(&store, &index, objects);
  const Query q = MakeHybridQuery({25, 25, 75, 75}, {0, 1, 2});
  EXPECT_EQ(index.CountMatches(q, 0), BruteForceCount(objects, q, 0));
}

TEST(InvertedIndexTest, CutoffExpiresPostings) {
  const auto objects = MakeUniformObjects(2000, 17);
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  FeedStore(&store, &index, objects);
  const Query q = MakeKeywordQuery({2});
  EXPECT_EQ(index.CountMatches(q, 6000), BruteForceCount(objects, q, 6000));
  index.EvictBefore(6000);
  EXPECT_EQ(index.CountMatches(q, 6000), BruteForceCount(objects, q, 6000));
}

TEST(InvertedIndexTest, UnknownKeywordCountsZero) {
  WindowStore store(kSliceMs);
  InvertedIndex index(&store);
  EXPECT_EQ(index.CountMatches(MakeKeywordQuery({999}), 0), 0u);
}

// --------------------------------------------------------------------
// Window boundary semantics: an object stamped exactly at the cutoff is
// inside the window (eviction is strictly timestamp < cutoff), and every
// backend — grid, quadtree, inverted, serial or sharded — must agree.

/// Objects straddling a boundary: ts in {cutoff - 1, cutoff, cutoff + 1},
/// all carrying keyword 5, spread over distinct locations.
std::vector<GeoTextObject> MakeBoundaryObjects(Timestamp cutoff) {
  std::vector<GeoTextObject> objects;
  const Timestamp stamps[3] = {cutoff - 1, cutoff, cutoff + 1};
  stream::ObjectId oid = 0;
  for (const Timestamp ts : stamps) {
    for (int i = 0; i < 4; ++i) {
      GeoTextObject obj;
      obj.oid = oid;
      obj.loc = {5.0 + 7.0 * static_cast<double>(oid), 50.0};
      obj.keywords = {5};
      obj.timestamp = ts;
      objects.push_back(obj);
      ++oid;
    }
  }
  return objects;
}

TEST(WindowBoundaryTest, CutoffTimestampRetainedByAllBackends) {
  constexpr Timestamp kCutoff = 5000;
  const auto objects = MakeBoundaryObjects(kCutoff);
  const uint64_t expected = 8;  // ts == cutoff and ts == cutoff + 1.

  WindowStore store(kSliceMs);
  GridIndex grid(&store, kBounds, 8, 8);
  QuadTreeIndex quadtree(&store, kBounds, 4, 8);
  InvertedIndex inverted(&store);
  for (const auto& obj : objects) {
    const WindowStore::Row row = store.Append(obj);
    grid.Insert(row);
    quadtree.Insert(row);
    inverted.Insert(row);
  }

  const Query spatial = MakeSpatialQuery(kBounds);
  const Query keyword = MakeKeywordQuery({5});
  EXPECT_EQ(grid.CountMatches(spatial, kCutoff), expected);
  EXPECT_EQ(quadtree.CountMatches(spatial, kCutoff), expected);
  EXPECT_EQ(inverted.CountMatches(keyword, kCutoff), expected);
  EXPECT_EQ(BruteForceCount(objects, spatial, kCutoff), expected);

  // Eager eviction at the same cutoff keeps the ts == cutoff objects too.
  grid.EvictBefore(kCutoff);
  quadtree.EvictBefore(kCutoff);
  inverted.EvictBefore(kCutoff);
  EXPECT_EQ(grid.size(), expected);
  EXPECT_EQ(quadtree.size(), expected);
  EXPECT_EQ(inverted.num_postings(), expected);
  EXPECT_EQ(grid.CountMatches(spatial, kCutoff), expected);
  EXPECT_EQ(quadtree.CountMatches(spatial, kCutoff), expected);
  EXPECT_EQ(inverted.CountMatches(keyword, kCutoff), expected);
}

TEST(WindowBoundaryTest, ShardedCountMatchesSerialAtBoundary) {
  // A cutoff equal to many objects' timestamp: the sharded scan's lazy
  // eviction must agree with the serial one on both count and size.
  constexpr Timestamp kCutoff = 5000;
  const auto boundary = MakeBoundaryObjects(kCutoff);
  auto objects = MakeUniformObjects(2000, 19);
  objects.insert(objects.end(), boundary.begin(), boundary.end());
  std::sort(objects.begin(), objects.end(),
            [](const GeoTextObject& a, const GeoTextObject& b) {
              return a.timestamp < b.timestamp;
            });

  util::ThreadPool pool(4);
  WindowStore store(kSliceMs);
  GridIndex serial(&store, kBounds, 8, 8);
  GridIndex sharded(&store, kBounds, 8, 8);
  sharded.set_thread_pool(&pool);
  for (const auto& obj : objects) {
    const WindowStore::Row row = store.Append(obj);
    serial.Insert(row);
    sharded.Insert(row);
  }
  const Query q = MakeSpatialQuery(kBounds);
  EXPECT_EQ(sharded.CountMatches(q, kCutoff), serial.CountMatches(q, kCutoff));
  EXPECT_EQ(sharded.size(), serial.size());
  EXPECT_EQ(serial.CountMatches(q, kCutoff),
            BruteForceCount(objects, q, kCutoff));
}

// --------------------------------------------------------------------
// ExactEvaluator

class ExactEvaluatorTest : public ::testing::Test {
 protected:
  static constexpr Timestamp kWindow = 4000;

  void SetUp() override {
    objects_ = MakeUniformObjects(3000, 18);
    evaluator_.emplace(kBounds, kWindow);
    for (const auto& obj : objects_) evaluator_->Insert(obj);
  }

  uint64_t Truth(const Query& q) const {
    return BruteForceCount(objects_, q, q.timestamp - kWindow);
  }

  std::vector<GeoTextObject> objects_;
  std::optional<ExactEvaluator> evaluator_;
};

TEST_F(ExactEvaluatorTest, SpatialQueriesExact) {
  util::Rng rng(20);
  for (int iter = 0; iter < 30; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 50), rng.NextDouble(1, 50)),
        /*t=*/8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, KeywordQueriesExact) {
  for (KeywordId kw = 0; kw < 30; kw += 5) {
    Query q = MakeKeywordQuery({kw, static_cast<KeywordId>(kw + 1)}, 8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, HybridQueriesExact) {
  util::Rng rng(21);
  for (int iter = 0; iter < 30; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    Query q = MakeHybridQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(5, 60), rng.NextDouble(5, 60)),
        {static_cast<KeywordId>(rng.NextBounded(30)),
         static_cast<KeywordId>(rng.NextBounded(30))},
        8000);
    EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
  }
}

TEST_F(ExactEvaluatorTest, WindowSlides) {
  // A query at t=14000 sees only objects newer than 10000: none.
  Query q = MakeSpatialQuery({0, 0, 100, 100}, 14001);
  EXPECT_EQ(evaluator_->TrueSelectivity(q), 0u);
}

TEST_F(ExactEvaluatorTest, EvictExpiredKeepsAnswersCorrect) {
  evaluator_->EvictExpired(9000);
  Query q = MakeSpatialQuery({0, 0, 100, 100}, 9000);
  EXPECT_EQ(evaluator_->TrueSelectivity(q), Truth(q));
}

TEST_F(ExactEvaluatorTest, StoreDropsRetiredSlices) {
  // After eviction well past the stream end, the store retires every
  // sealed slice; only the open one may remain resident.
  evaluator_->EvictExpired(30000);
  EXPECT_LE(evaluator_->store().slices_resident(), 1u);
  EXPECT_EQ(evaluator_->TrueSelectivity(MakeSpatialQuery(kBounds, 30000)), 0u);
}

}  // namespace
}  // namespace latest::exact
