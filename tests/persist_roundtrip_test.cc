// Snapshot/restore must be invisible to the lifecycle: a run that is
// frozen mid-phase with SaveState, restored into a brand-new process
// image (a fresh LatestModule), and continued must produce bit-identical
// estimates, switch decisions, and model statistics to a run that never
// stopped — at any thread count, including restoring into a different
// thread count than the one that saved (the lifecycle is thread-count
// invariant and num_threads is deliberately outside the snapshot's
// config fingerprint).

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "persist/checkpoint_manager.h"
#include "tests/test_stream.h"
#include "util/serialization.h"

namespace latest::persist {
namespace {

using core::LatestConfig;
using core::LatestModule;
using core::Phase;
using core::QueryOutcome;

// Mirrors the parallel-determinism harness: alpha = 0 keeps wall-clock
// latency out of every decision, so bitwise comparison is legitimate.
LatestConfig RoundtripConfig(uint32_t num_threads) {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = 5;
  config.num_threads = num_threads;
  return config;
}

stream::Query NextQuery(util::Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.70) {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng->NextBounded(50))});
  }
  const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
  const geo::Rect r = geo::Rect::FromCenter(c, rng->NextDouble(5, 30),
                                            rng->NextDouble(5, 30));
  if (u < 0.85) return testing_support::MakeSpatialQuery(r);
  return testing_support::MakeHybridQuery(
      r, {static_cast<stream::KeywordId>(rng->NextBounded(50))});
}

// Everything selection-relevant about one query, compared bitwise.
struct QueryRecord {
  double estimate = 0.0;
  uint64_t actual = 0;
  double accuracy = 0.0;
  double monitor_accuracy = 0.0;
  estimators::EstimatorKind active = estimators::EstimatorKind::kRsh;
  Phase phase = Phase::kWarmup;
  bool switched = false;
  std::vector<double> shadow_estimates;

  bool operator==(const QueryRecord&) const = default;
};

struct RunResult {
  std::vector<QueryRecord> queries;
  std::vector<core::SwitchEvent> switches;
  estimators::EstimatorKind final_active = estimators::EstimatorKind::kRsh;
  uint64_t model_leaves = 0;
  uint32_t model_depth = 0;
  Phase final_phase = Phase::kWarmup;
  // The deterministic state digest (SaveDeterministicState) at the end:
  // everything SaveState persists minus wall-clock latency statistics.
  std::string final_state;
};

QueryRecord RecordOf(const QueryOutcome& outcome) {
  QueryRecord record;
  record.estimate = outcome.estimate;
  record.actual = outcome.actual;
  record.accuracy = outcome.accuracy;
  record.monitor_accuracy = outcome.monitor_accuracy;
  record.active = outcome.active;
  record.phase = outcome.phase;
  record.switched = outcome.switched;
  for (const core::EstimatorMeasurement& m : outcome.measurements) {
    record.shadow_estimates.push_back(m.estimate);
  }
  return record;
}

// Runs the full lifecycle. When snapshot_at_query >= 0, the module is
// serialized right before that query index, discarded, and replaced by a
// fresh module (built for restore_threads) that loads the snapshot; the
// remainder of the stream runs on the restored module.
RunResult RunLifecycle(uint32_t num_threads, int snapshot_at_query = -1,
                       uint32_t restore_threads = 0) {
  auto created = LatestModule::Create(RoundtripConfig(num_threads));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<LatestModule> module = std::move(created).value();

  RunResult result;
  const auto objects = testing_support::MakeClusteredObjects(
      8000, /*seed=*/13, /*duration=*/4000);
  util::Rng query_rng(99);
  int queries_seen = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    module->OnObject(objects[i]);
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    if (queries_seen == snapshot_at_query) {
      util::BinaryWriter snapshot;
      module->SaveState(&snapshot);
      auto fresh = LatestModule::Create(RoundtripConfig(restore_threads));
      EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
      util::BinaryReader reader(snapshot.buffer());
      const util::Status loaded = fresh.value()->LoadState(&reader);
      EXPECT_TRUE(loaded.ok()) << loaded.ToString();
      module = std::move(fresh).value();  // The old process image is gone.
    }
    stream::Query q = NextQuery(&query_rng);
    q.timestamp = objects[i].timestamp;
    result.queries.push_back(RecordOf(module->OnQuery(q)));
    ++queries_seen;
  }

  result.switches = module->switch_log();
  result.final_active = module->active_kind();
  result.model_leaves = module->model().num_leaves();
  result.model_depth = module->model().depth();
  result.final_phase = module->phase();
  util::BinaryWriter state;
  module->SaveDeterministicState(&state);
  result.final_state = state.buffer();
  return result;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i], b.queries[i]) << "query " << i;
  }
  ASSERT_EQ(a.switches.size(), b.switches.size());
  for (size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].query_index, b.switches[i].query_index);
    EXPECT_EQ(a.switches[i].timestamp, b.switches[i].timestamp);
    EXPECT_EQ(a.switches[i].from, b.switches[i].from);
    EXPECT_EQ(a.switches[i].to, b.switches[i].to);
  }
  EXPECT_EQ(a.final_active, b.final_active);
  EXPECT_EQ(a.model_leaves, b.model_leaves);
  EXPECT_EQ(a.model_depth, b.model_depth);
  EXPECT_EQ(a.final_phase, b.final_phase);
  // The strongest check: the complete serialized lifecycle — every
  // estimator synopsis, RNG stream, tree node, and counter — is
  // byte-for-byte the same at end of stream.
  ASSERT_EQ(a.final_state.size(), b.final_state.size());
  size_t first_diff = a.final_state.size();
  for (size_t i = 0; i < a.final_state.size(); ++i) {
    if (a.final_state[i] != b.final_state[i]) {
      first_diff = i;
      break;
    }
  }
  EXPECT_EQ(first_diff, a.final_state.size())
      << "serialized lifecycle states first differ at byte " << first_diff;
}

// Query 20 of a 40-query pre-training phase: the tree is mid-label-batch.
constexpr int kMidPretraining = 20;
// Well past the first switch window: the monitor ring, scoreboard, and
// switch log all carry state.
constexpr int kMidIncremental = 200;

TEST(PersistRoundtripTest, ScenarioCoversEveryPhase) {
  const RunResult baseline = RunLifecycle(0);
  bool saw_pretraining = false;
  bool saw_incremental = false;
  for (const QueryRecord& q : baseline.queries) {
    saw_pretraining |= q.phase == Phase::kPretraining;
    saw_incremental |= q.phase == Phase::kIncremental;
  }
  EXPECT_TRUE(saw_pretraining);
  EXPECT_TRUE(saw_incremental);
  EXPECT_FALSE(baseline.switches.empty());
  EXPECT_GT(static_cast<int>(baseline.queries.size()), kMidIncremental);
}

TEST(PersistRoundtripTest, MidPretrainingRoundtripIsBitIdentical) {
  ExpectIdentical(RunLifecycle(0), RunLifecycle(0, kMidPretraining));
}

TEST(PersistRoundtripTest, MidIncrementalRoundtripIsBitIdentical) {
  ExpectIdentical(RunLifecycle(0), RunLifecycle(0, kMidIncremental));
}

TEST(PersistRoundtripTest, RoundtripIsBitIdenticalAcrossThreadCounts) {
  const RunResult baseline = RunLifecycle(0);
  for (const uint32_t threads : {0u, 1u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(baseline,
                    RunLifecycle(threads, kMidIncremental, threads));
  }
}

TEST(PersistRoundtripTest, RestoreIntoDifferentThreadCountIsBitIdentical) {
  // Saved by a serial process, restored by a 4-thread one (and the other
  // way around): the snapshot carries no thread-count dependence.
  const RunResult baseline = RunLifecycle(0);
  ExpectIdentical(baseline, RunLifecycle(0, kMidIncremental, 4));
  ExpectIdentical(baseline, RunLifecycle(4, kMidIncremental, 0));
}

TEST(PersistRoundtripTest, ConfigFingerprintMismatchIsRejected) {
  auto created = LatestModule::Create(RoundtripConfig(0));
  ASSERT_TRUE(created.ok());
  const auto objects = testing_support::MakeClusteredObjects(500, 13, 1000);
  for (const auto& obj : objects) created.value()->OnObject(obj);
  util::BinaryWriter snapshot;
  created.value()->SaveState(&snapshot);

  LatestConfig other = RoundtripConfig(0);
  other.tau = other.tau * 0.5 + 0.01;
  auto fresh = LatestModule::Create(other);
  ASSERT_TRUE(fresh.ok());
  util::BinaryReader reader(snapshot.buffer());
  const util::Status loaded = fresh.value()->LoadState(&reader);
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition)
      << loaded.ToString();
}

// ---------------------------------------------------------------------
// CheckpointManager: snapshot + WAL replay reconstructs the exact state.

std::string MakeTempDir() {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "latest_roundtrip_XXXXXX")
                         .string();
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

TEST(PersistRoundtripTest, ManagerRecoverReplaysWalToExactState) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());

  auto created = LatestModule::Create(RoundtripConfig(0));
  ASSERT_TRUE(created.ok());
  std::unique_ptr<LatestModule> module = std::move(created).value();

  DurabilityConfig durability;
  durability.dir = dir;
  // Coprime with every plausible event total so the stream never ends on a
  // checkpoint boundary and recovery must replay a non-empty WAL tail.
  durability.checkpoint_every = 701;
  auto attached = CheckpointManager::Attach(durability, module.get());
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  std::unique_ptr<CheckpointManager> manager = std::move(attached).value();

  const auto objects = testing_support::MakeClusteredObjects(
      4000, /*seed=*/13, /*duration=*/2000);
  util::Rng query_rng(99);
  for (size_t i = 0; i < objects.size(); ++i) {
    ASSERT_TRUE(manager->OnObject(objects[i]).ok());
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = NextQuery(&query_rng);
    q.timestamp = objects[i].timestamp;
    ASSERT_TRUE(manager->OnQuery(q).ok());
  }
  ASSERT_TRUE(manager->Sync().ok());
  EXPECT_GE(manager->snapshots_taken(), 2u);

  auto recovered = CheckpointManager::Recover(dir, RoundtripConfig(0));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered.value().torn_wal_tail);
  EXPECT_EQ(recovered.value().snapshots_skipped, 0u);
  // The stream deliberately does not end on a checkpoint boundary, so
  // recovery must have replayed a non-empty WAL tail.
  EXPECT_GT(recovered.value().replayed_objects +
                recovered.value().replayed_queries,
            0u);
  EXPECT_EQ(recovered.value().module->objects_ingested(),
            module->objects_ingested());
  EXPECT_EQ(recovered.value().module->queries_answered(),
            module->queries_answered());

  // Bitwise-identical lifecycle state (modulo wall-clock latency stats,
  // which replay re-measures).
  util::BinaryWriter original_state;
  module->SaveDeterministicState(&original_state);
  util::BinaryWriter recovered_state;
  recovered.value().module->SaveDeterministicState(&recovered_state);
  EXPECT_EQ(original_state.buffer(), recovered_state.buffer());

  // The recovered module keeps answering identically to the original.
  util::Rng probe_rng(7);
  for (int i = 0; i < 50; ++i) {
    stream::Query q = NextQuery(&probe_rng);
    q.timestamp = 2000;
    const QueryOutcome a = module->OnQuery(q);
    const QueryOutcome b = recovered.value().module->OnQuery(q);
    EXPECT_EQ(a.estimate, b.estimate) << "probe " << i;
    EXPECT_EQ(a.actual, b.actual) << "probe " << i;
    EXPECT_EQ(a.active, b.active) << "probe " << i;
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace latest::persist
