// Concurrency stress for the observability primitives: writer threads
// hammer counters, gauges, histograms, and the event log while a reader
// concurrently scrapes the exposition formats. Totals must come out
// exact (no lost updates) and nothing may tear or crash. Run under
// ThreadSanitizer in CI — the assertions here catch lost updates, TSan
// catches the races assertions cannot see.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"

namespace latest::obs {
namespace {

constexpr int kWriters = 8;
constexpr int kOpsPerWriter = 5000;

TEST(ObsConcurrencyTest, CountersAndHistogramsUnderConcurrentWriters) {
  MetricsRegistry registry;
  // Half the writers share one instance, half get a per-writer label —
  // exercising both contended updates and concurrent registration.
  Counter* shared_counter = registry.GetCounter(
      "latest_test_ops_total", "stress ops", {{"writer", "shared"}});
  Histogram* shared_histogram = registry.GetHistogram(
      "latest_test_latency_ms", "stress latencies",
      Histogram::LatencyBucketsMs(), {{"writer", "shared"}});

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const std::string text = registry.PrometheusText();
      EXPECT_NE(text.find("latest_test_ops_total"), std::string::npos);
      const std::string json = registry.Json();
      EXPECT_NE(json.find("latest_test_ops_total"), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Counter* own = registry.GetCounter(
          "latest_test_ops_total", "stress ops",
          {{"writer", std::to_string(w)}});
      Gauge* gauge = registry.GetGauge("latest_test_gauge", "stress gauge");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        shared_counter->Increment();
        own->Increment(2);
        gauge->Add(1.0);
        shared_histogram->Observe(0.001 * (i % 100));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(shared_counter->value(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(shared_histogram->count(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    Counter* own = registry.GetCounter("latest_test_ops_total", "stress ops",
                                       {{"writer", std::to_string(w)}});
    EXPECT_EQ(own->value(), 2u * kOpsPerWriter);
  }
  Gauge* gauge = registry.GetGauge("latest_test_gauge", "stress gauge");
  EXPECT_DOUBLE_EQ(gauge->value(),
                   static_cast<double>(kWriters) * kOpsPerWriter);
  // Per-bucket counts must sum to the total observation count.
  uint64_t bucket_sum = 0;
  for (size_t i = 0; i <= shared_histogram->upper_bounds().size(); ++i) {
    bucket_sum += shared_histogram->bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, shared_histogram->count());
}

TEST(ObsConcurrencyTest, EventLogUnderConcurrentAppendersAndSnapshots) {
  // Capacity below the total append volume so the ring wraps while being
  // snapshotted.
  EventLog log(256);
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const std::vector<Event> events = log.Snapshot();
      EXPECT_LE(events.size(), log.capacity());
      for (const Event& e : events) {
        // Writer w stamps query_count == detail; a torn Event would
        // break the invariant.
        EXPECT_EQ(static_cast<double>(e.query_count), e.detail);
      }
      const std::string rendered = FormatEventLog(log);
      EXPECT_LE(rendered.size(), 1u << 20);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Event event;
        event.type = EventType::kSwitched;
        event.timestamp = w;
        event.query_count = static_cast<uint64_t>(i);
        event.detail = static_cast<double>(i);
        log.Append(event);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(log.total_appended(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(log.size(), log.capacity());
}

}  // namespace
}  // namespace latest::obs
