// Tests for learned-state persistence: the binary reader/writer, the
// Hoeffding-tree snapshot, the scoreboard snapshot, and the module-level
// save/restore round trip.

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "ml/hoeffding_tree.h"
#include "tests/test_stream.h"
#include "util/serialization.h"

namespace latest {
namespace {

// --------------------------------------------------------------------
// BinaryWriter / BinaryReader

TEST(SerializationTest, RoundTripsPrimitives) {
  util::BinaryWriter writer;
  writer.WriteU32(42);
  writer.WriteU64(1ull << 40);
  writer.WriteI64(-7);
  writer.WriteDouble(3.25);
  writer.WriteBool(true);
  writer.WriteBool(false);

  util::BinaryReader reader(writer.buffer());
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  bool b1;
  bool b2;
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadI64(&i64));
  ASSERT_TRUE(reader.ReadDouble(&d));
  ASSERT_TRUE(reader.ReadBool(&b1));
  ASSERT_TRUE(reader.ReadBool(&b2));
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -7);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerializationTest, TruncatedReadFailsCleanly) {
  util::BinaryWriter writer;
  writer.WriteU32(1);
  util::BinaryReader reader(writer.buffer());
  uint64_t v;
  EXPECT_FALSE(reader.ReadU64(&v));  // Only 4 bytes available.
  uint32_t u;
  EXPECT_TRUE(reader.ReadU32(&u));  // The 4 bytes are still intact.
  EXPECT_EQ(u, 1u);
}

// --------------------------------------------------------------------
// HoeffdingTree snapshot

ml::FeatureSchema TreeSchema() {
  ml::FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 2;
  schema.num_classes = 4;
  return schema;
}

ml::HoeffdingTreeConfig TreeConfig() {
  ml::HoeffdingTreeConfig config;
  config.grace_period = 50;
  config.split_confidence = 1e-3;
  config.tie_threshold = 0.1;
  return config;
}

void TrainConcept(ml::HoeffdingTree* tree, int n, uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const int cat = static_cast<int>(rng.NextBounded(3));
    const double x = rng.NextDouble();
    ml::TrainingExample ex;
    ex.features.categorical = {cat};
    ex.features.numeric = {x, rng.NextDouble()};
    ex.label = cat < 2 ? static_cast<uint32_t>(cat) : (x < 0.5 ? 2u : 3u);
    tree->Train(ex);
  }
}

TEST(TreePersistenceTest, RoundTripPreservesPredictions) {
  ml::HoeffdingTree original(TreeSchema(), TreeConfig());
  TrainConcept(&original, 8000, 1);
  ASSERT_GT(original.num_splits(), 0u);

  util::BinaryWriter writer;
  original.Serialize(&writer);

  ml::HoeffdingTree restored(TreeSchema(), TreeConfig());
  util::BinaryReader reader(writer.buffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_TRUE(reader.exhausted());

  EXPECT_EQ(restored.num_trained(), original.num_trained());
  EXPECT_EQ(restored.num_leaves(), original.num_leaves());
  EXPECT_EQ(restored.num_splits(), original.num_splits());
  EXPECT_EQ(restored.depth(), original.depth());

  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    ml::FeatureVector f;
    f.categorical = {static_cast<int>(rng.NextBounded(3))};
    f.numeric = {rng.NextDouble(), rng.NextDouble()};
    ASSERT_EQ(restored.Predict(f), original.Predict(f));
    ASSERT_EQ(restored.PredictDistribution(f),
              original.PredictDistribution(f));
  }
}

TEST(TreePersistenceTest, RestoredTreeKeepsLearning) {
  ml::HoeffdingTree original(TreeSchema(), TreeConfig());
  TrainConcept(&original, 3000, 3);
  util::BinaryWriter writer;
  original.Serialize(&writer);

  ml::HoeffdingTree restored(TreeSchema(), TreeConfig());
  util::BinaryReader reader(writer.buffer());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  // Sufficient statistics survived: further training must keep working
  // and growing the tree.
  TrainConcept(&restored, 5000, 4);
  EXPECT_EQ(restored.num_trained(), 8000u);
}

TEST(TreePersistenceTest, SchemaMismatchRejected) {
  ml::HoeffdingTree original(TreeSchema(), TreeConfig());
  TrainConcept(&original, 1000, 5);
  util::BinaryWriter writer;
  original.Serialize(&writer);

  ml::FeatureSchema other = TreeSchema();
  other.num_classes = 5;
  ml::HoeffdingTree restored(other, TreeConfig());
  util::BinaryReader reader(writer.buffer());
  EXPECT_FALSE(restored.Restore(&reader).ok());
  EXPECT_EQ(restored.num_trained(), 0u);  // Reset on failure.
}

TEST(TreePersistenceTest, TruncatedSnapshotRejected) {
  ml::HoeffdingTree original(TreeSchema(), TreeConfig());
  TrainConcept(&original, 2000, 6);
  util::BinaryWriter writer;
  original.Serialize(&writer);
  const std::string truncated =
      writer.buffer().substr(0, writer.buffer().size() / 2);

  ml::HoeffdingTree restored(TreeSchema(), TreeConfig());
  util::BinaryReader reader(truncated);
  EXPECT_FALSE(restored.Restore(&reader).ok());
  // The failed restore leaves a clean, usable stump.
  TrainConcept(&restored, 100, 7);
  EXPECT_EQ(restored.num_trained(), 100u);
}

// --------------------------------------------------------------------
// Module-level snapshot

core::LatestConfig SnapConfig() {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  return config;
}

// Streams objects + mixed queries through a module.
void Exercise(core::LatestModule* module, uint64_t seed) {
  const auto objects =
      testing_support::MakeClusteredObjects(4000, seed, 3000);
  util::Rng rng(seed + 1);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 15 == 0) {
      stream::Query q;
      if (rng.NextBool(0.5)) {
        const geo::Point c{rng.NextDouble(10, 90), rng.NextDouble(10, 90)};
        q = testing_support::MakeSpatialQuery(geo::Rect::FromCenter(
            c, rng.NextDouble(5, 25), rng.NextDouble(5, 25)));
      } else {
        q = testing_support::MakeKeywordQuery(
            {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      }
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
}

TEST(ModulePersistenceTest, RoundTripRestoresModelAndScoreboard) {
  auto original = std::move(core::LatestModule::Create(SnapConfig())).value();
  Exercise(original.get(), 11);
  ASSERT_GT(original->model().num_trained(), 0u);
  const std::string snapshot = original->SerializeLearnedState();
  ASSERT_FALSE(snapshot.empty());

  auto restored = std::move(core::LatestModule::Create(SnapConfig())).value();
  ASSERT_TRUE(restored->RestoreLearnedState(snapshot).ok());
  EXPECT_EQ(restored->model().num_trained(),
            original->model().num_trained());
  EXPECT_EQ(restored->model().num_leaves(), original->model().num_leaves());
  // Scoreboard knowledge carried over: the restored module knows the
  // per-type winners without any pre-training.
  for (uint32_t t = 0; t < 3; ++t) {
    const auto type = static_cast<stream::QueryType>(t);
    EXPECT_EQ(restored->scoreboard().BestFor(type, 0.5),
              original->scoreboard().BestFor(type, 0.5));
  }
  // Model predictions agree.
  const auto q = testing_support::MakeKeywordQuery({2});
  EXPECT_EQ(restored->Recommend(q), original->Recommend(q));
}

TEST(ModulePersistenceTest, RejectsGarbageAndWrongAlpha) {
  auto module = std::move(core::LatestModule::Create(SnapConfig())).value();
  EXPECT_FALSE(module->RestoreLearnedState("not a snapshot").ok());

  auto original = std::move(core::LatestModule::Create(SnapConfig())).value();
  Exercise(original.get(), 13);
  const std::string snapshot = original->SerializeLearnedState();

  auto different = SnapConfig();
  different.alpha = 0.9;
  auto other = std::move(core::LatestModule::Create(different)).value();
  const auto status = other->RestoreLearnedState(snapshot);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(ModulePersistenceTest, RejectsTrailingBytes) {
  auto original = std::move(core::LatestModule::Create(SnapConfig())).value();
  Exercise(original.get(), 15);
  std::string snapshot = original->SerializeLearnedState();
  snapshot += "extra";
  auto restored = std::move(core::LatestModule::Create(SnapConfig())).value();
  EXPECT_FALSE(restored->RestoreLearnedState(snapshot).ok());
}

TEST(ModulePersistenceTest, RestoredModuleKeepsOperating) {
  auto original = std::move(core::LatestModule::Create(SnapConfig())).value();
  Exercise(original.get(), 17);
  const std::string snapshot = original->SerializeLearnedState();

  auto restored = std::move(core::LatestModule::Create(SnapConfig())).value();
  ASSERT_TRUE(restored->RestoreLearnedState(snapshot).ok());
  // The restored module runs a full fresh stream without issues and keeps
  // training on top of the restored model.
  const uint64_t trained_before = restored->model().num_trained();
  Exercise(restored.get(), 19);
  EXPECT_GT(restored->model().num_trained(), trained_before);
}

}  // namespace
}  // namespace latest
