// Property tests of the SIMD kernel layer: every kernel is cross-checked
// against a straightforward scalar reference on randomized inputs at
// every available tier (scalar, SSE2, AVX2), including the degenerate
// shapes the batch paths feed them — empty inputs, single elements,
// vector-width boundaries, degenerate rects, and empty keyword sets.

#include "simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "stream/keyword_arena.h"
#include "stream/object.h"
#include "util/rng.h"

namespace latest {
namespace {

using simd::KernelTier;
using simd::MaskWords;

/// Restores the dispatch tier on scope exit so a failing test cannot
/// leak a forced tier into later tests.
class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::SetActiveTier(saved_); }

 private:
  KernelTier saved_;
};

/// Runs `fn` once per tier this build + CPU can execute.
template <typename Fn>
void ForEachTier(Fn&& fn) {
  TierGuard guard;
  const int highest = static_cast<int>(simd::HighestSupportedTier());
  for (int t = 0; t <= highest; ++t) {
    const auto tier = static_cast<KernelTier>(t);
    ASSERT_TRUE(simd::SetActiveTier(tier));
    ASSERT_EQ(simd::ActiveTier(), tier);
    fn(tier);
  }
}

std::vector<geo::Point> RandomPoints(util::Rng* rng, size_t n) {
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    // Deliberately includes points outside [0,100)^2 and exactly on rect
    // edges (integral coordinates collide with integral rect corners).
    if (rng->NextBool(0.3)) {
      p = {static_cast<double>(rng->NextBounded(110)) - 5,
           static_cast<double>(rng->NextBounded(110)) - 5};
    } else {
      p = {rng->NextDouble(-5, 105), rng->NextDouble(-5, 105)};
    }
  }
  return pts;
}

geo::Rect RandomRect(util::Rng* rng) {
  if (rng->NextBool(0.15)) {
    // Degenerate: zero width and/or height.
    const double x = static_cast<double>(rng->NextBounded(100));
    const double y = static_cast<double>(rng->NextBounded(100));
    if (rng->NextBool(0.5)) return {x, y, x, y};
    return {x, y, x + 10, y};
  }
  double x0 = rng->NextDouble(-10, 100);
  double y0 = rng->NextDouble(-10, 100);
  double x1 = x0 + rng->NextDouble(0, 60);
  double y1 = y0 + rng->NextDouble(0, 60);
  return {x0, y0, x1, y1};
}

/// The sizes batch scans hit: empty, sub-word, word-boundary +/- 1, and
/// multi-word with a ragged tail.
const size_t kSizes[] = {0, 1, 3, 4, 7, 8, 15, 16, 63, 64, 65, 200, 513};

TEST(SimdTier, NamesAndClamping) {
  TierGuard guard;
  EXPECT_STREQ(simd::KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(simd::KernelTierName(KernelTier::kSSE2), "sse2");
  EXPECT_STREQ(simd::KernelTierName(KernelTier::kAVX2), "avx2");
  EXPECT_GE(simd::HighestSupportedTier(), KernelTier::kScalar);
  EXPECT_LE(simd::ActiveTier(), simd::HighestSupportedTier());
  // Forcing above hardware/build support must fail and leave the tier
  // unchanged.
  if (simd::HighestSupportedTier() < KernelTier::kAVX2) {
    const KernelTier before = simd::ActiveTier();
    EXPECT_FALSE(simd::SetActiveTier(KernelTier::kAVX2));
    EXPECT_EQ(simd::ActiveTier(), before);
  }
  EXPECT_TRUE(simd::SetActiveTier(KernelTier::kScalar));
  EXPECT_EQ(simd::ActiveTier(), KernelTier::kScalar);
}

TEST(SimdRect, MaskMatchesScalarReference) {
  util::Rng rng(7);
  for (size_t n : kSizes) {
    const auto pts = RandomPoints(&rng, n);
    for (int trial = 0; trial < 8; ++trial) {
      const geo::Rect r = RandomRect(&rng);
      std::vector<uint64_t> expect(MaskWords(n), 0);
      for (size_t i = 0; i < n; ++i) {
        if (r.Contains(pts[i])) expect[i / 64] |= uint64_t{1} << (i % 64);
      }
      ForEachTier([&](KernelTier tier) {
        std::vector<uint64_t> mask(MaskWords(n) + 1, ~uint64_t{0});
        simd::RectContainMask(pts.data(), n, r, mask.data());
        for (size_t w = 0; w < MaskWords(n); ++w) {
          EXPECT_EQ(mask[w], expect[w])
              << "tier=" << simd::KernelTierName(tier) << " n=" << n
              << " word=" << w;
        }
        // No overwrite past MaskWords(n).
        EXPECT_EQ(mask[MaskWords(n)], ~uint64_t{0});
        EXPECT_EQ(simd::RectContainCount(pts.data(), n, r),
                  simd::MaskPopcount(expect.data(), expect.size()));
      });
    }
  }
}

TEST(SimdRect, EdgePointsAreClosedOpen) {
  // Points exactly on the min edges are inside, on the max edges outside
  // (whatever Rect::Contains says, the kernel must agree bit for bit).
  const geo::Rect r{10, 20, 30, 40};
  const std::vector<geo::Point> pts = {
      {10, 20}, {30, 40}, {10, 40}, {30, 20}, {20, 30},
      {10, 30}, {30, 30}, {20, 20}, {20, 40},
  };
  std::vector<uint64_t> expect(1, 0);
  for (size_t i = 0; i < pts.size(); ++i) {
    if (r.Contains(pts[i])) expect[0] |= uint64_t{1} << i;
  }
  ForEachTier([&](KernelTier tier) {
    uint64_t mask = ~uint64_t{0};
    simd::RectContainMask(pts.data(), pts.size(), r, &mask);
    EXPECT_EQ(mask, expect[0]) << "tier=" << simd::KernelTierName(tier);
  });
}

TEST(SimdHistogram, CellIdsMatchGridCellOf) {
  util::Rng rng(11);
  const geo::Rect bounds{0, 0, 100, 100};
  const uint32_t dims[][2] = {{1, 1}, {3, 5}, {64, 64}, {7, 1}};
  for (const auto& d : dims) {
    const geo::Grid grid(bounds, d[0], d[1]);
    for (size_t n : kSizes) {
      const auto pts = RandomPoints(&rng, n);
      std::vector<uint32_t> expect(n);
      for (size_t i = 0; i < n; ++i) expect[i] = grid.CellOf(pts[i]);
      ForEachTier([&](KernelTier tier) {
        std::vector<uint32_t> cells(n + 1, 0xdeadbeef);
        simd::HistogramCellIds(pts.data(), n, grid.bounds(),
                               grid.cell_width(), grid.cell_height(),
                               grid.cols(), grid.rows(), cells.data());
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(cells[i], expect[i])
              << "tier=" << simd::KernelTierName(tier) << " cols=" << d[0]
              << " rows=" << d[1] << " i=" << i << " p=(" << pts[i].x << ","
              << pts[i].y << ")";
        }
        EXPECT_EQ(cells[n], 0xdeadbeef);
      });
    }
  }
}

TEST(SimdHistogram, StridedCellIdsMatchContiguous) {
  util::Rng rng(17);
  const geo::Rect bounds{-50, -50, 50, 50};
  const geo::Grid grid(bounds, 64, 64);
  // Points embedded in larger records, like GeoTextObject holds them.
  struct Record {
    uint64_t pad0;
    geo::Point loc;
    uint64_t pad1[3];
  };
  for (size_t n : kSizes) {
    std::vector<Record> recs(n);
    std::vector<geo::Point> dense(n);
    for (size_t i = 0; i < n; ++i) {
      recs[i].loc = {bounds.min_x + rng.NextDouble() * 100.0,
                     bounds.min_y + rng.NextDouble() * 100.0};
      dense[i] = recs[i].loc;
    }
    std::vector<uint32_t> expect(n);
    for (size_t i = 0; i < n; ++i) expect[i] = grid.CellOf(dense[i]);
    ForEachTier([&](KernelTier tier) {
      std::vector<uint32_t> cells(n + 1, 0xdeadbeef);
      simd::HistogramCellIdsStrided(
          n > 0 ? &recs[0].loc : nullptr, sizeof(Record), n, grid.bounds(),
          grid.cell_width(), grid.cell_height(), grid.cols(), grid.rows(),
          cells.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(cells[i], expect[i])
            << "tier=" << simd::KernelTierName(tier) << " i=" << i;
      }
      EXPECT_EQ(cells[n], 0xdeadbeef);
      // stride == sizeof(Point) degenerates to the contiguous kernel.
      std::vector<uint32_t> packed(n + 1, 0xdeadbeef);
      simd::HistogramCellIdsStrided(
          dense.data(), sizeof(geo::Point), n, grid.bounds(),
          grid.cell_width(), grid.cell_height(), grid.cols(), grid.rows(),
          packed.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(packed[i], expect[i])
            << "tier=" << simd::KernelTierName(tier) << " i=" << i;
      }
    });
  }
}

TEST(SimdTimestamp, GeMaskMatchesReference) {
  util::Rng rng(13);
  for (size_t n : kSizes) {
    std::vector<stream::Timestamp> ts(n);
    for (auto& t : ts) {
      t = static_cast<stream::Timestamp>(rng.NextBounded(1000)) - 500;
    }
    const stream::Timestamp cutoffs[] = {
        std::numeric_limits<stream::Timestamp>::min(), -500, -1, 0, 250,
        1000, std::numeric_limits<stream::Timestamp>::max()};
    for (const stream::Timestamp cutoff : cutoffs) {
      std::vector<uint64_t> expect(MaskWords(n), 0);
      for (size_t i = 0; i < n; ++i) {
        if (ts[i] >= cutoff) expect[i / 64] |= uint64_t{1} << (i % 64);
      }
      ForEachTier([&](KernelTier tier) {
        std::vector<uint64_t> mask(MaskWords(n), ~uint64_t{0});
        simd::TimestampGeMask(ts.data(), n, cutoff, mask.data());
        EXPECT_EQ(mask, expect)
            << "tier=" << simd::KernelTierName(tier) << " n=" << n
            << " cutoff=" << cutoff;
      });
    }
  }
}

TEST(SimdTimestamp, LowerBoundMatchesStdLowerBound) {
  util::Rng rng(17);
  for (size_t n : kSizes) {
    std::vector<stream::Timestamp> ts(n);
    stream::Timestamp acc = 0;
    for (auto& t : ts) {
      acc += static_cast<stream::Timestamp>(rng.NextBounded(4));
      t = acc;
    }
    for (int trial = 0; trial < 16; ++trial) {
      const stream::Timestamp cutoff =
          static_cast<stream::Timestamp>(rng.NextBounded(acc + 3)) - 1;
      const size_t expect = static_cast<size_t>(
          std::lower_bound(ts.begin(), ts.end(), cutoff) - ts.begin());
      ForEachTier([&](KernelTier) {
        EXPECT_EQ(simd::LowerBoundTimestamp(ts.data(), n, cutoff), expect);
      });
    }
  }
}

TEST(SimdMask, BitwiseOpsMatchReference) {
  util::Rng rng(19);
  for (size_t words : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{9}, size_t{33}}) {
    std::vector<uint64_t> a(words);
    std::vector<uint64_t> b(words);
    for (size_t w = 0; w < words; ++w) {
      a[w] = rng.Next();
      b[w] = rng.Next();
    }
    uint64_t pop_a = 0;
    uint64_t pop_and = 0;
    std::vector<uint64_t> expect_and(words);
    std::vector<uint64_t> expect_or(words);
    for (size_t w = 0; w < words; ++w) {
      expect_and[w] = a[w] & b[w];
      expect_or[w] = a[w] | b[w];
      for (int bit = 0; bit < 64; ++bit) {
        pop_a += (a[w] >> bit) & 1;
        pop_and += (expect_and[w] >> bit) & 1;
      }
    }
    ForEachTier([&](KernelTier tier) {
      std::vector<uint64_t> dst = a;
      simd::MaskAnd(dst.data(), b.data(), words);
      EXPECT_EQ(dst, expect_and) << "tier=" << simd::KernelTierName(tier);
      dst = a;
      simd::MaskOr(dst.data(), b.data(), words);
      EXPECT_EQ(dst, expect_or) << "tier=" << simd::KernelTierName(tier);
      EXPECT_EQ(simd::MaskPopcount(a.data(), words), pop_a);
      EXPECT_EQ(simd::MaskAndPopcount(a.data(), b.data(), words), pop_and);
    });
  }
}

TEST(SimdMask, OrShiftedMatchesBitLoop) {
  util::Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t nbits = rng.NextBounded(200);
    const size_t offset = rng.NextBounded(130);
    std::vector<uint64_t> src(MaskWords(nbits) + 1);
    for (auto& w : src) w = rng.Next();
    if (!src.empty()) {
      // Producer contract: trailing bits of the last in-range word zero.
      const size_t rem = nbits % 64;
      if (rem != 0 && MaskWords(nbits) > 0) {
        src[MaskWords(nbits) - 1] &= (uint64_t{1} << rem) - 1;
      }
    }
    const size_t dst_words = MaskWords(offset + nbits) + 2;
    std::vector<uint64_t> init(dst_words);
    for (auto& w : init) w = rng.Next();
    std::vector<uint64_t> expect = init;
    for (size_t i = 0; i < nbits; ++i) {
      if ((src[i / 64] >> (i % 64)) & 1) {
        const size_t bit = offset + i;
        expect[bit / 64] |= uint64_t{1} << (bit % 64);
      }
    }
    ForEachTier([&](KernelTier tier) {
      std::vector<uint64_t> dst = init;
      simd::MaskOrShifted(dst.data(), offset, src.data(), nbits);
      EXPECT_EQ(dst, expect) << "tier=" << simd::KernelTierName(tier)
                             << " nbits=" << nbits << " offset=" << offset;
    });
  }
}

std::vector<stream::KeywordId> RandomSortedSet(util::Rng* rng, size_t max_len,
                                               uint32_t space) {
  std::vector<stream::KeywordId> set(rng->NextBounded(max_len + 1));
  for (auto& k : set) {
    k = static_cast<stream::KeywordId>(rng->NextBounded(space));
  }
  stream::CanonicalizeKeywords(&set);
  return set;
}

TEST(SimdKeyword, AnyIntersectMatchesReference) {
  util::Rng rng(29);
  // Span lengths straddle the SIMD probe threshold; keyword spaces of 40
  // and 100000 exercise dense-hit and rare-hit regimes.
  for (const uint32_t space : {40u, 100000u}) {
    for (const size_t span_max : {size_t{0}, size_t{3}, size_t{15}, size_t{16},
                                  size_t{40}, size_t{300}}) {
      for (int trial = 0; trial < 40; ++trial) {
        const auto span = RandomSortedSet(&rng, span_max, space);
        const auto q = RandomSortedSet(&rng, 6, space);
        const bool expect = stream::KeywordSetsIntersect(
            span.data(), span.size(), q.data(), q.size());
        ForEachTier([&](KernelTier tier) {
          EXPECT_EQ(simd::AnyKeywordIntersect(span.data(), span.size(),
                                              q.data(), q.size()),
                    expect)
              << "tier=" << simd::KernelTierName(tier)
              << " span_len=" << span.size() << " q_len=" << q.size();
        });
      }
    }
  }
}

TEST(SimdKeyword, MatchMaskBothVariantsMatchReference) {
  util::Rng rng(31);
  for (size_t n : kSizes) {
    // Build a fake arena: concatenated sorted spans (some empty).
    std::vector<stream::KeywordId> arena;
    std::vector<stream::KeywordSpan> spans(n);
    std::vector<std::pair<const stream::KeywordId*, uint32_t>> gathered(n);
    for (size_t i = 0; i < n; ++i) {
      const auto set = RandomSortedSet(&rng, 20, 60);
      spans[i].offset = static_cast<uint32_t>(arena.size());
      spans[i].len = static_cast<uint32_t>(set.size());
      arena.insert(arena.end(), set.begin(), set.end());
    }
    for (size_t i = 0; i < n; ++i) {
      gathered[i] = {arena.data() + spans[i].offset, spans[i].len};
    }
    const auto q = RandomSortedSet(&rng, 4, 60);
    std::vector<uint64_t> expect(MaskWords(n), 0);
    for (size_t i = 0; i < n; ++i) {
      if (stream::KeywordSetsIntersect(arena.data() + spans[i].offset,
                                       spans[i].len, q.data(), q.size())) {
        expect[i / 64] |= uint64_t{1} << (i % 64);
      }
    }
    ForEachTier([&](KernelTier tier) {
      std::vector<uint64_t> mask(MaskWords(n), ~uint64_t{0});
      simd::KeywordMatchMask(spans.data(), arena.data(), n, q.data(), q.size(),
                             mask.data());
      EXPECT_EQ(mask, expect)
          << "span variant tier=" << simd::KernelTierName(tier) << " n=" << n;
      std::vector<uint64_t> mask2(MaskWords(n), ~uint64_t{0});
      simd::KeywordMatchMask(gathered.data(), n, q.data(), q.size(),
                             mask2.data());
      EXPECT_EQ(mask2, expect)
          << "gathered variant tier=" << simd::KernelTierName(tier)
          << " n=" << n;
    });
  }
}

}  // namespace
}  // namespace latest
