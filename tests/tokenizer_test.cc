// Tests for the raw-text tokenizer.

#include <gtest/gtest.h>

#include "stream/tokenizer.h"

namespace latest::stream {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("House FIRE near Downtown");
  EXPECT_EQ(tokens, (std::vector<std::string>{"house", "fire", "near",
                                              "downtown"}));
}

TEST(TokenizerTest, SplitsOnPunctuation) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("fire!!!rescue,,,help...now");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"fire", "rescue", "help", "now"}));
}

TEST(TokenizerTest, FiltersStopwords) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("the fire is in the building");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fire", "building"}));
}

TEST(TokenizerTest, StopwordFilterCanBeDisabled) {
  TokenizerOptions options;
  options.filter_stopwords = false;
  options.min_token_length = 1;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Tokenize("the fire");
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "fire"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer tokenizer;  // min_token_length = 3.
  const auto tokens = tokenizer.Tokenize("go to la xy fire");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fire"}));
}

TEST(TokenizerTest, HashtagsKeptEvenWhenShort) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("evacuating #la now #FireRescue");
  EXPECT_EQ(tokens, (std::vector<std::string>{"evacuating", "#la", "now",
                                              "#firerescue"}));
}

TEST(TokenizerTest, HashtagMarkerCanBeStripped) {
  TokenizerOptions options;
  options.keep_hashtag_marker = false;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Tokenize("#Fire downtown");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fire", "downtown"}));
}

TEST(TokenizerTest, HashtagAndPlainWordStayDistinct) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("#fire fire");
  EXPECT_EQ(tokens, (std::vector<std::string>{"#fire", "fire"}));
}

TEST(TokenizerTest, DeduplicatesKeepingFirst) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("fire help fire HELP Fire");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fire", "help"}));
}

TEST(TokenizerTest, MaxTokensCap) {
  TokenizerOptions options;
  options.max_tokens = 2;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Tokenize("alpha bravo charlie delta");
  EXPECT_EQ(tokens, (std::vector<std::string>{"alpha", "bravo"}));
}

TEST(TokenizerTest, EmptyAndSymbolOnlyText) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("!!! ... ###").empty());
}

TEST(TokenizerTest, UnderscoresAndDigitsAreTokenChars) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("route_66 covid19");
  EXPECT_EQ(tokens, (std::vector<std::string>{"route_66", "covid19"}));
}

TEST(TokenizerTest, IsStopwordLookup) {
  EXPECT_TRUE(Tokenizer::IsStopword("the"));
  EXPECT_TRUE(Tokenizer::IsStopword("with"));
  EXPECT_FALSE(Tokenizer::IsStopword("fire"));
}

TEST(TokenizerTest, HashAloneIsNotAToken) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("# fire");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fire"}));
}

}  // namespace
}  // namespace latest::stream
