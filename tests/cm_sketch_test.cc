// Tests for the Count-Min sketch and the CMS portfolio-extension
// estimator.

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "estimators/cm_sketch_estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::BruteForceCount;
using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

// --------------------------------------------------------------------
// CountMinSketch

TEST(CountMinSketchTest, NeverUndercounts) {
  CountMinSketch sketch(4, 64, 1);
  util::Rng rng(2);
  std::vector<int> truth(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto key = rng.NextBounded(1000);
    ++truth[key];
    sketch.Add(key);
  }
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_GE(sketch.Estimate(key), static_cast<double>(truth[key]));
  }
}

TEST(CountMinSketchTest, ExactWithoutCollisions) {
  CountMinSketch sketch(4, 4096, 3);
  for (int i = 0; i < 5; ++i) sketch.Add(7);
  for (int i = 0; i < 3; ++i) sketch.Add(9);
  EXPECT_DOUBLE_EQ(sketch.Estimate(7), 5.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(9), 3.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(12345), 0.0);
}

TEST(CountMinSketchTest, ErrorBoundedByEpsN) {
  // Classic CM bound: error <= e/width * N with high probability.
  constexpr uint32_t kWidth = 512;
  CountMinSketch sketch(4, kWidth, 5);
  util::Rng rng(6);
  constexpr int kN = 100000;
  std::vector<int> truth(5000, 0);
  for (int i = 0; i < kN; ++i) {
    const double u = rng.NextDouble();
    const auto key = static_cast<uint64_t>(u * u * 5000);
    ++truth[key];
    sketch.Add(key);
  }
  const double bound = 2.72 / kWidth * kN;
  int violations = 0;
  for (uint64_t key = 0; key < 5000; ++key) {
    if (sketch.Estimate(key) - truth[key] > bound) ++violations;
  }
  EXPECT_LT(violations, 50);  // < 1% of keys.
}

TEST(CountMinSketchTest, DecayScalesEverything) {
  CountMinSketch sketch(2, 64, 7);
  sketch.Add(1, 8.0);
  sketch.Decay(0.25);
  EXPECT_DOUBLE_EQ(sketch.Estimate(1), 2.0);
}

TEST(CountMinSketchTest, ClearEmpties) {
  CountMinSketch sketch(2, 64, 7);
  sketch.Add(1);
  sketch.Clear();
  EXPECT_DOUBLE_EQ(sketch.Estimate(1), 0.0);
}

// --------------------------------------------------------------------
// CmSketchEstimator

TEST(CmSketchEstimatorTest, KindAndName) {
  CmSketchEstimator est(TestEstimatorConfig());
  EXPECT_EQ(est.kind(), EstimatorKind::kCmSketch);
}

TEST(CmSketchEstimatorTest, SpatialEstimateTracksTruth) {
  auto config = TestEstimatorConfig();
  CmSketchEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 1);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const auto truth = static_cast<double>(BruteForceCount(objects, q, 0));
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.25);
}

TEST(CmSketchEstimatorTest, KeywordEstimateTracksHeadKeywords) {
  auto config = TestEstimatorConfig();
  CmSketchEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 2);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeKeywordQuery({0});
  const auto truth = static_cast<double>(BruteForceCount(objects, q, 0));
  ASSERT_GT(truth, 2000.0);
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.35);
}

TEST(CmSketchEstimatorTest, HybridBoundedBySpatial) {
  auto config = TestEstimatorConfig();
  CmSketchEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 3);
  FeedObjects(&est, config.window, objects);
  const geo::Rect r{20, 20, 40, 40};
  EXPECT_LE(est.Estimate(MakeHybridQuery(r, {0})),
            est.Estimate(MakeSpatialQuery(r)) * 1.01 + 1.0);
}

TEST(CmSketchEstimatorTest, UnseenKeywordNearZero) {
  auto config = TestEstimatorConfig();
  CmSketchEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 4);
  FeedObjects(&est, config.window, objects);
  // A key far outside the stream vocabulary: only collision mass remains.
  const double estimate = est.Estimate(MakeKeywordQuery({999999}));
  EXPECT_LT(estimate,
            0.15 * static_cast<double>(est.seen_population()));
}

TEST(CmSketchEstimatorTest, MemoryIsFlatInStreamSize) {
  auto config = TestEstimatorConfig();
  CmSketchEstimator est(config);
  const size_t before = est.MemoryBytes();
  const auto objects = MakeClusteredObjects(30000, 5);
  FeedObjects(&est, config.window, objects);
  EXPECT_EQ(est.MemoryBytes(), before);  // Sketches are fixed-size.
}

// --------------------------------------------------------------------
// Module integration with the extended portfolio

TEST(CmSketchEstimatorTest, ModuleRunsWithCmsEnabled) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 30;
  config.monitor_window = 8;
  config.maintain_shadow_estimators = true;
  config.enabled_estimators = {true, true, true, true, true, true, true};
  auto module = std::move(core::LatestModule::Create(config)).value();

  const auto objects = MakeClusteredObjects(3000, 6, 3000);
  bool cms_measured = false;
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 20 == 0) {
      stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
      q.timestamp = obj.timestamp;
      const auto outcome = module->OnQuery(q);
      for (const auto& m : outcome.measurements) {
        if (m.kind == EstimatorKind::kCmSketch) cms_measured = true;
      }
    }
  }
  EXPECT_TRUE(cms_measured);
}

TEST(CmSketchEstimatorTest, CmsCanBeTheDefaultEstimator) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 20;
  config.default_estimator = EstimatorKind::kCmSketch;
  config.enabled_estimators = {true, false, false, false, false, false,
                               true};
  ASSERT_TRUE(config.Validate().ok());
  auto module = std::move(core::LatestModule::Create(config)).value();
  EXPECT_EQ(module->active_kind(), EstimatorKind::kCmSketch);
}

}  // namespace
}  // namespace latest::estimators
