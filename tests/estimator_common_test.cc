// Factory, configuration validation, and the interface contract every
// estimator kind must satisfy (parameterized across all six kinds).

#include <cmath>

#include <gtest/gtest.h>

#include "estimators/estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

constexpr EstimatorKind kAllKinds[] = {
    EstimatorKind::kH4096, EstimatorKind::kRsl,  EstimatorKind::kRsh,
    EstimatorKind::kAasp,  EstimatorKind::kFfn,  EstimatorKind::kSpn,
    EstimatorKind::kCmSketch,
};

TEST(EstimatorFactoryTest, CreatesEveryKind) {
  const auto config = TestEstimatorConfig();
  for (const EstimatorKind kind : kAllKinds) {
    auto result = CreateEstimator(kind, config);
    ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
    EXPECT_EQ((*result)->kind(), kind);
  }
}

TEST(EstimatorFactoryTest, NamesAreUniqueAndStable) {
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kH4096), "H4096");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kRsl), "RSL");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kRsh), "RSH");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kAasp), "AASP");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kFfn), "FFN");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kSpn), "SPN");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kCmSketch), "CMS");
}

TEST(EstimatorConfigTest, DefaultValidatesAfterBoundsAndWindow) {
  EXPECT_TRUE(TestEstimatorConfig().Validate().ok());
}

TEST(EstimatorConfigTest, RejectsBadBounds) {
  auto config = TestEstimatorConfig();
  config.bounds = geo::Rect{};
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EstimatorConfigTest, RejectsBadWindow) {
  auto config = TestEstimatorConfig();
  config.window.num_slices = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(EstimatorConfigTest, RejectsZeroKnobs) {
  for (auto mutate : {
           +[](EstimatorConfig* c) { c->histogram_cells = 0; },
           +[](EstimatorConfig* c) { c->reservoir_capacity = 0; },
           +[](EstimatorConfig* c) { c->rsh_grid_cells = 0; },
           +[](EstimatorConfig* c) { c->aasp_split_value = 0.0; },
           +[](EstimatorConfig* c) { c->aasp_split_value = 1.5; },
           +[](EstimatorConfig* c) { c->aasp_partitions = 0; },
           +[](EstimatorConfig* c) { c->aasp_kmv_size = 1; },
           +[](EstimatorConfig* c) { c->aasp_node_keywords = 0; },
           +[](EstimatorConfig* c) { c->ffn_hidden_units = 0; },
           +[](EstimatorConfig* c) { c->ffn_learning_rate = 0.0; },
           +[](EstimatorConfig* c) { c->spn_clusters = 0; },
       }) {
    auto config = TestEstimatorConfig();
    mutate(&config);
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(EstimatorFactoryTest, CreateRejectsInvalidConfig) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 0;
  auto result = CreateEstimator(EstimatorKind::kRsl, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------
// Interface contract, parameterized over every estimator kind.

class EstimatorContractTest : public ::testing::TestWithParam<EstimatorKind> {
 protected:
  std::unique_ptr<Estimator> Make() {
    auto result = CreateEstimator(GetParam(), TestEstimatorConfig());
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_P(EstimatorContractTest, FreshEstimatorHasNoPopulation) {
  auto est = Make();
  EXPECT_EQ(est->seen_population(), 0u);
}

TEST_P(EstimatorContractTest, EstimatesAreNonNegativeAndFinite) {
  auto est = Make();
  const auto objects = MakeClusteredObjects(10000, 21);
  FeedObjects(est.get(), TestEstimatorConfig().window, objects);
  const stream::Query queries[] = {
      MakeSpatialQuery({20, 20, 40, 40}),
      MakeSpatialQuery({-50, -50, 500, 500}),
      MakeKeywordQuery({0}),
      MakeKeywordQuery({0, 7, 23, 49}),
      MakeHybridQuery({10, 10, 90, 90}, {1, 2}),
      MakeSpatialQuery({99.9, 99.9, 99.99, 99.99}),
  };
  for (const auto& q : queries) {
    const double e = est->Estimate(q);
    EXPECT_GE(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST_P(EstimatorContractTest, PopulationTracksWindow) {
  auto est = Make();
  const auto config = TestEstimatorConfig();
  const auto objects = MakeClusteredObjects(2000, 22, /*duration=*/2000);
  FeedObjects(est.get(), config.window, objects);
  // Window covers half the 2000ms stream.
  EXPECT_GT(est->seen_population(), 800u);
  EXPECT_LT(est->seen_population(), 1200u);
}

TEST_P(EstimatorContractTest, ResetRestoresFreshState) {
  auto est = Make();
  const auto objects = MakeClusteredObjects(5000, 23);
  FeedObjects(est.get(), TestEstimatorConfig().window, objects);
  est->Reset();
  EXPECT_EQ(est->seen_population(), 0u);
}

TEST_P(EstimatorContractTest, FullExpiryDrainsPopulation) {
  auto est = Make();
  const auto config = TestEstimatorConfig();
  const auto objects = MakeClusteredObjects(5000, 24);
  FeedObjects(est.get(), config.window, objects);
  for (uint32_t i = 0; i <= config.window.num_slices; ++i) {
    est->OnSliceRotate();
  }
  EXPECT_EQ(est->seen_population(), 0u);
}

TEST_P(EstimatorContractTest, MemoryBytesIsPositive) {
  auto est = Make();
  const auto objects = MakeClusteredObjects(5000, 25);
  FeedObjects(est.get(), TestEstimatorConfig().window, objects);
  EXPECT_GT(est->MemoryBytes(), 0u);
}

TEST_P(EstimatorContractTest, FeedbackIsAccepted) {
  auto est = Make();
  const auto objects = MakeClusteredObjects(5000, 26);
  FeedObjects(est.get(), TestEstimatorConfig().window, objects);
  const stream::Query q = MakeKeywordQuery({3});
  est->OnFeedback(q, est->Estimate(q), 123);  // Must not crash or throw.
}

TEST_P(EstimatorContractTest, DeterministicAcrossInstances) {
  auto a = Make();
  auto b = Make();
  const auto objects = MakeClusteredObjects(10000, 27);
  FeedObjects(a.get(), TestEstimatorConfig().window, objects);
  FeedObjects(b.get(), TestEstimatorConfig().window, objects);
  const stream::Query q = MakeHybridQuery({15, 15, 55, 55}, {0, 3});
  EXPECT_DOUBLE_EQ(a->Estimate(q), b->Estimate(q));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EstimatorContractTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      return EstimatorKindName(info.param);
    });

}  // namespace
}  // namespace latest::estimators
