// Unit and property tests for src/util: Status/Result, RNG, Zipf sampler,
// hashing, min-max scaler, moving statistics, and the JSON parser.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/hashing.h"
#include "util/json.h"
#include "util/minmax_scaler.h"
#include "util/moving_stats.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/zipf.h"

namespace latest::util {
namespace {

// --------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::OutOfRange("nope"); }
Status PropagationSite() {
  LATEST_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagationSite().code(), StatusCode::kOutOfRange);
}

// --------------------------------------------------------------------
// Rng

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  constexpr int kN = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(5);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(3);
  Rng child = parent.Fork();
  // The fork and the parent should produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 3);
}

// --------------------------------------------------------------------
// Zipf

TEST(ZipfTest, RanksWithinSupport) {
  ZipfSampler zipf(100, 1.0, 42);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 100u);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(1000, 1.2, 42);
  double total = 0.0;
  for (uint64_t k = 0; k < 1000; ++k) total += zipf.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadIsMoreFrequentThanTail) {
  ZipfSampler zipf(1000, 1.0, 42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500] - 5);  // Allow tail noise.
  EXPECT_GT(counts[0], 100000 / 1000);     // Far above uniform share.
}

TEST(ZipfTest, EmpiricalMatchesTheoretical) {
  ZipfSampler zipf(50, 1.0, 7);
  std::vector<int> counts(50, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Next()];
  for (uint64_t k = 0; k < 5; ++k) {
    const double expected = zipf.Probability(k);
    const double observed = static_cast<double>(counts[k]) / kN;
    EXPECT_NEAR(observed, expected, expected * 0.1 + 0.002);
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0, 7);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-9);
  }
}

// Property sweep: distribution is normalized for a range of skews.
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, NormalizedAndMonotone) {
  const double skew = GetParam();
  ZipfSampler zipf(256, skew, 99);
  double total = 0.0;
  double prev = 1.0;
  for (uint64_t k = 0; k < 256; ++k) {
    const double p = zipf.Probability(k);
    EXPECT_LE(p, prev + 1e-12);  // Non-increasing in rank.
    total += p;
    prev = p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 2.0));

// --------------------------------------------------------------------
// Hashing

TEST(HashingTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashingTest, SeededHashFamiliesDiffer) {
  EXPECT_NE(SeededHash(42, 1), SeededHash(42, 2));
  EXPECT_EQ(SeededHash(42, 1), SeededHash(42, 1));
}

TEST(HashingTest, HashToUnitInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = HashToUnit(rng.Next());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashingTest, HashToUnitIsRoughlyUniform) {
  int buckets[10] = {};
  for (uint64_t i = 0; i < 100000; ++i) {
    ++buckets[static_cast<int>(HashToUnit(Mix64(i)) * 10)];
  }
  for (int b : buckets) EXPECT_NEAR(b, 10000, 500);
}

TEST(HashingTest, HashBytesDistinguishesStrings) {
  EXPECT_NE(HashBytes("fire"), HashBytes("water"));
  EXPECT_EQ(HashBytes("fire"), HashBytes("fire"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

// --------------------------------------------------------------------
// MinMaxScaler

TEST(MinMaxScalerTest, EmptyScalesToHalf) {
  MinMaxScaler s;
  EXPECT_DOUBLE_EQ(s.Scale(123.0), 0.5);
}

TEST(MinMaxScalerTest, SingleValueDegenerateRange) {
  MinMaxScaler s;
  s.Observe(10.0);
  EXPECT_DOUBLE_EQ(s.Scale(10.0), 0.5);
}

TEST(MinMaxScalerTest, ScalesLinearly) {
  MinMaxScaler s;
  s.Observe(0.0);
  s.Observe(10.0);
  EXPECT_DOUBLE_EQ(s.Scale(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Scale(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Scale(10.0), 1.0);
}

TEST(MinMaxScalerTest, ClampsOutliers) {
  MinMaxScaler s;
  s.Observe(0.0);
  s.Observe(1.0);
  EXPECT_DOUBLE_EQ(s.Scale(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Scale(99.0), 1.0);
}

TEST(MinMaxScalerTest, RangeWidens) {
  MinMaxScaler s;
  s.Observe(5.0);
  s.Observe(6.0);
  s.Observe(0.0);
  s.Observe(10.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.Scale(5.0), 0.5);
}

TEST(MinMaxScalerTest, NegativeRangeScalesLinearly) {
  // Negative observations (e.g. signed error signals) must not break the
  // normalization used for alpha blending.
  MinMaxScaler s;
  s.Observe(-10.0);
  s.Observe(10.0);
  EXPECT_DOUBLE_EQ(s.Scale(-10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Scale(0.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Scale(10.0), 1.0);
}

TEST(MinMaxScalerTest, ResetForgets) {
  MinMaxScaler s;
  s.Observe(0.0);
  s.Observe(10.0);
  s.Reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Scale(3.0), 0.5);
}

// --------------------------------------------------------------------
// MovingAverage / Ewma / RunningMoments

TEST(MovingAverageTest, EmptyMeanIsZero) {
  MovingAverage m(4);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
  EXPECT_FALSE(m.full());
}

TEST(MovingAverageTest, PartialWindow) {
  MovingAverage m(4);
  m.Add(2.0);
  m.Add(4.0);
  EXPECT_DOUBLE_EQ(m.Mean(), 3.0);
  EXPECT_EQ(m.size(), 2u);
}

TEST(MovingAverageTest, EvictsOldest) {
  MovingAverage m(3);
  m.Add(1.0);
  m.Add(2.0);
  m.Add(3.0);
  EXPECT_TRUE(m.full());
  m.Add(10.0);  // Evicts 1.0.
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
}

TEST(MovingAverageTest, LongStreamMatchesNaive) {
  MovingAverage m(16);
  Rng rng(3);
  std::vector<double> window;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    m.Add(v);
    window.push_back(v);
    if (window.size() > 16) window.erase(window.begin());
    const double naive =
        std::accumulate(window.begin(), window.end(), 0.0) / window.size();
    ASSERT_NEAR(m.Mean(), naive, 1e-9);
  }
}

TEST(MovingAverageTest, ResetEmpties) {
  MovingAverage m(4);
  m.Add(1.0);
  m.Reset();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch watch;
  const double first = watch.ElapsedMillis();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(watch.ElapsedMillis(), first);
  EXPECT_GE(watch.ElapsedNanos(), 0);
}

TEST(StopwatchTest, RestartShrinksElapsed) {
  Stopwatch watch;
  // Burn a little time so the pre-restart reading is strictly positive.
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  const double before = watch.ElapsedNanos();
  watch.Restart();
  EXPECT_LE(watch.ElapsedNanos(), before);
}

TEST(EwmaTest, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.Value(7.0), 7.0);  // Fallback before seeding.
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 10.0);
}

TEST(EwmaTest, Blends) {
  Ewma e(0.5);
  e.Add(10.0);
  e.Add(0.0);
  EXPECT_DOUBLE_EQ(e.Value(), 5.0);
  e.Add(5.0);
  EXPECT_DOUBLE_EQ(e.Value(), 5.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  e.Add(0.0);
  for (int i = 0; i < 100; ++i) e.Add(3.0);
  EXPECT_NEAR(e.Value(), 3.0, 1e-6);
}

TEST(RunningMomentsTest, MeanAndVariance) {
  RunningMoments m;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(m.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(m.Min(), 2.0);
  EXPECT_DOUBLE_EQ(m.Max(), 9.0);
}

TEST(RunningMomentsTest, EmptyIsZero) {
  RunningMoments m;
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 0.0);
}

// --------------------------------------------------------------------
// JSON parser

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().AsBool());
  EXPECT_FALSE(ParseJson("false").value().AsBool(true));
  EXPECT_DOUBLE_EQ(ParseJson("3.25").value().AsDouble(), 3.25);
  EXPECT_EQ(ParseJson("-17").value().AsInt(), -17);
  EXPECT_DOUBLE_EQ(ParseJson("1e3").value().AsDouble(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().AsString(), "hi");
}

TEST(JsonTest, ParsesNestedDocumentAndPreservesOrder) {
  const auto parsed = ParseJson(
      R"({"b": [1, 2, {"x": true}], "a": {"nested": "v"}, "n": null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 3u);
  // Members keep document order.
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.Get("b").size(), 3u);
  EXPECT_EQ(doc.Get("b").At(1).AsInt(), 2);
  EXPECT_TRUE(doc.Get("b").At(2).Get("x").AsBool());
  EXPECT_EQ(doc.Get("a").Get("nested").AsString(), "v");
  EXPECT_TRUE(doc.Get("n").is_null());
  // Chained lookups through missing keys land on the shared null.
  EXPECT_TRUE(doc.Get("missing").Get("deeper").At(9).is_null());
  EXPECT_EQ(doc.Get("missing").AsInt(7), 7);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, DecodesEscapesAndUnicode) {
  const auto parsed = ParseJson(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonTest, ErrorsCarryByteOffsets) {
  const auto truncated = ParseJson(R"({"a": [1, 2)");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().ToString().find("byte"), std::string::npos);

  const auto garbage = ParseJson("{} trailing");
  ASSERT_FALSE(garbage.ok());

  const auto bare = ParseJson("{a: 1}");
  EXPECT_FALSE(bare.ok());

  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonTest, RejectsPathologicalDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, WrongTypeReadsFallBack) {
  const JsonValue number = ParseJson("5").value();
  EXPECT_EQ(number.AsString(), "");
  EXPECT_FALSE(number.AsBool());
  EXPECT_EQ(number.size(), 0u);
  EXPECT_TRUE(number.Get("k").is_null());
  EXPECT_TRUE(number.At(0).is_null());
}

TEST(JsonTest, EscapeRoundTripsThroughParser) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  std::string doc = "\"";
  doc += JsonEscape(nasty);
  doc += "\"";
  const auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().AsString(), nasty);
}

}  // namespace
}  // namespace latest::util
