// Unit and property tests for src/geo: Rect geometry and Grid arithmetic.

#include <gtest/gtest.h>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "util/rng.h"

namespace latest::geo {
namespace {

// --------------------------------------------------------------------
// Rect

TEST(RectTest, ValidityRequiresPositiveArea) {
  EXPECT_TRUE((Rect{0, 0, 1, 1}).IsValid());
  EXPECT_FALSE((Rect{0, 0, 0, 1}).IsValid());
  EXPECT_FALSE((Rect{1, 0, 0, 1}).IsValid());
  EXPECT_FALSE(Rect{}.IsValid());
}

TEST(RectTest, DimensionsAndCenter) {
  const Rect r{0, 0, 4, 2};
  EXPECT_DOUBLE_EQ(r.Width(), 4.0);
  EXPECT_DOUBLE_EQ(r.Height(), 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
  EXPECT_EQ(r.Center(), (Point{2, 1}));
}

TEST(RectTest, FromCenter) {
  const Rect r = Rect::FromCenter({5, 5}, 2, 4);
  EXPECT_EQ(r, (Rect{4, 3, 6, 7}));
}

TEST(RectTest, ContainsIsClosedOpen) {
  const Rect r{0, 0, 1, 1};
  EXPECT_TRUE(r.Contains({0, 0}));      // Min edges included.
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_FALSE(r.Contains({1, 0.5}));   // Max edges excluded.
  EXPECT_FALSE(r.Contains({0.5, 1}));
  EXPECT_FALSE(r.Contains({-0.1, 0.5}));
}

TEST(RectTest, AdjacentCellsPartitionPoints) {
  // The closed-open convention means a boundary point belongs to exactly
  // one of two adjacent cells.
  const Rect left{0, 0, 1, 1};
  const Rect right{1, 0, 2, 1};
  const Point boundary{1, 0.5};
  EXPECT_FALSE(left.Contains(boundary));
  EXPECT_TRUE(right.Contains(boundary));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.ContainsRect({1, 1, 9, 9}));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect({1, 1, 11, 9}));
}

TEST(RectTest, Intersects) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.Intersects({1, 1, 3, 3}));
  EXPECT_FALSE(a.Intersects({2, 0, 3, 2}));  // Touching edges: no area.
  EXPECT_FALSE(a.Intersects({5, 5, 6, 6}));
}

TEST(RectTest, Intersection) {
  const Rect a{0, 0, 2, 2};
  EXPECT_EQ(a.Intersection({1, 1, 3, 3}), (Rect{1, 1, 2, 2}));
  EXPECT_FALSE(a.Intersection({3, 3, 4, 4}).IsValid());
}

TEST(RectTest, OverlapFraction) {
  const Rect a{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(a.OverlapFraction({0, 0, 1, 1}), 0.25);
  EXPECT_DOUBLE_EQ(a.OverlapFraction({0, 0, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapFraction({-10, -10, 20, 20}), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapFraction({5, 5, 6, 6}), 0.0);
}

TEST(RectTest, ClampPullsPointsInside) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains(r.Clamp({-5, 5})));
  EXPECT_TRUE(r.Contains(r.Clamp({5, 15})));
  EXPECT_TRUE(r.Contains(r.Clamp({10, 10})));  // Max corner nudged in.
  const Point inside{3, 4};
  EXPECT_EQ(r.Clamp(inside), inside);
}

// Property: overlap fractions of a partition of a rect sum to 1.
TEST(RectTest, QuadrantOverlapFractionsSumToOne) {
  util::Rng rng(4);
  for (int iter = 0; iter < 100; ++iter) {
    const Rect cell{rng.NextDouble(-100, 0), rng.NextDouble(-100, 0),
                    rng.NextDouble(1, 100), rng.NextDouble(1, 100)};
    const Point c = cell.Center();
    const Rect quads[4] = {
        {cell.min_x, cell.min_y, c.x, c.y},
        {c.x, cell.min_y, cell.max_x, c.y},
        {cell.min_x, c.y, c.x, cell.max_y},
        {c.x, c.y, cell.max_x, cell.max_y},
    };
    double total = 0.0;
    for (const Rect& q : quads) total += cell.OverlapFraction(q);
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

// --------------------------------------------------------------------
// Grid

TEST(GridTest, Dimensions) {
  const Grid g(Rect{0, 0, 64, 32}, 8, 4);
  EXPECT_EQ(g.num_cells(), 32u);
  EXPECT_EQ(g.cols(), 8u);
  EXPECT_EQ(g.rows(), 4u);
}

TEST(GridTest, CellOfCorners) {
  const Grid g(Rect{0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(g.CellOf({0, 0}), 0u);
  EXPECT_EQ(g.CellOf({9.5, 0}), 9u);
  EXPECT_EQ(g.CellOf({0, 9.5}), 90u);
  EXPECT_EQ(g.CellOf({9.5, 9.5}), 99u);
}

TEST(GridTest, OutOfBoundsClampsToBorder) {
  const Grid g(Rect{0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(g.CellOf({-5, -5}), 0u);
  EXPECT_EQ(g.CellOf({15, 15}), 99u);
  EXPECT_EQ(g.CellOf({10, 0}), 9u);  // Exactly on max edge.
}

TEST(GridTest, CellRectRoundTrip) {
  const Grid g(Rect{-10, -10, 10, 10}, 4, 4);
  for (uint32_t cell = 0; cell < g.num_cells(); ++cell) {
    const Rect r = g.CellRect(cell);
    EXPECT_EQ(g.CellOf(r.Center()), cell);
  }
}

TEST(GridTest, CellRectsTileTheBounds) {
  const Grid g(Rect{0, 0, 8, 8}, 4, 4);
  double total_area = 0.0;
  for (uint32_t cell = 0; cell < g.num_cells(); ++cell) {
    total_area += g.CellRect(cell).Area();
  }
  EXPECT_NEAR(total_area, 64.0, 1e-9);
}

TEST(GridTest, CellRangeForSubRect) {
  const Grid g(Rect{0, 0, 10, 10}, 10, 10);
  uint32_t col_lo;
  uint32_t row_lo;
  uint32_t col_hi;
  uint32_t row_hi;
  ASSERT_TRUE(g.CellRange(Rect{2.5, 3.5, 4.5, 6.5}, &col_lo, &row_lo,
                          &col_hi, &row_hi));
  EXPECT_EQ(col_lo, 2u);
  EXPECT_EQ(col_hi, 4u);
  EXPECT_EQ(row_lo, 3u);
  EXPECT_EQ(row_hi, 6u);
}

TEST(GridTest, CellRangeMissesDisjointRect) {
  const Grid g(Rect{0, 0, 10, 10}, 10, 10);
  uint32_t a;
  uint32_t b;
  uint32_t c;
  uint32_t d;
  EXPECT_FALSE(g.CellRange(Rect{20, 20, 30, 30}, &a, &b, &c, &d));
  EXPECT_FALSE(g.CellRange(Rect{}, &a, &b, &c, &d));
}

TEST(GridTest, CellRangeClampsOverhang) {
  const Grid g(Rect{0, 0, 10, 10}, 10, 10);
  uint32_t col_lo;
  uint32_t row_lo;
  uint32_t col_hi;
  uint32_t row_hi;
  ASSERT_TRUE(g.CellRange(Rect{-5, -5, 15, 15}, &col_lo, &row_lo, &col_hi,
                          &row_hi));
  EXPECT_EQ(col_lo, 0u);
  EXPECT_EQ(row_lo, 0u);
  EXPECT_EQ(col_hi, 9u);
  EXPECT_EQ(row_hi, 9u);
}

// Property: every contained point's cell is inside CellRange of any rect
// containing the point.
TEST(GridTest, CellRangeCoversContainedPoints) {
  const Grid g(Rect{-50, -20, 70, 44}, 16, 16);
  util::Rng rng(9);
  for (int iter = 0; iter < 500; ++iter) {
    const Point p{rng.NextDouble(-50, 70), rng.NextDouble(-20, 44)};
    const double w = rng.NextDouble(0.1, 30);
    const double h = rng.NextDouble(0.1, 30);
    const Rect q = Rect::FromCenter(p, w, h);
    if (!q.Contains(p)) continue;
    uint32_t col_lo;
    uint32_t row_lo;
    uint32_t col_hi;
    uint32_t row_hi;
    ASSERT_TRUE(g.CellRange(q, &col_lo, &row_lo, &col_hi, &row_hi));
    const auto [col, row] = g.CellCoords(g.CellOf(p));
    EXPECT_GE(col, col_lo);
    EXPECT_LE(col, col_hi);
    EXPECT_GE(row, row_lo);
    EXPECT_LE(row, row_hi);
  }
}

// Property sweep over grid resolutions: cells partition points uniquely.
class GridResolutionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GridResolutionTest, EveryPointInExactlyOneCell) {
  const uint32_t side = GetParam();
  const Grid g(Rect{0, 0, 1, 1}, side, side);
  util::Rng rng(13);
  for (int iter = 0; iter < 1000; ++iter) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    const uint32_t cell = g.CellOf(p);
    ASSERT_LT(cell, g.num_cells());
    EXPECT_TRUE(g.CellRect(cell).Contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridResolutionTest,
                         ::testing::Values(1u, 2u, 7u, 16u, 64u));

}  // namespace
}  // namespace latest::geo
