// End-to-end serve plane: an in-process ServeServer + blocking clients
// over real loopback sockets. Verifies the three contracts the daemon
// ships on: (1) answers through the tick-batched admission path are
// bit-identical to direct LatestModule calls, (2) overload sheds QUERY
// frames with RETRY_LATER while INGEST keeps landing, and (3) shutdown
// drains every admitted event before closing. The concurrent-clients
// test is the TSan target for the IO-thread / batch-thread handoff.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/serve_server.h"
#include "obs/profiler.h"
#include "obs/request_trace.h"
#include "obs/span.h"
#include "tests/test_http_client.h"
#include "tests/test_stream.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace latest::net {
namespace {

core::LatestConfig TestConfig() {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 20;
  config.monitor_window = 8;
  config.min_queries_between_switches = 8;
  config.estimator.reservoir_capacity = 200;
  config.alpha = 0.0;  // Deterministic lifecycle: replies are comparable.
  return config;
}

std::unique_ptr<core::LatestModule> MustCreate(
    const core::LatestConfig& config) {
  auto created = core::LatestModule::Create(config);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

std::unique_ptr<ServeClient> MustConnect(uint16_t port) {
  auto client = ServeClient::Connect(port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

stream::Query MakeKeywordQuery(uint64_t keyword, int64_t timestamp) {
  stream::Query q;
  q.keywords = {static_cast<stream::KeywordId>(keyword)};
  q.timestamp = timestamp;
  return q;
}

// The core correctness claim: a client speaking the wire protocol gets
// the same estimates and ground truths as code calling the module
// directly, even though the server coalesces admissions into batches.
TEST(ServeE2eTest, EstimatesMatchDirectModuleCalls) {
  auto server_module = MustCreate(TestConfig());
  auto reference_module = MustCreate(TestConfig());

  ServeServerConfig config;
  config.batcher.tick_us = 500;
  config.batcher.max_batch = 64;
  ServeServer server(config, server_module.get());
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server.port());

  // One pipelined connection: admission order == send order, and every
  // admitted event answers in order, so responses line up with this
  // queue of expectations.
  struct Expected {
    bool is_query = false;
    uint64_t request_id = 0;
    double estimate = 0.0;  // From the reference module.
    uint64_t actual = 0;
  };
  std::deque<Expected> expected;
  std::string pipeline;
  uint64_t next_id = 1;
  size_t compared_queries = 0;

  const auto flush_and_check = [&] {
    ASSERT_TRUE(client->SendRaw(pipeline).ok());
    pipeline.clear();
    while (!expected.empty()) {
      auto response = client->ReadResponse();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      const Expected want = expected.front();
      expected.pop_front();
      if (want.is_query) {
        ASSERT_EQ(response->type, FrameType::kQueryResponse);
        EXPECT_EQ(response->query.request_id, want.request_id);
        // Bit-identical, not approximately equal: the batched path must
        // not perturb the estimator pipeline.
        EXPECT_EQ(response->query.estimate, want.estimate);
        EXPECT_EQ(response->query.actual, want.actual);
        ++compared_queries;
      } else {
        ASSERT_EQ(response->type, FrameType::kIngestAck);
        EXPECT_EQ(response->ack.request_id, want.request_id);
      }
    }
  };

  const auto objects =
      testing_support::MakeClusteredObjects(3000, 7, /*duration=*/3000);
  util::Rng rng(23);
  for (size_t i = 0; i < objects.size(); ++i) {
    IngestRequest ingest;
    ingest.request_id = next_id++;
    ingest.object = objects[i];
    EncodeIngest(ingest, &pipeline);
    expected.push_back({false, ingest.request_id, 0.0, 0});
    reference_module->OnObject(objects[i]);

    if (objects[i].timestamp >= 1000 && i % 15 == 0) {
      QueryRequest query;
      query.request_id = next_id++;
      query.query =
          MakeKeywordQuery(rng.NextBounded(50), objects[i].timestamp);
      EncodeQuery(query, &pipeline);
      const core::QueryOutcome outcome =
          reference_module->OnQuery(query.query);
      expected.push_back(
          {true, query.request_id, outcome.estimate, outcome.actual});
    }
    if (expected.size() >= 64) flush_and_check();
  }
  flush_and_check();
  EXPECT_GT(compared_queries, 100u);

  // The mirrored lifecycle state agrees with the reference module too.
  ASSERT_TRUE(client->SendStatus({next_id}).ok());
  auto status = client->ReadResponse();
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(status->type, FrameType::kStatusResponse);
  EXPECT_EQ(status->status.objects_ingested, objects.size());
  EXPECT_EQ(status->status.queries_answered, compared_queries);
  EXPECT_EQ(status->status.shed, 0u);
  EXPECT_EQ(status->status.phase,
            static_cast<uint32_t>(reference_module->phase()));
  EXPECT_EQ(status->status.active_kind,
            static_cast<uint32_t>(reference_module->active_kind()));

  // Batching actually happened (otherwise this test proves nothing
  // about the coalesced path).
  EXPECT_LT(server.stats().batches.load(),
            server.stats().queries_answered.load() +
                server.stats().objects_ingested.load());
  server.Stop();
}

TEST(ServeE2eTest, OverloadShedsQueriesButKeepsIngesting) {
  auto module = MustCreate(TestConfig());
  ServeServerConfig config;
  config.batcher.tick_us = 50000;   // Slow ticks: the queue must absorb.
  config.batcher.max_batch = 1024;  // No occupancy-triggered early batch.
  config.batcher.max_query_queue = 2;
  ServeServer server(config, module.get());
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());

  // Blast one pipelined burst of queries far past the queue cap.
  constexpr uint64_t kQueries = 200;
  std::string burst;
  for (uint64_t i = 0; i < kQueries; ++i) {
    QueryRequest query;
    query.request_id = 1000 + i;
    query.query = MakeKeywordQuery(i % 50, 2000);
    EncodeQuery(query, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());

  // Shed responses come from the IO thread and answered ones from the
  // batch thread, so the interleaving is arbitrary — count by type.
  uint64_t answered = 0;
  uint64_t shed = 0;
  for (uint64_t i = 0; i < kQueries; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->type == FrameType::kQueryResponse) {
      ++answered;
    } else {
      ASSERT_EQ(response->type, FrameType::kRetryLater);
      EXPECT_EQ(response->retry.rejected_type,
                static_cast<uint32_t>(FrameType::kQuery));
      EXPECT_GT(response->retry.backoff_hint_ms, 0u);
      ++shed;
    }
  }
  EXPECT_EQ(answered + shed, kQueries);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(server.stats().shed_queries.load(), shed);

  // Ingest still lands while queries shed: the shed policy protects the
  // stream, not the other way around.
  for (uint64_t i = 0; i < 50; ++i) {
    IngestRequest ingest;
    ingest.request_id = 5000 + i;
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {10.0, 10.0};
    obj.keywords = {static_cast<stream::KeywordId>(i % 50)};
    obj.timestamp = 2000 + static_cast<int64_t>(i);
    ingest.object = obj;
    ASSERT_TRUE(client->SendIngest(ingest).ok());
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->type, FrameType::kIngestAck);
  }
  EXPECT_EQ(server.stats().shed_ingests.load(), 0u);
  server.Stop();
}

TEST(ServeE2eTest, CleanShutdownDrainsAdmittedWork) {
  auto module = MustCreate(TestConfig());
  ServeServerConfig config;
  config.batcher.tick_us = 100000;  // Work is still queued when we Stop.
  config.batcher.max_batch = 1024;
  ServeServer server(config, module.get());
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());

  constexpr uint64_t kEvents = 32;
  std::string burst;
  for (uint64_t i = 0; i < kEvents; ++i) {
    IngestRequest ingest;
    ingest.request_id = i + 1;
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {5.0, 5.0};
    obj.keywords = {1};
    obj.timestamp = static_cast<int64_t>(i);
    ingest.object = obj;
    EncodeIngest(ingest, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());

  // Wait until the IO thread has decoded (and thus admitted) the burst,
  // then stop while the slow tick still holds it queued.
  while (server.stats().frames_in.load() < kEvents) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  // Every admitted ingest was applied and its ack flushed before close.
  EXPECT_EQ(server.stats().objects_ingested.load(), kEvents);
  for (uint64_t i = 0; i < kEvents; ++i) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << "ack " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response->type, FrameType::kIngestAck);
    EXPECT_EQ(response->ack.request_id, i + 1);
  }
  // Then EOF, not a hang.
  EXPECT_FALSE(client->ReadResponse().ok());

  server.Stop();  // Idempotent.
  EXPECT_FALSE(server.running());
}

TEST(ServeE2eTest, GarbageFrameGetsErrorThenClose) {
  auto module = MustCreate(TestConfig());
  ServeServer server(ServeServerConfig{}, module.get());
  ASSERT_TRUE(server.Start().ok());

  auto bad_client = MustConnect(server.port());
  // "GET " as a length prefix claims a ~540 MB payload: instant
  // protocol error (the serve port is not an HTTP port).
  ASSERT_TRUE(bad_client->SendRaw("GET / HTTP/1.1\r\n\r\n").ok());
  auto response = bad_client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kError);
  EXPECT_FALSE(bad_client->ReadResponse().ok());  // Connection closed.

  // A client sending a response-typed frame is equally a protocol error.
  auto confused_client = MustConnect(server.port());
  std::string frame;
  EncodeIngestAck({1}, &frame);
  ASSERT_TRUE(confused_client->SendRaw(frame).ok());
  response = confused_client->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kError);

  EXPECT_GE(server.stats().protocol_errors.load(), 2u);

  // The server survives both and still serves well-formed clients.
  auto good_client = MustConnect(server.port());
  ASSERT_TRUE(good_client->SendStatus({9}).ok());
  auto status = good_client->ReadResponse();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->type, FrameType::kStatusResponse);
  server.Stop();
}

// The TSan acceptance test: concurrent connections drive ingest, query,
// and status traffic through both server threads while the module flips
// phases underneath. Totals must reconcile exactly and shutdown must be
// clean with clients still connected.
TEST(ServeE2eTest, ConcurrentClientsReconcileAndShutdownCleanly) {
  auto module = MustCreate(TestConfig());
  ServeServerConfig config;
  config.batcher.tick_us = 500;
  config.batcher.max_batch = 32;
  ServeServer server(config, module.get());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  constexpr uint64_t kEventsPerClient = 400;
  std::atomic<uint64_t> total_acked{0};
  std::atomic<uint64_t> total_answered{0};
  std::atomic<uint64_t> total_shed{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = ServeClient::Connect(server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      util::Rng rng(100 + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kEventsPerClient; ++i) {
        const uint64_t request_id =
            (static_cast<uint64_t>(t + 1) << 32) | i;
        const int64_t timestamp = static_cast<int64_t>(i * 4);
        util::Status sent;
        if (i % 10 == 3) {
          QueryRequest query;
          query.request_id = request_id;
          query.query = MakeKeywordQuery(rng.NextBounded(50), timestamp);
          sent = (*client)->SendQuery(query);
        } else if (i % 97 == 0) {
          sent = (*client)->SendStatus({request_id});
        } else {
          IngestRequest ingest;
          ingest.request_id = request_id;
          stream::GeoTextObject obj;
          obj.oid = request_id;
          obj.loc = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
          obj.keywords = {static_cast<stream::KeywordId>(
              rng.NextBounded(50))};
          obj.timestamp = timestamp;
          ingest.object = obj;
          sent = (*client)->SendIngest(ingest);
        }
        if (!sent.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto response = (*client)->ReadResponse();
        if (!response.ok()) {
          failures.fetch_add(1);
          return;
        }
        switch (response->type) {
          case FrameType::kIngestAck:
            total_acked.fetch_add(1);
            break;
          case FrameType::kQueryResponse:
            total_answered.fetch_add(1);
            break;
          case FrameType::kStatusResponse:
            break;
          case FrameType::kRetryLater:
            total_shed.fetch_add(1);
            break;
          default:
            failures.fetch_add(1);
            return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().objects_ingested.load(), total_acked.load());
  EXPECT_EQ(server.stats().queries_answered.load(), total_answered.load());
  EXPECT_EQ(server.stats().shed_queries.load() +
                server.stats().shed_ingests.load(),
            total_shed.load());
  EXPECT_EQ(server.stats().protocol_errors.load(), 0u);
  EXPECT_GT(total_answered.load(), 0u);

  // Stop with live (idle) connections: no crash, no hang.
  auto lingering = MustConnect(server.port());
  server.Stop();
  EXPECT_FALSE(lingering->ReadResponse().ok());
}

/// Installs a span collector for one test body and clears the global
/// again even on assertion failure.
class ScopedSpanCollector {
 public:
  explicit ScopedSpanCollector(obs::SpanCollector* collector) {
    obs::SetSpanCollector(collector);
  }
  ~ScopedSpanCollector() { obs::SetSpanCollector(nullptr); }
};

TEST(ServeE2eTest, HelloNegotiationAndMixedVersionInterop) {
  // New client ↔ new server: the handshake enables trace context.
  auto module = MustCreate(TestConfig());
  ServeServer server(ServeServerConfig{}, module.get());
  ASSERT_TRUE(server.Start().ok());
  auto negotiated = ServeClient::ConnectNegotiated(server.port());
  ASSERT_TRUE(negotiated.ok()) << negotiated.status().ToString();
  EXPECT_TRUE((*negotiated)->trace_enabled());

  // A trailered request round-trips on the negotiated connection.
  IngestRequest traced;
  traced.request_id = 1;
  traced.object.oid = 1;
  traced.object.loc = {1.0, 1.0};
  traced.object.keywords = {7};
  traced.object.timestamp = 100;
  traced.trace = {/*present=*/true, /*trace_id=*/0xfeed, /*sampled=*/true};
  ASSERT_TRUE((*negotiated)->SendIngest(traced).ok());
  auto ack = (*negotiated)->ReadResponse();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, FrameType::kIngestAck);

  // Old client (no HELLO) ↔ new server: the pre-extension wire format
  // still works on the same port.
  auto old_client = MustConnect(server.port());
  ASSERT_TRUE(old_client->SendStatus({2}).ok());
  auto status = old_client->ReadResponse();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->type, FrameType::kStatusResponse);
  server.Stop();

  // New client ↔ old server (HELLO unknown): ConnectNegotiated falls
  // back to an untraced connection transparently.
  auto old_module = MustCreate(TestConfig());
  ServeServerConfig old_config;
  old_config.accept_hello = false;
  ServeServer old_server(old_config, old_module.get());
  ASSERT_TRUE(old_server.Start().ok());
  auto fallback = ServeClient::ConnectNegotiated(old_server.port());
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE((*fallback)->trace_enabled());
  ASSERT_TRUE((*fallback)->SendStatus({3}).ok());
  status = (*fallback)->ReadResponse();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->type, FrameType::kStatusResponse);
  old_server.Stop();
}

// The tentpole acceptance: traced requests produce waterfalls whose
// stage durations sum exactly to the end-to-end latency, and span trees
// that cross the IO → batch thread boundary under one trace id.
TEST(ServeE2eTest, TracedWaterfallsReconcileAndSpansLinkAcrossThreads) {
  obs::SpanCollector collector(1 << 14);
  ScopedSpanCollector scoped(&collector);

  auto module = MustCreate(TestConfig());
  ServeServerConfig config;
  config.batcher.tick_us = 500;
  config.batcher.max_batch = 64;
  ServeServer server(config, module.get());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(obs::GetRequestTraceStore(), &server.request_trace());

  auto client_result = ServeClient::ConnectNegotiated(server.port());
  ASSERT_TRUE(client_result.ok());
  auto client = std::move(client_result).value();
  ASSERT_TRUE(client->trace_enabled());

  const auto objects =
      testing_support::MakeClusteredObjects(1200, 7, /*duration=*/3000);
  util::Rng rng(29);
  uint64_t next_id = 1;
  uint64_t traced_queries = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    IngestRequest ingest;
    ingest.request_id = next_id++;
    ingest.object = objects[i];
    ingest.trace = {/*present=*/true, /*trace_id=*/0x40000000u + i,
                    /*sampled=*/(i % 8 == 0)};
    ASSERT_TRUE(client->SendIngest(ingest).ok());
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->type, FrameType::kIngestAck);

    if (objects[i].timestamp >= 1000 && i % 15 == 0) {
      QueryRequest query;
      query.request_id = next_id++;
      query.query =
          MakeKeywordQuery(rng.NextBounded(50), objects[i].timestamp);
      query.trace = {/*present=*/true, /*trace_id=*/0x80000000u + i,
                     /*sampled=*/true};
      ASSERT_TRUE(client->SendQuery(query).ok());
      response = client->ReadResponse();
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->type, FrameType::kQueryResponse);
      ++traced_queries;
    }
  }
  ASSERT_GT(traced_queries, 20u);
  server.Stop();
  EXPECT_EQ(obs::GetRequestTraceStore(), nullptr);

  // Every flushed waterfall reconciles exactly: the five stages are
  // contiguous by construction, so their sum IS the total.
  const std::vector<obs::RequestTraceStore::Record> recent =
      server.request_trace().Recent();
  ASSERT_FALSE(recent.empty());
  size_t reconciled = 0;
  const obs::RequestTraceStore::Record* sampled_query = nullptr;
  for (const auto& record : recent) {
    if (!record.flushed) continue;
    EXPECT_EQ(record.queue_wait_ns + record.batch_form_ns +
                  record.module_ns + record.serialize_ns + record.flush_ns,
              record.total_ns)
        << "request " << record.request_id;
    EXPECT_NE(record.trace_id, 0u);
    ++reconciled;
    if (record.request_class ==
            obs::RequestTraceStore::RequestClass::kQuery &&
        record.trace_sampled && record.root_span_id != 0) {
      sampled_query = &record;
      // Module attribution nests inside the module stage.
      EXPECT_LE(record.ground_truth_ns + record.estimate_ns +
                    record.model_ns,
                record.module_ns + 1000000);
    }
  }
  ASSERT_GT(reconciled, 0u);
  ASSERT_NE(sampled_query, nullptr);

  // The slowest board only holds finalised records.
  for (const auto& record : server.request_trace().Slowest()) {
    EXPECT_TRUE(record.flushed);
    EXPECT_GT(record.total_ns, 0);
  }

  // Span linkage: the sampled query's root span exists, carries the
  // wire trace id, parents the six serve stages, and the module_run
  // span ran on a different thread than the flush-time emission.
  const std::vector<obs::SpanRecord> spans = collector.Snapshot();
  const obs::SpanRecord* root = nullptr;
  for (const auto& span : spans) {
    if (span.id == sampled_query->root_span_id) root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->name, "serve_request");
  EXPECT_EQ(root->trace_id, sampled_query->trace_id);
  EXPECT_EQ(root->parent_id, 0u);

  std::map<std::string, const obs::SpanRecord*> children;
  const obs::SpanRecord* module_run = nullptr;
  for (const auto& span : spans) {
    if (span.parent_id != root->id) continue;
    EXPECT_EQ(span.trace_id, root->trace_id) << span.name;
    if (std::string(span.name) == "module_run") {
      module_run = &span;
    } else {
      children.emplace(span.name, &span);
    }
  }
  for (const char* stage : {"io_read", "queue_wait", "batch_form",
                            "module_query", "serialize", "flush"}) {
    EXPECT_EQ(children.count(stage), 1u) << "missing stage " << stage;
  }
  // The synthesized stages were emitted from the IO thread; the real
  // module_run span (when this request led its batch) ran on the batch
  // thread — when present, the tree crosses threads.
  bool crossed = false;
  for (const auto& span : spans) {
    if (span.name != nullptr && std::string(span.name) == "module_run" &&
        span.parent_id != 0) {
      for (const auto& other : spans) {
        if (other.id == span.parent_id && other.tid != span.tid) {
          crossed = true;
        }
      }
    }
  }
  EXPECT_TRUE(crossed) << "no trace tree crossed the IO/batch threads";
  if (module_run != nullptr) {
    const auto* stage = children["module_query"];
    ASSERT_NE(stage, nullptr);
    EXPECT_NE(module_run->tid, stage->tid);
  }
}

// Tracing must never perturb the estimation pipeline: a fully traced +
// sampled connection gets answers bit-identical to direct module calls
// (the tracing-off reference path).
TEST(ServeE2eTest, TracingDoesNotPerturbEstimates) {
  obs::SpanCollector collector(1 << 13);
  ScopedSpanCollector scoped(&collector);

  auto server_module = MustCreate(TestConfig());
  auto reference_module = MustCreate(TestConfig());
  ServeServerConfig config;
  config.batcher.tick_us = 500;
  ServeServer server(config, server_module.get());
  ASSERT_TRUE(server.Start().ok());
  auto client_result = ServeClient::ConnectNegotiated(server.port());
  ASSERT_TRUE(client_result.ok());
  auto client = std::move(client_result).value();
  ASSERT_TRUE(client->trace_enabled());

  const auto objects =
      testing_support::MakeClusteredObjects(1500, 7, /*duration=*/3000);
  util::Rng rng(23);
  uint64_t next_id = 1;
  size_t compared = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    IngestRequest ingest;
    ingest.request_id = next_id++;
    ingest.object = objects[i];
    ingest.trace = {/*present=*/true, /*trace_id=*/next_id,
                    /*sampled=*/true};
    ASSERT_TRUE(client->SendIngest(ingest).ok());
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->type, FrameType::kIngestAck);
    reference_module->OnObject(objects[i]);

    if (objects[i].timestamp >= 1000 && i % 15 == 0) {
      QueryRequest query;
      query.request_id = next_id++;
      query.query =
          MakeKeywordQuery(rng.NextBounded(50), objects[i].timestamp);
      query.trace = {/*present=*/true, /*trace_id=*/next_id,
                     /*sampled=*/true};
      ASSERT_TRUE(client->SendQuery(query).ok());
      response = client->ReadResponse();
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->type, FrameType::kQueryResponse);
      const core::QueryOutcome outcome =
          reference_module->OnQuery(query.query);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(response->query.estimate, outcome.estimate);
      EXPECT_EQ(response->query.actual, outcome.actual);
      ++compared;
    }
  }
  EXPECT_GT(compared, 50u);
  server.Stop();
}

// TSan target: /requestz, /profilez, /statusz, and /vars scraped
// concurrently with live serve traffic must stay race-free and return
// well-formed responses.
TEST(ServeE2eTest, ConcurrentIntrospectionScrapesDuringLoad) {
  obs::SpanCollector collector(1 << 13);
  ScopedSpanCollector scoped(&collector);
  obs::Profiler profiler;
  obs::SetProfiler(&profiler);

  core::LatestConfig module_config = TestConfig();
  module_config.enable_introspection = true;
  module_config.introspection_port = 0;  // Ephemeral.
  auto module = MustCreate(module_config);
  ASSERT_NE(module->introspection(), nullptr);
  const uint16_t http_port = module->introspection()->port();

  ServeServerConfig config;
  config.batcher.tick_us = 500;
  ServeServer server(config, module.get());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<int> scrape_failures{0};
  std::thread load([&] {
    auto client_result = ServeClient::ConnectNegotiated(server.port());
    if (!client_result.ok()) {
      scrape_failures.fetch_add(100);
      return;
    }
    auto client = std::move(client_result).value();
    const auto objects =
        testing_support::MakeClusteredObjects(2000, 7, /*duration=*/3000);
    util::Rng rng(31);
    uint64_t next_id = 1;
    for (size_t i = 0; i < objects.size() && !done.load(); ++i) {
      IngestRequest ingest;
      ingest.request_id = next_id++;
      ingest.object = objects[i];
      ingest.trace = {true, next_id, i % 4 == 0};
      if (!client->SendIngest(ingest).ok() ||
          !client->ReadResponse().ok()) {
        return;
      }
      if (objects[i].timestamp >= 1000 && i % 10 == 0) {
        QueryRequest query;
        query.request_id = next_id++;
        query.query =
            MakeKeywordQuery(rng.NextBounded(50), objects[i].timestamp);
        query.trace = {true, next_id, true};
        if (!client->SendQuery(query).ok() ||
            !client->ReadResponse().ok()) {
          return;
        }
      }
    }
  });

  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        for (const char* path :
             {"/requestz", "/requestz?json", "/statusz", "/vars"}) {
          const auto result = testing_support::HttpGet(http_port, path);
          if (result.status != 200) scrape_failures.fetch_add(1);
        }
        if (t == 0) {
          // One sampling window per round on one scraper; concurrent
          // /profilez calls serialize inside the profiler.
          const auto profile = testing_support::HttpGet(
              http_port, "/profilez?seconds=0.05");
          if (profile.status != 200) scrape_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& scraper : scrapers) scraper.join();
  done.store(true);
  load.join();
  EXPECT_EQ(scrape_failures.load(), 0);

  // The JSON view parses and reports appended requests.
  const auto json = testing_support::HttpGet(http_port, "/requestz?json");
  ASSERT_EQ(json.status, 200);
  auto parsed = util::ParseJson(json.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->Get("total_appended").AsInt(), 0);

  server.Stop();
  obs::SetProfiler(nullptr);
}

}  // namespace
}  // namespace latest::net
