// Unit tests for the slice-partitioned columnar window store.

#include "stream/window_store.h"

#include <vector>

#include <gtest/gtest.h>

#include "stream/object.h"

namespace latest::stream {
namespace {

GeoTextObject MakeObject(ObjectId oid, Timestamp ts, double x, double y,
                         std::vector<KeywordId> kws = {}) {
  GeoTextObject obj;
  obj.oid = oid;
  obj.timestamp = ts;
  obj.loc = {x, y};
  obj.keywords = std::move(kws);
  return obj;
}

TEST(WindowStoreTest, AppendAssignsMonotoneRowsAndStoresColumns) {
  WindowStore store(1000);
  const WindowStore::Row r0 = store.Append(MakeObject(7, 10, 1.0, 2.0, {3}));
  const WindowStore::Row r1 = store.Append(MakeObject(8, 20, 4.0, 5.0));
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  EXPECT_EQ(store.end_row(), 2u);
  EXPECT_EQ(store.resident_rows(), 2u);

  const WindowStore::Reader reader(store);
  EXPECT_EQ(reader.timestamp(r0), 10);
  EXPECT_EQ(reader.oid(r0), 7u);
  EXPECT_EQ(reader.loc(r1).x, 4.0);
  EXPECT_EQ(reader.loc(r1).y, 5.0);
  const auto [kw0, len0] = reader.keywords(r0);
  ASSERT_EQ(len0, 1u);
  EXPECT_EQ(kw0[0], 3u);
  const auto [kw1, len1] = reader.keywords(r1);
  (void)kw1;
  EXPECT_EQ(len1, 0u);
}

TEST(WindowStoreTest, SlicesSealAtAlignedBoundaries) {
  WindowStore store(1000);
  store.Append(MakeObject(0, 250, 1, 1));
  store.Append(MakeObject(1, 999, 1, 1));
  EXPECT_EQ(store.slices_resident(), 1u);
  // 1000 is the aligned boundary of the first slice: a new slice opens.
  store.Append(MakeObject(2, 1000, 1, 1));
  EXPECT_EQ(store.slices_resident(), 2u);
  store.Append(MakeObject(3, 2500, 1, 1));
  EXPECT_EQ(store.slices_resident(), 3u);
}

TEST(WindowStoreTest, DropBeforeRetiresSealedSlicesOnly) {
  WindowStore store(1000);
  for (int i = 0; i < 4; ++i) {
    store.Append(MakeObject(i, i * 1000, 1, 1, {static_cast<KeywordId>(i)}));
  }
  ASSERT_EQ(store.slices_resident(), 4u);
  EXPECT_EQ(store.first_live_row(), 0u);

  // Cutoff 2000 retires the slices whose newest timestamp is < 2000.
  store.DropBefore(2000);
  EXPECT_EQ(store.slices_resident(), 2u);
  EXPECT_EQ(store.first_live_row(), 2u);
  EXPECT_EQ(store.resident_rows(), 2u);

  // The open (newest) slice survives even a cutoff beyond its contents.
  store.DropBefore(100000);
  EXPECT_EQ(store.slices_resident(), 1u);
  EXPECT_EQ(store.first_live_row(), 3u);

  // Remaining rows still resolve.
  const WindowStore::Reader reader(store);
  EXPECT_EQ(reader.timestamp(3), 3000);
}

TEST(WindowStoreTest, ArenaBytesTracksLiveKeywordPayload) {
  WindowStore store(1000);
  store.Append(MakeObject(0, 0, 1, 1, {1, 2, 3}));
  store.Append(MakeObject(1, 1000, 1, 1, {4}));
  EXPECT_EQ(store.arena_bytes(), 4 * sizeof(KeywordId));
  store.DropBefore(1000);  // Drops the first slice (3 keywords).
  EXPECT_EQ(store.arena_bytes(), sizeof(KeywordId));
}

TEST(WindowStoreTest, DroppedSlicesAreRecycledWithCapacity) {
  WindowStore store(1000);
  for (int i = 0; i < 100; ++i) store.Append(MakeObject(i, 0, 1, 1, {1, 2}));
  store.Append(MakeObject(100, 1000, 1, 1));
  const uint64_t bytes_before = store.MemoryBytes();
  store.DropBefore(1000);
  // The retired slice keeps its buffers on the free list...
  EXPECT_EQ(store.MemoryBytes(), bytes_before);
  // ...and the next slice reuses them instead of allocating.
  for (int i = 0; i < 100; ++i) {
    store.Append(MakeObject(200 + i, 2000, 1, 1, {1, 2}));
  }
  EXPECT_EQ(store.MemoryBytes(), bytes_before);
}

TEST(WindowStoreTest, ReaderResolvesRowsAcrossManySlices) {
  WindowStore store(10);
  constexpr int kRows = 200;
  for (int i = 0; i < kRows; ++i) {
    store.Append(MakeObject(i, i * 5, i * 0.25, 1,
                            {static_cast<KeywordId>(i % 7)}));
  }
  EXPECT_GT(store.slices_resident(), 50u);
  const WindowStore::Reader reader(store);
  // Ascending (cache-friendly) and descending (cache-hostile) passes.
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(reader.timestamp(i), i * 5) << i;
  }
  for (int i = kRows - 1; i >= 0; --i) {
    EXPECT_EQ(reader.loc(i).x, i * 0.25) << i;
    const auto [kw, len] = reader.keywords(i);
    ASSERT_EQ(len, 1u);
    EXPECT_EQ(kw[0], static_cast<KeywordId>(i % 7)) << i;
  }
}

TEST(WindowStoreTest, ColumnSlabExposesWholeSliceRange) {
  WindowStore store(1000);
  for (int i = 0; i < 5; ++i) store.Append(MakeObject(i, 100, 2.0 * i, 1));
  store.Append(MakeObject(5, 1000, 9, 9));
  const WindowStore::Reader reader(store);
  const WindowStore::ColumnSlab slab = reader.slab(2);
  EXPECT_EQ(slab.base, 0u);
  EXPECT_EQ(slab.end, 5u);
  EXPECT_TRUE(slab.contains(0));
  EXPECT_TRUE(slab.contains(4));
  EXPECT_FALSE(slab.contains(5));
  for (WindowStore::Row r = slab.base; r < slab.end; ++r) {
    EXPECT_EQ(slab.locs[r - slab.base].x, 2.0 * r);
    EXPECT_EQ(slab.timestamps[r - slab.base], 100);
  }
}

TEST(WindowStoreTest, ClearKeepsRowIdsMonotone) {
  WindowStore store(1000);
  store.Append(MakeObject(0, 0, 1, 1));
  store.Append(MakeObject(1, 1, 1, 1));
  store.Clear();
  EXPECT_EQ(store.resident_rows(), 0u);
  EXPECT_EQ(store.arena_bytes(), 0u);
  const WindowStore::Row r = store.Append(MakeObject(2, 2, 1, 1));
  EXPECT_EQ(r, 2u);
  EXPECT_EQ(store.first_live_row(), 2u);
}

}  // namespace
}  // namespace latest::stream
