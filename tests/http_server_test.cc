// Embedded HTTP exposition server: request routing, malformed input,
// clean shutdown, and — the TSan target — concurrent scrapes of a live
// LatestModule's introspection endpoints while the stream thread ingests.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "obs/http_server.h"
#include "obs/metrics_registry.h"
#include "obs/statusz.h"
#include "tests/test_http_client.h"
#include "tests/test_stream.h"

namespace latest::obs {
namespace {

using testing_support::HttpGet;
using testing_support::HttpGetResult;
using testing_support::HttpRequestRaw;

TEST(HttpServerTest, ServesRegisteredHandlerOnEphemeralPort) {
  HttpServer server;
  server.Handle("/hello", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "hi " + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  const HttpGetResult result = HttpGet(server.port(), "/hello?name=x");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hi name=x");
  EXPECT_NE(result.headers.find("Content-Length: 9"), std::string::npos);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404WithEndpointList) {
  HttpServer server;
  server.Handle("/known", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  const HttpGetResult result = HttpGet(server.port(), "/missing");
  EXPECT_EQ(result.status, 404);
  EXPECT_NE(result.body.find("/known"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, NonGetIs405AndHeadStripsBody) {
  HttpServer server;
  server.Handle("/data", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "payload";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());

  const HttpGetResult post = HttpGet(server.port(), "/data", "POST");
  EXPECT_EQ(post.status, 405);

  const HttpGetResult head = HttpGet(server.port(), "/data", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  // HEAD still advertises the entity length.
  EXPECT_NE(head.headers.find("Content-Length: 7"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestsGet400NotConnectionDrop) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  for (const char* junk :
       {"NONSENSE\r\n\r\n", "GET\r\n\r\n", "\r\n\r\n",
        "GET  HTTP/1.1\r\n\r\n"}) {
    const HttpGetResult result = HttpRequestRaw(server.port(), junk);
    EXPECT_EQ(result.status, 400) << "request: " << junk;
  }
  // The server survives malformed input and still serves good requests.
  EXPECT_EQ(HttpGet(server.port(), "/x").status, 200);
  server.Stop();
}

TEST(HttpServerTest, PortConflictFailsStart) {
  HttpServer first;
  first.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(first.Start(0).ok());
  HttpServer second;
  second.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  EXPECT_FALSE(second.Start(first.port()).ok());
  first.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndDestructorCleansUp) {
  auto server = std::make_unique<HttpServer>();
  server->Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server->Start(0).ok());
  const uint16_t port = server->port();
  EXPECT_EQ(HttpGet(port, "/").status, 200);
  server->Stop();
  server->Stop();  // Second Stop is a no-op.
  EXPECT_FALSE(server->running());
  // After Stop the port refuses connections.
  EXPECT_EQ(HttpGet(port, "/").status, 0);
  server.reset();  // Destructor after explicit Stop: no double-free.

  // Destructor alone also shuts down.
  auto second = std::make_unique<HttpServer>();
  second->Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(second->Start(0).ok());
  second.reset();
}

TEST(HttpServerTest, RestartAfterStop) {
  HttpServer server;
  server.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(HttpGet(server.port(), "/").status, 200);
  server.Stop();
}

// The TSan acceptance test: scraper threads hammer every introspection
// endpoint while the owning thread streams objects and queries through
// the module. Handlers read only thread-safe telemetry sources, so this
// must be free of data races and torn reads.
TEST(HttpServerTest, ConcurrentScrapesDuringLiveIngest) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 20;
  config.monitor_window = 8;
  config.estimator.reservoir_capacity = 200;
  config.alpha = 0.0;
  config.enable_introspection = true;
  config.introspection_port = 0;
  config.slo_tick_ms = 5;  // Exercise the ticker thread too.
  auto created = core::LatestModule::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto module = std::move(created).value();
  ASSERT_NE(module->introspection(), nullptr);
  const uint16_t port = module->introspection()->port();
  ASSERT_NE(port, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};
  const std::vector<std::string> paths = {"/metrics", "/vars", "/statusz",
                                          "/healthz", "/tracez", "/"};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& path = paths[i++ % paths.size()];
        const HttpGetResult result = HttpGet(port, path);
        // /healthz may legitimately be 503 while an SLO breaches.
        if (result.status != 200 && result.status != 503) {
          scrape_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto objects =
      testing_support::MakeClusteredObjects(4000, 3, /*duration=*/4000);
  util::Rng rng(17);
  for (size_t i = 0; i < objects.size(); ++i) {
    module->OnObject(objects[i]);
    if (objects[i].timestamp >= 1000 && i % 10 == 0) {
      stream::Query q;
      q.keywords = {static_cast<stream::KeywordId>(rng.NextBounded(50))};
      q.timestamp = objects[i].timestamp;
      module->OnQuery(q);
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(scrape_failures.load(), 0);

  // The scraped metrics reflect the stream that just ran.
  const HttpGetResult metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("latest_objects_ingested_total 4000"),
            std::string::npos);
  const HttpGetResult statusz = HttpGet(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("phase:"), std::string::npos);
  EXPECT_NE(statusz.body.find("scoreboard"), std::string::npos);

  // Module destruction (server + ticker teardown) under load is clean.
  module.reset();
}

TEST(HttpServerTest, IntrospectionIndexListsEndpoints) {
  MetricsRegistry registry;
  IntrospectionSources sources;
  sources.registry = &registry;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.Start(0, /*slo_tick_ms=*/0).ok());
  const HttpGetResult index = HttpGet(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  for (const char* endpoint :
       {"/metrics", "/vars", "/healthz", "/statusz", "/tracez"}) {
    EXPECT_NE(index.body.find(endpoint), std::string::npos) << endpoint;
  }
  // /tracez without a collector reports that tracing is dark.
  const HttpGetResult tracez = HttpGet(server.port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("not installed"), std::string::npos);
  // ?dump without a collector is a 404, not a crash.
  EXPECT_EQ(HttpGet(server.port(), "/tracez?dump").status, 404);
  server.Stop();
}

TEST(HttpServerTest, IntrospectionVarsAndMetricsAgree) {
  MetricsRegistry registry;
  registry.GetCounter("agree_total", "test")->Increment(7);
  IntrospectionSources sources;
  sources.registry = &registry;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.Start(0, 0).ok());
  const HttpGetResult metrics = HttpGet(server.port(), "/metrics");
  const HttpGetResult vars = HttpGet(server.port(), "/vars");
  EXPECT_NE(metrics.headers.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("agree_total 7"), std::string::npos);
  EXPECT_NE(vars.headers.find("application/json"), std::string::npos);
  EXPECT_NE(vars.body.find("\"agree_total\""), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace latest::obs
