// Tests for the CSV stream loader.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "workload/csv_loader.h"

namespace latest::workload {
namespace {

TEST(CsvLineTest, ParsesFullLine) {
  stream::KeywordDictionary dictionary;
  stream::GeoTextObject obj;
  ASSERT_TRUE(
      ParseCsvLine("1500,-73.9,40.7,fire;help", &dictionary, &obj).ok());
  EXPECT_EQ(obj.timestamp, 1500);
  EXPECT_DOUBLE_EQ(obj.loc.x, -73.9);
  EXPECT_DOUBLE_EQ(obj.loc.y, 40.7);
  ASSERT_EQ(obj.keywords.size(), 2u);
  stream::KeywordId fire;
  ASSERT_TRUE(dictionary.Lookup("fire", &fire));
  EXPECT_TRUE(obj.MatchesAnyKeyword({fire}));
}

TEST(CsvLineTest, EmptyKeywordFieldIsAllowed) {
  stream::KeywordDictionary dictionary;
  stream::GeoTextObject obj;
  ASSERT_TRUE(ParseCsvLine("10,1.5,2.5,", &dictionary, &obj).ok());
  EXPECT_TRUE(obj.keywords.empty());
}

TEST(CsvLineTest, TrimsWhitespaceAndDeduplicates) {
  stream::KeywordDictionary dictionary;
  stream::GeoTextObject obj;
  ASSERT_TRUE(
      ParseCsvLine(" 10 , 1.5 , 2.5 , fire ; fire ; help ", &dictionary, &obj)
          .ok());
  EXPECT_EQ(obj.keywords.size(), 2u);
}

TEST(CsvLineTest, RejectsMalformedRows) {
  stream::KeywordDictionary dictionary;
  stream::GeoTextObject obj;
  EXPECT_FALSE(ParseCsvLine("", &dictionary, &obj).ok());
  EXPECT_FALSE(ParseCsvLine("10,1.5", &dictionary, &obj).ok());
  EXPECT_FALSE(ParseCsvLine("abc,1.5,2.5,kw", &dictionary, &obj).ok());
  EXPECT_FALSE(ParseCsvLine("10,xx,2.5,kw", &dictionary, &obj).ok());
  EXPECT_FALSE(ParseCsvLine("10,1.5,yy,kw", &dictionary, &obj).ok());
  EXPECT_FALSE(ParseCsvLine("-5,1.5,2.5,kw", &dictionary, &obj).ok());
}

TEST(CsvStreamTest, ParsesMultipleLinesWithCommentsAndBlanks) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream(
      "# header comment\n"
      "100,1.0,2.0,fire\n"
      "\n"
      "200,3.0,4.0,help;rescue\n"
      "300,5.0,6.0,\n",
      &dictionary);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objects.size(), 3u);
  EXPECT_EQ(result->lines_skipped, 2u);
  EXPECT_EQ(result->objects[0].oid, 0u);
  EXPECT_EQ(result->objects[2].oid, 2u);
  EXPECT_EQ(result->objects[1].keywords.size(), 2u);
}

TEST(CsvStreamTest, RejectsTimestampRegression) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream(
      "100,1.0,2.0,a\n"
      "50,1.0,2.0,b\n",
      &dictionary);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(CsvStreamTest, ErrorNamesTheLine) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream(
      "100,1.0,2.0,a\n"
      "garbage\n",
      &dictionary);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(CsvStreamTest, EmptyContentYieldsEmptyStream) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream("", &dictionary);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->objects.empty());
}

TEST(CsvStreamTest, DictionaryCountsOccurrences) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream(
      "1,0,0,fire\n"
      "2,0,0,fire;help\n",
      &dictionary);
  ASSERT_TRUE(result.ok());
  stream::KeywordId fire;
  ASSERT_TRUE(dictionary.Lookup("fire", &fire));
  EXPECT_EQ(dictionary.OccurrenceCount(fire), 2u);
}

TEST(CsvFileTest, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/latest_csv_test.csv";
  {
    std::ofstream out(path);
    out << "# synthetic mini stream\n";
    out << "100,-73.9,40.7,fire;downtown\n";
    out << "250,-73.8,40.8,coffee\n";
  }
  stream::KeywordDictionary dictionary;
  const auto result = LoadCsvStream(path, &dictionary);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objects.size(), 2u);
  EXPECT_EQ(result->objects[1].timestamp, 250);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  stream::KeywordDictionary dictionary;
  const auto result =
      LoadCsvStream("/nonexistent/latest-test.csv", &dictionary);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(CsvStreamTest, NoTrailingNewline) {
  stream::KeywordDictionary dictionary;
  const auto result = ParseCsvStream("100,1.0,2.0,fire", &dictionary);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objects.size(), 1u);
}

}  // namespace
}  // namespace latest::workload
