// Tests for the H4096 two-dimensional histogram estimator.

#include <gtest/gtest.h>

#include "estimators/histogram2d_estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

TEST(HistogramEstimatorTest, EmptyEstimatesZero) {
  Histogram2dEstimator est(TestEstimatorConfig());
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 50, 50})), 0.0);
  EXPECT_EQ(est.seen_population(), 0u);
}

TEST(HistogramEstimatorTest, GridSideFromCellBudget) {
  auto config = TestEstimatorConfig();
  config.histogram_cells = 4096;
  Histogram2dEstimator est(config);
  EXPECT_EQ(est.grid().cols(), 64u);
  EXPECT_EQ(est.grid().rows(), 64u);
}

TEST(HistogramEstimatorTest, NonSquareBudgetRoundsDown) {
  auto config = TestEstimatorConfig();
  config.histogram_cells = 5000;  // 70*70=4900 <= 5000 < 71*71.
  Histogram2dEstimator est(config);
  EXPECT_EQ(est.grid().cols(), 70u);
}

TEST(HistogramEstimatorTest, CellAlignedQueryIsExact) {
  auto config = TestEstimatorConfig();
  config.histogram_cells = 16;  // 4x4 grid over [0,100)^2: 25-unit cells.
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(2000, 1);
  FeedObjects(&est, config.window, objects);

  // A query exactly covering cells: estimate must equal truth (within
  // floating point) because no partial cells are involved.
  const stream::Query q = MakeSpatialQuery({0, 0, 50, 50});
  const uint64_t truth = testing_support::BruteForceCount(objects, q, 0);
  EXPECT_NEAR(est.Estimate(q), static_cast<double>(truth), 1.0);
}

TEST(HistogramEstimatorTest, PartialCellUsesFractionalOverlap) {
  auto config = TestEstimatorConfig();
  config.histogram_cells = 1;  // Single cell covering everything.
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 2);
  FeedObjects(&est, config.window, objects);
  // A quarter-domain query must estimate ~population/4 under uniformity.
  const double estimate = est.Estimate(MakeSpatialQuery({0, 0, 50, 50}));
  EXPECT_NEAR(estimate, 250.0, 1.0);
}

TEST(HistogramEstimatorTest, AccurateOnSpatialQueries) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 3);
  FeedObjects(&est, config.window, objects);
  const stream::Timestamp cutoff = 1000 - config.window.window_length_ms;

  util::Rng rng(4);
  double total_rel_error = 0.0;
  int trials = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const geo::Point c{rng.NextDouble(10, 90), rng.NextDouble(10, 90)};
    const stream::Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(5, 30), rng.NextDouble(5, 30)));
    const uint64_t truth = testing_support::BruteForceCount(objects, q, cutoff);
    if (truth < 20) continue;
    total_rel_error +=
        std::abs(est.Estimate(q) - static_cast<double>(truth)) / truth;
    ++trials;
  }
  ASSERT_GT(trials, 10);
  EXPECT_LT(total_rel_error / trials, 0.15);
}

TEST(HistogramEstimatorTest, KeywordQueriesFallBackToPopulation) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 5);
  FeedObjects(&est, config.window, objects);
  // Purely spatial statistics: a keyword query returns everything seen.
  EXPECT_DOUBLE_EQ(est.Estimate(MakeKeywordQuery({3})),
                   static_cast<double>(est.seen_population()));
}

TEST(HistogramEstimatorTest, HybridIgnoresKeywordPredicate) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(5000, 6);
  FeedObjects(&est, config.window, objects);
  const geo::Rect r{20, 20, 40, 40};
  EXPECT_DOUBLE_EQ(est.Estimate(MakeHybridQuery(r, {3})),
                   est.Estimate(MakeSpatialQuery(r)));
}

TEST(HistogramEstimatorTest, WindowExpiryDropsOldSlices) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  // 1000 objects spread over 2x the window: after feeding, only the last
  // window's worth must remain.
  const auto objects = MakeClusteredObjects(1000, 7, /*duration=*/2000);
  FeedObjects(&est, config.window, objects);
  // Window = 1000ms of a 2000ms stream = ~half the objects.
  EXPECT_LT(est.seen_population(), 600u);
  EXPECT_GT(est.seen_population(), 400u);
}

TEST(HistogramEstimatorTest, ExpiredWindowEstimatesMatchRecentTruth) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 8, /*duration=*/3000);
  FeedObjects(&est, config.window, objects);
  // Live slices are the newest 10 (current + 9 past); compare against the
  // brute force over the slice-aligned cutoff.
  const stream::Timestamp slice = config.window.SliceDuration();
  const stream::Timestamp cutoff =
      (objects.back().timestamp / slice - 9) * slice;
  const stream::Query q = MakeSpatialQuery({0, 0, 100, 100});
  const uint64_t truth = testing_support::BruteForceCount(objects, q, cutoff);
  EXPECT_NEAR(est.Estimate(q), static_cast<double>(truth),
              0.02 * truth + 2.0);
}

TEST(HistogramEstimatorTest, DisjointQueryEstimatesZero) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 9);
  FeedObjects(&est, config.window, objects);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({200, 200, 300, 300})), 0.0);
}

TEST(HistogramEstimatorTest, ResetWipesEverything) {
  auto config = TestEstimatorConfig();
  Histogram2dEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 10);
  FeedObjects(&est, config.window, objects);
  est.Reset();
  EXPECT_EQ(est.seen_population(), 0u);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 100, 100})), 0.0);
}

TEST(HistogramEstimatorTest, MemoryScalesWithCells) {
  auto small_cfg = TestEstimatorConfig();
  small_cfg.histogram_cells = 256;
  auto large_cfg = TestEstimatorConfig();
  large_cfg.histogram_cells = 4096;
  Histogram2dEstimator small(small_cfg);
  Histogram2dEstimator large(large_cfg);
  EXPECT_GT(large.MemoryBytes(), 8 * small.MemoryBytes());
}

TEST(HistogramEstimatorTest, KindIsH4096) {
  Histogram2dEstimator est(TestEstimatorConfig());
  EXPECT_EQ(est.kind(), EstimatorKind::kH4096);
  EXPECT_STREQ(EstimatorKindName(est.kind()), "H4096");
}

}  // namespace
}  // namespace latest::estimators
