// Batch-vs-scalar crosscheck: CountMatchesBatch on every index backend
// and TrueSelectivityBatch on the evaluator must be bit-identical to the
// per-query scalar path at every kernel tier (scalar, SSE2, AVX2) and
// every thread-pool size (0, 1, 4, 8), including degenerate query
// batches (empty rects, missed grids, empty keyword sets, staggered
// cutoffs that straddle slice boundaries). The histogram batch-insert
// path is crosschecked via persisted-state equality.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "estimators/histogram2d_estimator.h"
#include "exact/exact_evaluator.h"
#include "exact/grid_index.h"
#include "exact/inverted_index.h"
#include "exact/quadtree_index.h"
#include "simd/kernels.h"
#include "stream/sliding_window.h"
#include "stream/window_store.h"
#include "tests/test_stream.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace latest::exact {
namespace {

using stream::GeoTextObject;
using stream::KeywordId;
using stream::Query;
using stream::Timestamp;
using stream::WindowStore;

using testing_support::kTestBounds;
using testing_support::MakeUniformObjects;

constexpr geo::Rect kBounds = kTestBounds;
constexpr Timestamp kSliceMs = 1000;
constexpr Timestamp kStreamMs = 10000;

class TierGuard {
 public:
  TierGuard() : saved_(simd::ActiveTier()) {}
  ~TierGuard() { simd::SetActiveTier(saved_); }

 private:
  simd::KernelTier saved_;
};

/// A mixed query batch: spatial / keyword / hybrid predicates, staggered
/// timestamps (distinct per-query cutoffs, some on slice boundaries),
/// degenerate and out-of-domain rects, single- and multi-keyword sets.
std::vector<Query> MakeQueryBatch(size_t k, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    Query q;
    // Window end staggered across the stream's second half; every fourth
    // query lands exactly on a slice boundary.
    q.timestamp = (i % 4 == 0)
                      ? kStreamMs - static_cast<Timestamp>(i % 8) * kSliceMs
                      : kStreamMs / 2 +
                            static_cast<Timestamp>(rng.NextBounded(kStreamMs / 2));
    const uint32_t shape = rng.NextBounded(8);
    const bool spatial = shape != 0;     // 1/8 pure keyword
    const bool textual = shape % 3 != 1;  // ~2/3 carry keywords
    if (spatial) {
      if (shape == 7) {
        // Degenerate or out-of-domain rects.
        const double x = static_cast<double>(rng.NextBounded(100));
        q.range = (i % 2 == 0) ? geo::Rect{x, x, x, x}
                               : geo::Rect{200, 200, 250, 250};
      } else {
        const double x0 = rng.NextDouble(0, 80);
        const double y0 = rng.NextDouble(0, 80);
        q.range = geo::Rect{x0, y0, x0 + rng.NextDouble(1, 40),
                            y0 + rng.NextDouble(1, 40)};
      }
    }
    if (textual || !spatial) {
      const uint32_t nkw = 1 + rng.NextBounded(3);
      for (uint32_t j = 0; j < nkw; ++j) {
        q.keywords.push_back(static_cast<KeywordId>(rng.NextBounded(30)));
      }
      stream::CanonicalizeKeywords(&q.keywords);
    }
    batch.push_back(std::move(q));
  }
  // Production issues queries in stream order: scalar CountMatches evicts
  // lazily at each query's cutoff, so the sequential reference is only
  // well-defined for non-decreasing cutoffs. The batch path itself is
  // order-independent (it evicts at the batch minimum).
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Query& a, const Query& b) {
                     return a.timestamp < b.timestamp;
                   });
  return batch;
}

/// Per-tier, per-thread-count sweep shared by the index crosschecks.
template <typename Fn>
void ForEachTierAndThreads(Fn&& fn) {
  TierGuard guard;
  const int highest = static_cast<int>(simd::HighestSupportedTier());
  for (int t = 0; t <= highest; ++t) {
    ASSERT_TRUE(simd::SetActiveTier(static_cast<simd::KernelTier>(t)));
    for (const uint32_t threads : {0u, 1u, 4u, 8u}) {
      fn(static_cast<simd::KernelTier>(t), threads);
    }
  }
}

/// Scalar-tier, serial, per-query reference counts for a batch.
std::vector<uint64_t> ScalarReference(const std::vector<GeoTextObject>& objects,
                                      const std::vector<Query>& batch) {
  TierGuard guard;
  EXPECT_TRUE(simd::SetActiveTier(simd::KernelTier::kScalar));
  ExactEvaluator eval(kBounds, kStreamMs);
  for (const auto& obj : objects) eval.Insert(obj);
  std::vector<uint64_t> counts;
  counts.reserve(batch.size());
  for (const auto& q : batch) counts.push_back(eval.TrueSelectivity(q));
  return counts;
}

TEST(BatchCrosscheck, EvaluatorBatchMatchesScalarAtEveryTierAndThreads) {
  const auto objects = MakeUniformObjects(4000, 5, kStreamMs);
  const auto batch = MakeQueryBatch(64, 99);
  const auto expect = ScalarReference(objects, batch);
  ForEachTierAndThreads([&](simd::KernelTier tier, uint32_t threads) {
    util::ThreadPool pool(threads);
    ExactEvaluator eval(kBounds, kStreamMs);
    eval.set_thread_pool(&pool);
    for (const auto& obj : objects) eval.Insert(obj);
    std::vector<uint64_t> counts(batch.size(), ~uint64_t{0});
    eval.TrueSelectivityBatch(batch.data(), batch.size(), counts.data());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(counts[i], expect[i])
          << "tier=" << simd::KernelTierName(tier) << " threads=" << threads
          << " query=" << i;
    }
  });
}

TEST(BatchCrosscheck, EvaluatorBatchInterleavedWithScalarQueries) {
  // Batch and single-query evaluation against the SAME evaluator must
  // agree even though they leave different lazy-eviction states behind.
  const auto objects = MakeUniformObjects(2000, 6, kStreamMs);
  const auto batch = MakeQueryBatch(32, 101);
  const auto expect = ScalarReference(objects, batch);
  TierGuard guard;
  ExactEvaluator eval(kBounds, kStreamMs);
  for (const auto& obj : objects) eval.Insert(obj);
  std::vector<uint64_t> counts(batch.size());
  eval.TrueSelectivityBatch(batch.data(), batch.size(), counts.data());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(counts[i], expect[i]) << "first batch, query " << i;
    EXPECT_EQ(eval.TrueSelectivity(batch[i]), expect[i])
        << "scalar after batch, query " << i;
  }
}

TEST(BatchCrosscheck, GridIndexBatchMatchesScalar) {
  const auto objects = MakeUniformObjects(3000, 7, kStreamMs);
  auto batch = MakeQueryBatch(48, 103);
  // The grid backend only sees spatial predicates in production, but
  // must also answer hybrid ones (it owns the keyword fallback loop).
  std::vector<const Query*> qs;
  std::vector<Timestamp> cutoffs;
  for (auto& q : batch) {
    qs.push_back(&q);
    cutoffs.push_back(q.timestamp - kStreamMs / 2);
  }
  ForEachTierAndThreads([&](simd::KernelTier tier, uint32_t threads) {
    util::ThreadPool pool(threads);
    WindowStore store(kSliceMs);
    GridIndex scalar_index(&store, kBounds, 8, 8);
    GridIndex batch_index(&store, kBounds, 8, 8);
    batch_index.set_thread_pool(&pool);
    for (const auto& obj : objects) {
      const WindowStore::Row row = store.Append(obj);
      scalar_index.Insert(row);
      batch_index.Insert(row);
    }
    std::vector<uint64_t> counts(qs.size(), ~uint64_t{0});
    batch_index.CountMatchesBatch(qs.data(), cutoffs.data(), qs.size(),
                                  counts.data());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(counts[i], scalar_index.CountMatches(*qs[i], cutoffs[i]))
          << "tier=" << simd::KernelTierName(tier) << " threads=" << threads
          << " query=" << i;
    }
  });
}

TEST(BatchCrosscheck, QuadTreeBatchMatchesScalar) {
  const auto objects = MakeUniformObjects(3000, 8, kStreamMs);
  auto batch = MakeQueryBatch(48, 107);
  std::vector<const Query*> qs;
  std::vector<Timestamp> cutoffs;
  for (auto& q : batch) {
    qs.push_back(&q);
    cutoffs.push_back(q.timestamp - kStreamMs / 2);
  }
  TierGuard guard;
  const int highest = static_cast<int>(simd::HighestSupportedTier());
  for (int t = 0; t <= highest; ++t) {
    ASSERT_TRUE(simd::SetActiveTier(static_cast<simd::KernelTier>(t)));
    WindowStore store(kSliceMs);
    QuadTreeIndex scalar_index(&store, kBounds, 32, 10);
    QuadTreeIndex batch_index(&store, kBounds, 32, 10);
    for (const auto& obj : objects) {
      const WindowStore::Row row = store.Append(obj);
      scalar_index.Insert(row);
      batch_index.Insert(row);
    }
    std::vector<uint64_t> counts(qs.size(), ~uint64_t{0});
    batch_index.CountMatchesBatch(qs.data(), cutoffs.data(), qs.size(),
                                  counts.data());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(counts[i], scalar_index.CountMatches(*qs[i], cutoffs[i]))
          << "tier=" << t << " query=" << i;
    }
    // Batch eviction stops at the batch-minimum cutoff, so the batch
    // index legitimately retains more live rows than the progressively
    // evicted scalar one; only the counts must agree.
    EXPECT_GE(batch_index.size(), scalar_index.size());
  }
}

TEST(BatchCrosscheck, InvertedIndexBatchMatchesScalar) {
  const auto objects = MakeUniformObjects(3000, 9, kStreamMs);
  auto all = MakeQueryBatch(64, 109);
  // The inverted backend requires a keyword predicate.
  std::vector<Query> batch;
  for (auto& q : all) {
    if (q.HasKeywords()) batch.push_back(std::move(q));
  }
  ASSERT_GE(batch.size(), 16u);
  std::vector<const Query*> qs;
  std::vector<Timestamp> cutoffs;
  for (auto& q : batch) {
    qs.push_back(&q);
    cutoffs.push_back(q.timestamp - kStreamMs / 2);
  }
  ForEachTierAndThreads([&](simd::KernelTier tier, uint32_t threads) {
    util::ThreadPool pool(threads);
    WindowStore store(kSliceMs);
    InvertedIndex scalar_index(&store);
    InvertedIndex batch_index(&store);
    batch_index.set_thread_pool(&pool);
    for (const auto& obj : objects) {
      const WindowStore::Row row = store.Append(obj);
      scalar_index.Insert(row);
      batch_index.Insert(row);
    }
    std::vector<uint64_t> counts(qs.size(), ~uint64_t{0});
    batch_index.CountMatchesBatch(qs.data(), cutoffs.data(), qs.size(),
                                  counts.data());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(counts[i], scalar_index.CountMatches(*qs[i], cutoffs[i]))
          << "tier=" << simd::KernelTierName(tier) << " threads=" << threads
          << " query=" << i;
    }
  });
}

TEST(BatchCrosscheck, TinyAndDegenerateBatches) {
  // k = 0 and k = 1 and an all-missing batch must not crash or miscount.
  const auto objects = MakeUniformObjects(500, 10, kStreamMs);
  TierGuard guard;
  ExactEvaluator eval(kBounds, kStreamMs);
  for (const auto& obj : objects) eval.Insert(obj);
  eval.TrueSelectivityBatch(nullptr, 0, nullptr);
  Query miss;
  miss.timestamp = kStreamMs;
  miss.range = geo::Rect{500, 500, 600, 600};
  uint64_t one = ~uint64_t{0};
  eval.TrueSelectivityBatch(&miss, 1, &one);
  EXPECT_EQ(one, 0u);
  Query all;
  all.timestamp = kStreamMs;
  uint64_t pop = 0;
  eval.TrueSelectivityBatch(&all, 1, &pop);
  EXPECT_EQ(pop, eval.TrueSelectivity(all));
  EXPECT_EQ(pop, 500u);
}

TEST(BatchCrosscheck, EvaluatorBatchObserverFiresPerBackendDispatch) {
  const auto objects = MakeUniformObjects(200, 11, kStreamMs);
  ExactEvaluator eval(kBounds, kStreamMs);
  for (const auto& obj : objects) eval.Insert(obj);
  std::vector<size_t> sizes;
  eval.set_batch_observer([&](size_t n) { sizes.push_back(n); });
  const auto batch = MakeQueryBatch(16, 113);
  size_t with_kw = 0;
  for (const auto& q : batch) with_kw += q.HasKeywords() ? 1 : 0;
  std::vector<uint64_t> counts(batch.size());
  eval.TrueSelectivityBatch(batch.data(), batch.size(), counts.data());
  size_t observed = 0;
  for (const size_t s : sizes) observed += s;
  EXPECT_EQ(observed, batch.size());
  // Keyword sub-batch reported first when both backends dispatch.
  if (with_kw > 0 && with_kw < batch.size()) {
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], with_kw);
  }
}

TEST(BatchCrosscheck, HistogramBatchInsertMatchesScalarState) {
  // Feeding the histogram via InsertBatch (vectorized cell ids) must
  // leave exactly the state of per-object Insert: identical persisted
  // bytes, at every kernel tier.
  const auto objects = testing_support::MakeClusteredObjects(3000, 12);
  auto config = testing_support::TestEstimatorConfig();

  estimators::Histogram2dEstimator scalar_est(config);
  testing_support::FeedObjects(&scalar_est, config.window, objects);
  util::BinaryWriter scalar_state;
  scalar_est.SaveState(&scalar_state);

  TierGuard guard;
  const int highest = static_cast<int>(simd::HighestSupportedTier());
  for (int t = 0; t <= highest; ++t) {
    ASSERT_TRUE(simd::SetActiveTier(static_cast<simd::KernelTier>(t)));
    estimators::Histogram2dEstimator batch_est(config);
    // Re-batch the stream at slice-rotation boundaries.
    stream::SliceClock clock(config.window);
    std::vector<GeoTextObject> pending;
    auto flush = [&] {
      batch_est.InsertBatch(pending.data(), pending.size());
      pending.clear();
    };
    for (const auto& obj : objects) {
      const uint32_t r = clock.Advance(obj.timestamp);
      if (r > 0) {
        flush();
        for (uint32_t i = 0; i < r; ++i) batch_est.OnSliceRotate();
      }
      pending.push_back(obj);
    }
    flush();
    util::BinaryWriter batch_state;
    batch_est.SaveState(&batch_state);
    EXPECT_EQ(batch_state.buffer(), scalar_state.buffer()) << "tier=" << t;
    EXPECT_EQ(batch_est.seen_population(), scalar_est.seen_population());
  }
}

}  // namespace
}  // namespace latest::exact
