// Cross-cutting property and invariant tests: determinism of the whole
// module, statistical guarantees of the synopses, window-scaling
// behaviour, and incremental adaptation of the learning model.

#include <cmath>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "estimators/histogram2d_estimator.h"
#include "estimators/kmv_synopsis.h"
#include "estimators/reservoir_list_estimator.h"
#include "estimators/space_saving.h"
#include "ml/hoeffding_tree.h"
#include "tests/test_stream.h"

namespace latest {
namespace {

using core::LatestConfig;
using core::LatestModule;
using core::QueryOutcome;
using testing_support::BruteForceCount;
using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

LatestConfig PropertyConfig() {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 400;
  return config;
}

// Runs a fixed object/query schedule and returns the outcomes.
std::vector<QueryOutcome> RunSchedule(LatestModule* module, uint64_t seed) {
  const auto objects = MakeClusteredObjects(5000, seed, 4000);
  util::Rng rng(seed + 1);
  std::vector<QueryOutcome> outcomes;
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 15 == 0) {
      stream::Query q;
      if (rng.NextBool(0.5)) {
        const geo::Point c{rng.NextDouble(10, 90), rng.NextDouble(10, 90)};
        q = MakeSpatialQuery(
            geo::Rect::FromCenter(c, rng.NextDouble(5, 25),
                                  rng.NextDouble(5, 25)));
      } else {
        q = MakeKeywordQuery(
            {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      }
      q.timestamp = obj.timestamp;
      outcomes.push_back(module->OnQuery(q));
    }
  }
  return outcomes;
}

// --------------------------------------------------------------------
// Determinism. All data-dependent quantities (ground truth, the data
// each estimator holds) are fully deterministic; the *switch schedule*
// is not, because the adaptor legitimately reacts to measured wall-clock
// latency (exactly as the paper's system does).

TEST(DeterminismTest, GroundTruthAndDataAreReplayable) {
  auto a = std::move(LatestModule::Create(PropertyConfig())).value();
  auto b = std::move(LatestModule::Create(PropertyConfig())).value();
  const auto outcomes_a = RunSchedule(a.get(), 7);
  const auto outcomes_b = RunSchedule(b.get(), 7);
  ASSERT_EQ(outcomes_a.size(), outcomes_b.size());
  bool histories_identical = true;
  for (size_t i = 0; i < outcomes_a.size(); ++i) {
    EXPECT_EQ(outcomes_a[i].actual, outcomes_b[i].actual);
    // Until the first (latency-driven) switch in either run, the active
    // structures hold identical data and estimates are bit-identical.
    // After a switch, pre-fill start times differ between runs, so only
    // the ground truth stays comparable.
    if (outcomes_a[i].switched || outcomes_b[i].switched) {
      histories_identical = false;
    }
    if (histories_identical) {
      EXPECT_DOUBLE_EQ(outcomes_a[i].estimate, outcomes_b[i].estimate);
    }
  }
  EXPECT_EQ(a->objects_ingested(), b->objects_ingested());
  EXPECT_EQ(a->window_population(), b->window_population());
}

TEST(DeterminismTest, ModuleActualMatchesBruteForce) {
  auto module = std::move(LatestModule::Create(PropertyConfig())).value();
  const auto objects = MakeClusteredObjects(4000, 9, 3000);
  for (size_t i = 0; i < objects.size(); ++i) {
    const auto& obj = objects[i];
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 50 == 0) {
      stream::Query q = MakeSpatialQuery({20, 20, 60, 60});
      q.timestamp = obj.timestamp;
      const auto outcome = module->OnQuery(q);
      // Continuous window [t - T, t]: count only the objects already
      // ingested (future objects are not part of the stream yet).
      uint64_t truth = 0;
      for (size_t j = 0; j <= i; ++j) {
        if (objects[j].timestamp >= obj.timestamp - 1000 &&
            q.Matches(objects[j])) {
          ++truth;
        }
      }
      EXPECT_EQ(outcome.actual, truth);
    }
  }
}

// --------------------------------------------------------------------
// Estimator scaling for partially filled structures.

TEST(ScalingTest, PartialHistogramScalesToFullEstimate) {
  auto config = TestEstimatorConfig();
  const auto objects = MakeClusteredObjects(20000, 11);

  estimators::Histogram2dEstimator full(config);
  FeedObjects(&full, config.window, objects);

  // The partial instance only sees the last 30% of the stream (a
  // pre-filled candidate); its estimate scaled by population ratio must
  // approximate the full estimate (the stream is stationary).
  estimators::Histogram2dEstimator partial(config);
  const size_t start = objects.size() * 7 / 10;
  stream::SliceClock clock(config.window);
  clock.Advance(objects[start].timestamp);  // Align slice phase.
  for (size_t i = start; i < objects.size(); ++i) {
    const uint32_t rotations = clock.Advance(objects[i].timestamp);
    for (uint32_t r = 0; r < rotations; ++r) partial.OnSliceRotate();
    partial.Insert(objects[i]);
  }

  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const double scale = static_cast<double>(full.seen_population()) /
                       static_cast<double>(partial.seen_population());
  const double scaled = partial.Estimate(q) * scale;
  EXPECT_NEAR(scaled / full.Estimate(q), 1.0, 0.15);
}

// --------------------------------------------------------------------
// Statistical guarantees.

TEST(StatisticalTest, ReservoirSampleIsUnbiasedInLocation) {
  // The mean x-coordinate of the reservoir must match the stream's.
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  estimators::ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 13);
  FeedObjects(&est, config.window, objects);

  double stream_mean = 0.0;
  for (const auto& obj : objects) stream_mean += obj.loc.x;
  stream_mean /= static_cast<double>(objects.size());

  // Estimate the sample mean through half-domain counting: the fraction
  // of samples left of the stream mean must match the stream's fraction.
  const stream::Query left =
      MakeSpatialQuery({0, 0, stream_mean, 100});
  const double est_left = est.Estimate(left);
  const double true_left =
      static_cast<double>(BruteForceCount(objects, left, 0));
  EXPECT_NEAR(est_left / true_left, 1.0, 0.1);
}

TEST(StatisticalTest, SpaceSavingErrorBound) {
  // Space-Saving guarantee: for every key, estimate - truth <= N / m.
  estimators::SpaceSavingCounter counter(32);
  util::Rng rng(17);
  std::vector<int> truth(500, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.NextDouble();
    const auto key = static_cast<uint32_t>(u * u * 500);
    ++truth[key];
    counter.Add(key);
  }
  const double bound = static_cast<double>(kN) / 32.0;
  counter.ForEach([&](uint32_t key, double count) {
    EXPECT_LE(count - truth[key], bound + 1e-9);
    EXPECT_GE(count, truth[key]);  // Never undercounts tracked keys.
  });
}

TEST(StatisticalTest, KmvMergeIsCommutative) {
  estimators::KmvSynopsis ab(64, 5);
  estimators::KmvSynopsis ba(64, 5);
  estimators::KmvSynopsis a(64, 5);
  estimators::KmvSynopsis b(64, 5);
  for (uint64_t e = 0; e < 3000; ++e) {
    if (e % 2 == 0) a.Add(e);
    if (e % 3 == 0) b.Add(e);
  }
  ab = a;
  ab.Merge(b);
  ba = b;
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.EstimateDistinct(), ba.EstimateDistinct());
}

// --------------------------------------------------------------------
// Learning-model adaptation (the paper's core requirement: the model
// must keep up with changing workloads).

TEST(AdaptationTest, HoeffdingTreeTracksConceptDrift) {
  ml::FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_classes = 3;
  ml::HoeffdingTreeConfig tree_config;
  tree_config.grace_period = 50;
  tree_config.split_confidence = 1e-3;
  tree_config.tie_threshold = 0.1;
  ml::HoeffdingTree tree(schema, tree_config);

  util::Rng rng(19);
  // Phase 1: label = attribute.
  for (int i = 0; i < 2000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(3));
    tree.Train(ml::TrainingExample{{{v}, {}}, static_cast<uint32_t>(v)});
  }
  ml::FeatureVector probe;
  probe.categorical = {1};
  EXPECT_EQ(tree.Predict(probe), 1u);

  // Phase 2 (drift): label = attribute + 1 mod 3. Leaf majorities must
  // flip once enough post-drift records accumulate.
  for (int i = 0; i < 10000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(3));
    tree.Train(ml::TrainingExample{{{v}, {}},
                                   static_cast<uint32_t>((v + 1) % 3)});
  }
  EXPECT_EQ(tree.Predict(probe), 2u);
}

TEST(AdaptationTest, ModuleRecoversFromWorkloadShift) {
  // Phase 1 is pure spatial (histogram territory); phase 2 is pure
  // keyword (histogram useless). The module must not be stuck on H4096
  // by the end.
  auto config = PropertyConfig();
  config.default_estimator = estimators::EstimatorKind::kH4096;
  auto module = std::move(LatestModule::Create(config)).value();

  const auto objects = MakeClusteredObjects(9000, 21, 6000);
  util::Rng rng(22);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 10 == 0) {
      stream::Query q;
      if (obj.timestamp < 3500) {
        const geo::Point c{rng.NextDouble(10, 90), rng.NextDouble(10, 90)};
        q = MakeSpatialQuery(geo::Rect::FromCenter(
            c, rng.NextDouble(5, 25), rng.NextDouble(5, 25)));
      } else {
        q = MakeKeywordQuery(
            {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      }
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  EXPECT_NE(module->active_kind(), estimators::EstimatorKind::kH4096);
}

// --------------------------------------------------------------------
// Window semantics across the portfolio.

TEST(WindowTest, AllEstimatorsAgreeOnPopulation) {
  const auto config = TestEstimatorConfig();
  const auto objects = MakeClusteredObjects(8000, 23, 2500);
  std::vector<std::unique_ptr<estimators::Estimator>> portfolio;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    portfolio.push_back(
        std::move(estimators::CreateEstimator(
                      static_cast<estimators::EstimatorKind>(k), config))
            .value());
  }
  for (auto& est : portfolio) {
    FeedObjects(est.get(), config.window, objects);
  }
  for (size_t k = 1; k < portfolio.size(); ++k) {
    EXPECT_EQ(portfolio[k]->seen_population(),
              portfolio[0]->seen_population());
  }
}

}  // namespace
}  // namespace latest
