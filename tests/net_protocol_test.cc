// Serve-plane wire protocol: encode/decode round-trips for all eight
// frame types, FrameReader reassembly across arbitrary byte splits, and
// the hostile-input surface — truncated, oversized, trailing-byte, and
// random-garbage payloads must be rejected without UB (this test runs
// under TSan in CI; the decoders are also bounds-checked by design).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace latest::net {
namespace {

stream::GeoTextObject MakeObject() {
  stream::GeoTextObject obj;
  obj.oid = 424242;
  obj.loc = {12.5, -7.25};
  obj.keywords = {3, 17, 99};
  obj.timestamp = 123456789;
  return obj;
}

stream::Query MakeRangeQuery() {
  stream::Query q;
  q.range = geo::Rect{1.0, 2.0, 3.0, 4.0};
  q.keywords = {5, 8};
  q.timestamp = 987654321;
  return q;
}

/// Feeds `bytes` to a FrameReader in one go and expects exactly one
/// frame of `want_type`, returning its payload as an owned string.
std::string ReadSingleFrame(const std::string& bytes, FrameType want_type) {
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  FrameReader::Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kFrame);
  EXPECT_EQ(frame.type, static_cast<uint8_t>(want_type));
  std::string payload(frame.payload);
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kNeedMore);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  return payload;
}

TEST(NetProtocolTest, IngestRoundTrip) {
  IngestRequest req;
  req.request_id = 7;
  req.object = MakeObject();
  std::string bytes;
  EncodeIngest(req, &bytes);

  IngestRequest got;
  ASSERT_TRUE(
      DecodeIngest(ReadSingleFrame(bytes, FrameType::kIngest), &got));
  EXPECT_EQ(got.request_id, 7u);
  EXPECT_EQ(got.object.oid, req.object.oid);
  EXPECT_EQ(got.object.loc.x, req.object.loc.x);
  EXPECT_EQ(got.object.loc.y, req.object.loc.y);
  EXPECT_EQ(got.object.keywords, req.object.keywords);
  EXPECT_EQ(got.object.timestamp, req.object.timestamp);
}

TEST(NetProtocolTest, QueryRoundTripWithAndWithoutRange) {
  QueryRequest ranged;
  ranged.request_id = 11;
  ranged.query = MakeRangeQuery();
  std::string bytes;
  EncodeQuery(ranged, &bytes);
  QueryRequest got;
  ASSERT_TRUE(DecodeQuery(ReadSingleFrame(bytes, FrameType::kQuery), &got));
  EXPECT_EQ(got.request_id, 11u);
  ASSERT_TRUE(got.query.range.has_value());
  EXPECT_EQ(got.query.range->min_x, 1.0);
  EXPECT_EQ(got.query.range->max_y, 4.0);
  EXPECT_EQ(got.query.keywords, ranged.query.keywords);
  EXPECT_EQ(got.query.timestamp, ranged.query.timestamp);

  QueryRequest keyword_only;
  keyword_only.request_id = 12;
  keyword_only.query.keywords = {42};
  keyword_only.query.timestamp = 5;
  bytes.clear();
  EncodeQuery(keyword_only, &bytes);
  ASSERT_TRUE(DecodeQuery(ReadSingleFrame(bytes, FrameType::kQuery), &got));
  EXPECT_FALSE(got.query.range.has_value());
  EXPECT_EQ(got.query.keywords, std::vector<stream::KeywordId>{42});
}

TEST(NetProtocolTest, QueryWithNoPredicatesRejected) {
  // A query must carry a range or keywords; an empty one is a protocol
  // violation, not a module crash waiting to happen.
  QueryRequest req;
  req.request_id = 1;
  req.query.timestamp = 10;
  std::string bytes;
  EncodeQuery(req, &bytes);
  QueryRequest got;
  EXPECT_FALSE(
      DecodeQuery(ReadSingleFrame(bytes, FrameType::kQuery), &got));
}

TEST(NetProtocolTest, ResponseRoundTrips) {
  std::string bytes;

  IngestAck ack{31};
  EncodeIngestAck(ack, &bytes);
  IngestAck ack_got;
  ASSERT_TRUE(DecodeIngestAck(
      ReadSingleFrame(bytes, FrameType::kIngestAck), &ack_got));
  EXPECT_EQ(ack_got.request_id, 31u);

  QueryResponse qr;
  qr.request_id = 32;
  qr.estimate = 123.5;
  qr.actual = 120;
  qr.phase = 2;
  qr.active_kind = 3;
  bytes.clear();
  EncodeQueryResponse(qr, &bytes);
  QueryResponse qr_got;
  ASSERT_TRUE(DecodeQueryResponse(
      ReadSingleFrame(bytes, FrameType::kQueryResponse), &qr_got));
  EXPECT_EQ(qr_got.request_id, 32u);
  EXPECT_EQ(qr_got.estimate, 123.5);
  EXPECT_EQ(qr_got.actual, 120u);
  EXPECT_EQ(qr_got.phase, 2u);
  EXPECT_EQ(qr_got.active_kind, 3u);

  StatusResponse sr;
  sr.request_id = 33;
  sr.phase = 1;
  sr.active_kind = 4;
  sr.objects_ingested = 1000;
  sr.queries_answered = 50;
  sr.shed = 3;
  bytes.clear();
  EncodeStatusResponse(sr, &bytes);
  StatusResponse sr_got;
  ASSERT_TRUE(DecodeStatusResponse(
      ReadSingleFrame(bytes, FrameType::kStatusResponse), &sr_got));
  EXPECT_EQ(sr_got.objects_ingested, 1000u);
  EXPECT_EQ(sr_got.queries_answered, 50u);
  EXPECT_EQ(sr_got.shed, 3u);

  RetryLater retry;
  retry.request_id = 34;
  retry.rejected_type = static_cast<uint32_t>(FrameType::kQuery);
  retry.backoff_hint_ms = 105;
  bytes.clear();
  EncodeRetryLater(retry, &bytes);
  RetryLater retry_got;
  ASSERT_TRUE(DecodeRetryLater(
      ReadSingleFrame(bytes, FrameType::kRetryLater), &retry_got));
  EXPECT_EQ(retry_got.rejected_type,
            static_cast<uint32_t>(FrameType::kQuery));
  EXPECT_EQ(retry_got.backoff_hint_ms, 105u);

  ErrorFrame error;
  error.request_id = 35;
  error.message = "bad frame \"quoted\"";
  bytes.clear();
  EncodeError(error, &bytes);
  ErrorFrame error_got;
  ASSERT_TRUE(
      DecodeError(ReadSingleFrame(bytes, FrameType::kError), &error_got));
  EXPECT_EQ(error_got.message, error.message);

  StatusRequest status{36};
  bytes.clear();
  EncodeStatus(status, &bytes);
  StatusRequest status_got;
  ASSERT_TRUE(DecodeStatus(
      ReadSingleFrame(bytes, FrameType::kStatus), &status_got));
  EXPECT_EQ(status_got.request_id, 36u);
}

TEST(NetProtocolTest, FrameReaderReassemblesByteAtATime) {
  // Three frames concatenated, fed one byte at a time: the reader must
  // yield exactly those three frames in order regardless of the splits.
  std::string bytes;
  IngestRequest ingest;
  ingest.request_id = 1;
  ingest.object = MakeObject();
  EncodeIngest(ingest, &bytes);
  QueryRequest query;
  query.request_id = 2;
  query.query = MakeRangeQuery();
  EncodeQuery(query, &bytes);
  EncodeStatus(StatusRequest{3}, &bytes);

  FrameReader reader;
  std::vector<uint8_t> types;
  for (const char c : bytes) {
    reader.Append(&c, 1);
    FrameReader::Frame frame;
    while (reader.Next(&frame) == FrameReader::Outcome::kFrame) {
      types.push_back(frame.type);
    }
  }
  const std::vector<uint8_t> want = {
      static_cast<uint8_t>(FrameType::kIngest),
      static_cast<uint8_t>(FrameType::kQuery),
      static_cast<uint8_t>(FrameType::kStatus)};
  EXPECT_EQ(types, want);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(NetProtocolTest, TruncatedFrameIsNeedMoreNotError) {
  std::string bytes;
  IngestRequest req;
  req.request_id = 9;
  req.object = MakeObject();
  EncodeIngest(req, &bytes);

  // Every proper prefix is incomplete: kNeedMore, never kFrame/kError.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    reader.Append(bytes.data(), cut);
    FrameReader::Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(NetProtocolTest, OversizedPayloadPoisonsStream) {
  // Header claiming a payload over the 1 MiB cap: protocol error, and
  // the error is sticky (no resync inside a length-prefixed stream).
  util::BinaryWriter writer;
  writer.WriteU32(kMaxPayloadBytes + 1);
  std::string bytes = writer.TakeBuffer();
  bytes.push_back(static_cast<char>(FrameType::kIngest));

  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  FrameReader::Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kProtocolError);
  // Feeding more (even valid) bytes does not revive the stream.
  std::string good;
  EncodeStatus(StatusRequest{1}, &good);
  reader.Append(good.data(), good.size());
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kProtocolError);
}

TEST(NetProtocolTest, UnknownFrameTypeIsProtocolError) {
  util::BinaryWriter writer;
  writer.WriteU32(0);
  std::string bytes = writer.TakeBuffer();
  bytes.push_back(static_cast<char>(0));  // Type 0 is not assigned.
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  FrameReader::Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kProtocolError);
}

TEST(NetProtocolTest, TrailingPayloadBytesRejected) {
  // Strict decode: a valid payload with one extra byte is refused by
  // every decoder (catches silently-misaligned encoders early).
  std::string bytes;
  EncodeStatus(StatusRequest{5}, &bytes);
  std::string payload = ReadSingleFrame(bytes, FrameType::kStatus);
  payload.push_back('\0');
  StatusRequest got;
  EXPECT_FALSE(DecodeStatus(payload, &got));
}

TEST(NetProtocolTest, HostileKeywordCountRejected) {
  // An INGEST payload whose keyword count claims more entries than the
  // payload holds (or than the cap allows) must fail cleanly instead of
  // driving a huge allocation or an out-of-bounds read.
  for (const uint32_t claimed :
       {kMaxKeywordsPerFrame + 1, 0x7fffffffu, 1000u}) {
    util::BinaryWriter writer;
    writer.WriteU64(1);              // request_id
    writer.WriteU64(2);              // oid
    writer.WriteDouble(0.0);         // x
    writer.WriteDouble(0.0);         // y
    writer.WriteI64(0);              // timestamp
    writer.WriteU32(claimed);        // keyword count lies
    writer.WriteU32(7);              // ...but only one id follows
    IngestRequest got;
    EXPECT_FALSE(DecodeIngest(writer.buffer(), &got))
        << "claimed " << claimed;
  }
}

TEST(NetProtocolTest, TruncatedPayloadsRejectedByEveryDecoder) {
  // Every proper prefix of every valid payload decodes to false — no
  // decoder reads past the view it was handed.
  std::string bytes;
  IngestRequest ingest;
  ingest.request_id = 1;
  ingest.object = MakeObject();
  EncodeIngest(ingest, &bytes);
  const std::string ingest_payload =
      ReadSingleFrame(bytes, FrameType::kIngest);
  for (size_t cut = 0; cut < ingest_payload.size(); ++cut) {
    IngestRequest got;
    EXPECT_FALSE(DecodeIngest(
        std::string_view(ingest_payload.data(), cut), &got));
  }

  bytes.clear();
  QueryRequest query;
  query.request_id = 2;
  query.query = MakeRangeQuery();
  EncodeQuery(query, &bytes);
  const std::string query_payload =
      ReadSingleFrame(bytes, FrameType::kQuery);
  for (size_t cut = 0; cut < query_payload.size(); ++cut) {
    QueryRequest got;
    EXPECT_FALSE(
        DecodeQuery(std::string_view(query_payload.data(), cut), &got));
  }
}

TEST(NetProtocolTest, GarbageFuzzNeverCrashes) {
  // Deterministic fuzz: random byte strings through the reader and all
  // eight decoders. No assertion on outcomes beyond "no UB" — the
  // sanitizer builds are the oracle. Seeds cover empty through 4 KiB.
  util::Rng rng(20260809);
  for (int round = 0; round < 200; ++round) {
    const size_t len = rng.NextBounded(4096);
    std::string junk(len, '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng.NextBounded(256));
    }

    FrameReader reader;
    // Feed in random-sized chunks to exercise reassembly paths.
    size_t offset = 0;
    while (offset < junk.size()) {
      const size_t chunk =
          1 + rng.NextBounded(static_cast<uint32_t>(junk.size() - offset));
      reader.Append(junk.data() + offset, chunk);
      offset += chunk;
      FrameReader::Frame frame;
      FrameReader::Outcome outcome;
      while ((outcome = reader.Next(&frame)) ==
             FrameReader::Outcome::kFrame) {
        // A frame that happens to parse is fine; decoders must still be
        // safe on its arbitrary payload.
      }
      if (outcome == FrameReader::Outcome::kProtocolError) break;
    }

    const std::string_view payload(junk);
    IngestRequest ingest;
    DecodeIngest(payload, &ingest);
    QueryRequest query;
    DecodeQuery(payload, &query);
    StatusRequest status;
    DecodeStatus(payload, &status);
    IngestAck ack;
    DecodeIngestAck(payload, &ack);
    QueryResponse query_response;
    DecodeQueryResponse(payload, &query_response);
    StatusResponse status_response;
    DecodeStatusResponse(payload, &status_response);
    RetryLater retry;
    DecodeRetryLater(payload, &retry);
    ErrorFrame error;
    DecodeError(payload, &error);
    HelloRequest hello;
    DecodeHello(payload, &hello);
    HelloAck hello_ack;
    DecodeHelloAck(payload, &hello_ack);
  }
}

TEST(NetProtocolTest, IsRequestTypeClassification) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kIngest)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kQuery)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kStatus)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(FrameType::kHello)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(FrameType::kIngestAck)));
  EXPECT_FALSE(
      IsRequestType(static_cast<uint8_t>(FrameType::kQueryResponse)));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(FrameType::kHelloAck)));
  EXPECT_FALSE(IsRequestType(0));
  EXPECT_FALSE(IsRequestType(11));
}

TEST(NetProtocolTest, TraceContextTrailerRoundTrips) {
  // Sampled and unsampled trailers survive encode → decode on both
  // request types that carry them.
  for (const bool sampled : {true, false}) {
    IngestRequest ingest;
    ingest.request_id = 21;
    ingest.object = MakeObject();
    ingest.trace = {/*present=*/true, /*trace_id=*/0xdeadbeefcafe0001ull,
                    sampled};
    std::string bytes;
    EncodeIngest(ingest, &bytes);
    IngestRequest ingest_got;
    ASSERT_TRUE(DecodeIngest(ReadSingleFrame(bytes, FrameType::kIngest),
                             &ingest_got));
    EXPECT_TRUE(ingest_got.trace.present);
    EXPECT_EQ(ingest_got.trace.trace_id, ingest.trace.trace_id);
    EXPECT_EQ(ingest_got.trace.sampled, sampled);

    QueryRequest query;
    query.request_id = 22;
    query.query = MakeRangeQuery();
    query.trace = {/*present=*/true, /*trace_id=*/0x1234u, sampled};
    bytes.clear();
    EncodeQuery(query, &bytes);
    QueryRequest query_got;
    ASSERT_TRUE(DecodeQuery(ReadSingleFrame(bytes, FrameType::kQuery),
                            &query_got));
    EXPECT_TRUE(query_got.trace.present);
    EXPECT_EQ(query_got.trace.trace_id, 0x1234u);
    EXPECT_EQ(query_got.trace.sampled, sampled);
  }
}

TEST(NetProtocolTest, AbsentTrailerDecodesAsUntraced) {
  // The base encoding (trace.present = false) is byte-identical to the
  // pre-extension wire format, and decodes with present = false.
  QueryRequest req;
  req.request_id = 23;
  req.query = MakeRangeQuery();
  std::string bytes;
  EncodeQuery(req, &bytes);
  QueryRequest got;
  ASSERT_TRUE(DecodeQuery(ReadSingleFrame(bytes, FrameType::kQuery), &got));
  EXPECT_FALSE(got.trace.present);
  EXPECT_EQ(got.trace.trace_id, 0u);
  EXPECT_FALSE(got.trace.sampled);
}

TEST(NetProtocolTest, MalformedTrailerRejected) {
  QueryRequest req;
  req.request_id = 24;
  req.query = MakeRangeQuery();
  req.trace = {/*present=*/true, /*trace_id=*/77, /*sampled=*/true};
  std::string bytes;
  EncodeQuery(req, &bytes);
  std::string payload = ReadSingleFrame(bytes, FrameType::kQuery);

  // A truncated trailer (any length between base and full) is neither
  // "absent" nor "complete": strict reject.
  for (size_t cut = 1; cut < kTraceContextBytes; ++cut) {
    QueryRequest got;
    EXPECT_FALSE(DecodeQuery(
        std::string_view(payload.data(), payload.size() - cut), &got))
        << "trailer short by " << cut;
  }
  // Unknown flag bits are a protocol violation, not a soft ignore.
  payload.back() = static_cast<char>(0x02);
  QueryRequest got;
  EXPECT_FALSE(DecodeQuery(payload, &got));
}

TEST(NetProtocolTest, HelloRoundTripsAndReaderAcceptsHandshakeTypes) {
  HelloRequest hello;
  hello.request_id = 41;
  hello.protocol_version = kProtocolVersion;
  hello.feature_flags = kFeatureTraceContext;
  std::string bytes;
  EncodeHello(hello, &bytes);
  HelloRequest hello_got;
  ASSERT_TRUE(
      DecodeHello(ReadSingleFrame(bytes, FrameType::kHello), &hello_got));
  EXPECT_EQ(hello_got.request_id, 41u);
  EXPECT_EQ(hello_got.protocol_version, kProtocolVersion);
  EXPECT_EQ(hello_got.feature_flags, kFeatureTraceContext);

  HelloAck ack;
  ack.request_id = 41;
  ack.protocol_version = kProtocolVersion;
  ack.feature_flags = 0;  // Server may negotiate features away.
  bytes.clear();
  EncodeHelloAck(ack, &bytes);
  HelloAck ack_got;
  ASSERT_TRUE(DecodeHelloAck(ReadSingleFrame(bytes, FrameType::kHelloAck),
                             &ack_got));
  EXPECT_EQ(ack_got.feature_flags, 0u);

  // The reader accepts the two handshake types and still rejects the
  // first unassigned id.
  util::BinaryWriter writer;
  writer.WriteU32(0);
  std::string junk = writer.TakeBuffer();
  junk.push_back(static_cast<char>(11));
  FrameReader reader;
  reader.Append(junk.data(), junk.size());
  FrameReader::Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::Outcome::kProtocolError);
}

}  // namespace
}  // namespace latest::net
