// Randomized churn property test for WindowStore slice recycling: a long
// interleaving of bursty appends, window expiry (DropBefore) and the
// occasional Clear across many window lengths, checked after every
// mutation against a naive reference model (a flat vector of everything
// ever appended). The store's row accounting, per-row column contents,
// and free-list recycling must never drift:
//   - every row the store claims live reads back exactly the appended
//     object (timestamp, location, oid, keyword set);
//   - no row whose timestamp is >= the last expiry cutoff is ever
//     dropped;
//   - resident slice count and memory stay bounded in steady state
//     (dropped slices recycle their buffers through the free list
//     instead of re-allocating).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/object.h"
#include "stream/window_store.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace latest::stream {
namespace {

// The reference model: everything ever appended, indexed by row id.
struct RefRow {
  Timestamp timestamp = 0;
  geo::Point loc;
  ObjectId oid = 0;
  std::vector<KeywordId> keywords;
};

class ChurnHarness {
 public:
  explicit ChurnHarness(Timestamp slice_duration_ms)
      : slice_duration_ms_(slice_duration_ms), store_(slice_duration_ms) {}

  void Append(const GeoTextObject& obj) {
    const WindowStore::Row row = store_.Append(obj);
    ASSERT_EQ(row, rows_.size());
    rows_.push_back(RefRow{obj.timestamp, obj.loc, obj.oid, obj.keywords});
    CheckInvariants();
  }

  void DropBefore(Timestamp cutoff) {
    store_.DropBefore(cutoff);
    cutoff_ = std::max(cutoff_, cutoff);
    CheckInvariants();
  }

  void Clear() {
    store_.Clear();
    cleared_below_ = rows_.size();
    cutoff_ = 0;
    CheckInvariants();
  }

  const WindowStore& store() const { return store_; }

  // Save/Load through a fresh store must preserve every live row and the
  // row counter (the free list is capacity, not state).
  void CheckRoundtrip() {
    util::BinaryWriter writer;
    store_.Save(&writer);
    WindowStore restored(slice_duration_ms_);
    util::BinaryReader reader(writer.buffer());
    ASSERT_TRUE(restored.Load(&reader));
    ASSERT_EQ(restored.first_live_row(), store_.first_live_row());
    ASSERT_EQ(restored.end_row(), store_.end_row());
    ASSERT_EQ(restored.arena_bytes(), store_.arena_bytes());
    const WindowStore::Reader a(store_);
    const WindowStore::Reader b(restored);
    for (WindowStore::Row row = store_.first_live_row();
         row < store_.end_row(); ++row) {
      ASSERT_EQ(a.timestamp(row), b.timestamp(row));
      ASSERT_EQ(a.oid(row), b.oid(row));
    }
  }

 private:
  void CheckInvariants() {
    ASSERT_EQ(store_.end_row(), rows_.size());
    const WindowStore::Row first = store_.first_live_row();
    ASSERT_LE(first, store_.end_row());
    ASSERT_EQ(store_.resident_rows(), store_.end_row() - first);
    // Rows appended before the last Clear must be gone.
    ASSERT_GE(static_cast<size_t>(first), cleared_below_);
    // Expiry retires only slices strictly older than the cutoff: a
    // dropped row must have carried a pre-cutoff timestamp.
    for (size_t row = cleared_below_; row < first; ++row) {
      ASSERT_LT(rows_[row].timestamp, cutoff_)
          << "row " << row << " dropped although not expired";
    }
    // Every live row reads back exactly what was appended.
    const WindowStore::Reader reader(store_);
    uint64_t live_keyword_bytes = 0;
    for (WindowStore::Row row = first; row < store_.end_row(); ++row) {
      const RefRow& ref = rows_[row];
      ASSERT_EQ(reader.timestamp(row), ref.timestamp) << "row " << row;
      ASSERT_EQ(reader.loc(row).x, ref.loc.x) << "row " << row;
      ASSERT_EQ(reader.loc(row).y, ref.loc.y) << "row " << row;
      ASSERT_EQ(reader.oid(row), ref.oid) << "row " << row;
      const auto [keywords, count] = reader.keywords(row);
      ASSERT_EQ(count, ref.keywords.size()) << "row " << row;
      for (uint32_t k = 0; k < count; ++k) {
        ASSERT_EQ(keywords[k], ref.keywords[k]) << "row " << row;
      }
      live_keyword_bytes += ref.keywords.size() * sizeof(KeywordId);
    }
    // Arena accounting equals the keyword payload of resident rows.
    ASSERT_EQ(store_.arena_bytes(), live_keyword_bytes);
  }

  Timestamp slice_duration_ms_;
  WindowStore store_;
  std::vector<RefRow> rows_;
  size_t cleared_below_ = 0;  // Rows below this died to Clear().
  Timestamp cutoff_ = 0;      // Largest DropBefore cutoff so far.
};

GeoTextObject MakeObject(ObjectId oid, Timestamp ts, util::Rng* rng) {
  GeoTextObject obj;
  obj.oid = oid;
  obj.timestamp = ts;
  obj.loc = {rng->NextDouble(0, 100), rng->NextDouble(0, 100)};
  const uint32_t num_kw = static_cast<uint32_t>(rng->NextBounded(5));
  for (uint32_t k = 0; k < num_kw; ++k) {
    obj.keywords.push_back(
        static_cast<KeywordId>(rng->NextBounded(64)));
  }
  CanonicalizeKeywords(&obj.keywords);
  return obj;
}

TEST(WindowStoreChurnTest, RandomizedChurnNeverDriftsFromReference) {
  constexpr Timestamp kSliceMs = 100;
  constexpr Timestamp kWindowMs = 1000;  // 10 slices per window.
  ChurnHarness harness(kSliceMs);
  util::Rng rng(2024);

  Timestamp now = 0;
  ObjectId next_oid = 0;
  // ~60 windows of churn: bursty appends, frequent expiry, rare clears.
  for (int step = 0; step < 3000; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.78) {
      // A burst of appends at the current time (same-timestamp runs are
      // common in real streams and stress the open slice).
      const uint32_t burst = 1 + static_cast<uint32_t>(rng.NextBounded(8));
      for (uint32_t b = 0; b < burst; ++b) {
        harness.Append(MakeObject(next_oid++, now, &rng));
      }
    } else if (op < 0.9) {
      // Advance time by up to ~half a window; later appends land in new
      // slices, sealing the previous ones.
      now += 1 + static_cast<Timestamp>(rng.NextBounded(kWindowMs / 2));
    } else if (op < 0.985) {
      harness.DropBefore(now - kWindowMs);
    } else {
      harness.Clear();
    }
  }
  harness.CheckRoundtrip();
}

TEST(WindowStoreChurnTest, SteadyStateChurnRecyclesInsteadOfGrowing) {
  constexpr Timestamp kSliceMs = 100;
  constexpr Timestamp kWindowMs = 1000;
  ChurnHarness harness(kSliceMs);
  util::Rng rng(7);

  Timestamp now = 0;
  ObjectId next_oid = 0;
  uint64_t peak_first_half = 0;
  uint64_t peak_second_half = 0;
  uint32_t peak_slices = 0;
  constexpr int kWindows = 40;
  for (int w = 0; w < kWindows; ++w) {
    // One window of steady ingest: same object rate every window, expiry
    // every slice, as the module's rotation cadence does.
    for (int s = 0; s < 10; ++s) {
      const uint32_t burst = 12 + static_cast<uint32_t>(rng.NextBounded(4));
      for (uint32_t b = 0; b < burst; ++b) {
        harness.Append(MakeObject(next_oid++, now, &rng));
      }
      now += kSliceMs;
      harness.DropBefore(now - kWindowMs);
    }
    const uint64_t bytes = harness.store().MemoryBytes();
    if (w < kWindows / 2) {
      peak_first_half = std::max(peak_first_half, bytes);
    } else {
      peak_second_half = std::max(peak_second_half, bytes);
    }
    peak_slices = std::max(peak_slices, harness.store().slices_resident());
  }
  // Steady state: the second half of the run must not keep allocating —
  // retired slices come back from the free list with capacity intact.
  EXPECT_LE(peak_second_half, peak_first_half + peak_first_half / 4)
      << "memory kept growing across identical windows: free-list "
         "recycling is not engaging";
  // A 10-slice window holds at most the 10 live slices + the open one +
  // one not-yet-retired boundary slice.
  EXPECT_LE(peak_slices, 12u);
}

}  // namespace
}  // namespace latest::stream
