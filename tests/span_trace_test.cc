// Span tracing: RAII nesting, ring wraparound, root sampling, the
// disabled fast path, Chrome trace-event export, and end-to-end span
// capture from a live LatestModule stream.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "tests/test_stream.h"

namespace latest::obs {
namespace {

/// Installs a collector for the test body and guarantees the global is
/// cleared again even on assertion failure (other tests assume a dark
/// tracer).
class ScopedCollector {
 public:
  explicit ScopedCollector(SpanCollector* collector) {
    SetSpanCollector(collector);
  }
  ~ScopedCollector() { SetSpanCollector(nullptr); }
};

const SpanRecord* FindByName(const std::vector<SpanRecord>& spans,
                             const std::string& name) {
  for (const SpanRecord& span : spans) {
    if (span.name != nullptr && name == span.name) return &span;
  }
  return nullptr;
}

TEST(SpanTest, DisabledTracingRecordsNothing) {
  ASSERT_EQ(GetSpanCollector(), nullptr);
  {
    LATEST_SPAN("never_recorded");
    LATEST_SPAN("also_never");
  }
  // Installing a collector afterwards must not resurrect closed spans.
  SpanCollector collector(16);
  ScopedCollector scoped(&collector);
  EXPECT_EQ(collector.recorded(), 0u);
}

TEST(SpanTest, ParentChildNesting) {
  SpanCollector collector(64);
  ScopedCollector scoped(&collector);
  {
    Span root("root");
    {
      Span child("child");
      Span grandchild("grandchild");
      (void)grandchild;
      (void)child;
    }
    Span sibling("sibling");
    (void)sibling;
    (void)root;
  }
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 4u);

  const SpanRecord* root = FindByName(spans, "root");
  const SpanRecord* child = FindByName(spans, "child");
  const SpanRecord* grandchild = FindByName(spans, "grandchild");
  const SpanRecord* sibling = FindByName(spans, "sibling");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->id);
  EXPECT_EQ(grandchild->parent_id, child->id);
  EXPECT_EQ(sibling->parent_id, root->id);

  // Children close before (and start after) their parent.
  EXPECT_GE(child->start_ns, root->start_ns);
  EXPECT_LE(child->start_ns + child->duration_ns,
            root->start_ns + root->duration_ns);
  // All on one thread track.
  EXPECT_EQ(child->tid, root->tid);
  EXPECT_EQ(grandchild->tid, root->tid);
}

TEST(SpanTest, RingWraparoundKeepsNewestAndCountsDrops) {
  SpanCollector collector(8);
  ScopedCollector scoped(&collector);
  for (int i = 0; i < 20; ++i) {
    Span span("wrap");
    (void)span;
  }
  EXPECT_EQ(collector.recorded(), 20u);
  EXPECT_EQ(collector.dropped(), 12u);
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest first: ids strictly increase and end at the newest span.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST(SpanTest, RootSamplingTracesWholeTreeEveryNth) {
  SpanCollector collector(64, /*sample_every=*/3);
  ScopedCollector scoped(&collector);
  for (int i = 0; i < 9; ++i) {
    Span root("sampled_root");
    Span child("sampled_child");
    (void)root;
    (void)child;
  }
  // Roots 0, 3, 6 are traced, each with its child riding along.
  EXPECT_EQ(collector.roots_seen(), 9u);
  EXPECT_EQ(collector.recorded(), 6u);
  const std::vector<SpanRecord> spans = collector.Snapshot();
  size_t roots = 0, children = 0;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) {
      ++roots;
    } else {
      ++children;
    }
  }
  EXPECT_EQ(roots, 3u);
  EXPECT_EQ(children, 3u);
}

TEST(SpanTest, SampleEveryZeroDisablesRecordingButTracksDepth) {
  SpanCollector collector(64, /*sample_every=*/0);
  ScopedCollector scoped(&collector);
  {
    Span root("r");
    Span child("c");
    (void)root;
    (void)child;
  }
  EXPECT_EQ(collector.recorded(), 0u);
  // A fresh sampling collector still sees balanced depth afterwards: a
  // new root decides for itself.
  SpanCollector second(64, /*sample_every=*/1);
  SetSpanCollector(&second);
  {
    Span root("recorded");
    (void)root;
  }
  SetSpanCollector(nullptr);
  EXPECT_EQ(second.recorded(), 1u);
  const std::vector<SpanRecord> spans = second.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(SpanTest, ThreadsGetDistinctTracks) {
  SpanCollector collector(64);
  ScopedCollector scoped(&collector);
  {
    Span main_span("main_thread");
    (void)main_span;
  }
  std::thread worker([] {
    Span worker_span("worker_thread");
    (void)worker_span;
  });
  worker.join();
  const std::vector<SpanRecord> spans = collector.Snapshot();
  const SpanRecord* main_span = FindByName(spans, "main_thread");
  const SpanRecord* worker_span = FindByName(spans, "worker_thread");
  ASSERT_NE(main_span, nullptr);
  ASSERT_NE(worker_span, nullptr);
  EXPECT_NE(main_span->tid, worker_span->tid);
}

TEST(SpanTest, CollectorExportsRecordedAndDroppedCounters) {
  MetricsRegistry registry;
  SpanCollector collector(4, 1, &registry);
  ScopedCollector scoped(&collector);
  for (int i = 0; i < 6; ++i) {
    Span span("counted");
    (void)span;
  }
  const Counter* recorded =
      registry.FindCounter("latest_spans_recorded_total");
  const Counter* dropped = registry.FindCounter("latest_spans_dropped_total");
  ASSERT_NE(recorded, nullptr);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(recorded->value(), 6u);
  EXPECT_EQ(dropped->value(), 2u);
}

TEST(SpanTest, TraceContextLinksAcrossThreads) {
  SpanCollector collector(64);
  ScopedCollector scoped(&collector);
  TraceContext handoff;
  {
    Span root("ctx_root");
    handoff = root.context();
    EXPECT_TRUE(handoff.sampled);
    EXPECT_NE(handoff.span_id, 0u);
    EXPECT_NE(handoff.trace_id, 0u);
    // The continuation runs on another thread while the parent is live.
    std::thread worker([&handoff] {
      Span continued("ctx_continued", handoff);
      Span nested("ctx_nested");
      (void)continued;
      (void)nested;
    });
    worker.join();
  }
  const std::vector<SpanRecord> spans = collector.Snapshot();
  const SpanRecord* root = FindByName(spans, "ctx_root");
  const SpanRecord* continued = FindByName(spans, "ctx_continued");
  const SpanRecord* nested = FindByName(spans, "ctx_nested");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(continued, nullptr);
  ASSERT_NE(nested, nullptr);
  // Linkage crosses the thread boundary: parent ids chain root →
  // continued → nested while the tids differ.
  EXPECT_EQ(continued->parent_id, root->id);
  EXPECT_EQ(nested->parent_id, continued->id);
  EXPECT_NE(continued->tid, root->tid);
  EXPECT_EQ(nested->tid, continued->tid);
  // One trace id spans the whole tree.
  EXPECT_EQ(root->trace_id, handoff.trace_id);
  EXPECT_EQ(continued->trace_id, handoff.trace_id);
  EXPECT_EQ(nested->trace_id, handoff.trace_id);
}

TEST(SpanTest, UnsampledContextSuppressesWholeSubtree) {
  SpanCollector collector(64);
  ScopedCollector scoped(&collector);
  // A continuation handle whose originating tree was not sampled: the
  // continued span and everything nested under it stay dark, even
  // though the collector itself records everything.
  const TraceContext unsampled{/*trace_id=*/99, /*span_id=*/0,
                               /*sampled=*/false};
  {
    Span continued("dark_continued", unsampled);
    LATEST_SPAN("dark_nested");
    EXPECT_FALSE(continued.sampled());
  }
  EXPECT_EQ(collector.recorded(), 0u);
  // The thread recovers: the next plain root records normally.
  {
    Span root("light_root");
    (void)root;
  }
  EXPECT_EQ(collector.recorded(), 1u);
}

// The serve plane's flush-time idiom: the batch thread opens a real
// linked span under a pre-allocated root id, and the IO thread later
// synthesizes the root + stage records via Record(). The result must
// read back as one tree crossing both threads.
TEST(SpanTest, SynthesizedRecordsJoinLinkedTree) {
  SpanCollector collector(64);
  ScopedCollector scoped(&collector);
  const uint64_t trace_id = 0xabcdef01u;
  const uint64_t root_id = collector.NextId();

  std::thread batch_thread([&] {
    Span module_run("module_run",
                    TraceContext{trace_id, root_id, /*sampled=*/true});
    (void)module_run;
  });
  batch_thread.join();

  // IO thread (here: the test main thread) synthesizes the root and one
  // stage child after the fact.
  SpanRecord root;
  root.name = "serve_request";
  root.id = root_id;
  root.parent_id = 0;
  root.trace_id = trace_id;
  root.tid = CurrentThreadTid();
  root.start_ns = 0;
  root.duration_ns = 1000;
  collector.Record(root);
  SpanRecord stage;
  stage.name = "queue_wait";
  stage.id = collector.NextId();
  stage.parent_id = root_id;
  stage.trace_id = trace_id;
  stage.tid = CurrentThreadTid();
  stage.start_ns = 100;
  stage.duration_ns = 200;
  collector.Record(stage);

  const std::vector<SpanRecord> spans = collector.Snapshot();
  const SpanRecord* run = FindByName(spans, "module_run");
  const SpanRecord* synthesized_root = FindByName(spans, "serve_request");
  const SpanRecord* wait = FindByName(spans, "queue_wait");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(synthesized_root, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(run->parent_id, root_id);
  EXPECT_EQ(wait->parent_id, root_id);
  EXPECT_EQ(run->trace_id, trace_id);
  EXPECT_EQ(wait->trace_id, trace_id);
  // The tree crosses threads: the real linked span ran on the batch
  // thread, the synthesized records on this one.
  EXPECT_NE(run->tid, synthesized_root->tid);
}

// Minimal structural JSON scan: brackets balance outside strings, and
// strings/escapes are well-formed. Enough to catch malformed exports
// without a JSON library.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        ASSERT_GE(depth, 0);
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceExportTest, ChromeTraceEventStructure) {
  SpanCollector collector(64);
  {
    ScopedCollector scoped(&collector);
    Span root("export_root");
    Span child("export \"child\"\\");
    (void)root;
    (void)child;
  }
  const std::string json = TraceEventJson(collector, "test_process");
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"export_root\""), std::string::npos);
  // Name escaping: the quote and backslash must be escaped in the output.
  EXPECT_NE(json.find("export \\\"child\\\"\\\\"), std::string::npos);
  // Process metadata names the process.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"test_process\""), std::string::npos);
}

TEST(TraceExportTest, WriteTraceEventFileRoundTrips) {
  SpanCollector collector(16);
  {
    ScopedCollector scoped(&collector);
    Span span("file_span");
    (void)span;
  }
  const std::string path =
      ::testing::TempDir() + "/span_trace_test_trace.json";
  const util::Status status = WriteTraceEventFile(collector, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_EQ(contents, TraceEventJson(collector));
  std::remove(path.c_str());
}

TEST(TraceExportTest, WriteToUnwritablePathFails) {
  SpanCollector collector(4);
  const util::Status status =
      WriteTraceEventFile(collector, "/nonexistent_dir/trace.json");
  EXPECT_FALSE(status.ok());
}

// End-to-end: a live module stream produces the lifecycle span tree the
// introspection docs promise — ingest with store/estimator children,
// query with ground_truth/estimate/tree_train children.
TEST(SpanModuleIntegrationTest, ModuleStreamEmitsLifecycleSpans) {
  SpanCollector collector(1 << 14);
  ScopedCollector scoped(&collector);

  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 20;
  config.monitor_window = 8;
  config.estimator.reservoir_capacity = 200;
  config.alpha = 0.0;
  auto created = core::LatestModule::Create(config);
  ASSERT_TRUE(created.ok());
  auto module = std::move(created).value();

  const auto objects =
      testing_support::MakeClusteredObjects(3000, 7, /*duration=*/3000);
  util::Rng rng(11);
  for (size_t i = 0; i < objects.size(); ++i) {
    module->OnObject(objects[i]);
    if (objects[i].timestamp >= 1000 && i % 10 == 0) {
      stream::Query q;
      q.keywords = {static_cast<stream::KeywordId>(rng.NextBounded(50))};
      q.timestamp = objects[i].timestamp;
      module->OnQuery(q);
    }
  }

  const std::vector<SpanRecord> spans = collector.Snapshot();
  std::map<std::string, const SpanRecord*> by_name;
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) {
    by_name.emplace(span.name, &span);
    by_id.emplace(span.id, &span);
  }
  for (const char* expected :
       {"ingest", "query", "ground_truth", "estimate", "tree_train",
        "store_insert", "estimator_insert", "slice_seal", "evict"}) {
    EXPECT_TRUE(by_name.count(expected) == 1)
        << "missing span: " << expected;
  }

  // Structural check: every ground_truth/estimate span is a child of a
  // query span; store_insert children belong to ingest roots.
  for (const SpanRecord& span : spans) {
    const std::string name = span.name;
    if (name == "ground_truth" || name == "estimate" ||
        name == "tree_train") {
      auto parent = by_id.find(span.parent_id);
      if (parent != by_id.end()) {
        EXPECT_STREQ(parent->second->name, "query") << "child " << name;
      }
    } else if (name == "store_insert" || name == "estimator_insert") {
      auto parent = by_id.find(span.parent_id);
      if (parent != by_id.end()) {
        EXPECT_STREQ(parent->second->name, "ingest") << "child " << name;
      }
    }
  }

  // The export of a real stream stays structurally valid JSON.
  ExpectBalancedJson(TraceEventJson(collector));
}

}  // namespace
}  // namespace latest::obs
