// Tests for src/ml: Gaussian attribute observer, Hoeffding tree (VFDT),
// and the MLP.

#include <cmath>

#include <gtest/gtest.h>

#include "ml/gaussian_estimator.h"
#include "ml/hoeffding_tree.h"
#include "ml/mlp.h"
#include "util/rng.h"

namespace latest::ml {
namespace {

// --------------------------------------------------------------------
// GaussianEstimator

TEST(GaussianEstimatorTest, MomentsOfKnownSample) {
  GaussianEstimator g;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) g.Add(v);
  EXPECT_DOUBLE_EQ(g.mean(), 5.0);
  EXPECT_NEAR(g.variance(), 32.0 / 7.0, 1e-9);  // Sample variance.
  EXPECT_DOUBLE_EQ(g.min(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
}

TEST(GaussianEstimatorTest, EmptyIsSafe) {
  GaussianEstimator g;
  EXPECT_EQ(g.count(), 0u);
  EXPECT_DOUBLE_EQ(g.ProbabilityBelow(1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.CountBelow(1.0), 0.0);
}

TEST(GaussianEstimatorTest, ProbabilityBelowMatchesNormalCdf) {
  GaussianEstimator g;
  util::Rng rng(1);
  for (int i = 0; i < 100000; ++i) g.Add(rng.NextGaussian(10.0, 2.0));
  EXPECT_NEAR(g.ProbabilityBelow(10.0), 0.5, 0.01);
  EXPECT_NEAR(g.ProbabilityBelow(12.0), 0.8413, 0.01);
  EXPECT_NEAR(g.ProbabilityBelow(8.0), 0.1587, 0.01);
}

TEST(GaussianEstimatorTest, ZeroVarianceIsStepFunction) {
  GaussianEstimator g;
  g.Add(5.0);
  g.Add(5.0);
  EXPECT_DOUBLE_EQ(g.ProbabilityBelow(4.0), 0.0);
  EXPECT_DOUBLE_EQ(g.ProbabilityBelow(6.0), 1.0);
}

// --------------------------------------------------------------------
// Entropy / Hoeffding bound

TEST(EntropyTest, PureDistributionIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({10.0, 0.0, 0.0}), 0.0);
}

TEST(EntropyTest, UniformBinaryIsOneBit) {
  EXPECT_DOUBLE_EQ(Entropy({5.0, 5.0}), 1.0);
}

TEST(EntropyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
}

TEST(HoeffdingBoundTest, ShrinksWithN) {
  const double e100 = HoeffdingBound(1.0, 1e-7, 100);
  const double e10000 = HoeffdingBound(1.0, 1e-7, 10000);
  EXPECT_GT(e100, e10000);
  EXPECT_NEAR(e100 / e10000, 10.0, 1e-9);  // 1/sqrt(n) scaling.
}

TEST(HoeffdingBoundTest, KnownValue) {
  // eps = sqrt(R^2 ln(1/delta) / 2n).
  const double eps = HoeffdingBound(1.0, std::exp(-2.0), 100);
  EXPECT_NEAR(eps, std::sqrt(2.0 / 200.0), 1e-12);
}

// --------------------------------------------------------------------
// HoeffdingTree

HoeffdingTreeConfig FastConfig() {
  HoeffdingTreeConfig config;
  config.grace_period = 50;
  config.split_confidence = 1e-3;
  config.tie_threshold = 0.1;
  return config;
}

TEST(HoeffdingTreeConfigTest, Validation) {
  EXPECT_TRUE(HoeffdingTreeConfig{}.Validate().ok());
  HoeffdingTreeConfig bad = FastConfig();
  bad.grace_period = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.split_confidence = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.split_confidence = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.tie_threshold = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = FastConfig();
  bad.numeric_split_candidates = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

FeatureSchema CatSchema() {
  FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 0;
  schema.num_classes = 3;
  return schema;
}

TEST(HoeffdingTreeTest, UntrainedPredictsUniformDistribution) {
  HoeffdingTree tree(CatSchema(), FastConfig());
  FeatureVector f;
  f.categorical = {0};
  const auto dist = tree.PredictDistribution(f);
  ASSERT_EQ(dist.size(), 3u);
  for (const double p : dist) EXPECT_DOUBLE_EQ(p, 1.0 / 3.0);
}

TEST(HoeffdingTreeTest, LearnsCategoricalIdentity) {
  // Label equals the single categorical attribute: the tree must split on
  // it and reach perfect accuracy.
  HoeffdingTree tree(CatSchema(), FastConfig());
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(3));
    TrainingExample ex;
    ex.features.categorical = {v};
    ex.label = static_cast<uint32_t>(v);
    tree.Train(ex);
  }
  EXPECT_GT(tree.num_splits(), 0u);
  for (int v = 0; v < 3; ++v) {
    FeatureVector f;
    f.categorical = {v};
    EXPECT_EQ(tree.Predict(f), static_cast<uint32_t>(v));
  }
}

TEST(HoeffdingTreeTest, LearnsNumericThreshold) {
  FeatureSchema schema;
  schema.num_numeric = 1;
  schema.num_classes = 2;
  HoeffdingTree tree(schema, FastConfig());
  util::Rng rng(2);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.NextDouble();
    TrainingExample ex;
    ex.features.numeric = {x};
    ex.label = x < 0.5 ? 0u : 1u;
    tree.Train(ex);
  }
  EXPECT_GT(tree.num_splits(), 0u);
  FeatureVector low;
  low.numeric = {0.1};
  FeatureVector high;
  high.numeric = {0.9};
  EXPECT_EQ(tree.Predict(low), 0u);
  EXPECT_EQ(tree.Predict(high), 1u);
}

TEST(HoeffdingTreeTest, MixedSchemaTwoLevelConcept) {
  // Label = categorical value if cat < 2, else depends on the numeric
  // attribute. Requires a two-level tree.
  FeatureSchema schema;
  schema.categorical_cardinalities = {3};
  schema.num_numeric = 1;
  schema.num_classes = 3;
  HoeffdingTree tree(schema, FastConfig());
  util::Rng rng(3);
  auto label_of = [](int cat, double x) -> uint32_t {
    if (cat < 2) return static_cast<uint32_t>(cat);
    return x < 0.5 ? 0u : 2u;
  };
  for (int i = 0; i < 20000; ++i) {
    const int cat = static_cast<int>(rng.NextBounded(3));
    const double x = rng.NextDouble();
    TrainingExample ex;
    ex.features.categorical = {cat};
    ex.features.numeric = {x};
    ex.label = label_of(cat, x);
    tree.Train(ex);
  }
  int correct = 0;
  for (int i = 0; i < 300; ++i) {
    const int cat = static_cast<int>(rng.NextBounded(3));
    const double x = rng.NextDouble();
    FeatureVector f;
    f.categorical = {cat};
    f.numeric = {x};
    correct += tree.Predict(f) == label_of(cat, x);
  }
  EXPECT_GT(correct, 270);  // >90% on a noiseless concept.
  EXPECT_GE(tree.depth(), 2u);
}

TEST(HoeffdingTreeTest, PureStreamNeverSplits) {
  HoeffdingTree tree(CatSchema(), FastConfig());
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    TrainingExample ex;
    ex.features.categorical = {static_cast<int>(rng.NextBounded(3))};
    ex.label = 1;  // Single class.
    tree.Train(ex);
  }
  EXPECT_EQ(tree.num_splits(), 0u);
  FeatureVector f;
  f.categorical = {0};
  EXPECT_EQ(tree.Predict(f), 1u);
}

TEST(HoeffdingTreeTest, NoiseDoesNotForceSpuriousDepth) {
  // Random labels independent of features: the Hoeffding bound should
  // mostly prevent splits (tie threshold may allow a few).
  HoeffdingTree tree(CatSchema(), HoeffdingTreeConfig{});
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    TrainingExample ex;
    ex.features.categorical = {static_cast<int>(rng.NextBounded(3))};
    ex.label = static_cast<uint32_t>(rng.NextBounded(3));
    tree.Train(ex);
  }
  EXPECT_LE(tree.depth(), 1u);
}

TEST(HoeffdingTreeTest, CountsAndResets) {
  HoeffdingTree tree(CatSchema(), FastConfig());
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const int v = static_cast<int>(rng.NextBounded(3));
    TrainingExample ex;
    ex.features.categorical = {v};
    ex.label = static_cast<uint32_t>(v);
    tree.Train(ex);
  }
  EXPECT_EQ(tree.num_trained(), 1000u);
  EXPECT_GT(tree.num_leaves(), 1u);
  tree.Reset();
  EXPECT_EQ(tree.num_trained(), 0u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(HoeffdingTreeTest, DistributionSumsToOne) {
  HoeffdingTree tree(CatSchema(), FastConfig());
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    TrainingExample ex;
    ex.features.categorical = {static_cast<int>(rng.NextBounded(3))};
    ex.label = static_cast<uint32_t>(rng.NextBounded(2));
    tree.Train(ex);
  }
  FeatureVector f;
  f.categorical = {1};
  const auto dist = tree.PredictDistribution(f);
  double total = 0.0;
  for (const double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Incremental-learning property: accuracy improves monotonically-ish with
// more training data on a learnable concept (the paper's Section V-B
// claim about VFDT convergence).
TEST(HoeffdingTreeTest, AccuracyImprovesWithData) {
  FeatureSchema schema;
  schema.num_numeric = 2;
  schema.num_classes = 2;
  HoeffdingTree tree(schema, FastConfig());
  util::Rng rng(8);
  auto target_concept = [](double x, double y) {
    return (x + y > 1.0) ? 1u : 0u;
  };
  auto eval = [&]() {
    util::Rng eval_rng(99);
    int correct = 0;
    for (int i = 0; i < 500; ++i) {
      const double x = eval_rng.NextDouble();
      const double y = eval_rng.NextDouble();
      FeatureVector f;
      f.numeric = {x, y};
      correct += tree.Predict(f) == target_concept(x, y);
    }
    return correct;
  };
  const int before = eval();
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    const double y = rng.NextDouble();
    TrainingExample ex;
    ex.features.numeric = {x, y};
    ex.label = target_concept(x, y);
    tree.Train(ex);
  }
  const int after = eval();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 400);  // >80%.
}

// --------------------------------------------------------------------
// Mlp

TEST(MlpTest, OutputInUnitInterval) {
  Mlp net(MlpConfig{.num_inputs = 3, .num_hidden = 4}, 1);
  const double out = net.Forward({0.1, 0.5, 0.9});
  EXPECT_GT(out, 0.0);
  EXPECT_LT(out, 1.0);
}

TEST(MlpTest, DeterministicForSeed) {
  const MlpConfig config{.num_inputs = 2, .num_hidden = 4};
  Mlp a(config, 7);
  Mlp b(config, 7);
  EXPECT_DOUBLE_EQ(a.Forward({0.3, 0.7}), b.Forward({0.3, 0.7}));
}

TEST(MlpTest, LearnsConstant) {
  Mlp net(MlpConfig{.num_inputs = 1, .num_hidden = 4}, 2);
  for (int i = 0; i < 2000; ++i) net.TrainStep({0.5}, 0.8);
  EXPECT_NEAR(net.Forward({0.5}), 0.8, 0.05);
}

TEST(MlpTest, LearnsLinearMap) {
  Mlp net(MlpConfig{.num_inputs = 1,
                    .num_hidden = 8,
                    .learning_rate = 0.3,
                    .momentum = 0.2},
          3);
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble();
    net.TrainStep({x}, 0.2 + 0.6 * x);
  }
  for (const double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(net.Forward({x}), 0.2 + 0.6 * x, 0.08);
  }
}

TEST(MlpTest, LearnsXorWithHiddenLayer) {
  // XOR requires the hidden layer; a linear model cannot represent it.
  Mlp net(MlpConfig{.num_inputs = 2,
                    .num_hidden = 8,
                    .learning_rate = 0.5,
                    .momentum = 0.3},
          17);
  util::Rng rng(4);
  for (int i = 0; i < 60000; ++i) {
    const int a = static_cast<int>(rng.NextBounded(2));
    const int b = static_cast<int>(rng.NextBounded(2));
    net.TrainStep({static_cast<double>(a), static_cast<double>(b)},
                  a == b ? 0.0 : 1.0);
  }
  EXPECT_LT(net.Forward({0, 0}), 0.3);
  EXPECT_GT(net.Forward({0, 1}), 0.7);
  EXPECT_GT(net.Forward({1, 0}), 0.7);
  EXPECT_LT(net.Forward({1, 1}), 0.3);
}

TEST(MlpTest, TrainStepReturnsSquaredError) {
  Mlp net(MlpConfig{.num_inputs = 1, .num_hidden = 2}, 5);
  const double out = net.Forward({0.5});
  const double err = net.TrainStep({0.5}, 1.0);
  EXPECT_NEAR(err, (out - 1.0) * (out - 1.0), 1e-12);
}

TEST(MlpTest, ResetRestoresInitialWeights) {
  Mlp net(MlpConfig{.num_inputs = 1, .num_hidden = 4}, 6);
  for (int i = 0; i < 100; ++i) net.TrainStep({0.5}, 0.9);
  net.Reset();
  EXPECT_EQ(net.num_steps(), 0u);
  // After reset the output changes from the trained value (fresh weights
  // from the generator's continued stream differ).
  EXPECT_TRUE(std::isfinite(net.Forward({0.5})));
}

TEST(SigmoidTest, SymmetryAndSaturation) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(10.0), 1.0, 1e-4);
  EXPECT_NEAR(Sigmoid(-10.0), 0.0, 1e-4);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
  // Extreme inputs must not overflow.
  EXPECT_DOUBLE_EQ(Sigmoid(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(Sigmoid(-1000.0), 0.0);
}

}  // namespace
}  // namespace latest::ml
