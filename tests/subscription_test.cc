// Tests for continuous estimation subscriptions and the module stats
// snapshot.

#include <cmath>

#include <gtest/gtest.h>

#include "core/module_stats.h"
#include "core/subscription_manager.h"
#include "tests/test_stream.h"

namespace latest::core {
namespace {

LatestConfig SubConfig() {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 10;
  config.monitor_window = 8;
  return config;
}

TEST(SubscriptionTest, SubscribeValidation) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  const auto cb = [](const SubscriptionEvent&) {};

  stream::Query empty;
  EXPECT_FALSE(subs.Subscribe(empty, 100, cb).ok());

  stream::Query q = testing_support::MakeSpatialQuery({10, 10, 50, 50});
  EXPECT_FALSE(subs.Subscribe(q, 0, cb).ok());
  EXPECT_FALSE(subs.Subscribe(q, 100, nullptr).ok());

  stream::Query degenerate;
  degenerate.range = geo::Rect{5, 5, 5, 9};
  EXPECT_FALSE(subs.Subscribe(degenerate, 100, cb).ok());

  EXPECT_TRUE(subs.Subscribe(q, 100, cb).ok());
  EXPECT_EQ(subs.active_subscriptions(), 1u);
}

TEST(SubscriptionTest, FiresOncePerPeriod) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  int fires = 0;
  auto id = subs.Subscribe(
      testing_support::MakeSpatialQuery({10, 10, 50, 50}),
      /*period_ms=*/100,
      [&](const SubscriptionEvent& e) {
        ++fires;
        EXPECT_GT(e.fired_at, 0);
      },
      /*start_ms=*/0);
  ASSERT_TRUE(id.ok());

  const auto objects = testing_support::MakeClusteredObjects(2000, 1, 2000);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    subs.OnAdvance(obj.timestamp);
  }
  // 2000ms of stream with a 100ms period: ~19 firings (first at 100ms).
  EXPECT_GE(fires, 15);
  EXPECT_LE(fires, 20);
  EXPECT_EQ(subs.events_delivered(), static_cast<uint64_t>(fires));
}

TEST(SubscriptionTest, MissedPeriodsCoalesce) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  int fires = 0;
  ASSERT_TRUE(subs.Subscribe(
                      testing_support::MakeSpatialQuery({10, 10, 50, 50}),
                      /*period_ms=*/10,
                      [&](const SubscriptionEvent&) { ++fires; },
                      /*start_ms=*/0)
                  .ok());
  // A single jump across 50 periods delivers exactly one fresh result.
  subs.OnAdvance(500);
  EXPECT_EQ(fires, 1);
  // The next deadline is strictly after 500.
  subs.OnAdvance(505);
  EXPECT_EQ(fires, 1);
  subs.OnAdvance(510);
  EXPECT_EQ(fires, 2);
}

TEST(SubscriptionTest, UnarmedSubscriptionWaitsOnePeriod) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  int fires = 0;
  ASSERT_TRUE(subs.Subscribe(testing_support::MakeKeywordQuery({1}),
                             /*period_ms=*/100,
                             [&](const SubscriptionEvent&) { ++fires; })
                  .ok());
  subs.OnAdvance(1000);  // Arms: next fire at 1100.
  EXPECT_EQ(fires, 0);
  subs.OnAdvance(1099);
  EXPECT_EQ(fires, 0);
  subs.OnAdvance(1100);
  EXPECT_EQ(fires, 1);
}

TEST(SubscriptionTest, UnsubscribeStopsDelivery) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  int fires = 0;
  auto id = subs.Subscribe(testing_support::MakeKeywordQuery({1}),
                           /*period_ms=*/100,
                           [&](const SubscriptionEvent&) { ++fires; },
                           /*start_ms=*/0);
  ASSERT_TRUE(id.ok());
  subs.OnAdvance(100);
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(subs.Unsubscribe(*id));
  EXPECT_FALSE(subs.Unsubscribe(*id));  // Second cancel is a no-op.
  subs.OnAdvance(300);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(subs.active_subscriptions(), 0u);
}

TEST(SubscriptionTest, MultipleSubscriptionsIndependentPeriods) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  int fast_fires = 0;
  int slow_fires = 0;
  ASSERT_TRUE(subs.Subscribe(testing_support::MakeKeywordQuery({1}), 50,
                             [&](const SubscriptionEvent&) { ++fast_fires; },
                             0)
                  .ok());
  ASSERT_TRUE(subs.Subscribe(testing_support::MakeKeywordQuery({2}), 200,
                             [&](const SubscriptionEvent&) { ++slow_fires; },
                             0)
                  .ok());
  for (stream::Timestamp t = 0; t <= 1000; t += 25) subs.OnAdvance(t);
  EXPECT_EQ(fast_fires, 20);
  EXPECT_EQ(slow_fires, 5);
}

TEST(SubscriptionTest, OutcomesTrackGroundTruth) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  SubscriptionManager subs(module.get());
  std::vector<SubscriptionEvent> events;
  ASSERT_TRUE(subs.Subscribe(
                      testing_support::MakeSpatialQuery({20, 20, 40, 40}),
                      /*period_ms=*/200,
                      [&](const SubscriptionEvent& e) {
                        events.push_back(e);
                      },
                      /*start_ms=*/1000)
                  .ok());
  const auto objects = testing_support::MakeClusteredObjects(5000, 2, 3000);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    subs.OnAdvance(obj.timestamp);
  }
  ASSERT_GT(events.size(), 5u);
  for (const auto& event : events) {
    EXPECT_GT(event.outcome.actual, 0u);  // The cluster is always busy.
    EXPECT_TRUE(std::isfinite(event.outcome.estimate));
  }
}

// --------------------------------------------------------------------
// ModuleStats

TEST(ModuleStatsTest, SnapshotReflectsModule) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  const auto objects = testing_support::MakeClusteredObjects(3000, 3, 2000);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 25 == 0) {
      stream::Query q = testing_support::MakeSpatialQuery({20, 20, 40, 40});
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  const ModuleStats stats = module->GetStats();
  EXPECT_EQ(stats.objects_ingested, 3000u);
  EXPECT_EQ(stats.queries_answered, module->queries_answered());
  EXPECT_EQ(stats.window_population, module->window_population());
  EXPECT_EQ(stats.phase, module->phase());
  EXPECT_EQ(stats.active, module->active_kind());
  EXPECT_EQ(stats.model_records, module->model().num_trained());
  // Paper portfolio enabled, CMS extension disabled by default.
  EXPECT_TRUE(stats.enabled[0]);
  EXPECT_FALSE(
      stats.enabled[static_cast<uint32_t>(estimators::EstimatorKind::kCmSketch)]);
  // Spatial cells of enabled estimators carry measurements.
  EXPECT_GT(stats.scoreboard[0][static_cast<uint32_t>(stats.active)].accuracy,
            0.0);
}

TEST(ModuleStatsTest, FormatContainsKeyFields) {
  auto module = std::move(LatestModule::Create(SubConfig())).value();
  const auto text = FormatStats(module->GetStats());
  EXPECT_NE(text.find("phase=warmup"), std::string::npos);
  EXPECT_NE(text.find("active=RSH"), std::string::npos);
  EXPECT_NE(text.find("scoreboard"), std::string::npos);
  EXPECT_NE(text.find("H4096"), std::string::npos);
  EXPECT_EQ(text.find("CMS"), std::string::npos);  // Disabled by default.
}

}  // namespace
}  // namespace latest::core
