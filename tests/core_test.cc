// Tests for src/core: metrics, scoreboard, and LatestConfig validation.

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "core/metrics.h"
#include "core/scoreboard.h"

namespace latest::core {
namespace {

// --------------------------------------------------------------------
// Metrics

TEST(MetricsTest, PerfectEstimateScoresOne) {
  EXPECT_DOUBLE_EQ(EstimationAccuracy(100.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 100), 0.0);
}

TEST(MetricsTest, RelativeErrorAgainstActual) {
  EXPECT_DOUBLE_EQ(EstimationAccuracy(90.0, 100), 0.9);
  EXPECT_DOUBLE_EQ(EstimationAccuracy(110.0, 100), 0.9);
  EXPECT_DOUBLE_EQ(RelativeError(150.0, 100), 0.5);
}

TEST(MetricsTest, AccuracyFlooredAtZero) {
  EXPECT_DOUBLE_EQ(EstimationAccuracy(300.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(EstimationAccuracy(1e9, 1), 0.0);
}

TEST(MetricsTest, ZeroActualGuard) {
  // Denominator is max(actual, 1): estimating 0 for 0 is perfect.
  EXPECT_DOUBLE_EQ(EstimationAccuracy(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(EstimationAccuracy(0.5, 0), 0.5);
  EXPECT_DOUBLE_EQ(EstimationAccuracy(2.0, 0), 0.0);
}

TEST(MetricsTest, NegativeEstimateClampsToZero) {
  // A negative count estimate is no worse than estimating zero: it must
  // not be penalized past the all-miss error.
  EXPECT_DOUBLE_EQ(RelativeError(-50.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(-50.0, 100), RelativeError(0.0, 100));
  EXPECT_DOUBLE_EQ(EstimationAccuracy(-50.0, 100), 0.0);
  // A slightly negative estimate of an empty result is perfect, not half
  // wrong.
  EXPECT_DOUBLE_EQ(EstimationAccuracy(-0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(-0.5, 0), 0.0);
  // -0.0 behaves exactly like +0.0.
  EXPECT_DOUBLE_EQ(EstimationAccuracy(-0.0, 0), 1.0);
}

TEST(MetricsTest, BlendedScoreExtremes) {
  // alpha = 0: accuracy only. alpha = 1: latency only.
  EXPECT_DOUBLE_EQ(BlendedScore(0.8, 0.4, 0.0), 0.8);
  EXPECT_DOUBLE_EQ(BlendedScore(0.8, 0.4, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(BlendedScore(0.8, 0.4, 0.5), 0.7);
}

TEST(MetricsTest, BlendedScorePrefersFasterAtAlphaOne) {
  const double slow = BlendedScore(1.0, 0.9, 1.0);
  const double fast = BlendedScore(0.2, 0.1, 1.0);
  EXPECT_GT(fast, slow);
}

// --------------------------------------------------------------------
// Scoreboard

EstimatorMeasurement Meas(estimators::EstimatorKind kind, double accuracy,
                          double latency_ms) {
  EstimatorMeasurement m;
  m.kind = kind;
  m.accuracy = accuracy;
  m.latency_ms = latency_ms;
  return m;
}

TEST(ScoreboardTest, EmptyCellHasNoScore) {
  Scoreboard board;
  EXPECT_FALSE(board
                   .Score(stream::QueryType::kSpatial,
                          estimators::EstimatorKind::kRsl, 0.5)
                   .has_value());
}

TEST(ScoreboardTest, BestForPrefersAccuracyAtAlphaZero) {
  Scoreboard board;
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kH4096, 0.9, 5.0));
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kRsl, 0.6, 0.1));
  EXPECT_EQ(board.BestFor(stream::QueryType::kSpatial, 0.0),
            estimators::EstimatorKind::kH4096);
}

TEST(ScoreboardTest, BestForPrefersLatencyAtAlphaOne) {
  Scoreboard board;
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kH4096, 0.9, 5.0));
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kRsl, 0.6, 0.1));
  EXPECT_EQ(board.BestFor(stream::QueryType::kSpatial, 1.0),
            estimators::EstimatorKind::kRsl);
}

TEST(ScoreboardTest, ExcludeForcesAlternative) {
  Scoreboard board;
  board.Record(stream::QueryType::kKeyword,
               Meas(estimators::EstimatorKind::kRsh, 0.9, 1.0));
  board.Record(stream::QueryType::kKeyword,
               Meas(estimators::EstimatorKind::kRsl, 0.8, 1.0));
  EXPECT_EQ(board.BestFor(stream::QueryType::kKeyword, 0.0),
            estimators::EstimatorKind::kRsh);
  EXPECT_EQ(board.BestFor(stream::QueryType::kKeyword, 0.0,
                          estimators::EstimatorKind::kRsh),
            estimators::EstimatorKind::kRsl);
}

TEST(ScoreboardTest, TypesAreIndependent) {
  Scoreboard board;
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kH4096, 0.95, 0.1));
  board.Record(stream::QueryType::kKeyword,
               Meas(estimators::EstimatorKind::kRsh, 0.8, 1.0));
  EXPECT_EQ(board.BestFor(stream::QueryType::kSpatial, 0.0),
            estimators::EstimatorKind::kH4096);
  EXPECT_EQ(board.BestFor(stream::QueryType::kKeyword, 0.0),
            estimators::EstimatorKind::kRsh);
}

TEST(ScoreboardTest, EwmaTracksDrift) {
  Scoreboard board(/*ewma_alpha=*/0.5);
  const auto kind = estimators::EstimatorKind::kRsh;
  board.Record(stream::QueryType::kSpatial, Meas(kind, 1.0, 1.0));
  for (int i = 0; i < 20; ++i) {
    board.Record(stream::QueryType::kSpatial, Meas(kind, 0.2, 1.0));
  }
  EXPECT_NEAR(board.AccuracyOf(stream::QueryType::kSpatial, kind), 0.2,
              0.01);
}

TEST(ScoreboardTest, FallbackWhenEmpty) {
  Scoreboard board;
  EXPECT_EQ(board.BestFor(stream::QueryType::kSpatial, 0.5),
            estimators::EstimatorKind::kRsh);
  // Excluding the fallback returns some other kind.
  EXPECT_NE(board.BestFor(stream::QueryType::kSpatial, 0.5,
                          estimators::EstimatorKind::kRsh),
            estimators::EstimatorKind::kRsh);
}

TEST(ScoreboardTest, ResetClears) {
  Scoreboard board;
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kRsl, 0.9, 1.0));
  board.Reset();
  EXPECT_FALSE(board
                   .Score(stream::QueryType::kSpatial,
                          estimators::EstimatorKind::kRsl, 0.5)
                   .has_value());
}

TEST(ScoreboardTest, NormalizeLatencyUsesObservedRange) {
  Scoreboard board;
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kH4096, 0.5, 0.0));
  board.Record(stream::QueryType::kSpatial,
               Meas(estimators::EstimatorKind::kAasp, 0.5, 10.0));
  EXPECT_DOUBLE_EQ(board.NormalizeLatency(0.0), 0.0);
  EXPECT_DOUBLE_EQ(board.NormalizeLatency(10.0), 1.0);
  EXPECT_DOUBLE_EQ(board.NormalizeLatency(5.0), 0.5);
}

// --------------------------------------------------------------------
// LatestConfig

LatestConfig BaseConfig() {
  LatestConfig config;
  config.bounds = geo::Rect{0, 0, 100, 100};
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  return config;
}

TEST(LatestConfigTest, DefaultsValidate) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(LatestConfigTest, RejectsBadAlphaTauBeta) {
  auto config = BaseConfig();
  config.alpha = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.tau = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.tau = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.beta = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.beta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(LatestConfigTest, PrefillThresholdAboveTau) {
  const auto config = BaseConfig();
  EXPECT_GT(config.PrefillThreshold(), config.tau);
}

TEST(LatestConfigTest, CreateRejectsInvalid) {
  auto config = BaseConfig();
  config.monitor_window = 0;
  EXPECT_FALSE(LatestModule::Create(config).ok());
}

TEST(LatestConfigTest, PhaseNames) {
  EXPECT_STREQ(PhaseName(Phase::kWarmup), "warmup");
  EXPECT_STREQ(PhaseName(Phase::kPretraining), "pretraining");
  EXPECT_STREQ(PhaseName(Phase::kIncremental), "incremental");
}

}  // namespace
}  // namespace latest::core
