// Tests for src/workload: dataset generators, query workload generators,
// and the stream driver.

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/dataset.h"
#include "workload/query_workload.h"
#include "workload/scenario.h"
#include "workload/stream_driver.h"

namespace latest::workload {
namespace {

// --------------------------------------------------------------------
// DatasetSpec / DatasetGenerator

TEST(DatasetSpecTest, PresetsValidate) {
  EXPECT_TRUE(TwitterLikeSpec().Validate().ok());
  EXPECT_TRUE(EbirdLikeSpec().Validate().ok());
  EXPECT_TRUE(CheckinLikeSpec().Validate().ok());
}

TEST(DatasetSpecTest, ScaleMultipliesObjectCount) {
  EXPECT_EQ(TwitterLikeSpec(2.0).num_objects, 2 * TwitterLikeSpec().num_objects);
  EXPECT_EQ(TwitterLikeSpec(0.1).num_objects,
            TwitterLikeSpec().num_objects / 10);
}

TEST(DatasetSpecTest, ValidationCatchesBadSpecs) {
  auto spec = TwitterLikeSpec();
  spec.bounds = geo::Rect{};
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.vocabulary_size = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.min_keywords_per_object = 5;
  spec.max_keywords_per_object = 2;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.uniform_fraction = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.num_objects = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(DatasetGeneratorTest, ProducesExactCount) {
  auto spec = TwitterLikeSpec(0.01);
  DatasetGenerator gen(spec);
  uint64_t count = 0;
  while (gen.HasNext()) {
    gen.Next();
    ++count;
  }
  EXPECT_EQ(count, spec.num_objects);
}

TEST(DatasetGeneratorTest, TimestampsNonDecreasingWithinDuration) {
  auto spec = TwitterLikeSpec(0.02);
  DatasetGenerator gen(spec);
  stream::Timestamp prev = -1;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    EXPECT_GE(obj.timestamp, prev);
    EXPECT_LT(obj.timestamp, spec.duration_ms);
    prev = obj.timestamp;
  }
}

TEST(DatasetGeneratorTest, LocationsInsideBounds) {
  auto spec = CheckinLikeSpec(0.05);
  DatasetGenerator gen(spec);
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    EXPECT_TRUE(spec.bounds.Contains(obj.loc));
  }
}

TEST(DatasetGeneratorTest, KeywordsCanonicalAndInVocabulary) {
  auto spec = EbirdLikeSpec(0.02);
  DatasetGenerator gen(spec);
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    ASSERT_GE(obj.keywords.size(), 1u);
    ASSERT_LE(obj.keywords.size(),
              static_cast<size_t>(spec.max_keywords_per_object));
    for (size_t i = 0; i < obj.keywords.size(); ++i) {
      EXPECT_LT(obj.keywords[i], spec.vocabulary_size);
      if (i > 0) {
        EXPECT_GT(obj.keywords[i], obj.keywords[i - 1]);
      }
    }
  }
}

TEST(DatasetGeneratorTest, KeywordFrequenciesAreSkewed) {
  auto spec = TwitterLikeSpec(0.2);
  DatasetGenerator gen(spec);
  std::map<stream::KeywordId, int> counts;
  while (gen.HasNext()) {
    for (const auto kw : gen.Next().keywords) ++counts[kw];
  }
  // Zipf: the most frequent keyword appears far more than the 100th.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[100]));
}

TEST(DatasetGeneratorTest, SpatialDensityIsHotspotSkewed) {
  auto spec = TwitterLikeSpec(0.2);
  DatasetGenerator gen(spec);
  // Count objects near New York (hotspot) vs an empty-ocean box of the
  // same size.
  const geo::Rect nyc = geo::Rect::FromCenter({-74.0, 40.7}, 4, 4);
  const geo::Rect ocean = geo::Rect::FromCenter({-70.0, 30.0}, 4, 4);
  int near_nyc = 0;
  int near_ocean = 0;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    near_nyc += nyc.Contains(obj.loc);
    near_ocean += ocean.Contains(obj.loc);
  }
  EXPECT_GT(near_nyc, 10 * (near_ocean + 1));
}

TEST(DatasetGeneratorTest, DeterministicForSeed) {
  auto spec = TwitterLikeSpec(0.01);
  DatasetGenerator a(spec);
  DatasetGenerator b(spec);
  while (a.HasNext()) {
    const auto oa = a.Next();
    const auto ob = b.Next();
    EXPECT_EQ(oa.loc, ob.loc);
    EXPECT_EQ(oa.keywords, ob.keywords);
    EXPECT_EQ(oa.timestamp, ob.timestamp);
  }
}

// --------------------------------------------------------------------
// WorkloadSpec / QueryGenerator

TEST(WorkloadSpecTest, AllPresetsValidate) {
  for (const WorkloadId id :
       {WorkloadId::kTwQW1, WorkloadId::kTwQW2, WorkloadId::kTwQW3,
        WorkloadId::kTwQW4, WorkloadId::kTwQW5, WorkloadId::kTwQW6,
        WorkloadId::kEbRQW1, WorkloadId::kCiQW1}) {
    const auto spec = MakeWorkloadSpec(id, 1000);
    EXPECT_TRUE(spec.Validate().ok()) << WorkloadIdName(id);
    EXPECT_EQ(spec.name, WorkloadIdName(id));
  }
}

TEST(WorkloadSpecTest, ValidationCatchesBadMixes) {
  WorkloadSpec spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments[0].mix = {0.5, 0.1, 0.1};  // Sums to 0.7.
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments[0].fraction = 0.5;  // Fractions must sum to 1.
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments.clear();
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.min_side_fraction = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.min_query_keywords = 3;
  spec.max_query_keywords = 1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(QueryGeneratorTest, PureSpatialWorkloadHasOnlySpatialQueries) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW2, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kSpatial);
    EXPECT_TRUE(q.range->IsValid());
  }
}

TEST(QueryGeneratorTest, SingleKeywordWorkload) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW4, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kKeyword);
    EXPECT_EQ(q.keywords.size(), 1u);
    EXPECT_LT(q.keywords[0], dataset.vocabulary_size);
  }
}

TEST(QueryGeneratorTest, MultiKeywordWorkloadHasTwoToFive) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW5, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kKeyword);
    EXPECT_GE(q.keywords.size(), 1u);  // Dedup may shrink below 2.
    EXPECT_LE(q.keywords.size(), 5u);
  }
}

TEST(QueryGeneratorTest, MixedWorkloadApproximatesThirds) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW1, 6000), dataset);
  int counts[3] = {};
  while (gen.HasNext()) {
    ++counts[static_cast<int>(gen.Next().Type())];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 6000 / 5);  // Each type well represented.
    EXPECT_LT(c, 6000 / 2);
  }
}

TEST(QueryGeneratorTest, PhasesChangeDominantType) {
  const auto dataset = TwitterLikeSpec();
  const auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 10000);
  QueryGenerator gen(spec, dataset);
  // Segment 2 of TwQW1 (queries 1800..3100) is spatial-dominated.
  int spatial_in_segment2 = 0;
  int total_in_segment2 = 0;
  while (gen.HasNext()) {
    const uint32_t index = gen.produced();
    const auto q = gen.Next();
    if (index >= 1900 && index < 3000) {
      ++total_in_segment2;
      spatial_in_segment2 += (q.Type() == stream::QueryType::kSpatial);
    }
  }
  ASSERT_GT(total_in_segment2, 0);
  EXPECT_GT(static_cast<double>(spatial_in_segment2) / total_in_segment2,
            0.8);
}

TEST(QueryGeneratorTest, RangeSidesWithinSpec) {
  const auto dataset = TwitterLikeSpec();
  auto spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 300);
  QueryGenerator gen(spec, dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    const double side_fraction = q.range->Width() / dataset.bounds.Width();
    EXPECT_GE(side_fraction, spec.min_side_fraction - 1e-9);
    EXPECT_LE(side_fraction, spec.max_side_fraction + 1e-9);
  }
}

TEST(QueryGeneratorTest, SpatialSideScaleShrinksPureSpatialOnly) {
  const auto dataset = TwitterLikeSpec();
  auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 2000);
  ASSERT_LT(spec.spatial_side_scale, 1.0);
  QueryGenerator gen(spec, dataset);
  double max_spatial_side = 0.0;
  double max_hybrid_side = 0.0;
  while (gen.HasNext()) {
    const auto q = gen.Next();
    if (!q.HasRange()) continue;
    const double side = q.range->Width() / dataset.bounds.Width();
    if (q.Type() == stream::QueryType::kSpatial) {
      max_spatial_side = std::max(max_spatial_side, side);
    } else {
      max_hybrid_side = std::max(max_hybrid_side, side);
    }
  }
  EXPECT_LT(max_spatial_side, spec.max_side_fraction * spec.spatial_side_scale +
                                  1e-9);
  EXPECT_GT(max_hybrid_side, max_spatial_side);
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  const auto dataset = TwitterLikeSpec();
  const auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 200);
  QueryGenerator a(spec, dataset);
  QueryGenerator b(spec, dataset);
  while (a.HasNext()) {
    const auto qa = a.Next();
    const auto qb = b.Next();
    EXPECT_EQ(qa.HasRange(), qb.HasRange());
    EXPECT_EQ(qa.keywords, qb.keywords);
  }
}

// --------------------------------------------------------------------
// Query-mix distribution invariants (chi-square goodness of fit)

/// Pearson chi-square statistic of observed type counts against the
/// spec's mix. Zero-probability cells must be empty (that is asserted
/// exactly, not statistically) and are excluded from the statistic.
double ChiSquare(const uint64_t observed[3], const double expected_prob[3],
                 int* df) {
  uint64_t n = observed[0] + observed[1] + observed[2];
  double statistic = 0.0;
  *df = -1;  // Cells with mass minus one.
  for (int i = 0; i < 3; ++i) {
    if (expected_prob[i] <= 0.0) {
      EXPECT_EQ(observed[i], 0u) << "query type " << i
                                 << " generated with probability zero";
      continue;
    }
    const double expect = expected_prob[i] * static_cast<double>(n);
    const double diff = static_cast<double>(observed[i]) - expect;
    statistic += diff * diff / expect;
    ++*df;
  }
  return statistic;
}

/// 99.9th percentile of the chi-square distribution — with fixed seeds
/// the statistic is deterministic, so this only needs to hold for the
/// pinned generator sequence while still failing loudly if the mix
/// logic regresses.
double ChiSquareCritical(int df) {
  switch (df) {
    case 1:
      return 10.828;
    case 2:
      return 13.816;
    default:
      ADD_FAILURE() << "unexpected degrees of freedom " << df;
      return 0.0;
  }
}

TEST(QueryGeneratorChiSquareTest, UniformWorkloadsMatchTheirMix) {
  const auto dataset = TwitterLikeSpec();
  for (const WorkloadId id :
       {WorkloadId::kTwQW1, WorkloadId::kTwQW3, WorkloadId::kTwQW6}) {
    const auto spec = MakeWorkloadSpec(id, 20000);
    QueryGenerator gen(spec, dataset);
    uint64_t counts[3] = {};
    while (gen.HasNext()) ++counts[static_cast<int>(gen.Next().Type())];
    // Aggregate mix over all segments, weighted by segment fraction.
    double mix[3] = {};
    for (const WorkloadSegment& seg : spec.segments) {
      mix[0] += seg.fraction * seg.mix.spatial;
      mix[1] += seg.fraction * seg.mix.keyword;
      mix[2] += seg.fraction * seg.mix.hybrid;
    }
    int df = 0;
    const double statistic = ChiSquare(counts, mix, &df);
    EXPECT_LT(statistic, ChiSquareCritical(df)) << spec.name;
  }
}

TEST(QueryGeneratorChiSquareTest, EachPhaseSegmentMatchesItsOwnMix) {
  // The per-segment invariant is the one mid-stream flips exercise:
  // TwQW1 rotates its dominant type through five phases, and each phase
  // must individually match its declared mix — an off-by-one in the
  // segment boundary or a stale mix would concentrate the error in one
  // segment and blow past the critical value there.
  const auto dataset = TwitterLikeSpec();
  for (const WorkloadId id : {WorkloadId::kTwQW1, WorkloadId::kTwQW6}) {
    const auto spec = MakeWorkloadSpec(id, 30000);
    QueryGenerator gen(spec, dataset);
    // Segment boundaries, mirroring the generator's cumulative-fraction
    // mapping.
    std::vector<uint32_t> starts;
    double cumulative = 0.0;
    for (const WorkloadSegment& seg : spec.segments) {
      starts.push_back(static_cast<uint32_t>(
          cumulative * static_cast<double>(spec.num_queries)));
      cumulative += seg.fraction;
    }
    std::vector<std::array<uint64_t, 3>> counts(spec.segments.size(),
                                                {0, 0, 0});
    while (gen.HasNext()) {
      const uint32_t index = gen.produced();
      size_t segment = starts.size() - 1;
      while (segment > 0 && starts[segment] > index) --segment;
      ++counts[segment][static_cast<int>(gen.Next().Type())];
    }
    for (size_t i = 0; i < spec.segments.size(); ++i) {
      const QueryMix& mix = spec.segments[i].mix;
      const double expected[3] = {mix.spatial, mix.keyword, mix.hybrid};
      int df = 0;
      const double statistic = ChiSquare(counts[i].data(), expected, &df);
      EXPECT_LT(statistic, ChiSquareCritical(df))
          << spec.name << " segment " << i;
    }
  }
}

TEST(QueryGeneratorChiSquareTest, HardFlipIsExactAtTheBoundary) {
  // A custom two-segment workload with degenerate mixes turns the
  // statistical check into an exact one: every query before the flip is
  // keyword-only, every query after is spatial-only.
  const auto dataset = TwitterLikeSpec();
  WorkloadSpec spec = MakeWorkloadSpec(WorkloadId::kTwQW4, 4000);
  spec.name = "hard_flip";
  spec.segments = {{{0.0, 1.0, 0.0}, 0.5}, {{1.0, 0.0, 0.0}, 0.5}};
  ASSERT_TRUE(spec.Validate().ok());
  QueryGenerator gen(spec, dataset);
  while (gen.HasNext()) {
    const uint32_t index = gen.produced();
    const auto q = gen.Next();
    if (index < spec.num_queries / 2) {
      EXPECT_EQ(q.Type(), stream::QueryType::kKeyword) << "query " << index;
    } else {
      EXPECT_EQ(q.Type(), stream::QueryType::kSpatial) << "query " << index;
    }
  }
}

TEST(ScenarioQueryMixChiSquareTest, QueryFlipRegimesMatchTheirMixes) {
  // The scenario library's query_mix flip: both regimes of the
  // `query_flip` scenario must match their declared proportions. The
  // regime is decided by object-stream fraction at emission, so classify
  // queries by the surrounding object index and skip a narrow band at
  // the flip point.
  const auto entry = MakeScenario("query_flip");
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  const ScenarioSpec& spec = entry->spec;
  ASSERT_LT(spec.query_flip_at, 1.0);
  ScenarioStream stream(spec);
  uint64_t object_index = 0;
  uint64_t before[3] = {};
  uint64_t after[3] = {};
  while (stream.HasNext()) {
    const ScenarioEvent event = stream.Next();
    if (!event.is_query) {
      ++object_index;
      continue;
    }
    const double f = static_cast<double>(object_index) /
                     static_cast<double>(spec.objects);
    if (std::abs(f - spec.query_flip_at) < 0.01) continue;
    ++(f < spec.query_flip_at
           ? before
           : after)[static_cast<int>(event.query.Type())];
  }
  const auto check = [](const uint64_t counts[3], const ScenarioQueryMix& mix,
                        const char* which) {
    const double expected[3] = {mix.spatial, mix.keyword,
                                1.0 - mix.spatial - mix.keyword};
    int df = 0;
    const double statistic = ChiSquare(counts, expected, &df);
    EXPECT_LT(statistic, ChiSquareCritical(df)) << which;
  };
  check(before, spec.query_mix_before, "before flip");
  check(after, spec.query_mix_after, "after flip");
}

// --------------------------------------------------------------------
// StreamDriver

TEST(StreamDriverTest, EmitsEverythingInTimestampOrder) {
  auto dataset_spec = TwitterLikeSpec(0.02);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 200);
  QueryGenerator queries(workload_spec, dataset_spec);
  StreamDriver driver(&dataset, &queries, /*query_start_ms=*/3600000,
                      dataset_spec.duration_ms);
  stream::Timestamp last = -1;
  uint64_t objects = 0;
  uint32_t query_count = 0;
  driver.Run(
      [&](const stream::GeoTextObject& obj) {
        EXPECT_GE(obj.timestamp, last);
        last = obj.timestamp;
        ++objects;
      },
      [&](const stream::Query& q, uint32_t index) {
        EXPECT_GE(q.timestamp, last);
        last = q.timestamp;
        EXPECT_EQ(index, query_count);
        ++query_count;
      });
  EXPECT_EQ(objects, dataset_spec.num_objects);
  EXPECT_EQ(query_count, 200u);
}

TEST(StreamDriverTest, QueriesStartAfterWarmup) {
  auto dataset_spec = TwitterLikeSpec(0.02);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  QueryGenerator queries(workload_spec, dataset_spec);
  const stream::Timestamp start = 2 * 3600000;
  StreamDriver driver(&dataset, &queries, start, dataset_spec.duration_ms);
  driver.Run([](const stream::GeoTextObject&) {},
             [&](const stream::Query& q, uint32_t) {
               EXPECT_GE(q.timestamp, start);
             });
}

TEST(StreamDriverTest, QueryTimestampsSpanTheConfiguredRange) {
  auto dataset_spec = TwitterLikeSpec(0.01);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 50);
  QueryGenerator queries(workload_spec, dataset_spec);
  StreamDriver driver(&dataset, &queries, 1000000, 2000000);
  EXPECT_EQ(driver.QueryTimestamp(0), 1000000);
  EXPECT_EQ(driver.QueryTimestamp(49), 2000000);
}

}  // namespace
}  // namespace latest::workload
