// Tests for src/workload: dataset generators, query workload generators,
// and the stream driver.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "workload/dataset.h"
#include "workload/query_workload.h"
#include "workload/stream_driver.h"

namespace latest::workload {
namespace {

// --------------------------------------------------------------------
// DatasetSpec / DatasetGenerator

TEST(DatasetSpecTest, PresetsValidate) {
  EXPECT_TRUE(TwitterLikeSpec().Validate().ok());
  EXPECT_TRUE(EbirdLikeSpec().Validate().ok());
  EXPECT_TRUE(CheckinLikeSpec().Validate().ok());
}

TEST(DatasetSpecTest, ScaleMultipliesObjectCount) {
  EXPECT_EQ(TwitterLikeSpec(2.0).num_objects, 2 * TwitterLikeSpec().num_objects);
  EXPECT_EQ(TwitterLikeSpec(0.1).num_objects,
            TwitterLikeSpec().num_objects / 10);
}

TEST(DatasetSpecTest, ValidationCatchesBadSpecs) {
  auto spec = TwitterLikeSpec();
  spec.bounds = geo::Rect{};
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.vocabulary_size = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.min_keywords_per_object = 5;
  spec.max_keywords_per_object = 2;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.uniform_fraction = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwitterLikeSpec();
  spec.num_objects = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(DatasetGeneratorTest, ProducesExactCount) {
  auto spec = TwitterLikeSpec(0.01);
  DatasetGenerator gen(spec);
  uint64_t count = 0;
  while (gen.HasNext()) {
    gen.Next();
    ++count;
  }
  EXPECT_EQ(count, spec.num_objects);
}

TEST(DatasetGeneratorTest, TimestampsNonDecreasingWithinDuration) {
  auto spec = TwitterLikeSpec(0.02);
  DatasetGenerator gen(spec);
  stream::Timestamp prev = -1;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    EXPECT_GE(obj.timestamp, prev);
    EXPECT_LT(obj.timestamp, spec.duration_ms);
    prev = obj.timestamp;
  }
}

TEST(DatasetGeneratorTest, LocationsInsideBounds) {
  auto spec = CheckinLikeSpec(0.05);
  DatasetGenerator gen(spec);
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    EXPECT_TRUE(spec.bounds.Contains(obj.loc));
  }
}

TEST(DatasetGeneratorTest, KeywordsCanonicalAndInVocabulary) {
  auto spec = EbirdLikeSpec(0.02);
  DatasetGenerator gen(spec);
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    ASSERT_GE(obj.keywords.size(), 1u);
    ASSERT_LE(obj.keywords.size(),
              static_cast<size_t>(spec.max_keywords_per_object));
    for (size_t i = 0; i < obj.keywords.size(); ++i) {
      EXPECT_LT(obj.keywords[i], spec.vocabulary_size);
      if (i > 0) {
        EXPECT_GT(obj.keywords[i], obj.keywords[i - 1]);
      }
    }
  }
}

TEST(DatasetGeneratorTest, KeywordFrequenciesAreSkewed) {
  auto spec = TwitterLikeSpec(0.2);
  DatasetGenerator gen(spec);
  std::map<stream::KeywordId, int> counts;
  while (gen.HasNext()) {
    for (const auto kw : gen.Next().keywords) ++counts[kw];
  }
  // Zipf: the most frequent keyword appears far more than the 100th.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[100]));
}

TEST(DatasetGeneratorTest, SpatialDensityIsHotspotSkewed) {
  auto spec = TwitterLikeSpec(0.2);
  DatasetGenerator gen(spec);
  // Count objects near New York (hotspot) vs an empty-ocean box of the
  // same size.
  const geo::Rect nyc = geo::Rect::FromCenter({-74.0, 40.7}, 4, 4);
  const geo::Rect ocean = geo::Rect::FromCenter({-70.0, 30.0}, 4, 4);
  int near_nyc = 0;
  int near_ocean = 0;
  while (gen.HasNext()) {
    const auto obj = gen.Next();
    near_nyc += nyc.Contains(obj.loc);
    near_ocean += ocean.Contains(obj.loc);
  }
  EXPECT_GT(near_nyc, 10 * (near_ocean + 1));
}

TEST(DatasetGeneratorTest, DeterministicForSeed) {
  auto spec = TwitterLikeSpec(0.01);
  DatasetGenerator a(spec);
  DatasetGenerator b(spec);
  while (a.HasNext()) {
    const auto oa = a.Next();
    const auto ob = b.Next();
    EXPECT_EQ(oa.loc, ob.loc);
    EXPECT_EQ(oa.keywords, ob.keywords);
    EXPECT_EQ(oa.timestamp, ob.timestamp);
  }
}

// --------------------------------------------------------------------
// WorkloadSpec / QueryGenerator

TEST(WorkloadSpecTest, AllPresetsValidate) {
  for (const WorkloadId id :
       {WorkloadId::kTwQW1, WorkloadId::kTwQW2, WorkloadId::kTwQW3,
        WorkloadId::kTwQW4, WorkloadId::kTwQW5, WorkloadId::kTwQW6,
        WorkloadId::kEbRQW1, WorkloadId::kCiQW1}) {
    const auto spec = MakeWorkloadSpec(id, 1000);
    EXPECT_TRUE(spec.Validate().ok()) << WorkloadIdName(id);
    EXPECT_EQ(spec.name, WorkloadIdName(id));
  }
}

TEST(WorkloadSpecTest, ValidationCatchesBadMixes) {
  WorkloadSpec spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments[0].mix = {0.5, 0.1, 0.1};  // Sums to 0.7.
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments[0].fraction = 0.5;  // Fractions must sum to 1.
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.segments.clear();
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.min_side_fraction = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  spec.min_query_keywords = 3;
  spec.max_query_keywords = 1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(QueryGeneratorTest, PureSpatialWorkloadHasOnlySpatialQueries) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW2, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kSpatial);
    EXPECT_TRUE(q.range->IsValid());
  }
}

TEST(QueryGeneratorTest, SingleKeywordWorkload) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW4, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kKeyword);
    EXPECT_EQ(q.keywords.size(), 1u);
    EXPECT_LT(q.keywords[0], dataset.vocabulary_size);
  }
}

TEST(QueryGeneratorTest, MultiKeywordWorkloadHasTwoToFive) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW5, 500), dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    EXPECT_EQ(q.Type(), stream::QueryType::kKeyword);
    EXPECT_GE(q.keywords.size(), 1u);  // Dedup may shrink below 2.
    EXPECT_LE(q.keywords.size(), 5u);
  }
}

TEST(QueryGeneratorTest, MixedWorkloadApproximatesThirds) {
  const auto dataset = TwitterLikeSpec();
  QueryGenerator gen(MakeWorkloadSpec(WorkloadId::kTwQW1, 6000), dataset);
  int counts[3] = {};
  while (gen.HasNext()) {
    ++counts[static_cast<int>(gen.Next().Type())];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 6000 / 5);  // Each type well represented.
    EXPECT_LT(c, 6000 / 2);
  }
}

TEST(QueryGeneratorTest, PhasesChangeDominantType) {
  const auto dataset = TwitterLikeSpec();
  const auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 10000);
  QueryGenerator gen(spec, dataset);
  // Segment 2 of TwQW1 (queries 1800..3100) is spatial-dominated.
  int spatial_in_segment2 = 0;
  int total_in_segment2 = 0;
  while (gen.HasNext()) {
    const uint32_t index = gen.produced();
    const auto q = gen.Next();
    if (index >= 1900 && index < 3000) {
      ++total_in_segment2;
      spatial_in_segment2 += (q.Type() == stream::QueryType::kSpatial);
    }
  }
  ASSERT_GT(total_in_segment2, 0);
  EXPECT_GT(static_cast<double>(spatial_in_segment2) / total_in_segment2,
            0.8);
}

TEST(QueryGeneratorTest, RangeSidesWithinSpec) {
  const auto dataset = TwitterLikeSpec();
  auto spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 300);
  QueryGenerator gen(spec, dataset);
  while (gen.HasNext()) {
    const auto q = gen.Next();
    const double side_fraction = q.range->Width() / dataset.bounds.Width();
    EXPECT_GE(side_fraction, spec.min_side_fraction - 1e-9);
    EXPECT_LE(side_fraction, spec.max_side_fraction + 1e-9);
  }
}

TEST(QueryGeneratorTest, SpatialSideScaleShrinksPureSpatialOnly) {
  const auto dataset = TwitterLikeSpec();
  auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 2000);
  ASSERT_LT(spec.spatial_side_scale, 1.0);
  QueryGenerator gen(spec, dataset);
  double max_spatial_side = 0.0;
  double max_hybrid_side = 0.0;
  while (gen.HasNext()) {
    const auto q = gen.Next();
    if (!q.HasRange()) continue;
    const double side = q.range->Width() / dataset.bounds.Width();
    if (q.Type() == stream::QueryType::kSpatial) {
      max_spatial_side = std::max(max_spatial_side, side);
    } else {
      max_hybrid_side = std::max(max_hybrid_side, side);
    }
  }
  EXPECT_LT(max_spatial_side, spec.max_side_fraction * spec.spatial_side_scale +
                                  1e-9);
  EXPECT_GT(max_hybrid_side, max_spatial_side);
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  const auto dataset = TwitterLikeSpec();
  const auto spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 200);
  QueryGenerator a(spec, dataset);
  QueryGenerator b(spec, dataset);
  while (a.HasNext()) {
    const auto qa = a.Next();
    const auto qb = b.Next();
    EXPECT_EQ(qa.HasRange(), qb.HasRange());
    EXPECT_EQ(qa.keywords, qb.keywords);
  }
}

// --------------------------------------------------------------------
// StreamDriver

TEST(StreamDriverTest, EmitsEverythingInTimestampOrder) {
  auto dataset_spec = TwitterLikeSpec(0.02);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW1, 200);
  QueryGenerator queries(workload_spec, dataset_spec);
  StreamDriver driver(&dataset, &queries, /*query_start_ms=*/3600000,
                      dataset_spec.duration_ms);
  stream::Timestamp last = -1;
  uint64_t objects = 0;
  uint32_t query_count = 0;
  driver.Run(
      [&](const stream::GeoTextObject& obj) {
        EXPECT_GE(obj.timestamp, last);
        last = obj.timestamp;
        ++objects;
      },
      [&](const stream::Query& q, uint32_t index) {
        EXPECT_GE(q.timestamp, last);
        last = q.timestamp;
        EXPECT_EQ(index, query_count);
        ++query_count;
      });
  EXPECT_EQ(objects, dataset_spec.num_objects);
  EXPECT_EQ(query_count, 200u);
}

TEST(StreamDriverTest, QueriesStartAfterWarmup) {
  auto dataset_spec = TwitterLikeSpec(0.02);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 100);
  QueryGenerator queries(workload_spec, dataset_spec);
  const stream::Timestamp start = 2 * 3600000;
  StreamDriver driver(&dataset, &queries, start, dataset_spec.duration_ms);
  driver.Run([](const stream::GeoTextObject&) {},
             [&](const stream::Query& q, uint32_t) {
               EXPECT_GE(q.timestamp, start);
             });
}

TEST(StreamDriverTest, QueryTimestampsSpanTheConfiguredRange) {
  auto dataset_spec = TwitterLikeSpec(0.01);
  DatasetGenerator dataset(dataset_spec);
  const auto workload_spec = MakeWorkloadSpec(WorkloadId::kTwQW2, 50);
  QueryGenerator queries(workload_spec, dataset_spec);
  StreamDriver driver(&dataset, &queries, 1000000, 2000000);
  EXPECT_EQ(driver.QueryTimestamp(0), 1000000);
  EXPECT_EQ(driver.QueryTimestamp(49), 2000000);
}

}  // namespace
}  // namespace latest::workload
