// Recovery must degrade, never misbehave: a flipped byte anywhere in a
// snapshot is caught by a section or table CRC and recovery falls back to
// the previous snapshot; a truncated or corrupted WAL tail stops replay
// at the last intact record. No input may crash, hang, or silently load
// wrong state — the sanitizer CI jobs run this same binary under
// ASan/UBSan.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "persist/checkpoint_format.h"
#include "persist/checkpoint_manager.h"
#include "persist/file_io.h"
#include "persist/wal.h"
#include "tests/test_stream.h"
#include "util/serialization.h"

namespace latest::persist {
namespace {

using core::LatestConfig;
using core::LatestModule;

LatestConfig FaultConfig() {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = 5;
  return config;
}

std::string MakeTempDir() {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "latest_fault_XXXXXX")
          .string();
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void FlipByteAt(const std::string& path, size_t offset) {
  std::string bytes;
  ASSERT_TRUE(ReadFile(path, &bytes).ok());
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0x5a;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void CopyFileBytes(const std::string& from, const std::string& to) {
  std::filesystem::copy_file(
      from, to, std::filesystem::copy_options::overwrite_existing);
}

// A checkpoint directory with two snapshot/WAL pairs plus a synced WAL
// tail, and the state the stream actually reached.
struct Fixture {
  std::string dir;
  uint64_t newest_seq = 0;
  uint64_t oldest_seq = 0;
  uint64_t final_objects = 0;
  uint64_t final_queries = 0;
  std::string final_state;  // Deterministic digest, not raw SaveState.
};

Fixture BuildCheckpointDir() {
  Fixture fx;
  fx.dir = MakeTempDir();
  if (fx.dir.empty()) return fx;

  auto created = LatestModule::Create(FaultConfig());
  EXPECT_TRUE(created.ok());
  std::unique_ptr<LatestModule> module = std::move(created).value();

  DurabilityConfig durability;
  durability.dir = fx.dir;
  durability.checkpoint_every = 900;
  auto attached = CheckpointManager::Attach(durability, module.get());
  EXPECT_TRUE(attached.ok()) << attached.status().ToString();
  std::unique_ptr<CheckpointManager> manager = std::move(attached).value();

  const auto objects = testing_support::MakeClusteredObjects(
      2500, /*seed=*/13, /*duration=*/1500);
  util::Rng query_rng(99);
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_TRUE(manager->OnObject(objects[i]).ok());
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(query_rng.NextBounded(50))});
    q.timestamp = objects[i].timestamp;
    EXPECT_TRUE(manager->OnQuery(q).ok());
  }
  EXPECT_TRUE(manager->Sync().ok());

  const auto seqs = CheckpointManager::ListSnapshots(fx.dir);
  EXPECT_GE(seqs.size(), 2u);
  fx.newest_seq = seqs.empty() ? 0 : seqs.front();
  fx.oldest_seq = seqs.empty() ? 0 : seqs.back();
  fx.final_objects = module->objects_ingested();
  fx.final_queries = module->queries_answered();
  util::BinaryWriter state;
  module->SaveDeterministicState(&state);
  fx.final_state = state.buffer();
  return fx;
}

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = BuildCheckpointDir();
    ASSERT_FALSE(fx_.dir.empty());
  }
  void TearDown() override {
    if (!fx_.dir.empty()) std::filesystem::remove_all(fx_.dir);
  }

  // Recovery must succeed and reproduce the exact pre-crash state
  // whenever the newest WAL tail is intact.
  void ExpectFullRecovery(const CheckpointManager::Recovered& recovered) {
    EXPECT_EQ(recovered.module->objects_ingested(), fx_.final_objects);
    EXPECT_EQ(recovered.module->queries_answered(), fx_.final_queries);
    util::BinaryWriter state;
    recovered.module->SaveDeterministicState(&state);
    EXPECT_EQ(state.buffer(), fx_.final_state);
  }

  Fixture fx_;
};

TEST(RecoveryEmptyDirTest, RecoverFromEmptyDirIsNotFound) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  const auto recovered = CheckpointManager::Recover(dir, FaultConfig());
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), util::StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST_F(RecoveryFaultTest, IntactDirRecoversExactly) {
  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().snapshot_seq, fx_.newest_seq);
  EXPECT_EQ(recovered.value().snapshots_skipped, 0u);
  EXPECT_FALSE(recovered.value().torn_wal_tail);
  ExpectFullRecovery(recovered.value());
}

TEST_F(RecoveryFaultTest, TruncatedWalTailStopsAtLastIntactRecord) {
  const std::string wal = WalPath(fx_.dir, fx_.newest_seq);
  const auto size = std::filesystem::file_size(wal);
  ASSERT_GT(size, 40u);
  // Chop mid-record: replay must stop cleanly at the last whole record.
  std::filesystem::resize_file(wal, size - 7);

  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().snapshot_seq, fx_.newest_seq);
  EXPECT_TRUE(recovered.value().torn_wal_tail);
  const uint64_t events = recovered.value().module->objects_ingested() +
                          recovered.value().module->queries_answered();
  EXPECT_GE(events, fx_.newest_seq);
  EXPECT_LT(events, fx_.final_objects + fx_.final_queries);
}

TEST_F(RecoveryFaultTest, FlippedByteInWalBodyStopsReplay) {
  const std::string wal = WalPath(fx_.dir, fx_.newest_seq);
  const auto size = std::filesystem::file_size(wal);
  ASSERT_GT(size, 60u);
  FlipByteAt(wal, static_cast<size_t>(size / 2));

  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().torn_wal_tail);
  const uint64_t events = recovered.value().module->objects_ingested() +
                          recovered.value().module->queries_answered();
  EXPECT_GE(events, fx_.newest_seq);
  EXPECT_LT(events, fx_.final_objects + fx_.final_queries);
}

TEST_F(RecoveryFaultTest, CorruptWalHeaderRecoversSnapshotOnly) {
  FlipByteAt(WalPath(fx_.dir, fx_.newest_seq), 0);  // Magic.
  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().snapshot_seq, fx_.newest_seq);
  EXPECT_TRUE(recovered.value().torn_wal_tail);
  EXPECT_EQ(recovered.value().replayed_objects +
                recovered.value().replayed_queries,
            0u);
  EXPECT_EQ(recovered.value().module->objects_ingested() +
                recovered.value().module->queries_answered(),
            fx_.newest_seq);
}

TEST_F(RecoveryFaultTest, FlippedByteInEverySectionFallsBackCleanly) {
  const std::string snapshot = SnapshotPath(fx_.dir, fx_.newest_seq);
  const std::string pristine = snapshot + ".pristine";
  CopyFileBytes(snapshot, pristine);

  CheckpointReader pristine_reader;
  ASSERT_TRUE(pristine_reader.Open(pristine).ok());
  ASSERT_GE(pristine_reader.sections().size(), 2u);

  for (const auto& section : pristine_reader.sections()) {
    SCOPED_TRACE("section " + section.name);
    CopyFileBytes(pristine, snapshot);
    FlipByteAt(snapshot,
               static_cast<size_t>(section.offset + section.size / 2));

    // The format layer pinpoints the corrupt section.
    CheckpointReader corrupt;
    ASSERT_TRUE(corrupt.Open(snapshot).ok());
    EXPECT_FALSE(corrupt.Verify().ok());

    // Recovery skips the corrupt snapshot and degrades to the previous
    // pair; that pair's complete WAL brings it back to the newer
    // snapshot's sequence at minimum.
    const auto recovered =
        CheckpointManager::Recover(fx_.dir, FaultConfig());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered.value().snapshot_seq, fx_.oldest_seq);
    EXPECT_GE(recovered.value().snapshots_skipped, 1u);
    EXPECT_GE(recovered.value().module->objects_ingested() +
                  recovered.value().module->queries_answered(),
              fx_.newest_seq);
  }
  CopyFileBytes(pristine, snapshot);
  std::filesystem::remove(pristine);
}

TEST_F(RecoveryFaultTest, CorruptSnapshotHeaderFallsBack) {
  FlipByteAt(SnapshotPath(fx_.dir, fx_.newest_seq), 0);  // Magic.
  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().snapshot_seq, fx_.oldest_seq);
  EXPECT_GE(recovered.value().snapshots_skipped, 1u);
}

TEST_F(RecoveryFaultTest, TruncatedSnapshotFallsBack) {
  const std::string snapshot = SnapshotPath(fx_.dir, fx_.newest_seq);
  std::filesystem::resize_file(snapshot,
                               std::filesystem::file_size(snapshot) / 2);
  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().snapshot_seq, fx_.oldest_seq);
  EXPECT_GE(recovered.value().snapshots_skipped, 1u);
}

TEST_F(RecoveryFaultTest, AllSnapshotsCorruptIsNotFoundNeverUb) {
  for (const uint64_t seq : CheckpointManager::ListSnapshots(fx_.dir)) {
    FlipByteAt(SnapshotPath(fx_.dir, seq), 12);  // Inside the header.
  }
  const auto recovered = CheckpointManager::Recover(fx_.dir, FaultConfig());
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), util::StatusCode::kNotFound);
}

TEST_F(RecoveryFaultTest, EveryHeaderAndTableByteFlipIsCaught) {
  // Exhaustive sweep over the fixed header + section table: every
  // single-byte flip must be rejected at Open or Verify — never load.
  const std::string snapshot = SnapshotPath(fx_.dir, fx_.newest_seq);
  const std::string pristine = snapshot + ".pristine";
  CopyFileBytes(snapshot, pristine);
  CheckpointReader pristine_reader;
  ASSERT_TRUE(pristine_reader.Open(pristine).ok());
  const size_t table_end =
      static_cast<size_t>(pristine_reader.sections().front().offset);
  for (size_t offset = 0; offset < table_end; ++offset) {
    CopyFileBytes(pristine, snapshot);
    FlipByteAt(snapshot, offset);
    CheckpointReader corrupt;
    const util::Status open = corrupt.Open(snapshot);
    if (open.ok()) {
      EXPECT_FALSE(corrupt.Verify().ok()) << "flip at offset " << offset;
    }
  }
  CopyFileBytes(pristine, snapshot);
  std::filesystem::remove(pristine);
}

}  // namespace
}  // namespace latest::persist
