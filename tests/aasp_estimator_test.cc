// Tests for the AASP (augmented adaptive space partitioning) estimator.

#include <gtest/gtest.h>

#include "estimators/aasp_estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::BruteForceCount;
using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

TEST(AaspEstimatorTest, EmptyEstimatesZero) {
  AaspEstimator est(TestEstimatorConfig());
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 50, 50})), 0.0);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeKeywordQuery({1})), 0.0);
}

TEST(AaspEstimatorTest, StartsWithOneNodePerPartition) {
  auto config = TestEstimatorConfig();
  config.aasp_partitions = 8;
  AaspEstimator est(config);
  EXPECT_EQ(est.num_partitions(), 8u);
  EXPECT_EQ(est.num_nodes(), 8u);
}

TEST(AaspEstimatorTest, TreeAdaptsToDensity) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 1);
  FeedObjects(&est, config.window, objects);
  // The dense cluster must force splits beyond the initial roots.
  EXPECT_GT(est.num_nodes(), est.num_partitions());
}

TEST(AaspEstimatorTest, NodeBudgetRespected) {
  auto config = TestEstimatorConfig();
  config.aasp_max_nodes = 128;
  config.aasp_partitions = 4;
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 2);
  FeedObjects(&est, config.window, objects);
  EXPECT_LE(est.num_nodes(), 128u);
}

TEST(AaspEstimatorTest, FullDomainSpatialQueryCountsEverything) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(10000, 3);
  FeedObjects(&est, config.window, objects);
  // Every node cell is fully covered: overlap fractions are 1, so the
  // estimate must equal the exact live population.
  const double estimate =
      est.Estimate(MakeSpatialQuery({-100, -100, 200, 200}));
  EXPECT_NEAR(estimate, static_cast<double>(est.seen_population()), 1.0);
}

TEST(AaspEstimatorTest, SpatialAccuracyOnDenseRegion) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 4);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const uint64_t truth = BruteForceCount(objects, q, 0);
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.35);
}

TEST(AaspEstimatorTest, KeywordEstimateTracksHeadKeywords) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 5);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeKeywordQuery({0});  // Most frequent keyword.
  const uint64_t truth = BruteForceCount(objects, q, 0);
  ASSERT_GT(truth, 3000u);
  // Local bounded counters: moderate accuracy expected, not exactness.
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.5);
}

TEST(AaspEstimatorTest, UnseenKeywordEstimatesZero) {
  // A keyword absent from the stream is tracked by no node counter, so
  // the locally-coupled aggregation contributes nothing.
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 6);
  FeedObjects(&est, config.window, objects);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeKeywordQuery({10000})), 0.0);
}

TEST(AaspEstimatorTest, SpaceSavingInflationStaysBounded) {
  // Mid-frequency keywords inherit counters under Space-Saving pressure:
  // estimates are biased upward but must stay within a small factor.
  auto config = TestEstimatorConfig();
  config.aasp_node_keywords = 2;
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 6);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeKeywordQuery({49});  // Rarest stream keyword.
  const uint64_t truth = BruteForceCount(objects, q, 0);
  ASSERT_GT(truth, 100u);
  EXPECT_LE(est.Estimate(q), 4.0 * static_cast<double>(truth));
}

TEST(AaspEstimatorTest, HybridBoundedByPopulationInRange) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 7);
  FeedObjects(&est, config.window, objects);
  const geo::Rect r{20, 20, 40, 40};
  const double hybrid = est.Estimate(MakeHybridQuery(r, {0, 1}));
  const double spatial = est.Estimate(MakeSpatialQuery(r));
  EXPECT_GE(hybrid, 0.0);
  EXPECT_LE(hybrid, spatial + 1e-9);
}

TEST(AaspEstimatorTest, DistinctKeywordEstimate) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 8);
  FeedObjects(&est, config.window, objects);
  // The synthetic stream uses 50 distinct keywords.
  EXPECT_NEAR(est.EstimateDistinctKeywords(), 50.0, 10.0);
}

TEST(AaspEstimatorTest, WindowExpiryCollapsesTree) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 9);
  FeedObjects(&est, config.window, objects);
  const uint32_t nodes_before = est.num_nodes();
  // Rotate a full window of empty slices: everything expires and all
  // subtrees collapse back to the partition roots.
  for (uint32_t i = 0; i <= config.window.num_slices; ++i) {
    est.OnSliceRotate();
  }
  EXPECT_EQ(est.seen_population(), 0u);
  EXPECT_EQ(est.num_nodes(), est.num_partitions());
  EXPECT_GT(nodes_before, est.num_nodes());
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 100, 100})), 0.0);
}

TEST(AaspEstimatorTest, SplitThresholdScalesWithPopulation) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const uint64_t initial = est.SplitThreshold();
  const auto objects = MakeClusteredObjects(50000, 10);
  FeedObjects(&est, config.window, objects);
  EXPECT_GE(est.SplitThreshold(), initial);
}

TEST(AaspEstimatorTest, ResetWipes) {
  auto config = TestEstimatorConfig();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 11);
  FeedObjects(&est, config.window, objects);
  est.Reset();
  EXPECT_EQ(est.seen_population(), 0u);
  EXPECT_EQ(est.num_nodes(), est.num_partitions());
  EXPECT_DOUBLE_EQ(est.Estimate(MakeKeywordQuery({0})), 0.0);
}

TEST(AaspEstimatorTest, MemoryGrowsWithNodeBudget) {
  auto small_cfg = TestEstimatorConfig();
  small_cfg.aasp_max_nodes = 64;
  auto large_cfg = TestEstimatorConfig();
  large_cfg.aasp_max_nodes = 4096;
  AaspEstimator small(small_cfg);
  AaspEstimator large(large_cfg);
  const auto objects = MakeClusteredObjects(50000, 12);
  FeedObjects(&small, small_cfg.window, objects);
  FeedObjects(&large, large_cfg.window, objects);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

// Property sweep over partition counts: the full-domain invariant holds
// for any forest shape.
class AaspPartitionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AaspPartitionTest, FullDomainInvariant) {
  auto config = TestEstimatorConfig();
  config.aasp_partitions = GetParam();
  AaspEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 13);
  FeedObjects(&est, config.window, objects);
  EXPECT_NEAR(est.Estimate(MakeSpatialQuery({-100, -100, 200, 200})),
              static_cast<double>(est.seen_population()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Partitions, AaspPartitionTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

}  // namespace
}  // namespace latest::estimators
