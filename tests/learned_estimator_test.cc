// Tests for the workload-driven FFN estimator and the data-driven SPN
// estimator.

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "estimators/ffn_estimator.h"
#include "estimators/spn_estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::BruteForceCount;
using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

// --------------------------------------------------------------------
// FFN

TEST(FfnEstimatorTest, UntrainedEstimateIsFinite) {
  FfnEstimator est(TestEstimatorConfig());
  const auto objects = MakeClusteredObjects(5000, 1);
  FeedObjects(&est, TestEstimatorConfig().window, objects);
  const double e = est.Estimate(MakeSpatialQuery({20, 20, 40, 40}));
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, static_cast<double>(est.seen_population()) + 1.0);
}

TEST(FfnEstimatorTest, FeatureVectorShapeAndRanges) {
  FfnEstimator est(TestEstimatorConfig());
  const auto objects = MakeClusteredObjects(5000, 2);
  FeedObjects(&est, TestEstimatorConfig().window, objects);
  const auto f = est.Featurize(MakeHybridQuery({20, 20, 40, 40}, {0, 1}));
  ASSERT_EQ(f.size(), 9u);
  for (const double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // Has range.
  EXPECT_GT(f[4], 0.0);         // Keyword count.
}

TEST(FfnEstimatorTest, PureKeywordFeaturesZeroSpatialSlots) {
  FfnEstimator est(TestEstimatorConfig());
  const auto f = est.Featurize(MakeKeywordQuery({3}));
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  EXPECT_DOUBLE_EQ(f[7], 0.0);
}

TEST(FfnEstimatorTest, LearnsFromFeedback) {
  // Train the FFN on queries with known selectivity; accuracy on fresh
  // queries of the same family must beat the untrained baseline clearly.
  auto config = TestEstimatorConfig();
  FfnEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 3);
  FeedObjects(&est, config.window, objects);

  util::Rng rng(4);
  auto sample_query = [&]() {
    const geo::Point c{rng.NextDouble(15, 45), rng.NextDouble(15, 45)};
    return MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(5, 25), rng.NextDouble(5, 25)));
  };

  double untrained_acc = 0.0;
  std::vector<stream::Query> eval_queries;
  for (int i = 0; i < 50; ++i) eval_queries.push_back(sample_query());
  for (const auto& q : eval_queries) {
    untrained_acc += core::EstimationAccuracy(
        est.Estimate(q), BruteForceCount(objects, q, 0));
  }

  for (int i = 0; i < 3000; ++i) {
    const stream::Query q = sample_query();
    const uint64_t truth = BruteForceCount(objects, q, 0);
    est.OnFeedback(q, est.Estimate(q), truth);
  }

  double trained_acc = 0.0;
  for (const auto& q : eval_queries) {
    trained_acc += core::EstimationAccuracy(est.Estimate(q),
                                            BruteForceCount(objects, q, 0));
  }
  EXPECT_GT(trained_acc, untrained_acc + 5.0);  // +0.1 mean accuracy.
  EXPECT_GT(trained_acc / 50.0, 0.3);
  EXPECT_EQ(est.num_feedback(), 3000u);
}

TEST(FfnEstimatorTest, ResetKeepsModelDropsWindowStats) {
  auto config = TestEstimatorConfig();
  FfnEstimator est(config);
  const auto objects = MakeClusteredObjects(10000, 5);
  FeedObjects(&est, config.window, objects);
  est.OnFeedback(MakeKeywordQuery({0}), 10.0, 500);
  est.Reset();
  EXPECT_EQ(est.seen_population(), 0u);
  EXPECT_EQ(est.num_feedback(), 1u);  // Learned state survives.
  EXPECT_DOUBLE_EQ(est.Estimate(MakeKeywordQuery({0})), 0.0);  // Pop 0.
}

TEST(FfnEstimatorTest, EstimateLatencyIndependentOfPopulation) {
  // The FFN carries no data synopsis proportional to the stream; its
  // memory stays small even after many inserts.
  auto config = TestEstimatorConfig();
  FfnEstimator est(config);
  const size_t before = est.MemoryBytes();
  const auto objects = MakeClusteredObjects(50000, 6);
  FeedObjects(&est, config.window, objects);
  EXPECT_LT(est.MemoryBytes(), before + (1u << 20));  // Under +1 MiB.
}

// --------------------------------------------------------------------
// SPN

TEST(SpnEstimatorTest, EmptyEstimatesZero) {
  SpnEstimator est(TestEstimatorConfig());
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 50, 50})), 0.0);
}

TEST(SpnEstimatorTest, ClusterWeightsSumToPopulationScale) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  // Geometric decay reaches its windowed steady state only after several
  // window lengths: stream 3 windows' worth of data.
  const auto objects = MakeClusteredObjects(10000, 7, /*duration=*/3000);
  FeedObjects(&est, config.window, objects);
  double total = 0.0;
  for (uint32_t k = 0; k < est.num_clusters(); ++k) {
    total += est.ClusterWeight(k);
  }
  // Decayed weights approximate the live population.
  EXPECT_NEAR(total / static_cast<double>(est.seen_population()), 1.0, 0.3);
}

TEST(SpnEstimatorTest, FullDomainProbabilityNearOne) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 8);
  FeedObjects(&est, config.window, objects);
  const double estimate = est.Estimate(MakeSpatialQuery({0, 0, 100, 100}));
  EXPECT_NEAR(estimate / static_cast<double>(est.seen_population()), 1.0,
              0.15);
}

TEST(SpnEstimatorTest, DenseRegionBeatsUniformAssumption) {
  // The mixture must capture the [20,40]^2 cluster: its estimate for the
  // cluster region must be far closer to truth than area-proportional
  // uniform estimation.
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(40000, 9);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const auto truth =
      static_cast<double>(BruteForceCount(objects, q, 0));
  const double pop = static_cast<double>(est.seen_population());
  const double uniform = pop * (20.0 * 20.0) / (100.0 * 100.0);
  const double spn = est.Estimate(q);
  EXPECT_LT(std::abs(spn - truth), std::abs(uniform - truth));
}

TEST(SpnEstimatorTest, KeywordEstimateRoughlyTracksFrequency) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(40000, 10);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeKeywordQuery({0});
  const auto truth = static_cast<double>(BruteForceCount(objects, q, 0));
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.6);
}

TEST(SpnEstimatorTest, HybridBoundedBySpatialFactor) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 11);
  FeedObjects(&est, config.window, objects);
  const geo::Rect r{20, 20, 40, 40};
  EXPECT_LE(est.Estimate(MakeHybridQuery(r, {0})),
            est.Estimate(MakeSpatialQuery(r)) + 1e-9);
}

TEST(SpnEstimatorTest, DisjointRangeEstimatesNearZero) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 12);
  FeedObjects(&est, config.window, objects);
  // Out-of-domain ranges clamp to zero overlap with every histogram bin.
  EXPECT_NEAR(est.Estimate(MakeSpatialQuery({200, 200, 300, 300})), 0.0,
              1e-6);
}

TEST(SpnEstimatorTest, ResetWipes) {
  auto config = TestEstimatorConfig();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(10000, 13);
  FeedObjects(&est, config.window, objects);
  est.Reset();
  EXPECT_EQ(est.seen_population(), 0u);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 100, 100})), 0.0);
}

TEST(SpnEstimatorTest, MemoryScalesWithClusters) {
  auto small_cfg = TestEstimatorConfig();
  small_cfg.spn_clusters = 2;
  auto large_cfg = TestEstimatorConfig();
  large_cfg.spn_clusters = 32;
  SpnEstimator small(small_cfg);
  SpnEstimator large(large_cfg);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

// Property sweep over cluster counts: total-probability invariant.
class SpnClusterTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SpnClusterTest, FullDomainInvariant) {
  auto config = TestEstimatorConfig();
  config.spn_clusters = GetParam();
  SpnEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 14);
  FeedObjects(&est, config.window, objects);
  const double estimate =
      est.Estimate(MakeSpatialQuery({-100, -100, 300, 300}));
  EXPECT_NEAR(estimate / static_cast<double>(est.seen_population()), 1.0,
              0.2);
}

INSTANTIATE_TEST_SUITE_P(Clusters, SpnClusterTest,
                         ::testing::Values(1u, 4u, 8u, 16u));

}  // namespace
}  // namespace latest::estimators
