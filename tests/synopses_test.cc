// Tests for the KMV distinct-value synopsis and the Space-Saving counter.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "estimators/kmv_synopsis.h"
#include "estimators/space_saving.h"
#include "util/rng.h"

namespace latest::estimators {
namespace {

// --------------------------------------------------------------------
// KmvSynopsis

TEST(KmvTest, ExactBelowK) {
  KmvSynopsis kmv(64, 1);
  for (uint64_t e = 0; e < 40; ++e) kmv.Add(e);
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 40.0);
}

TEST(KmvTest, DuplicatesDoNotInflate) {
  KmvSynopsis kmv(64, 1);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t e = 0; e < 10; ++e) kmv.Add(e);
  }
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 10.0);
}

TEST(KmvTest, EstimatesLargeCardinality) {
  KmvSynopsis kmv(256, 7);
  constexpr uint64_t kDistinct = 50000;
  for (uint64_t e = 0; e < kDistinct; ++e) kmv.Add(e);
  const double est = kmv.EstimateDistinct();
  // KMV standard error ~ 1/sqrt(k-2) ~ 6%; allow 20%.
  EXPECT_NEAR(est, static_cast<double>(kDistinct), 0.20 * kDistinct);
}

TEST(KmvTest, MergeEqualsUnion) {
  KmvSynopsis a(128, 3);
  KmvSynopsis b(128, 3);
  KmvSynopsis all(128, 3);
  for (uint64_t e = 0; e < 5000; ++e) {
    if (e % 2 == 0) a.Add(e);
    if (e % 3 == 0) b.Add(e);
    if (e % 2 == 0 || e % 3 == 0) all.Add(e);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), all.EstimateDistinct());
}

TEST(KmvTest, MergeWithOverlapDoesNotDoubleCount) {
  KmvSynopsis a(64, 3);
  KmvSynopsis b(64, 3);
  for (uint64_t e = 0; e < 30; ++e) {
    a.Add(e);
    b.Add(e);  // Identical contents.
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), 30.0);
}

TEST(KmvTest, ClearEmpties) {
  KmvSynopsis kmv(16, 5);
  for (uint64_t e = 0; e < 100; ++e) kmv.Add(e);
  kmv.Clear();
  EXPECT_EQ(kmv.size(), 0u);
  EXPECT_DOUBLE_EQ(kmv.EstimateDistinct(), 0.0);
}

TEST(KmvTest, SizeCapsAtK) {
  KmvSynopsis kmv(16, 5);
  for (uint64_t e = 0; e < 1000; ++e) kmv.Add(e);
  EXPECT_EQ(kmv.size(), 16u);
}

// Property sweep over k: estimate within tolerance for several sizes.
class KmvSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KmvSizeTest, EstimateWithinStatisticalBand) {
  const uint32_t k = GetParam();
  KmvSynopsis kmv(k, 11);
  constexpr uint64_t kDistinct = 20000;
  for (uint64_t e = 0; e < kDistinct; ++e) kmv.Add(e * 977 + 13);
  const double est = kmv.EstimateDistinct();
  const double tolerance = 5.0 / std::sqrt(static_cast<double>(k));
  EXPECT_NEAR(est / kDistinct, 1.0, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Ks, KmvSizeTest,
                         ::testing::Values(32u, 64u, 128u, 256u, 512u));

// --------------------------------------------------------------------
// SpaceSavingCounter

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSavingCounter counter(10);
  for (int i = 0; i < 5; ++i) counter.Add(1);
  for (int i = 0; i < 3; ++i) counter.Add(2);
  EXPECT_DOUBLE_EQ(counter.Count(1), 5.0);
  EXPECT_DOUBLE_EQ(counter.Count(2), 3.0);
  EXPECT_DOUBLE_EQ(counter.Count(99), 0.0);
  EXPECT_EQ(counter.size(), 2u);
}

TEST(SpaceSavingTest, NeverUndercountsTrackedKeys) {
  // Space-Saving invariant: a tracked key's counter >= its true count.
  SpaceSavingCounter counter(8);
  util::Rng rng(3);
  std::vector<int> truth(100, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    const auto key = static_cast<uint32_t>(u * u * 100);  // Skewed.
    ++truth[key];
    counter.Add(key);
  }
  counter.ForEach([&](uint32_t key, double count) {
    EXPECT_GE(count, static_cast<double>(truth[key]));
  });
}

TEST(SpaceSavingTest, HeavyHittersSurvive) {
  SpaceSavingCounter counter(8);
  util::Rng rng(5);
  // Key 0 gets 30% of 20000 adds; it must be tracked at the end.
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.3)) {
      counter.Add(0);
    } else {
      counter.Add(1 + static_cast<uint32_t>(rng.NextBounded(500)));
    }
  }
  EXPECT_TRUE(counter.IsTracked(0));
  EXPECT_NEAR(counter.Count(0), 6000.0, 1500.0);
}

TEST(SpaceSavingTest, TotalWeightTracksAdds) {
  SpaceSavingCounter counter(4);
  for (int i = 0; i < 100; ++i) counter.Add(i);
  EXPECT_DOUBLE_EQ(counter.total_weight(), 100.0);
  EXPECT_EQ(counter.size(), 4u);
}

TEST(SpaceSavingTest, DecayScalesCounts) {
  SpaceSavingCounter counter(4);
  counter.Add(1, 8.0);
  counter.Add(2, 4.0);
  counter.Decay(0.5);
  EXPECT_DOUBLE_EQ(counter.Count(1), 4.0);
  EXPECT_DOUBLE_EQ(counter.Count(2), 2.0);
  EXPECT_DOUBLE_EQ(counter.total_weight(), 6.0);
}

TEST(SpaceSavingTest, DecayPrunesTinyCounts) {
  SpaceSavingCounter counter(4);
  counter.Add(1, 1.0);
  counter.Decay(1e-6, /*prune_below=*/1e-3);
  EXPECT_EQ(counter.size(), 0u);
  EXPECT_FALSE(counter.IsTracked(1));
}

TEST(SpaceSavingTest, WeightedAdds) {
  SpaceSavingCounter counter(4);
  counter.Add(7, 2.5);
  counter.Add(7, 2.5);
  EXPECT_DOUBLE_EQ(counter.Count(7), 5.0);
}

TEST(SpaceSavingTest, ClearEmpties) {
  SpaceSavingCounter counter(4);
  counter.Add(1);
  counter.Clear();
  EXPECT_EQ(counter.size(), 0u);
  EXPECT_DOUBLE_EQ(counter.total_weight(), 0.0);
}

TEST(SpaceSavingTest, TrackedTotalSumsCounters) {
  SpaceSavingCounter counter(4);
  counter.Add(1, 3.0);
  counter.Add(2, 4.0);
  EXPECT_DOUBLE_EQ(counter.TrackedTotal(), 7.0);
}

}  // namespace
}  // namespace latest::estimators
