// Prometheus text-exposition conformance, pinned by a golden file.
//
// The golden at tests/testdata/prometheus_conformance.golden locks in:
//   - label-value escaping (backslash, double quote, line feed),
//   - HELP-text escaping (backslash and line feed only; quotes literal),
//   - exactly one # HELP / # TYPE header per family even when instances
//     of the family are registered interleaved with other families,
//   - stable (name, labels) sort independent of registration order,
//   - cumulative histogram buckets with `le` labels, +Inf, _sum, _count,
//   - the estimation-quality families (latest_estimator_error_*,
//     latest_drift_*) exactly as the real ErrorAccountant/DriftMonitor
//     export them, so a rename or re-labelling shows up as a diff here.
//
// Regenerate after an intentional format change with:
//   LATEST_UPDATE_GOLDEN=1 ./metrics_conformance_test

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "estimators/estimator.h"
#include "obs/drift_detector.h"
#include "obs/error_accounting.h"
#include "obs/metrics_registry.h"

namespace latest::obs {
namespace {

std::string GoldenPath() {
  return std::string(LATEST_TESTDATA_DIR) + "/prometheus_conformance.golden";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

/// Attaches the real quality-observability components so the golden pins
/// their exposition verbatim: every estimator kind's error slots plus
/// one drift series. The components are locals — the registry owns the
/// metric instances, so the recorded values survive their destruction.
void PopulateQualityFamilies(MetricsRegistry* registry) {
  ErrorAccountant accountant(/*tau=*/0.62);
  accountant.AttachMetrics(registry);
  // RSH: one clean measurement, one tau violation (accuracy 0.1 < tau).
  accountant.Record(estimators::EstimatorKind::kRsh, 90.0, 100.0);
  accountant.Record(estimators::EstimatorKind::kRsh, 10.0, 100.0);
  // H4096: a perfect estimate only.
  accountant.Record(estimators::EstimatorKind::kH4096, 100.0, 100.0);

  DriftMonitor monitor;
  monitor.AddSeries("error_RSH");
  monitor.AttachMetrics(registry);
}

/// Serve-plane families as net/serve_server registers them: the
/// per-class queue-wait ladder plus an exemplar-bearing latency
/// histogram. Exemplars are JSON-only — the golden proves they leave
/// the Prometheus text exposition byte-identical.
void PopulateServeFamilies(MetricsRegistry* registry) {
  Histogram* query_wait = registry->GetHistogram(
      "latest_serve_queue_wait_ms", "Admission queue wait per class",
      {0.5, 1.0, 5.0}, {{"class", "query"}});
  query_wait->EnableExemplars(/*capacity=*/4);
  query_wait->ObserveWithExemplar(0.25, /*trace_id=*/0xabc,
                                  /*request_id=*/17);
  query_wait->ObserveWithExemplar(7.5, /*trace_id=*/0xdef,
                                  /*request_id=*/18);
  registry
      ->GetHistogram("latest_serve_queue_wait_ms",
                     "Admission queue wait per class", {0.5, 1.0, 5.0},
                     {{"class", "ingest"}})
      ->Observe(0.75);
  registry
      ->GetCounter("latest_serve_frames_in_total", "RPC frames received")
      ->Increment(3);
}

/// Builds the registry whose exposition the golden file pins. Instances
/// are registered deliberately out of exposition order — the knn counter
/// before the box counter, the zebra gauge first — so any dependence on
/// registration order breaks the comparison.
void PopulateConformanceRegistry(MetricsRegistry* registry) {
  registry->GetGauge("zebra_gauge", "Registered first, exposed last")
      ->Set(2.5);
  registry
      ->GetCounter("latest_queries_by_kind_total", "Queries by kind",
                   {{"kind", "knn"}})
      ->Increment(4);
  registry
      ->GetGauge("awkward_label_values",
                 "Label values exercising every escape",
                 {{"path", "C:\\dir\\file"},
                  {"quote", "he said \"hi\""},
                  {"text", "line1\nline2"}})
      ->Set(1.0);
  registry
      ->GetCounter("latest_queries_by_kind_total", "Queries by kind",
                   {{"kind", "box"}})
      ->Increment(9);
  registry
      ->GetCounter("help_escapes_total",
                   "Backslash \\ and\nnewline stay \"literal\" quotes")
      ->Increment(1);
  Histogram* latency = registry->GetHistogram("small_latency_ms",
                                              "Tiny ladder", {1.0, 2.0, 5.0});
  latency->Observe(0.5);
  latency->Observe(1.5);
  latency->Observe(10.0);
  PopulateQualityFamilies(registry);
  PopulateServeFamilies(registry);
}

TEST(MetricsConformanceTest, PrometheusTextMatchesGolden) {
  MetricsRegistry registry;
  PopulateConformanceRegistry(&registry);
  const std::string actual = registry.PrometheusText();

  if (std::getenv("LATEST_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(GoldenPath().c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot rewrite " << GoldenPath();
    std::fwrite(actual.data(), 1, actual.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden rewritten";
  }

  const std::string expected = ReadFileOrEmpty(GoldenPath());
  ASSERT_FALSE(expected.empty()) << "missing golden: " << GoldenPath();
  EXPECT_EQ(actual, expected);
}

TEST(MetricsConformanceTest, ExpositionIsRegistrationOrderIndependent) {
  // Same instances, opposite registration order: identical exposition.
  MetricsRegistry forward;
  PopulateConformanceRegistry(&forward);

  MetricsRegistry reverse;
  PopulateServeFamilies(&reverse);    // Last in forward, first here.
  PopulateQualityFamilies(&reverse);
  Histogram* latency = reverse.GetHistogram("small_latency_ms", "Tiny ladder",
                                            {1.0, 2.0, 5.0});
  latency->Observe(0.5);
  latency->Observe(1.5);
  latency->Observe(10.0);
  reverse
      .GetCounter("help_escapes_total",
                  "Backslash \\ and\nnewline stay \"literal\" quotes")
      ->Increment(1);
  reverse
      .GetCounter("latest_queries_by_kind_total", "Queries by kind",
                  {{"kind", "box"}})
      ->Increment(9);
  reverse
      .GetGauge("awkward_label_values",
                "Label values exercising every escape",
                {{"path", "C:\\dir\\file"},
                 {"quote", "he said \"hi\""},
                 {"text", "line1\nline2"}})
      ->Set(1.0);
  reverse
      .GetCounter("latest_queries_by_kind_total", "Queries by kind",
                  {{"kind", "knn"}})
      ->Increment(4);
  reverse.GetGauge("zebra_gauge", "Registered first, exposed last")->Set(2.5);

  EXPECT_EQ(forward.PrometheusText(), reverse.PrometheusText());
}

TEST(MetricsConformanceTest, EachFamilyHasExactlyOneHelpAndType) {
  MetricsRegistry registry;
  PopulateConformanceRegistry(&registry);
  const std::string text = registry.PrometheusText();
  for (const char* family :
       {"awkward_label_values", "help_escapes_total",
        "latest_queries_by_kind_total", "small_latency_ms", "zebra_gauge",
        "latest_estimator_error_samples_total",
        "latest_estimator_error_qerror", "latest_drift_detections_total",
        "latest_drift_active", "latest_drift_active_series",
        "latest_serve_queue_wait_ms", "latest_serve_frames_in_total"}) {
    for (const char* directive : {"# HELP ", "# TYPE "}) {
      const std::string needle = std::string(directive) + family + " ";
      size_t count = 0;
      for (size_t pos = text.find(needle); pos != std::string::npos;
           pos = text.find(needle, pos + 1)) {
        ++count;
      }
      EXPECT_EQ(count, 1u) << directive << family;
    }
  }
}

TEST(MetricsConformanceTest, JsonEscapesLabelValues) {
  MetricsRegistry registry;
  PopulateConformanceRegistry(&registry);
  const std::string json = registry.Json();
  EXPECT_NE(json.find("C:\\\\dir\\\\file"), std::string::npos);
  EXPECT_NE(json.find("he said \\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  // No raw (unescaped) newline may survive inside the JSON document.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(MetricsConformanceTest, ExemplarsExposeInJsonOnly) {
  MetricsRegistry registry;
  PopulateConformanceRegistry(&registry);

  // The Prometheus text contains no exemplar syntax at all: enabling
  // exemplars must not perturb the scrape format existing dashboards
  // parse (the golden comparison above pins the exact bytes).
  const std::string text = registry.PrometheusText();
  EXPECT_EQ(text.find("exemplar"), std::string::npos);
  EXPECT_EQ(text.find(" # "), std::string::npos);  // OpenMetrics syntax.

  // The JSON exposition carries them, keyed by trace and request id.
  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"exemplars\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":2748"), std::string::npos);   // 0xabc
  EXPECT_NE(json.find("\"request_id\":18"), std::string::npos);
}

TEST(MetricsConformanceTest, ExemplarRingIsBoundedAndTailBiased) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram(
      "bounded_ms", "Exemplar bound check", {1.0, 10.0, 100.0});
  histogram->EnableExemplars(/*capacity=*/4, /*quantile=*/0.95);
  // Flood with fast observations, then a handful of slow ones: the ring
  // retains at most `capacity` exemplars and the slow tail displaces
  // the early warm-up captures.
  for (int i = 0; i < 500; ++i) {
    histogram->ObserveWithExemplar(0.5, /*trace_id=*/1000 + i,
                                   /*request_id=*/i);
  }
  for (int i = 0; i < 4; ++i) {
    histogram->ObserveWithExemplar(90.0 + i, /*trace_id=*/9000 + i,
                                   /*request_id=*/600 + i);
  }
  const auto exemplars = histogram->Exemplars();
  ASSERT_LE(exemplars.size(), 4u);
  ASSERT_FALSE(exemplars.empty());
  // Every retained exemplar is from the slow tail, not the flood.
  for (const auto& exemplar : exemplars) {
    EXPECT_GE(exemplar.value, 90.0);
    EXPECT_GE(exemplar.trace_id, 9000u);
  }
}

}  // namespace
}  // namespace latest::obs
