// SLO drift monitors: threshold rules over registry series, debounce,
// breach/recovery events, the exported gauges, and the /healthz flip on
// the introspection server.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/slo_monitor.h"
#include "obs/statusz.h"
#include "tests/test_http_client.h"

namespace latest::obs {
namespace {

SloRule GaugeBelowRule(const std::string& metric, double threshold,
                       uint32_t for_ticks = 1) {
  SloRule rule;
  rule.name = metric + "_rule";
  rule.metric = metric;
  rule.source = SloRule::Source::kGauge;
  rule.op = SloRule::Op::kBelow;
  rule.threshold = threshold;
  rule.for_ticks = for_ticks;
  return rule;
}

TEST(SloMonitorTest, GaugeBreachAndRecoveryWithDebounce) {
  MetricsRegistry registry;
  EventLog events(32);
  Gauge* accuracy = registry.GetGauge("test_accuracy", "test");
  SloMonitor monitor(&registry, &events);
  monitor.AddRule(GaugeBelowRule("test_accuracy", 0.6, /*for_ticks=*/3));

  accuracy->Set(0.9);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  EXPECT_FALSE(monitor.degraded());

  // Two bad ticks are inside the debounce window.
  accuracy->Set(0.4);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  EXPECT_FALSE(monitor.degraded());
  // The third consecutive bad tick fires the rule.
  EXPECT_EQ(monitor.EvaluateAll(/*timestamp=*/1234), 1u);
  EXPECT_TRUE(monitor.degraded());
  ASSERT_EQ(monitor.BreachedRules().size(), 1u);
  EXPECT_EQ(monitor.BreachedRules()[0], "test_accuracy_rule");

  // One good tick clears the run and recovers.
  accuracy->Set(0.8);
  EXPECT_EQ(monitor.EvaluateAll(/*timestamp=*/2345), 0u);
  EXPECT_FALSE(monitor.degraded());

  // Exactly one breached and one recovered event, carrying the rule name
  // and the observed value.
  const std::vector<Event> breached =
      events.SnapshotOfType(EventType::kSloBreached);
  const std::vector<Event> recovered =
      events.SnapshotOfType(EventType::kSloRecovered);
  ASSERT_EQ(breached.size(), 1u);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(breached[0].note, "test_accuracy_rule");
  EXPECT_EQ(breached[0].timestamp, 1234);
  EXPECT_DOUBLE_EQ(breached[0].detail, 0.4);
  EXPECT_EQ(recovered[0].note, "test_accuracy_rule");
  EXPECT_DOUBLE_EQ(recovered[0].detail, 0.8);

  // An intermittent breach does not re-fire until debounce re-fills.
  accuracy->Set(0.4);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  accuracy->Set(0.8);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  EXPECT_EQ(events.SnapshotOfType(EventType::kSloBreached).size(), 1u);
}

TEST(SloMonitorTest, MissingSeriesDoesNotBreach) {
  MetricsRegistry registry;
  EventLog events(8);
  SloMonitor monitor(&registry, &events);
  monitor.AddRule(GaugeBelowRule("never_registered", 0.5));
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  const std::vector<SloRuleState> states = monitor.States();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_FALSE(states[0].has_value);
  EXPECT_FALSE(states[0].breached);
}

TEST(SloMonitorTest, CounterAboveRule) {
  MetricsRegistry registry;
  SloMonitor monitor(&registry, /*events=*/nullptr);
  SloRule rule;
  rule.name = "drops";
  rule.metric = "test_drops_total";
  rule.source = SloRule::Source::kCounter;
  rule.op = SloRule::Op::kAbove;
  rule.threshold = 10.0;
  monitor.AddRule(rule);

  Counter* drops = registry.GetCounter("test_drops_total", "test");
  drops->Increment(10);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);  // Equal is not above.
  drops->Increment(1);
  EXPECT_EQ(monitor.EvaluateAll(), 1u);
}

TEST(SloMonitorTest, HistogramQuantileRule) {
  MetricsRegistry registry;
  SloMonitor monitor(&registry, nullptr);
  SloRule rule;
  rule.name = "p99_latency";
  rule.metric = "test_latency_ms";
  rule.source = SloRule::Source::kHistogramQuantile;
  rule.quantile = 0.99;
  rule.op = SloRule::Op::kAbove;
  rule.threshold = 50.0;
  monitor.AddRule(rule);

  // Empty histogram family: no data, no breach.
  Histogram* latency = registry.GetHistogram(
      "test_latency_ms", "test", Histogram::LatencyBucketsMs());
  EXPECT_EQ(monitor.EvaluateAll(), 0u);

  for (int i = 0; i < 100; ++i) latency->Observe(1.0);
  EXPECT_EQ(monitor.EvaluateAll(), 0u);
  for (int i = 0; i < 100; ++i) latency->Observe(900.0);
  EXPECT_EQ(monitor.EvaluateAll(), 1u);
  const std::vector<SloRuleState> states = monitor.States();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_GT(states[0].last_value, 50.0);
}

TEST(SloMonitorTest, GaugesMirrorRuleState) {
  MetricsRegistry registry;
  SloMonitor monitor(&registry, nullptr);
  monitor.AddRule(GaugeBelowRule("mirrored", 0.5));
  Gauge* value = registry.GetGauge("mirrored", "test");

  const Gauge* degraded = registry.FindGauge("latest_slo_degraded");
  const Gauge* breached = registry.FindGauge(
      "latest_slo_breached", {{"rule", "mirrored_rule"}});
  const Counter* breaches = registry.FindCounter(
      "latest_slo_breaches_total", {{"rule", "mirrored_rule"}});
  ASSERT_NE(degraded, nullptr);
  ASSERT_NE(breached, nullptr);
  ASSERT_NE(breaches, nullptr);

  value->Set(0.1);
  monitor.EvaluateAll();
  EXPECT_DOUBLE_EQ(degraded->value(), 1.0);
  EXPECT_DOUBLE_EQ(breached->value(), 1.0);
  EXPECT_EQ(breaches->value(), 1u);

  value->Set(0.9);
  monitor.EvaluateAll();
  EXPECT_DOUBLE_EQ(degraded->value(), 0.0);
  EXPECT_DOUBLE_EQ(breached->value(), 0.0);
  EXPECT_EQ(breaches->value(), 1u);  // Transitions, not ticks.
}

TEST(SloMonitorTest, DefaultRulesSkipNonPositiveThresholds) {
  const std::vector<SloRule> all = DefaultLatestSloRules(
      /*tau=*/0.62, /*p99_latency_ms=*/50.0, /*max_wal_lag_records=*/1e6,
      /*max_resident_slices=*/32.0, /*max_active_drift=*/0.0);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all.back().metric, "latest_drift_active_series");
  const std::vector<SloRule> no_latency = DefaultLatestSloRules(
      0.62, /*p99_latency_ms=*/0.0, 1e6, /*max_resident_slices=*/0.0,
      /*max_active_drift=*/-1.0);
  EXPECT_EQ(no_latency.size(), 2u);
  // The accuracy rule watches the module's monitor gauge below tau.
  EXPECT_EQ(no_latency[0].metric, "latest_monitor_accuracy");
  EXPECT_EQ(no_latency[0].op, SloRule::Op::kBelow);
  EXPECT_DOUBLE_EQ(no_latency[0].threshold, 0.62);
}

// The acceptance path: a breached rule flips /healthz to 503 degraded
// with the rule listed; recovery restores 200 ok.
TEST(SloMonitorTest, HealthzDegradesAndRecovers) {
  MetricsRegistry registry;
  EventLog events(16);
  Gauge* accuracy = registry.GetGauge("latest_monitor_accuracy", "test");
  SloMonitor monitor(&registry, &events);
  monitor.AddRule(GaugeBelowRule("latest_monitor_accuracy", 0.6));

  IntrospectionSources sources;
  sources.registry = &registry;
  sources.events = &events;
  sources.slo = &monitor;
  IntrospectionServer server(sources);
  // No ticker: the test drives evaluation explicitly for determinism.
  ASSERT_TRUE(server.Start(/*port=*/0, /*slo_tick_ms=*/0).ok());

  accuracy->Set(0.9);
  monitor.EvaluateAll();
  testing_support::HttpGetResult healthy =
      testing_support::HttpGet(server.port(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos);

  accuracy->Set(0.2);
  monitor.EvaluateAll();
  testing_support::HttpGetResult degraded =
      testing_support::HttpGet(server.port(), "/healthz");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("\"status\":\"degraded\""),
            std::string::npos);
  EXPECT_NE(degraded.body.find("latest_monitor_accuracy_rule"),
            std::string::npos);

  accuracy->Set(0.9);
  monitor.EvaluateAll();
  testing_support::HttpGetResult recovered =
      testing_support::HttpGet(server.port(), "/healthz");
  EXPECT_EQ(recovered.status, 200);
  EXPECT_NE(recovered.body.find("\"status\":\"ok\""), std::string::npos);
  server.Stop();
}

// The server's own ticker thread evaluates rules without any caller
// involvement — /healthz degrades on a breach the stream never reports.
TEST(SloMonitorTest, TickerThreadEvaluatesRules) {
  MetricsRegistry registry;
  EventLog events(16);
  Gauge* lag = registry.GetGauge("persist_wal_lag_records", "test");
  lag->Set(5e6);
  SloMonitor monitor(&registry, &events);
  SloRule rule;
  rule.name = "wal_lag";
  rule.metric = "persist_wal_lag_records";
  rule.op = SloRule::Op::kAbove;
  rule.threshold = 1e6;
  monitor.AddRule(rule);

  IntrospectionSources sources;
  sources.registry = &registry;
  sources.slo = &monitor;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.Start(/*port=*/0, /*slo_tick_ms=*/10).ok());
  // The ticker evaluates immediately on startup and then every 10ms;
  // poll briefly instead of assuming scheduling.
  bool saw_degraded = false;
  for (int i = 0; i < 100 && !saw_degraded; ++i) {
    saw_degraded = monitor.degraded();
    if (!saw_degraded) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_GE(monitor.evaluations(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace latest::obs
