// Integration tests for the LATEST module: the three-phase lifecycle,
// estimator pre-filling and switching, learning-model training, and the
// estimate-scaling of partially filled estimators.

#include <cmath>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "tests/test_stream.h"
#include "workload/dataset.h"
#include "workload/query_workload.h"
#include "workload/stream_driver.h"

namespace latest::core {
namespace {

// A compact module configuration sized for test streams.
LatestConfig SmallConfig() {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 60;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.seed = 5;
  return config;
}

// Drives `num_objects` clustered objects and interleaves a query every
// `objects_per_query` arrivals once past the warm-up window, using the
// supplied query factory.
template <typename QueryFactory>
std::vector<QueryOutcome> Drive(LatestModule* module, int num_objects,
                                int objects_per_query, uint64_t seed,
                                QueryFactory&& make_query,
                                stream::Timestamp duration = 4000) {
  const auto objects =
      testing_support::MakeClusteredObjects(num_objects, seed, duration);
  std::vector<QueryOutcome> outcomes;
  for (int i = 0; i < num_objects; ++i) {
    module->OnObject(objects[i]);
    if (objects[i].timestamp >= 1000 && i % objects_per_query == 0) {
      stream::Query q = make_query();
      q.timestamp = objects[i].timestamp;
      outcomes.push_back(module->OnQuery(q));
    }
  }
  return outcomes;
}

stream::Query RandomQuery(util::Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.34) {
    const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
    return testing_support::MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng->NextDouble(5, 30),
                              rng->NextDouble(5, 30)));
  }
  if (u < 0.67) {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng->NextBounded(50))});
  }
  const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
  return testing_support::MakeHybridQuery(
      geo::Rect::FromCenter(c, rng->NextDouble(5, 30),
                            rng->NextDouble(5, 30)),
      {static_cast<stream::KeywordId>(rng->NextBounded(50))});
}

TEST(LatestModuleTest, StartsInWarmup) {
  auto module = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ((*module)->phase(), Phase::kWarmup);
  EXPECT_EQ((*module)->active_kind(), estimators::EstimatorKind::kRsh);
}

TEST(LatestModuleTest, WarmupEndsAfterWindowLength) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  const auto objects = testing_support::MakeClusteredObjects(
      2000, 1, /*duration=*/2000);
  for (const auto& obj : objects) {
    module.OnObject(obj);
    if (obj.timestamp < 1000) {
      EXPECT_EQ(module.phase(), Phase::kWarmup);
    }
  }
  EXPECT_EQ(module.phase(), Phase::kPretraining);
}

TEST(LatestModuleTest, PretrainingMeasuresAllEstimators) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(2);
  const auto outcomes = Drive(&module, 3000, 40, 3,
                              [&]() { return RandomQuery(&rng); });
  ASSERT_FALSE(outcomes.empty());
  bool saw_pretraining = false;
  for (const auto& outcome : outcomes) {
    if (outcome.phase == Phase::kPretraining) {
      saw_pretraining = true;
      EXPECT_EQ(outcome.measurements.size(),
                estimators::kNumPaperEstimatorKinds);
    }
  }
  EXPECT_TRUE(saw_pretraining);
}

TEST(LatestModuleTest, PretrainingTrainsModelPerQuery) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(3);
  const auto outcomes = Drive(&module, 3000, 40, 4,
                              [&]() { return RandomQuery(&rng); });
  EXPECT_EQ(module.model().num_trained(), outcomes.size());
}

TEST(LatestModuleTest, IncrementalPhaseStartsWithDefault) {
  auto config = SmallConfig();
  config.default_estimator = estimators::EstimatorKind::kRsl;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(4);
  int incremental_seen = 0;
  const auto objects = testing_support::MakeClusteredObjects(4000, 5, 4000);
  for (const auto& obj : objects) {
    module.OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 30 == 0) {
      stream::Query q = RandomQuery(&rng);
      q.timestamp = obj.timestamp;
      const auto outcome = module.OnQuery(q);
      if (outcome.phase == Phase::kIncremental &&
          module.switch_log().empty()) {
        EXPECT_EQ(outcome.active, estimators::EstimatorKind::kRsl);
        ++incremental_seen;
        if (incremental_seen > 5) break;
      }
    }
  }
  EXPECT_GT(incremental_seen, 0);
}

TEST(LatestModuleTest, ProductionModeWipesInactiveAfterPretraining) {
  auto config = SmallConfig();
  config.maintain_shadow_estimators = false;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(6);
  const auto outcomes = Drive(&module, 4000, 30, 7,
                              [&]() { return RandomQuery(&rng); });
  bool saw_incremental = false;
  for (const auto& outcome : outcomes) {
    if (outcome.phase != Phase::kIncremental) continue;
    saw_incremental = true;
    // Without shadows, per-query measurements cover at most the candidate.
    EXPECT_LE(outcome.measurements.size(), 1u);
  }
  EXPECT_TRUE(saw_incremental);
}

TEST(LatestModuleTest, ShadowModeMeasuresEverythingInIncremental) {
  auto config = SmallConfig();
  config.maintain_shadow_estimators = true;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(8);
  const auto outcomes = Drive(&module, 4000, 30, 9,
                              [&]() { return RandomQuery(&rng); });
  bool saw_incremental = false;
  for (const auto& outcome : outcomes) {
    if (outcome.phase != Phase::kIncremental) continue;
    saw_incremental = true;
    EXPECT_EQ(outcome.measurements.size(),
                estimators::kNumPaperEstimatorKinds);
  }
  EXPECT_TRUE(saw_incremental);
}

TEST(LatestModuleTest, AccuracyAgainstGroundTruthIsReasonable) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(10);
  const auto outcomes = Drive(&module, 6000, 20, 11,
                              [&]() { return RandomQuery(&rng); });
  double acc = 0.0;
  int n = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.phase == Phase::kIncremental) {
      acc += outcome.accuracy;
      ++n;
    }
  }
  ASSERT_GT(n, 20);
  // Small reservoirs on a noisy mixed workload: well above garbage (0)
  // but below the large-sample accuracy of the full configuration.
  EXPECT_GT(acc / n, 0.33);
}

TEST(LatestModuleTest, SwitchingTriggersOnSustainedBadAccuracy) {
  // Force the default to a histogram and feed keyword-only queries: the
  // histogram cannot answer them, so the module must switch away.
  auto config = SmallConfig();
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.pretrain_queries = 30;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(12);
  Drive(&module, 8000, 10, 13, [&]() {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng.NextBounded(50))});
  });
  ASSERT_FALSE(module.switch_log().empty());
  EXPECT_EQ(module.switch_log().front().from,
            estimators::EstimatorKind::kH4096);
  EXPECT_NE(module.active_kind(), estimators::EstimatorKind::kH4096);
}

TEST(LatestModuleTest, NoSwitchOnStableGoodAccuracy) {
  // Large reservoir answers everything nearly exactly: no switch needed.
  auto config = SmallConfig();
  config.estimator.reservoir_capacity = 100000;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(14);
  Drive(&module, 6000, 20, 15, [&]() { return RandomQuery(&rng); });
  EXPECT_TRUE(module.switch_log().empty());
  EXPECT_EQ(module.active_kind(), estimators::EstimatorKind::kRsh);
}

TEST(LatestModuleTest, SwitchEventsAreConsistent) {
  auto config = SmallConfig();
  config.default_estimator = estimators::EstimatorKind::kH4096;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(16);
  Drive(&module, 8000, 10, 17, [&]() {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng.NextBounded(50))});
  });
  estimators::EstimatorKind current = estimators::EstimatorKind::kH4096;
  uint64_t last_index = 0;
  for (const auto& sw : module.switch_log()) {
    EXPECT_EQ(sw.from, current);
    EXPECT_NE(sw.from, sw.to);
    EXPECT_GT(sw.query_index, last_index);
    current = sw.to;
    last_index = sw.query_index;
  }
  EXPECT_EQ(current, module.active_kind());
}

TEST(LatestModuleTest, ScaledEstimateForPartiallyFilledEstimator) {
  // After a switch in production mode the new structure only covers data
  // since its pre-fill started; outcomes must stay in a sane range thanks
  // to the population scaling.
  auto config = SmallConfig();
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = false;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(18);
  const auto outcomes = Drive(&module, 8000, 10, 19, [&]() {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng.NextBounded(10))});
  });
  ASSERT_FALSE(module.switch_log().empty());
  // Find post-switch outcomes and verify they are finite and bounded by
  // a generous multiple of the window population.
  bool post_switch = false;
  for (const auto& outcome : outcomes) {
    if (outcome.switched) post_switch = true;
    if (post_switch) {
      EXPECT_TRUE(std::isfinite(outcome.estimate));
      EXPECT_LE(outcome.estimate,
                4.0 * static_cast<double>(module.window_population()) + 10);
    }
  }
}

TEST(LatestModuleTest, RecommendReturnsValidKind) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(20);
  Drive(&module, 4000, 30, 21, [&]() { return RandomQuery(&rng); });
  const auto kind =
      module.Recommend(testing_support::MakeKeywordQuery({0}));
  EXPECT_LT(static_cast<uint32_t>(kind), estimators::kNumEstimatorKinds);
}

TEST(LatestModuleTest, CountersTrackStream) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(22);
  const auto outcomes = Drive(&module, 3000, 50, 23,
                              [&]() { return RandomQuery(&rng); });
  EXPECT_EQ(module.objects_ingested(), 3000u);
  EXPECT_EQ(module.queries_answered(), outcomes.size());
  EXPECT_GT(module.window_population(), 0u);
  EXPECT_LT(module.window_population(), 3000u);
}

TEST(LatestModuleTest, ResetModelRetrains) {
  auto module_result = LatestModule::Create(SmallConfig());
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;
  util::Rng rng(24);
  Drive(&module, 3000, 40, 25, [&]() { return RandomQuery(&rng); });
  ASSERT_GT(module.model().num_trained(), 0u);
  module.ResetModel();
  EXPECT_EQ(module.model().num_trained(), 0u);
}

// End-to-end with the workload substrate: the full TwQW1 pipeline runs
// and the module reaches the incremental phase with sane output.
TEST(LatestModuleTest, EndToEndWithWorkloadGenerators) {
  auto dataset_spec = workload::TwitterLikeSpec(/*scale=*/0.1);
  workload::DatasetGenerator dataset(dataset_spec);
  const auto workload_spec =
      workload::MakeWorkloadSpec(workload::WorkloadId::kTwQW1, 500);
  workload::QueryGenerator queries(workload_spec, dataset_spec);

  LatestConfig config;
  config.bounds = dataset_spec.bounds;
  config.window.window_length_ms = 60LL * 60 * 1000;
  config.pretrain_queries = 100;
  config.estimator.reservoir_capacity = 1000;
  auto module_result = LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  LatestModule& module = **module_result;

  workload::StreamDriver driver(&dataset, &queries,
                                config.window.window_length_ms,
                                dataset_spec.duration_ms);
  uint64_t queries_run = 0;
  driver.Run(
      [&](const stream::GeoTextObject& obj) { module.OnObject(obj); },
      [&](const stream::Query& q, uint32_t) {
        const auto outcome = module.OnQuery(q);
        EXPECT_TRUE(std::isfinite(outcome.estimate));
        ++queries_run;
      });
  EXPECT_EQ(queries_run, 500u);
  EXPECT_EQ(module.phase(), Phase::kIncremental);
  EXPECT_GT(module.model().num_trained(), 0u);
}

}  // namespace
}  // namespace latest::core
