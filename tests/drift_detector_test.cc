// Drift detectors: Page-Hinkley and AdwinLite must flag abrupt steps and
// slow ramps within a bounded number of samples, stay silent on
// stationary series (zero false positives over long runs), and the
// DriftMonitor multiplexer must coalesce detections inside the cooldown,
// emit kDriftDetected events, and decay its active gauges once the
// series is stable again.

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "obs/drift_detector.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace latest::obs {
namespace {

/// Deterministic noisy sample around `center` (uniform +/- `amplitude`).
double Noisy(util::Rng* rng, double center, double amplitude = 0.05) {
  return center + rng->NextDouble(-amplitude, amplitude);
}

// ---------------------------------------------------------------------
// Page-Hinkley
// ---------------------------------------------------------------------

TEST(PageHinkleyTest, DetectsStepWithinBoundedSamples) {
  PageHinkley ph;
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FALSE(ph.Update(Noisy(&rng, 0.2))) << "false positive at " << i;
  }
  // Mean steps 0.2 -> 0.6; the cumulative deviation must cross lambda
  // within a bounded number of post-step samples.
  int detected_after = -1;
  for (int i = 0; i < 50; ++i) {
    if (ph.Update(Noisy(&rng, 0.6))) {
      detected_after = i;
      break;
    }
  }
  ASSERT_GE(detected_after, 0) << "step never detected";
  EXPECT_LE(detected_after, 10);
}

TEST(PageHinkleyTest, StationarySeriesNeverFires) {
  PageHinkley ph;
  util::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_FALSE(ph.Update(Noisy(&rng, 0.5))) << "false positive at " << i;
  }
}

TEST(PageHinkleyTest, HoldsFireBeforeMinSamples) {
  PageHinkley ph(/*delta=*/0.005, /*lambda=*/0.25, /*min_samples=*/30);
  // A huge step immediately: nothing may fire until the detector has
  // seen min_samples values.
  for (int i = 0; i < 29; ++i) {
    EXPECT_FALSE(ph.Update(i < 5 ? 0.0 : 10.0));
  }
}

TEST(PageHinkleyTest, ResetRearms) {
  PageHinkley ph;
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) ph.Update(Noisy(&rng, 0.1));
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = ph.Update(Noisy(&rng, 0.7));
  ASSERT_TRUE(fired);
  ph.Reset();
  EXPECT_EQ(ph.samples(), 0u);
  // Post-reset the new level is the baseline; staying there is clean.
  for (int i = 0; i < 500; ++i) {
    ASSERT_FALSE(ph.Update(Noisy(&rng, 0.7)));
  }
}

// ---------------------------------------------------------------------
// AdwinLite
// ---------------------------------------------------------------------

TEST(AdwinLiteTest, DetectsStepWithinBoundedSamples) {
  AdwinLite adwin;
  util::Rng rng(19);
  for (int i = 0; i < 240; ++i) {
    ASSERT_FALSE(adwin.Update(Noisy(&rng, 0.2))) << "false positive at " << i;
  }
  int detected_after = -1;
  for (int i = 0; i < 64; ++i) {
    if (adwin.Update(Noisy(&rng, 0.8))) {
      detected_after = i;
      break;
    }
  }
  ASSERT_GE(detected_after, 0) << "step never detected";
  EXPECT_LE(detected_after, 32);
}

TEST(AdwinLiteTest, DetectsSlowRamp) {
  AdwinLite adwin;
  util::Rng rng(23);
  for (int i = 0; i < 200; ++i) ASSERT_FALSE(adwin.Update(Noisy(&rng, 0.2)));
  // 0.2 -> 0.8 over 300 samples: no single step exceeds the noise, but
  // the window halves diverge beyond the Hoeffding bound mid-ramp; the
  // detector must fire before the ramp completes. (A shallower slope
  // keeps the half-window mean gap under eps for every cut and is
  // legitimately undetectable by an ADWIN of this window size.)
  bool fired = false;
  for (int i = 0; i < 300 && !fired; ++i) {
    const double level = 0.2 + 0.6 * static_cast<double>(i) / 300.0;
    fired = adwin.Update(Noisy(&rng, level));
  }
  EXPECT_TRUE(fired);
}

TEST(AdwinLiteTest, StationarySeriesNeverFires) {
  AdwinLite adwin;
  util::Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_FALSE(adwin.Update(Noisy(&rng, 0.4))) << "false positive at " << i;
  }
}

TEST(AdwinLiteTest, WindowStaysBounded) {
  AdwinLite adwin(/*confidence=*/0.002, /*max_window=*/64);
  util::Rng rng(31);
  for (int i = 0; i < 1000; ++i) adwin.Update(Noisy(&rng, 0.5));
  EXPECT_LE(adwin.window_size(), 64u);
}

// ---------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------

TEST(DriftMonitorTest, StepEmitsEventAndMetrics) {
  MetricsRegistry registry;
  EventLog events(64);
  DriftMonitor monitor;
  monitor.AttachMetrics(&registry);
  monitor.AttachEventLog(&events);

  util::Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FALSE(monitor.Observe("err", Noisy(&rng, 0.1), /*timestamp=*/i));
  }
  bool fired = false;
  int64_t now = 200;
  for (int i = 0; i < 64 && !fired; ++i, ++now) {
    fired = monitor.Observe("err", Noisy(&rng, 0.7), now, /*query_count=*/
                            static_cast<uint64_t>(now));
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(monitor.detections("err"), 1u);
  EXPECT_EQ(monitor.active_series(), 1u);

  const std::vector<Event> drift =
      events.SnapshotOfType(EventType::kDriftDetected);
  ASSERT_EQ(drift.size(), 1u);
  // The note carries "series/detector" so the event log alone tells you
  // which test fired.
  EXPECT_EQ(drift[0].note.rfind("err/", 0), 0u) << drift[0].note;

  const Counter* detections = registry.FindCounter(
      "latest_drift_detections_total", {{"series", "err"}});
  ASSERT_NE(detections, nullptr);
  EXPECT_EQ(detections->value(), 1u);
  const Gauge* active =
      registry.FindGauge("latest_drift_active", {{"series", "err"}});
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(), 1.0);

  const std::vector<DriftDetection> drained = monitor.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].series, "err");
  EXPECT_TRUE(drained[0].detector == "page_hinkley" ||
              drained[0].detector == "adwin");
  EXPECT_TRUE(monitor.Drain().empty());
}

TEST(DriftMonitorTest, CooldownCoalescesAndDecays) {
  MetricsRegistry registry;
  EventLog events(64);
  DriftMonitor::Options options;
  options.cooldown_samples = 32;
  DriftMonitor monitor(options);
  monitor.AttachMetrics(&registry);
  monitor.AttachEventLog(&events);

  util::Rng rng(43);
  for (int i = 0; i < 200; ++i) monitor.Observe("s", Noisy(&rng, 0.1));
  bool fired = false;
  for (int i = 0; i < 64 && !fired; ++i) {
    fired = monitor.Observe("s", Noisy(&rng, 0.8));
  }
  ASSERT_TRUE(fired);
  // The shift persists: further samples at the new level are coalesced
  // into the same episode, not new detections.
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(monitor.Observe("s", Noisy(&rng, 0.8)));
  }
  EXPECT_EQ(monitor.detections("s"), 1u);
  EXPECT_EQ(events.SnapshotOfType(EventType::kDriftDetected).size(), 1u);
  EXPECT_EQ(monitor.active_series(), 1u);

  // Once the detectors stop firing, the cooldown drains and the series
  // re-arms: the active gauge self-recovers without manual reset.
  for (int i = 0; i < 200 && monitor.active_series() != 0; ++i) {
    monitor.Observe("s", Noisy(&rng, 0.8));
  }
  EXPECT_EQ(monitor.active_series(), 0u);
  const Gauge* active_total = registry.FindGauge("latest_drift_active_series");
  ASSERT_NE(active_total, nullptr);
  EXPECT_DOUBLE_EQ(active_total->value(), 0.0);
}

TEST(DriftMonitorTest, SeriesAreIndependent) {
  DriftMonitor monitor;
  util::Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    monitor.Observe("stable", Noisy(&rng, 0.5));
    monitor.Observe("shifting", Noisy(&rng, 0.1));
  }
  bool fired = false;
  for (int i = 0; i < 64 && !fired; ++i) {
    monitor.Observe("stable", Noisy(&rng, 0.5));
    fired = monitor.Observe("shifting", Noisy(&rng, 0.9));
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(monitor.detections("shifting"), 1u);
  EXPECT_EQ(monitor.detections("stable"), 0u);
}

TEST(DriftMonitorTest, StationaryNeverFiresAcrossSeries) {
  MetricsRegistry registry;
  DriftMonitor monitor;
  monitor.AttachMetrics(&registry);
  monitor.AddSeries("a");
  monitor.AddSeries("b");
  util::Rng rng(53);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_FALSE(monitor.Observe("a", Noisy(&rng, 0.3)));
    ASSERT_FALSE(monitor.Observe("b", Noisy(&rng, 0.6, 0.02)));
  }
  EXPECT_EQ(monitor.detections("a"), 0u);
  EXPECT_EQ(monitor.detections("b"), 0u);
  EXPECT_EQ(monitor.active_series(), 0u);
}

// ---------------------------------------------------------------------
// Scenario-driven detection-delay bounds
//
// The adversarial scenario library (src/workload/scenario.h) generates
// the same per-slice ingest-feature series the module folds into its
// drift monitor (core/latest_module.cc slice rotation): vocabulary
// churn = new/distinct keywords per sealed slice ("new" = absent from
// the whole preceding window) and centroid displacement against a
// slowly-following EWMA centroid. Replaying those series here pins the
// detector configuration end to end: each injected drift must be
// detected within a bounded number of slices of its onset, and series
// the scenario does not touch must stay silent.
// ---------------------------------------------------------------------

struct SliceDetections {
  /// Slice indices (100 ms event-time slices) of non-coalesced
  /// detections, per series.
  std::vector<int64_t> vocab;
  std::vector<int64_t> centroid;
  int64_t slices = 0;
};

/// Replays a scenario's object stream through the module's ingest
/// feature extraction and the drift monitor, using the same detector
/// options as the scenario replay harness (ph_lambda 0.35; see
/// src/workload/scenario_runner.cc for the tuning rationale).
SliceDetections ReplayIngestFeatures(const workload::ScenarioSpec& spec) {
  // The smoke window: 1000 ms over 10 slices.
  constexpr int64_t kSliceMs = 100;
  constexpr uint64_t kNumSlices = 10;

  DriftMonitor::Options options;
  options.ph_lambda = 0.35;
  DriftMonitor monitor(options);

  workload::ScenarioStream stream(spec);
  std::unordered_map<stream::KeywordId, uint64_t> vocab_last_slice;
  int64_t current_slice = 0;
  uint64_t slice_index = 0;
  uint64_t distinct = 0, fresh = 0, objects = 0;
  double sum_x = 0.0, sum_y = 0.0;
  double centroid_x = 0.0, centroid_y = 0.0;
  bool centroid_initialized = false;

  const auto seal_slices_until = [&](int64_t target_slice) {
    while (current_slice < target_slice) {
      if (objects > 0) {
        const double churn =
            distinct > 0
                ? static_cast<double>(fresh) / static_cast<double>(distinct)
                : 0.0;
        monitor.Observe("ingest_vocab_churn", churn, current_slice);
        const double cx = sum_x / static_cast<double>(objects);
        const double cy = sum_y / static_cast<double>(objects);
        if (!centroid_initialized) {
          centroid_x = cx;
          centroid_y = cy;
          centroid_initialized = true;
        }
        const double dx = (cx - centroid_x) / spec.bounds.Width();
        const double dy = (cy - centroid_y) / spec.bounds.Height();
        monitor.Observe("ingest_centroid", std::sqrt(dx * dx + dy * dy),
                        current_slice);
        centroid_x += 0.2 * (cx - centroid_x);
        centroid_y += 0.2 * (cy - centroid_y);
      }
      distinct = fresh = objects = 0;
      sum_x = sum_y = 0.0;
      ++slice_index;
      ++current_slice;
    }
  };

  while (stream.HasNext()) {
    const workload::ScenarioEvent event = stream.Next();
    if (event.is_query) continue;
    seal_slices_until(event.object.timestamp / kSliceMs);
    for (const stream::KeywordId kw : event.object.keywords) {
      auto [it, inserted] = vocab_last_slice.try_emplace(kw, slice_index);
      if (inserted) {
        ++distinct;
        ++fresh;
      } else if (it->second != slice_index) {
        ++distinct;
        if (it->second + kNumSlices < slice_index) ++fresh;
        it->second = slice_index;
      }
    }
    sum_x += event.object.loc.x;
    sum_y += event.object.loc.y;
    ++objects;
  }
  seal_slices_until(current_slice + 1);  // Seal the final open slice.

  SliceDetections result;
  result.slices = current_slice;
  for (const DriftDetection& detection : monitor.Drain()) {
    if (detection.series == "ingest_vocab_churn") {
      result.vocab.push_back(detection.timestamp);
    } else if (detection.series == "ingest_centroid") {
      result.centroid.push_back(detection.timestamp);
    }
  }
  return result;
}

struct ScenarioDetectionCase {
  std::string scenario;
  /// Which ingest series must fire ("vocab", "centroid", or "" = none).
  std::string expect_series;
  /// Detection must land within this many slices of the injection onset.
  int64_t max_delay_slices = 0;
  /// Series that must stay completely silent.
  std::vector<std::string> silent_series;
};

class ScenarioDriftDetectionTest
    : public ::testing::TestWithParam<ScenarioDetectionCase> {};

TEST_P(ScenarioDriftDetectionTest, DetectsWithinSliceBoundOfOnset) {
  const ScenarioDetectionCase& test_case = GetParam();
  const auto entry = workload::MakeScenario(test_case.scenario);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  const SliceDetections detections = ReplayIngestFeatures(entry->spec);

  const auto slices_of = [&](const std::string& series) {
    return series == "vocab" ? detections.vocab : detections.centroid;
  };

  if (!test_case.expect_series.empty()) {
    // The matching injection's onset, in slices.
    int64_t onset_slice = -1;
    const std::string kind =
        test_case.expect_series == "vocab" ? "vocab" : "spatial";
    for (const workload::DriftInjection& injection :
         workload::InjectionsOf(entry->spec)) {
      if (injection.kind == kind) onset_slice = injection.onset_ms / 100;
    }
    ASSERT_GE(onset_slice, 0) << "scenario has no " << kind << " injection";

    const std::vector<int64_t> fired = slices_of(test_case.expect_series);
    ASSERT_FALSE(fired.empty())
        << test_case.scenario << ": " << test_case.expect_series
        << " series never fired over " << detections.slices << " slices";
    EXPECT_GE(fired.front(), onset_slice)
        << test_case.scenario << ": detection before the injection onset "
        << "is a false positive";
    EXPECT_LE(fired.front(), onset_slice + test_case.max_delay_slices)
        << test_case.scenario << ": first detection too late";
  }
  for (const std::string& series : test_case.silent_series) {
    EXPECT_TRUE(slices_of(series).empty())
        << test_case.scenario << ": untouched series " << series
        << " fired at slice " << slices_of(series).front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioDriftDetectionTest,
    ::testing::Values(
        // Stationary stream: both ingest series must stay silent over the
        // whole run (false-positive floor).
        ScenarioDetectionCase{"baseline", "", 0, {"vocab", "centroid"}},
        // Abrupt combined flip: both series fire promptly.
        ScenarioDetectionCase{"flip", "vocab", 5, {}},
        ScenarioDetectionCase{"flip", "centroid", 5, {}},
        // Spatial-only jump: the centroid fires, the vocabulary must not.
        ScenarioDetectionCase{"flash_crowd", "centroid", 5, {"vocab"}},
        // Gradual vocabulary churn: detectable within the ramp, spatial
        // silent.
        ScenarioDetectionCase{"vocab_churn", "vocab", 10, {"centroid"}},
        // Slow centroid ramp: PH accumulates over the drift window, so
        // the bound spans most of it; vocabulary silent.
        ScenarioDetectionCase{"centroid_drift", "centroid", 30, {"vocab"}}),
    [](const auto& info) {
      return info.param.scenario +
             (info.param.expect_series.empty() ? std::string("_silent")
                                               : "_" + info.param.expect_series);
    });

}  // namespace
}  // namespace latest::obs
