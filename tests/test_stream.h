// Shared test helpers: deterministic synthetic streams and queries for
// estimator tests, plus a tiny driver that feeds a windowed estimator and
// tracks ground truth.

#ifndef LATEST_TESTS_TEST_STREAM_H_
#define LATEST_TESTS_TEST_STREAM_H_

#include <vector>

#include "estimators/estimator.h"
#include "stream/object.h"
#include "stream/query.h"
#include "stream/sliding_window.h"
#include "util/rng.h"

namespace latest::testing_support {

inline constexpr geo::Rect kTestBounds{0, 0, 100, 100};

/// Default estimator configuration for tests: 1000 ms window, 10 slices.
inline estimators::EstimatorConfig TestEstimatorConfig() {
  estimators::EstimatorConfig config;
  config.bounds = kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.seed = 42;
  return config;
}

/// Clustered synthetic objects: 70% in a dense square [20,40]^2, the rest
/// uniform; keywords Zipf-ish over [0, 50) by squaring a uniform draw.
inline std::vector<stream::GeoTextObject> MakeClusteredObjects(
    int n, uint64_t seed, stream::Timestamp duration = 1000) {
  util::Rng rng(seed);
  std::vector<stream::GeoTextObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    stream::GeoTextObject obj;
    obj.oid = static_cast<stream::ObjectId>(i);
    if (rng.NextBool(0.7)) {
      obj.loc = {rng.NextDouble(20, 40), rng.NextDouble(20, 40)};
    } else {
      obj.loc = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    }
    const int num_kw = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < num_kw; ++k) {
      const double u = rng.NextDouble();
      obj.keywords.push_back(static_cast<stream::KeywordId>(u * u * 50));
    }
    stream::CanonicalizeKeywords(&obj.keywords);
    obj.timestamp = duration * i / n;
    objects.push_back(obj);
  }
  return objects;
}

/// Uniform synthetic objects: locations uniform over kTestBounds,
/// keywords uniform over [0, keyword_space). The index-style tests use
/// this flavour (no spatial cluster) so per-cell workloads stay even.
inline std::vector<stream::GeoTextObject> MakeUniformObjects(
    int n, uint64_t seed, stream::Timestamp duration = 10000,
    uint32_t keyword_space = 30) {
  util::Rng rng(seed);
  std::vector<stream::GeoTextObject> objects;
  objects.reserve(n);
  for (int i = 0; i < n; ++i) {
    stream::GeoTextObject obj;
    obj.oid = static_cast<stream::ObjectId>(i);
    obj.loc = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const int num_kw = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < num_kw; ++k) {
      obj.keywords.push_back(
          static_cast<stream::KeywordId>(rng.NextBounded(keyword_space)));
    }
    stream::CanonicalizeKeywords(&obj.keywords);
    obj.timestamp = duration * i / n;
    objects.push_back(obj);
  }
  return objects;
}

/// Feeds objects to an estimator, rotating slices per the window config.
/// Returns the number of rotations performed.
inline uint32_t FeedObjects(estimators::Estimator* estimator,
                            const stream::WindowConfig& window,
                            const std::vector<stream::GeoTextObject>& objects) {
  stream::SliceClock clock(window);
  uint32_t rotations = 0;
  for (const auto& obj : objects) {
    const uint32_t r = clock.Advance(obj.timestamp);
    for (uint32_t i = 0; i < r; ++i) estimator->OnSliceRotate();
    rotations += r;
    estimator->Insert(obj);
  }
  return rotations;
}

/// Brute-force truth over objects newer than `cutoff`.
inline uint64_t BruteForceCount(
    const std::vector<stream::GeoTextObject>& objects, const stream::Query& q,
    stream::Timestamp cutoff) {
  uint64_t count = 0;
  for (const auto& obj : objects) {
    if (obj.timestamp >= cutoff && q.Matches(obj)) ++count;
  }
  return count;
}

inline stream::Query MakeSpatialQuery(const geo::Rect& r,
                                      stream::Timestamp t = 0) {
  stream::Query q;
  q.range = r;
  q.timestamp = t;
  return q;
}

inline stream::Query MakeKeywordQuery(std::vector<stream::KeywordId> kws,
                                      stream::Timestamp t = 0) {
  stream::Query q;
  q.keywords = std::move(kws);
  stream::CanonicalizeKeywords(&q.keywords);
  q.timestamp = t;
  return q;
}

inline stream::Query MakeHybridQuery(const geo::Rect& r,
                                     std::vector<stream::KeywordId> kws,
                                     stream::Timestamp t = 0) {
  stream::Query q = MakeKeywordQuery(std::move(kws), t);
  q.range = r;
  return q;
}

}  // namespace latest::testing_support

#endif  // LATEST_TESTS_TEST_STREAM_H_
