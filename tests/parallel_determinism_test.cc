// The lifecycle must be bit-identical in LatestConfig::num_threads: the
// estimation pool only changes which thread measures which estimator,
// never what is measured or in which order side effects land. With
// alpha = 0 the learning reward ignores latency — the one genuinely
// nondeterministic measurement — so two runs over the same seeded stream
// must agree on every estimate, selection, label, and model statistic.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "tests/test_stream.h"

namespace latest::core {
namespace {

// Everything order- or selection-relevant about one query.
struct QueryRecord {
  double estimate = 0.0;
  uint64_t actual = 0;
  double accuracy = 0.0;
  double monitor_accuracy = 0.0;
  estimators::EstimatorKind active = estimators::EstimatorKind::kRsh;
  Phase phase = Phase::kWarmup;
  bool switched = false;
  std::vector<double> shadow_estimates;  // Per measured kind, kind order.
};

struct LifecycleResult {
  std::vector<QueryRecord> queries;
  std::vector<SwitchEvent> switches;
  estimators::EstimatorKind final_active = estimators::EstimatorKind::kRsh;
  uint64_t model_trained = 0;
  uint64_t model_leaves = 0;
  uint32_t model_depth = 0;
  std::vector<double> scoreboard_accuracy;  // type-major cell dump.
  std::vector<estimators::EstimatorKind> recommendations;
};

// A keyword-heavy stream against an H4096 default forces the full arc:
// warm-up, pre-training, incremental degradation, pre-fill, switch.
LatestConfig DeterminismConfig(uint32_t num_threads) {
  LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.maintain_shadow_estimators = true;
  // Accuracy-only reward: latency is wall clock and may not influence
  // any selection for this comparison to be exact.
  config.alpha = 0.0;
  config.seed = 5;
  config.num_threads = num_threads;
  return config;
}

stream::Query NextQuery(util::Rng* rng) {
  // Mostly keyword queries (to degrade H4096), some spatial/hybrid so
  // every scoreboard row is exercised.
  const double u = rng->NextDouble();
  if (u < 0.70) {
    return testing_support::MakeKeywordQuery(
        {static_cast<stream::KeywordId>(rng->NextBounded(50))});
  }
  const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
  const geo::Rect r = geo::Rect::FromCenter(c, rng->NextDouble(5, 30),
                                            rng->NextDouble(5, 30));
  if (u < 0.85) return testing_support::MakeSpatialQuery(r);
  return testing_support::MakeHybridQuery(
      r, {static_cast<stream::KeywordId>(rng->NextBounded(50))});
}

LifecycleResult RunLifecycle(uint32_t num_threads) {
  auto module_result = LatestModule::Create(DeterminismConfig(num_threads));
  EXPECT_TRUE(module_result.ok());
  LatestModule& module = **module_result;

  LifecycleResult result;
  const auto objects = testing_support::MakeClusteredObjects(
      8000, /*seed=*/13, /*duration=*/4000);
  util::Rng query_rng(99);
  for (size_t i = 0; i < objects.size(); ++i) {
    module.OnObject(objects[i]);
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = NextQuery(&query_rng);
    q.timestamp = objects[i].timestamp;
    const QueryOutcome outcome = module.OnQuery(q);
    QueryRecord record;
    record.estimate = outcome.estimate;
    record.actual = outcome.actual;
    record.accuracy = outcome.accuracy;
    record.monitor_accuracy = outcome.monitor_accuracy;
    record.active = outcome.active;
    record.phase = outcome.phase;
    record.switched = outcome.switched;
    for (const EstimatorMeasurement& m : outcome.measurements) {
      record.shadow_estimates.push_back(m.estimate);
    }
    result.queries.push_back(std::move(record));
  }

  result.switches = module.switch_log();
  result.final_active = module.active_kind();
  result.model_trained = module.model().num_trained();
  result.model_leaves = module.model().num_leaves();
  result.model_depth = module.model().depth();
  for (const auto type :
       {stream::QueryType::kSpatial, stream::QueryType::kKeyword,
        stream::QueryType::kHybrid}) {
    for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
      result.scoreboard_accuracy.push_back(module.scoreboard().AccuracyOf(
          type, static_cast<estimators::EstimatorKind>(k)));
    }
  }
  util::Rng probe_rng(7);
  for (int i = 0; i < 20; ++i) {
    result.recommendations.push_back(module.Recommend(NextQuery(&probe_rng)));
  }
  return result;
}

void ExpectIdentical(const LifecycleResult& a, const LifecycleResult& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    const QueryRecord& qa = a.queries[i];
    const QueryRecord& qb = b.queries[i];
    // Exact (bitwise) double equality is intentional: the parallel path
    // must not even reorder floating-point accumulation.
    EXPECT_EQ(qa.estimate, qb.estimate) << "query " << i;
    EXPECT_EQ(qa.actual, qb.actual) << "query " << i;
    EXPECT_EQ(qa.accuracy, qb.accuracy) << "query " << i;
    EXPECT_EQ(qa.monitor_accuracy, qb.monitor_accuracy) << "query " << i;
    EXPECT_EQ(qa.active, qb.active) << "query " << i;
    EXPECT_EQ(qa.phase, qb.phase) << "query " << i;
    EXPECT_EQ(qa.switched, qb.switched) << "query " << i;
    EXPECT_EQ(qa.shadow_estimates, qb.shadow_estimates) << "query " << i;
  }
  ASSERT_EQ(a.switches.size(), b.switches.size());
  for (size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].query_index, b.switches[i].query_index);
    EXPECT_EQ(a.switches[i].timestamp, b.switches[i].timestamp);
    EXPECT_EQ(a.switches[i].from, b.switches[i].from);
    EXPECT_EQ(a.switches[i].to, b.switches[i].to);
  }
  EXPECT_EQ(a.final_active, b.final_active);
  EXPECT_EQ(a.model_trained, b.model_trained);
  EXPECT_EQ(a.model_leaves, b.model_leaves);
  EXPECT_EQ(a.model_depth, b.model_depth);
  EXPECT_EQ(a.scoreboard_accuracy, b.scoreboard_accuracy);
  EXPECT_EQ(a.recommendations, b.recommendations);
}

TEST(ParallelDeterminismTest, LifecycleExercisesEveryPhaseAndSwitches) {
  const LifecycleResult serial = RunLifecycle(0);
  bool saw_pretraining = false;
  bool saw_incremental = false;
  for (const QueryRecord& q : serial.queries) {
    saw_pretraining |= q.phase == Phase::kPretraining;
    saw_incremental |= q.phase == Phase::kIncremental;
  }
  EXPECT_TRUE(saw_pretraining);
  EXPECT_TRUE(saw_incremental);
  // The scenario must actually reach a switch, or the comparison below
  // would vacuously pass on a trivial lifecycle.
  EXPECT_FALSE(serial.switches.empty());
  EXPECT_NE(serial.final_active, estimators::EstimatorKind::kH4096);
  EXPECT_GT(serial.model_trained, 0u);
}

TEST(ParallelDeterminismTest, OneAndEightThreadsAreBitIdentical) {
  ExpectIdentical(RunLifecycle(1), RunLifecycle(8));
}

TEST(ParallelDeterminismTest, SerialAndFourThreadsAreBitIdentical) {
  ExpectIdentical(RunLifecycle(0), RunLifecycle(4));
}

}  // namespace
}  // namespace latest::core
