// Tests for the string-keyword EstimationService facade, plus the
// estimator-subset and automatic-retraining module extensions.

#include <gtest/gtest.h>

#include "core/estimation_service.h"
#include "tests/test_stream.h"

namespace latest::core {
namespace {

LatestConfig ServiceConfig() {
  LatestConfig config;
  config.bounds = geo::Rect{0, 0, 100, 100};
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 20;
  config.monitor_window = 8;
  return config;
}

TEST(EstimationServiceTest, CreateValidatesConfig) {
  auto config = ServiceConfig();
  config.alpha = 2.0;
  EXPECT_FALSE(EstimationService::Create(config).ok());
  EXPECT_TRUE(EstimationService::Create(ServiceConfig()).ok());
}

TEST(EstimationServiceTest, IngestTokenizesAndInterns) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  service->IngestPost(1, {10, 10}, "House FIRE near #downtown, send help!",
                      0);
  EXPECT_EQ(service->KeywordOccurrences("fire"), 1u);
  EXPECT_EQ(service->KeywordOccurrences("#downtown"), 1u);
  EXPECT_EQ(service->KeywordOccurrences("help"), 1u);
  EXPECT_EQ(service->KeywordOccurrences("the"), 0u);  // Stopword dropped.
  EXPECT_GT(service->vocabulary_size(), 3u);
}

TEST(EstimationServiceTest, EstimateByStringKeywords) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  // Stream: 500 "fire" posts in a corner, 500 "coffee" posts elsewhere,
  // spread across 2 windows so the module leaves warm-up.
  for (int i = 0; i < 1000; ++i) {
    const stream::Timestamp t = 2 * i;
    if (i % 2 == 0) {
      service->IngestKeywords(i, {10.0 + (i % 10), 10.0}, {"fire"}, t);
    } else {
      service->IngestKeywords(i, {80, 80}, {"coffee"}, t);
    }
  }
  auto outcome = service->EstimateCount(std::nullopt, {"fire"}, 2000);
  ASSERT_TRUE(outcome.ok());
  // The window holds the most recent slices; the estimate must be in the
  // right ballpark of the true windowed count.
  EXPECT_GT(outcome->estimate, 0.0);
  EXPECT_GT(outcome->accuracy, 0.5);
}

TEST(EstimationServiceTest, UnknownKeywordsAreDropped) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  for (int i = 0; i < 100; ++i) {
    service->IngestKeywords(i, {50, 50}, {"fire"}, i * 10);
  }
  // "dragon" never appeared: with a range present the query still runs.
  auto outcome = service->EstimateCount(geo::Rect{0, 0, 100, 100},
                                        {"fire", "dragon"}, 1000);
  ASSERT_TRUE(outcome.ok());
}

TEST(EstimationServiceTest, AllUnknownKeywordsWithoutRangeIsZero) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  service->IngestKeywords(1, {50, 50}, {"fire"}, 0);
  auto outcome = service->EstimateCount(std::nullopt, {"dragon"}, 100);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->estimate, 0.0);
  EXPECT_DOUBLE_EQ(outcome->accuracy, 1.0);
}

TEST(EstimationServiceTest, EmptyQueryRejected) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  auto outcome = service->EstimateCount(std::nullopt, {}, 100);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EstimationServiceTest, DegenerateRangeRejected) {
  auto service = std::move(EstimationService::Create(ServiceConfig())).value();
  auto outcome = service->EstimateCount(geo::Rect{5, 5, 5, 9}, {}, 100);
  EXPECT_FALSE(outcome.ok());
}

// --------------------------------------------------------------------
// Estimator-subset configuration

TEST(EstimatorSubsetTest, ValidationRules) {
  auto config = ServiceConfig();
  config.enabled_estimators = {false, false, false, false, false, false};
  EXPECT_FALSE(config.Validate().ok());

  config.enabled_estimators = {true, false, false, false, false, false};
  EXPECT_FALSE(config.Validate().ok());  // Needs >= 2.

  // Default estimator (RSH = index 2) must be enabled.
  config.enabled_estimators = {true, true, false, false, false, false};
  EXPECT_FALSE(config.Validate().ok());

  config.enabled_estimators = {true, false, true, false, false, false};
  EXPECT_TRUE(config.Validate().ok());
}

TEST(EstimatorSubsetTest, OnlyEnabledKindsAreMeasured) {
  auto config = ServiceConfig();
  config.maintain_shadow_estimators = true;
  // Histogram + both samplers only.
  config.enabled_estimators = {true, true, true, false, false, false};
  auto module = std::move(LatestModule::Create(config)).value();

  const auto objects = testing_support::MakeClusteredObjects(3000, 1, 3000);
  bool checked = false;
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 20 == 0) {
      stream::Query q =
          testing_support::MakeSpatialQuery({20, 20, 40, 40});
      q.timestamp = obj.timestamp;
      const auto outcome = module->OnQuery(q);
      EXPECT_LE(outcome.measurements.size(), 3u);
      for (const auto& m : outcome.measurements) {
        EXPECT_TRUE(module->IsEnabled(m.kind));
      }
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(EstimatorSubsetTest, SwitchesStayWithinTheSubset) {
  auto config = ServiceConfig();
  config.min_queries_between_switches = 8;
  config.default_estimator = estimators::EstimatorKind::kH4096;
  // Histogram + RSL only: keyword queries must force a switch to RSL.
  config.enabled_estimators = {true, true, false, false, false, false};
  auto module = std::move(LatestModule::Create(config)).value();

  const auto objects = testing_support::MakeClusteredObjects(6000, 2, 4000);
  util::Rng rng(3);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 8 == 0) {
      stream::Query q = testing_support::MakeKeywordQuery(
          {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  ASSERT_FALSE(module->switch_log().empty());
  for (const auto& sw : module->switch_log()) {
    EXPECT_TRUE(module->IsEnabled(sw.to));
  }
  EXPECT_EQ(module->active_kind(), estimators::EstimatorKind::kRsl);
}

// --------------------------------------------------------------------
// Automatic model retraining

TEST(AutoRetrainTest, DisabledByDefault) {
  auto module = std::move(LatestModule::Create(ServiceConfig())).value();
  EXPECT_EQ(module->model_retrains(), 0u);
}

TEST(AutoRetrainTest, FiresOnSustainedHighError) {
  auto config = ServiceConfig();
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.enabled_estimators = {true, true, false, false, false, false};
  config.auto_retrain_error_threshold = 0.5;
  config.min_queries_between_retrains = 32;
  // Keep the module glued to the histogram so keyword queries produce a
  // persistently high relative error.
  config.min_queries_between_switches = 1000000;
  config.regret_margin = 0.0;
  config.tau = 0.01;
  auto module = std::move(LatestModule::Create(config)).value();

  const auto objects = testing_support::MakeClusteredObjects(6000, 4, 4000);
  util::Rng rng(5);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 8 == 0) {
      stream::Query q = testing_support::MakeKeywordQuery(
          {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  EXPECT_GT(module->model_retrains(), 0u);
}

TEST(AutoRetrainTest, QuietWhenAccurate) {
  auto config = ServiceConfig();
  config.auto_retrain_error_threshold = 0.9;
  config.min_queries_between_retrains = 32;
  config.estimator.reservoir_capacity = 100000;  // Near-exact answers.
  auto module = std::move(LatestModule::Create(config)).value();

  const auto objects = testing_support::MakeClusteredObjects(4000, 6, 3000);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 10 == 0) {
      stream::Query q =
          testing_support::MakeSpatialQuery({20, 20, 40, 40});
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  EXPECT_EQ(module->model_retrains(), 0u);
}

TEST(AutoRetrainTest, ManualResetClearsModel) {
  auto module = std::move(LatestModule::Create(ServiceConfig())).value();
  const auto objects = testing_support::MakeClusteredObjects(3000, 7, 3000);
  util::Rng rng(8);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 20 == 0) {
      stream::Query q = testing_support::MakeSpatialQuery({10, 10, 60, 60});
      q.timestamp = obj.timestamp;
      module->OnQuery(q);
    }
  }
  ASSERT_GT(module->model().num_trained(), 0u);
  module->ResetModel();
  EXPECT_EQ(module->model().num_trained(), 0u);
}

}  // namespace
}  // namespace latest::core
