// Tests for the telemetry subsystem: metrics registry semantics,
// histogram percentiles against a sorted reference, exposition formats,
// event-log ring wraparound, trace sampling, and the end-to-end lifecycle
// event sequence of a forced estimator switch.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "core/module_stats.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/query_trace.h"
#include "obs/telemetry.h"
#include "simd/kernels.h"
#include "tests/test_stream.h"
#include "util/rng.h"

namespace latest::obs {
namespace {

// --------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -0.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

// --------------------------------------------------------------------
// Histogram

TEST(HistogramTest, ObserveFillsBucketsBySample) {
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);   // Bucket 0 (le 1).
  h.Observe(1.0);   // Bucket 0: le semantics include the bound.
  h.Observe(1.5);   // Bucket 1 (le 2).
  h.Observe(100.0); // Overflow bucket.
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf.
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(Histogram::LatencyBucketsMs());
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, OverflowSamplesReportLargestFiniteBound) {
  Histogram h({1.0, 2.0});
  h.Observe(50.0);
  h.Observe(60.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(HistogramTest, PercentilesMatchSortedReferenceWithinBucketWidth) {
  // 20 equi-width buckets over [0, 1]: any interpolated percentile must
  // land within one bucket width (0.05) of the exact order statistic.
  Histogram h(Histogram::UnitIntervalBuckets());
  util::Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    // Skewed distribution so percentiles are non-trivial.
    const double v = rng.NextDouble() * rng.NextDouble();
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const size_t rank = std::min(
        samples.size() - 1,
        static_cast<size_t>(p / 100.0 * static_cast<double>(samples.size())));
    EXPECT_NEAR(h.Percentile(p), samples[rank], 0.05)
        << "percentile " << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

// --------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstances) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "help");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("x_total", "help", {{"k", "v"}});
  EXPECT_NE(a, labeled);
  Counter* labeled_again =
      registry.GetCounter("x_total", "help", {{"k", "v"}});
  EXPECT_EQ(labeled, labeled_again);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("demo_total", "A demo counter")->Increment(3);
  registry.GetGauge("demo_phase", "A demo gauge")->Set(2.0);
  Histogram* h = registry.GetHistogram("demo_latency_ms", "A demo histogram",
                                       {1.0, 5.0}, {{"estimator", "RSH"}});
  h->Observe(0.5);
  h->Observe(3.0);
  h->Observe(50.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP demo_total A demo counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("demo_phase 2"), std::string::npos);
  // Cumulative buckets with the estimator label and the +Inf bucket.
  EXPECT_NE(
      text.find("demo_latency_ms_bucket{estimator=\"RSH\",le=\"1\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("demo_latency_ms_bucket{estimator=\"RSH\",le=\"5\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("demo_latency_ms_bucket{estimator=\"RSH\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("demo_latency_ms_count{estimator=\"RSH\"} 3"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("j_total", "h")->Increment();
  Histogram* h = registry.GetHistogram("j_ms", "h", {1.0});
  h->Observe(0.25);
  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"name\":\"j_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
}

// --------------------------------------------------------------------
// EventLog

TEST(EventLogTest, RingOverwritesOldest) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.type = EventType::kSwitched;
    e.query_count = static_cast<uint64_t>(i);
    log.Append(e);
  }
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: appends 6, 7, 8, 9 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].query_count, 6u + i);
  }
}

TEST(EventLogTest, SnapshotOfTypeFilters) {
  EventLog log(8);
  Event a;
  a.type = EventType::kPrefillStarted;
  Event b;
  b.type = EventType::kSwitched;
  log.Append(a);
  log.Append(b);
  log.Append(a);
  EXPECT_EQ(log.SnapshotOfType(EventType::kPrefillStarted).size(), 2u);
  EXPECT_EQ(log.SnapshotOfType(EventType::kSwitched).size(), 1u);
  EXPECT_TRUE(log.SnapshotOfType(EventType::kModelReset).empty());
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_appended(), 3u);
}

TEST(EventLogTest, FormatEventMentionsTypeAndEstimators) {
  Event e;
  e.type = EventType::kSwitched;
  e.from_estimator = 0;  // H4096.
  e.to_estimator = 2;    // RSH.
  e.query_count = 77;
  const std::string line = FormatEvent(e);
  EXPECT_NE(line.find("switched"), std::string::npos);
  EXPECT_NE(line.find("H4096"), std::string::npos);
  EXPECT_NE(line.find("RSH"), std::string::npos);
}

// --------------------------------------------------------------------
// TraceCollector

TEST(TraceCollectorTest, SamplesEveryNth) {
  TraceCollector collector(/*sample_every=*/4, /*capacity=*/8,
                           /*registry=*/nullptr);
  EXPECT_TRUE(collector.ShouldSample(0));
  EXPECT_FALSE(collector.ShouldSample(1));
  EXPECT_FALSE(collector.ShouldSample(3));
  EXPECT_TRUE(collector.ShouldSample(4));
  EXPECT_TRUE(collector.ShouldSample(400));
}

TEST(TraceCollectorTest, ZeroDisablesSampling) {
  TraceCollector collector(0, 8, nullptr);
  EXPECT_FALSE(collector.ShouldSample(0));
  EXPECT_FALSE(collector.ShouldSample(64));
}

TEST(TraceCollectorTest, RingBoundsRetainedTraces) {
  TraceCollector collector(1, 4, nullptr);
  for (int i = 0; i < 9; ++i) {
    QueryTrace trace;
    trace.query_ordinal = static_cast<uint64_t>(i);
    collector.Record(trace);
  }
  EXPECT_EQ(collector.recorded(), 9u);
  const std::vector<QueryTrace> traces = collector.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().query_ordinal, 5u);
  EXPECT_EQ(traces.back().query_ordinal, 8u);
}

TEST(TraceCollectorTest, FeedsStageHistograms) {
  MetricsRegistry registry;
  TraceCollector collector(1, 4, &registry);
  QueryTrace trace;
  trace.stage_ms[static_cast<uint32_t>(TraceStage::kEstimate)] = 0.5;
  trace.total_ms = 1.0;
  collector.Record(trace);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("latest_stage_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("stage=\"estimate\""), std::string::npos);
  EXPECT_NE(text.find("latest_query_total_latency_ms"), std::string::npos);
}

// --------------------------------------------------------------------
// End-to-end lifecycle events through the module

core::LatestConfig ForcedSwitchConfig() {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 30;
  config.monitor_window = 16;
  // Hysteresis longer than the monitor window: prefill pressure appears
  // (and emits kPrefillStarted) before the switch is allowed to fire.
  config.min_queries_between_switches = 48;
  config.estimator.reservoir_capacity = 500;
  // A pure-spatial histogram cannot answer keyword queries: feeding only
  // keyword queries forces the monitor down and a switch away from it.
  config.default_estimator = estimators::EstimatorKind::kH4096;
  config.seed = 5;
  return config;
}

TEST(LifecycleEventsTest, ForcedSwitchEmitsPrefillThenSwitch) {
  auto module_result = core::LatestModule::Create(ForcedSwitchConfig());
  ASSERT_TRUE(module_result.ok());
  core::LatestModule& module = **module_result;
  util::Rng rng(12);
  const auto objects =
      testing_support::MakeClusteredObjects(8000, 13, 4000);
  for (size_t i = 0; i < objects.size(); ++i) {
    module.OnObject(objects[i]);
    if (objects[i].timestamp >= 1000 && i % 10 == 0) {
      stream::Query q = testing_support::MakeKeywordQuery(
          {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      q.timestamp = objects[i].timestamp;
      module.OnQuery(q);
    }
  }
  ASSERT_FALSE(module.switch_log().empty());

  const EventLog& events = module.telemetry().events();
  const auto phase_events = events.SnapshotOfType(EventType::kPhaseChanged);
  ASSERT_EQ(phase_events.size(), 2u);  // warmup->pretraining->incremental.
  EXPECT_EQ(phase_events[0].phase, 1);
  EXPECT_EQ(phase_events[1].phase, 2);

  const auto prefills = events.SnapshotOfType(EventType::kPrefillStarted);
  const auto switches = events.SnapshotOfType(EventType::kSwitched);
  ASSERT_FALSE(prefills.empty());
  ASSERT_FALSE(switches.empty());
  // The anticipation precedes the switch, away from the failing H4096,
  // and both agree on the destination.
  EXPECT_LT(prefills.front().query_count, switches.front().query_count);
  EXPECT_EQ(switches.front().from_estimator,
            static_cast<int32_t>(estimators::EstimatorKind::kH4096));
  EXPECT_EQ(prefills.front().to_estimator, switches.front().to_estimator);
  EXPECT_NE(switches.front().to_estimator,
            static_cast<int32_t>(estimators::EstimatorKind::kH4096));
  // The monitor crossed the switch threshold somewhere along the way.
  EXPECT_FALSE(
      events.SnapshotOfType(EventType::kAccuracyBelowSwitchThreshold)
          .empty());

  // Registry view agrees with the event log.
  MetricsRegistry& registry = module.telemetry().registry();
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("latest_switches_total"), std::string::npos);
  EXPECT_NE(text.find("latest_phase 2"), std::string::npos);
  EXPECT_EQ(module.GetStats().switches, module.switch_log().size());
  EXPECT_EQ(module.GetStats().events_logged, events.total_appended());
}

TEST(LifecycleEventsTest, KernelTierAndBatchSizeMetricsAreExported) {
  auto module_result = core::LatestModule::Create(ForcedSwitchConfig());
  ASSERT_TRUE(module_result.ok());
  core::LatestModule& module = **module_result;
  MetricsRegistry& registry = module.telemetry().registry();

  // The dispatch tier is resolved once at startup; the gauge mirrors it
  // so /statusz and postmortems show which kernel path served traffic.
  const Gauge* tier = registry.FindGauge("latest_kernel_tier");
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->value(),
            static_cast<double>(static_cast<int>(simd::ActiveTier())));

  // The batch-size histogram is registered up front (empty until a
  // batched ground-truth pass runs through the module's evaluator).
  const Histogram* sizes = registry.FindHistogram("latest_batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), 0u);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("latest_kernel_tier"), std::string::npos);
  EXPECT_NE(text.find("latest_batch_size"), std::string::npos);
}

TEST(LifecycleEventsTest, TracesAreSampledDuringTheRun) {
  auto config = ForcedSwitchConfig();
  config.telemetry.trace_sample_every = 8;
  auto module_result = core::LatestModule::Create(config);
  ASSERT_TRUE(module_result.ok());
  core::LatestModule& module = **module_result;
  util::Rng rng(3);
  const auto objects =
      testing_support::MakeClusteredObjects(4000, 9, 4000);
  for (size_t i = 0; i < objects.size(); ++i) {
    module.OnObject(objects[i]);
    if (objects[i].timestamp >= 1000 && i % 20 == 0) {
      stream::Query q = testing_support::MakeKeywordQuery(
          {static_cast<stream::KeywordId>(rng.NextBounded(50))});
      q.timestamp = objects[i].timestamp;
      module.OnQuery(q);
    }
  }
  const uint64_t queries = module.queries_answered();
  ASSERT_GT(queries, 8u);
  const TraceCollector& traces = module.telemetry().traces();
  EXPECT_EQ(traces.recorded(), (queries + 7) / 8);
  const auto snapshot = traces.Snapshot();
  ASSERT_FALSE(snapshot.empty());
  for (const QueryTrace& trace : snapshot) {
    EXPECT_EQ(trace.query_ordinal % 8, 0u);
    EXPECT_GE(trace.total_ms, 0.0);
  }
}

}  // namespace
}  // namespace latest::obs
