// Unit and property tests for src/stream: objects, queries, keyword
// dictionary, and the sliding-window machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stream/keyword_dictionary.h"
#include "stream/object.h"
#include "stream/query.h"
#include "stream/sliding_window.h"
#include "util/rng.h"

namespace latest::stream {
namespace {

// --------------------------------------------------------------------
// GeoTextObject / keywords

TEST(ObjectTest, CanonicalizeSortsAndDeduplicates) {
  std::vector<KeywordId> kws = {5, 1, 5, 3, 1};
  CanonicalizeKeywords(&kws);
  EXPECT_EQ(kws, (std::vector<KeywordId>{1, 3, 5}));
}

TEST(ObjectTest, MatchesAnyKeyword) {
  GeoTextObject obj;
  obj.keywords = {2, 5, 9};
  EXPECT_TRUE(obj.MatchesAnyKeyword({5}));
  EXPECT_TRUE(obj.MatchesAnyKeyword({1, 9}));
  EXPECT_FALSE(obj.MatchesAnyKeyword({1, 3, 4}));
  EXPECT_FALSE(obj.MatchesAnyKeyword({}));
}

TEST(ObjectTest, MatchesAnyKeywordEmptyObject) {
  GeoTextObject obj;
  EXPECT_FALSE(obj.MatchesAnyKeyword({1, 2}));
}

// --------------------------------------------------------------------
// Query

TEST(QueryTest, TypeClassification) {
  Query spatial;
  spatial.range = geo::Rect{0, 0, 1, 1};
  EXPECT_EQ(spatial.Type(), QueryType::kSpatial);

  Query keyword;
  keyword.keywords = {1};
  EXPECT_EQ(keyword.Type(), QueryType::kKeyword);

  Query hybrid;
  hybrid.range = geo::Rect{0, 0, 1, 1};
  hybrid.keywords = {1};
  EXPECT_EQ(hybrid.Type(), QueryType::kHybrid);
}

TEST(QueryTest, TypeNames) {
  EXPECT_STREQ(QueryTypeName(QueryType::kSpatial), "spatial");
  EXPECT_STREQ(QueryTypeName(QueryType::kKeyword), "keyword");
  EXPECT_STREQ(QueryTypeName(QueryType::kHybrid), "hybrid");
}

TEST(QueryTest, MatchesImplementsRcDvq) {
  GeoTextObject in_both;
  in_both.loc = {0.5, 0.5};
  in_both.keywords = {3};

  Query hybrid;
  hybrid.range = geo::Rect{0, 0, 1, 1};
  hybrid.keywords = {3, 7};
  EXPECT_TRUE(hybrid.Matches(in_both));

  GeoTextObject outside = in_both;
  outside.loc = {2, 2};
  EXPECT_FALSE(hybrid.Matches(outside));

  GeoTextObject wrong_kw = in_both;
  wrong_kw.keywords = {4};
  EXPECT_FALSE(hybrid.Matches(wrong_kw));
}

TEST(QueryTest, SpatialOnlyIgnoresKeywords) {
  Query q;
  q.range = geo::Rect{0, 0, 1, 1};
  GeoTextObject obj;
  obj.loc = {0.5, 0.5};
  obj.keywords = {};  // No keywords at all.
  EXPECT_TRUE(q.Matches(obj));
}

TEST(QueryTest, KeywordOnlyIgnoresLocation) {
  Query q;
  q.keywords = {3};
  GeoTextObject obj;
  obj.loc = {1000, 1000};
  obj.keywords = {3};
  EXPECT_TRUE(q.Matches(obj));
}

// --------------------------------------------------------------------
// KeywordDictionary

TEST(KeywordDictionaryTest, InternIsIdempotent) {
  KeywordDictionary dict;
  const KeywordId a = dict.Intern("fire");
  const KeywordId b = dict.Intern("rescue");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("fire"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(KeywordDictionaryTest, SpellingRoundTrip) {
  KeywordDictionary dict;
  const KeywordId a = dict.Intern("fire");
  EXPECT_EQ(dict.Spelling(a), "fire");
}

TEST(KeywordDictionaryTest, LookupWithoutIntern) {
  KeywordDictionary dict;
  dict.Intern("fire");
  KeywordId id;
  EXPECT_TRUE(dict.Lookup("fire", &id));
  EXPECT_FALSE(dict.Lookup("flood", &id));
  EXPECT_EQ(dict.size(), 1u);  // Lookup must not intern.
}

TEST(KeywordDictionaryTest, FrequencyTracking) {
  KeywordDictionary dict;
  const KeywordId fire = dict.Intern("fire");
  const KeywordId help = dict.Intern("help");
  dict.CountOccurrences({fire, help});
  dict.CountOccurrences({fire});
  dict.CountOccurrences({fire});
  EXPECT_EQ(dict.OccurrenceCount(fire), 3u);
  EXPECT_EQ(dict.OccurrenceCount(help), 1u);
  EXPECT_EQ(dict.total_occurrences(), 4u);
  EXPECT_DOUBLE_EQ(dict.Frequency(fire), 0.75);
}

TEST(KeywordDictionaryTest, FrequencyOfUnknownIsZero) {
  KeywordDictionary dict;
  EXPECT_DOUBLE_EQ(dict.Frequency(99), 0.0);
  EXPECT_EQ(dict.OccurrenceCount(99), 0u);
}

// --------------------------------------------------------------------
// WindowConfig / SliceClock

TEST(WindowConfigTest, Validation) {
  WindowConfig good{.window_length_ms = 1600, .num_slices = 16};
  EXPECT_TRUE(good.Validate().ok());
  EXPECT_EQ(good.SliceDuration(), 100);

  WindowConfig zero_len{.window_length_ms = 0, .num_slices = 4};
  EXPECT_FALSE(zero_len.Validate().ok());

  WindowConfig zero_slices{.window_length_ms = 100, .num_slices = 0};
  EXPECT_FALSE(zero_slices.Validate().ok());

  WindowConfig indivisible{.window_length_ms = 100, .num_slices = 3};
  EXPECT_FALSE(indivisible.Validate().ok());
}

TEST(SliceClockTest, NoRotationWithinSlice) {
  SliceClock clock(WindowConfig{.window_length_ms = 1600, .num_slices = 16});
  EXPECT_EQ(clock.Advance(0), 0u);
  EXPECT_EQ(clock.Advance(99), 0u);
  EXPECT_EQ(clock.current_slice(), 0);
}

TEST(SliceClockTest, SingleRotationOnBoundary) {
  SliceClock clock(WindowConfig{.window_length_ms = 1600, .num_slices = 16});
  EXPECT_EQ(clock.Advance(100), 1u);
  EXPECT_EQ(clock.current_slice(), 1);
}

TEST(SliceClockTest, MultipleRotationsOnJump) {
  SliceClock clock(WindowConfig{.window_length_ms = 1600, .num_slices = 16});
  EXPECT_EQ(clock.Advance(550), 5u);
  EXPECT_EQ(clock.current_slice(), 5);
  EXPECT_EQ(clock.now(), 550);
}

TEST(SliceClockTest, RotationsAccumulateAcrossCalls) {
  SliceClock clock(WindowConfig{.window_length_ms = 1000, .num_slices = 10});
  uint32_t total = 0;
  for (Timestamp t = 0; t <= 1000; t += 37) total += clock.Advance(t);
  EXPECT_EQ(total, static_cast<uint32_t>(clock.current_slice()));
}

TEST(SliceClockTest, LateTimestampClampsWithoutRotation) {
  SliceClock clock(WindowConfig{.window_length_ms = 1000, .num_slices = 10});
  EXPECT_EQ(clock.Advance(550), 5u);
  // A straggler from the past: no rotation, no rewind.
  EXPECT_EQ(clock.Advance(120), 0u);
  EXPECT_EQ(clock.now(), 550);
  EXPECT_EQ(clock.current_slice(), 5);
  // Time resumes from the clamped position, not from the straggler.
  EXPECT_EQ(clock.Advance(600), 1u);
  EXPECT_EQ(clock.now(), 600);
}

// Property: for any interleaving of in-order and late timestamps, the
// clock behaves exactly like one fed the running maximum of the stream —
// expiry only ever depends on the newest event time seen.
TEST(SliceClockTest, PropertyOutOfOrderStreamMatchesRunningMax) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    SliceClock jittered(
        WindowConfig{.window_length_ms = 1000, .num_slices = 10});
    SliceClock monotone(
        WindowConfig{.window_length_ms = 1000, .num_slices = 10});
    Timestamp t = 0;
    Timestamp running_max = 0;
    for (int i = 0; i < 500; ++i) {
      t += static_cast<Timestamp>(rng.NextBounded(40));
      // 30% of events arrive late by up to 300 ms.
      const Timestamp jitter =
          rng.NextBool(0.3) ? static_cast<Timestamp>(rng.NextBounded(300))
                            : 0;
      const Timestamp late = t > jitter ? t - jitter : 0;
      running_max = std::max(running_max, late);
      const uint32_t a = jittered.Advance(late);
      const uint32_t b = monotone.Advance(running_max);
      EXPECT_EQ(a, b) << "seed " << seed << " event " << i;
      EXPECT_EQ(jittered.now(), monotone.now());
      EXPECT_EQ(jittered.current_slice(), monotone.current_slice());
    }
  }
}

// --------------------------------------------------------------------
// SliceRing

TEST(SliceRingTest, RotateDropsOldest) {
  SliceRing<int> ring(3);
  ring.Current() = 1;
  ring.Rotate();
  ring.Current() = 2;
  ring.Rotate();
  ring.Current() = 3;
  EXPECT_EQ(ring.FromNewest(0), 3);
  EXPECT_EQ(ring.FromNewest(1), 2);
  EXPECT_EQ(ring.FromNewest(2), 1);
  ring.Rotate();  // Drops the 1.
  EXPECT_EQ(ring.FromNewest(0), 0);
  EXPECT_EQ(ring.FromNewest(1), 3);
  EXPECT_EQ(ring.FromNewest(2), 2);
}

TEST(SliceRingTest, ForEachVisitsAllSlices) {
  SliceRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    ring.Current() = i + 1;
    if (i < 3) ring.Rotate();
  }
  int sum = 0;
  ring.ForEach([&](int v) { sum += v; });
  EXPECT_EQ(sum, 10);
}

TEST(SliceRingTest, ClearValueInitializes) {
  SliceRing<int> ring(3);
  ring.Current() = 42;
  ring.Clear();
  int sum = 0;
  ring.ForEach([&](int v) { sum += v; });
  EXPECT_EQ(sum, 0);
}

// --------------------------------------------------------------------
// WindowPopulation

TEST(WindowPopulationTest, AddsAndRotates) {
  WindowPopulation pop(4);
  for (int i = 0; i < 10; ++i) pop.Add();
  EXPECT_EQ(pop.total(), 10u);
  pop.Rotate();  // Slices: [10] -> rotation drops an empty older slice.
  EXPECT_EQ(pop.total(), 10u);
}

TEST(WindowPopulationTest, ExpiresAfterFullWindow) {
  WindowPopulation pop(4);
  // One object per slice, across 4 slices.
  for (int s = 0; s < 4; ++s) {
    pop.Add();
    pop.Rotate();
  }
  // After 4 rotations the first object's slice has been dropped... the
  // window holds the most recent 4 slices (3 full + current).
  EXPECT_EQ(pop.total(), 3u);
}

TEST(WindowPopulationTest, TotalOfNewest) {
  WindowPopulation pop(4);
  pop.Add();  // Slice 0: 1 object.
  pop.Rotate();
  pop.Add();
  pop.Add();  // Slice 1: 2 objects.
  EXPECT_EQ(pop.TotalOfNewest(1), 2u);
  EXPECT_EQ(pop.TotalOfNewest(2), 3u);
  EXPECT_EQ(pop.total(), 3u);
}

TEST(WindowPopulationTest, SteadyStateIsBounded) {
  WindowPopulation pop(8);
  // 5 objects per slice for many slices: total must stabilize at 8*5.
  for (int s = 0; s < 100; ++s) {
    for (int i = 0; i < 5; ++i) pop.Add();
    pop.Rotate();
  }
  EXPECT_EQ(pop.total(), 7u * 5u);  // 7 full past slices + empty current.
}

TEST(WindowPopulationTest, ClearEmpties) {
  WindowPopulation pop(4);
  pop.Add();
  pop.Clear();
  EXPECT_EQ(pop.total(), 0u);
}

}  // namespace
}  // namespace latest::stream
