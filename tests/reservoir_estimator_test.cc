// Tests for the RSL (reservoir sampling list) and RSH (reservoir sampling
// hashmap) estimators.

#include <cmath>

#include <gtest/gtest.h>

#include "estimators/reservoir_hash_estimator.h"
#include "estimators/reservoir_list_estimator.h"
#include "tests/test_stream.h"

namespace latest::estimators {
namespace {

using testing_support::BruteForceCount;
using testing_support::FeedObjects;
using testing_support::MakeClusteredObjects;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

// --------------------------------------------------------------------
// RSL

TEST(ReservoirListTest, BelowCapacityIsExact) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 100000;  // Sample everything.
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(2000, 1);
  FeedObjects(&est, config.window, objects);

  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const uint64_t truth = BruteForceCount(objects, q, 0);
  EXPECT_NEAR(est.Estimate(q), static_cast<double>(truth), 1e-6);
}

TEST(ReservoirListTest, CapacityIsSplitAcrossSlices) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  ReservoirListEstimator est(config);
  EXPECT_EQ(est.capacity_per_slice(), 100u);
}

TEST(ReservoirListTest, SampleSizeBounded) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 500;
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 2);
  FeedObjects(&est, config.window, objects);
  EXPECT_LE(est.SampleSize(), 500u);
  EXPECT_GT(est.SampleSize(), 0u);
}

TEST(ReservoirListTest, EstimateWithinSamplingError) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 2000;
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 3);
  FeedObjects(&est, config.window, objects);

  // The dense cluster [20,40]^2 holds ~70% of objects: a high-selectivity
  // query whose estimate must land within a few sigma of truth.
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const uint64_t truth = BruteForceCount(objects, q, 0);
  const double estimate = est.Estimate(q);
  EXPECT_NEAR(estimate / truth, 1.0, 0.12);
}

TEST(ReservoirListTest, KeywordEstimateWithinSamplingError) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 2000;
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 4);
  FeedObjects(&est, config.window, objects);

  const stream::Query q = MakeKeywordQuery({0, 1, 2});  // Head keywords.
  const uint64_t truth = BruteForceCount(objects, q, 0);
  ASSERT_GT(truth, 1000u);
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.12);
}

TEST(ReservoirListTest, HybridEstimate) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 4000;
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(50000, 5);
  FeedObjects(&est, config.window, objects);

  const stream::Query q = MakeHybridQuery({20, 20, 40, 40}, {0, 1});
  const uint64_t truth = BruteForceCount(objects, q, 0);
  ASSERT_GT(truth, 500u);
  EXPECT_NEAR(est.Estimate(q) / truth, 1.0, 0.2);
}

TEST(ReservoirListTest, WindowExpiry) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 100000;
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(2000, 6, /*duration=*/2000);
  FeedObjects(&est, config.window, objects);
  // Only the last ~window worth of objects contribute.
  EXPECT_LT(est.seen_population(), 1200u);
  const stream::Timestamp slice = config.window.SliceDuration();
  const stream::Timestamp cutoff =
      (objects.back().timestamp / slice - 9) * slice;
  const stream::Query q = MakeSpatialQuery({0, 0, 100, 100});
  EXPECT_NEAR(est.Estimate(q),
              static_cast<double>(BruteForceCount(objects, q, cutoff)), 1e-6);
}

TEST(ReservoirListTest, DeterministicAcrossSeeds) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 200;
  ReservoirListEstimator a(config);
  ReservoirListEstimator b(config);
  const auto objects = MakeClusteredObjects(5000, 7);
  FeedObjects(&a, config.window, objects);
  FeedObjects(&b, config.window, objects);
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  EXPECT_DOUBLE_EQ(a.Estimate(q), b.Estimate(q));
}

TEST(ReservoirListTest, ResetWipes) {
  auto config = TestEstimatorConfig();
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 8);
  FeedObjects(&est, config.window, objects);
  est.Reset();
  EXPECT_EQ(est.SampleSize(), 0u);
  EXPECT_EQ(est.seen_population(), 0u);
}

// --------------------------------------------------------------------
// RSH

TEST(ReservoirHashTest, AgreesWithListOnFullScanQueries) {
  // With identical seeds and per-slice capacities, RSH samples the same
  // objects as RSL; keyword queries (full sample scans on both) must
  // produce identical estimates.
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  ReservoirListEstimator list(config);
  ReservoirHashEstimator hash(config);
  const auto objects = MakeClusteredObjects(20000, 9);
  FeedObjects(&list, config.window, objects);
  FeedObjects(&hash, config.window, objects);
  const stream::Query q = MakeKeywordQuery({0, 1});
  EXPECT_DOUBLE_EQ(list.Estimate(q), hash.Estimate(q));
}

TEST(ReservoirHashTest, SpatialAgreesWithListScan) {
  // The grid index is a retrieval accelerator only: spatial estimates
  // must match the flat-list scan exactly.
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  ReservoirListEstimator list(config);
  ReservoirHashEstimator hash(config);
  const auto objects = MakeClusteredObjects(20000, 10);
  FeedObjects(&list, config.window, objects);
  FeedObjects(&hash, config.window, objects);
  util::Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    const geo::Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    const stream::Query q = MakeSpatialQuery(
        geo::Rect::FromCenter(c, rng.NextDouble(1, 50), rng.NextDouble(1, 50)));
    EXPECT_NEAR(list.Estimate(q), hash.Estimate(q), 1e-9);
  }
}

TEST(ReservoirHashTest, HybridAgreesWithListScan) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  ReservoirListEstimator list(config);
  ReservoirHashEstimator hash(config);
  const auto objects = MakeClusteredObjects(20000, 12);
  FeedObjects(&list, config.window, objects);
  FeedObjects(&hash, config.window, objects);
  const stream::Query q = MakeHybridQuery({10, 10, 60, 60}, {0, 2, 4});
  EXPECT_NEAR(list.Estimate(q), hash.Estimate(q), 1e-9);
}

TEST(ReservoirHashTest, SampleSizeBounded) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 300;
  ReservoirHashEstimator est(config);
  const auto objects = MakeClusteredObjects(20000, 13);
  FeedObjects(&est, config.window, objects);
  EXPECT_LE(est.SampleSize(), 300u);
}

TEST(ReservoirHashTest, TinyRangeQueryUsesCellProbes) {
  // A range much smaller than a cell: correctness of the cell-probe path.
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 100000;  // Exact sample.
  ReservoirHashEstimator est(config);
  const auto objects = MakeClusteredObjects(5000, 14);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({25, 25, 26, 26});
  EXPECT_NEAR(est.Estimate(q),
              static_cast<double>(BruteForceCount(objects, q, 0)), 1e-6);
}

TEST(ReservoirHashTest, HugeRangeQueryUsesOccupiedCellScan) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 100000;
  ReservoirHashEstimator est(config);
  const auto objects = MakeClusteredObjects(5000, 15);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({-1000, -1000, 1000, 1000});
  EXPECT_NEAR(est.Estimate(q), static_cast<double>(est.seen_population()),
              1e-6);
}

TEST(ReservoirHashTest, ReplacementKeepsMapConsistent) {
  // Small capacity + many inserts exercises the swap-remove path heavily;
  // estimates must remain finite and bounded by the population.
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 50;
  ReservoirHashEstimator est(config);
  const auto objects = MakeClusteredObjects(30000, 16);
  FeedObjects(&est, config.window, objects);
  const double estimate = est.Estimate(MakeSpatialQuery({0, 0, 100, 100}));
  EXPECT_GE(estimate, 0.0);
  EXPECT_NEAR(estimate, static_cast<double>(est.seen_population()), 1e-6);
}

TEST(ReservoirHashTest, ResetWipes) {
  auto config = TestEstimatorConfig();
  ReservoirHashEstimator est(config);
  const auto objects = MakeClusteredObjects(1000, 17);
  FeedObjects(&est, config.window, objects);
  est.Reset();
  EXPECT_EQ(est.SampleSize(), 0u);
  EXPECT_DOUBLE_EQ(est.Estimate(MakeSpatialQuery({0, 0, 100, 100})), 0.0);
}

TEST(ReservoirHashTest, MemoryIncludesIndexOverhead) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = 1000;
  ReservoirListEstimator list(config);
  ReservoirHashEstimator hash(config);
  const auto objects = MakeClusteredObjects(20000, 18);
  FeedObjects(&list, config.window, objects);
  FeedObjects(&hash, config.window, objects);
  EXPECT_GT(hash.MemoryBytes(), list.MemoryBytes());
}

// Property sweep: estimates stay within statistical bands across
// capacities.
class ReservoirCapacityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReservoirCapacityTest, DenseQueryRelativeError) {
  auto config = TestEstimatorConfig();
  config.reservoir_capacity = GetParam();
  ReservoirListEstimator est(config);
  const auto objects = MakeClusteredObjects(40000, 19);
  FeedObjects(&est, config.window, objects);
  const stream::Query q = MakeSpatialQuery({20, 20, 40, 40});
  const uint64_t truth = BruteForceCount(objects, q, 0);
  const double selectivity =
      static_cast<double>(truth) / static_cast<double>(objects.size());
  // Binomial standard error on the matching fraction, scaled up.
  const double sigma =
      std::sqrt(selectivity * (1 - selectivity) *
                static_cast<double>(GetParam())) /
      GetParam() * objects.size();
  EXPECT_NEAR(est.Estimate(q), static_cast<double>(truth), 6.0 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ReservoirCapacityTest,
                         ::testing::Values(200u, 500u, 1000u, 4000u, 16000u));

}  // namespace
}  // namespace latest::estimators
