// Shared test helper: a tiny blocking HTTP client for exercising the
// embedded introspection server over loopback. Sends one request, reads
// until the server closes the connection (the server always answers with
// `Connection: close`), and splits the status line / headers / body.

#ifndef LATEST_TESTS_TEST_HTTP_CLIENT_H_
#define LATEST_TESTS_TEST_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace latest::testing_support {

struct HttpGetResult {
  int status = 0;        // 0 when the request failed at the socket level.
  std::string headers;   // Status line + headers, verbatim.
  std::string body;
};

/// Sends `raw_request` verbatim to 127.0.0.1:`port` and reads the full
/// response. Use for malformed-request tests; HttpGet below builds a
/// well-formed GET.
inline HttpGetResult HttpRequestRaw(uint16_t port,
                                    const std::string& raw_request) {
  HttpGetResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  struct timeval timeout;
  timeout.tv_sec = 5;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n = ::send(fd, raw_request.data() + sent,
                             raw_request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  result.headers = response.substr(0, header_end);
  result.body = response.substr(header_end + 4);
  // "HTTP/1.1 200 OK" -> 200.
  if (result.headers.size() > 9) {
    result.status = std::atoi(result.headers.c_str() + 9);
  }
  return result;
}

inline HttpGetResult HttpGet(uint16_t port, const std::string& path,
                             const std::string& method = "GET") {
  return HttpRequestRaw(port, method + " " + path +
                                  " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                  "Connection: close\r\n\r\n");
}

}  // namespace latest::testing_support

#endif  // LATEST_TESTS_TEST_HTTP_CLIENT_H_
