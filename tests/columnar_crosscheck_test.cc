// Cross-check of the columnar exact-evaluation path (acceptance gate of
// the window-store refactor): over a full windowed lifecycle — appends,
// slice-rotation-driven eviction, and a mixed query stream — the
// ExactEvaluator's counts must be bit-identical (a) to a copy-based
// reference evaluator replicating the pre-columnar semantics, and (b)
// across every thread count (serial, 1, 4, 8 worker threads).

#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "exact/exact_evaluator.h"
#include "stream/sliding_window.h"
#include "tests/test_stream.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace latest::exact {
namespace {

using testing_support::kTestBounds;

constexpr stream::WindowConfig kWindow{1000, 10};

/// Copy-based reference: whole objects in arrival order, linear scans.
/// This replicates the semantics of the pre-columnar deque-based path —
/// eviction strictly below the cutoff, one count per matching object.
class ReferenceEvaluator {
 public:
  void Insert(const stream::GeoTextObject& obj) { objects_.push_back(obj); }

  void EvictExpired(stream::Timestamp now) {
    const stream::Timestamp cutoff = now - kWindow.window_length_ms;
    while (!objects_.empty() && objects_.front().timestamp < cutoff) {
      objects_.pop_front();
    }
  }

  uint64_t TrueSelectivity(const stream::Query& q) const {
    const stream::Timestamp cutoff = q.timestamp - kWindow.window_length_ms;
    uint64_t count = 0;
    for (const auto& obj : objects_) {
      if (obj.timestamp >= cutoff && q.Matches(obj)) ++count;
    }
    return count;
  }

 private:
  std::deque<stream::GeoTextObject> objects_;
};

stream::Query NextQuery(util::Rng* rng) {
  const double u = rng->NextDouble();
  const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
  const geo::Rect r = geo::Rect::FromCenter(c, rng->NextDouble(5, 60),
                                            rng->NextDouble(5, 60));
  if (u < 0.35) return testing_support::MakeSpatialQuery(r);
  std::vector<stream::KeywordId> kws{
      static_cast<stream::KeywordId>(rng->NextBounded(50))};
  if (u < 0.55) {
    kws.push_back(static_cast<stream::KeywordId>(rng->NextBounded(50)));
  }
  if (u < 0.70) return testing_support::MakeKeywordQuery(std::move(kws));
  return testing_support::MakeHybridQuery(r, std::move(kws));
}

/// Runs the full lifecycle at `num_threads`, returning every exact count.
std::vector<uint64_t> RunColumnarLifecycle(uint32_t num_threads) {
  util::ThreadPool pool(num_threads);
  ExactEvaluator evaluator(kTestBounds, kWindow.window_length_ms);
  if (num_threads > 0) evaluator.set_thread_pool(&pool);

  const auto objects = testing_support::MakeClusteredObjects(
      8000, /*seed=*/13, /*duration=*/4000);
  stream::SliceClock clock(kWindow);
  util::Rng query_rng(99);
  std::vector<uint64_t> actuals;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (clock.Advance(objects[i].timestamp) > 0) {
      evaluator.EvictExpired(clock.now());
    }
    evaluator.Insert(objects[i]);
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = NextQuery(&query_rng);
    q.timestamp = objects[i].timestamp;
    actuals.push_back(evaluator.TrueSelectivity(q));
  }
  return actuals;
}

/// The same lifecycle against the copy-based reference.
std::vector<uint64_t> RunReferenceLifecycle() {
  ReferenceEvaluator evaluator;
  const auto objects = testing_support::MakeClusteredObjects(
      8000, /*seed=*/13, /*duration=*/4000);
  stream::SliceClock clock(kWindow);
  util::Rng query_rng(99);
  std::vector<uint64_t> actuals;
  for (size_t i = 0; i < objects.size(); ++i) {
    if (clock.Advance(objects[i].timestamp) > 0) {
      evaluator.EvictExpired(clock.now());
    }
    evaluator.Insert(objects[i]);
    if (objects[i].timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = NextQuery(&query_rng);
    q.timestamp = objects[i].timestamp;
    actuals.push_back(evaluator.TrueSelectivity(q));
  }
  return actuals;
}

TEST(ColumnarCrosscheckTest, MatchesCopyBasedReferenceSerially) {
  const std::vector<uint64_t> reference = RunReferenceLifecycle();
  ASSERT_GT(reference.size(), 500u);
  EXPECT_EQ(RunColumnarLifecycle(0), reference);
}

TEST(ColumnarCrosscheckTest, BitIdenticalAcrossThreadCounts) {
  const std::vector<uint64_t> serial = RunColumnarLifecycle(0);
  ASSERT_GT(serial.size(), 500u);
  EXPECT_EQ(RunColumnarLifecycle(1), serial);
  EXPECT_EQ(RunColumnarLifecycle(4), serial);
  EXPECT_EQ(RunColumnarLifecycle(8), serial);
}

}  // namespace
}  // namespace latest::exact
