// Adversarial scenario suite: every catalog scenario must replay
// deterministically, pass its acceptance gate, and — for the drift
// scenarios — be detected within its pinned delay bound and recover
// within its pinned slice bound. The deterministic-replay regression
// pins the bit-identical contract: same scenario + seed produces the
// same SaveDeterministicState digest and the same accuracy-derived
// counters at 0 and at 4 estimation threads.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/scenario.h"
#include "workload/scenario_runner.h"

namespace latest::workload {
namespace {

ScenarioCatalogEntry Catalog(const std::string& name) {
  auto entry = MakeScenario(name);
  EXPECT_TRUE(entry.ok()) << entry.status().ToString();
  return *entry;
}

ScenarioOutcome Replay(const ScenarioCatalogEntry& entry, uint32_t threads = 0) {
  ScenarioRunOptions options;
  options.threads = threads;
  auto outcome = RunScenario(entry, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return *outcome;
}

// ---------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------

TEST(ScenarioCatalogTest, HasAtLeastSixNamedScenarios) {
  const std::vector<std::string> names = ScenarioNames();
  EXPECT_GE(names.size(), 6u);
  for (const std::string& name : names) {
    const auto entry = MakeScenario(name);
    ASSERT_TRUE(entry.ok()) << name << ": " << entry.status().ToString();
    EXPECT_EQ(entry->spec.name, name);
    EXPECT_FALSE(entry->spec.description.empty()) << name;
    EXPECT_TRUE(entry->spec.Validate().ok()) << name;
  }
}

TEST(ScenarioCatalogTest, UnknownNameFails) {
  const auto entry = MakeScenario("no_such_scenario");
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ScenarioCatalogTest, InjectionMetadataMatchesMutations) {
  // flip = abrupt spatial + vocab at mid-stream (the --flip-workload-at
  // alias shape).
  const ScenarioCatalogEntry flip = Catalog("flip");
  const std::vector<DriftInjection> flip_injections =
      InjectionsOf(flip.spec);
  ASSERT_EQ(flip_injections.size(), 2u);
  for (const DriftInjection& injection : flip_injections) {
    EXPECT_EQ(injection.begin_fraction, 0.5);
    EXPECT_EQ(injection.end_fraction, 0.5);
    EXPECT_EQ(injection.onset_ms, flip.spec.duration_ms / 2);
    EXPECT_EQ(injection.onset_object, flip.spec.objects / 2);
  }
  EXPECT_EQ(flip_injections[0].kind, "spatial");
  EXPECT_EQ(flip_injections[1].kind, "vocab");

  EXPECT_TRUE(InjectionsOf(Catalog("baseline").spec).empty());
  EXPECT_TRUE(InjectionsOf(Catalog("diurnal").spec).empty());
  EXPECT_TRUE(InjectionsOf(Catalog("burst").spec).empty());

  const std::vector<DriftInjection> crowd =
      InjectionsOf(Catalog("flash_crowd").spec);
  ASSERT_EQ(crowd.size(), 1u);
  EXPECT_EQ(crowd[0].kind, "spatial");

  const std::vector<DriftInjection> churn =
      InjectionsOf(Catalog("vocab_churn").spec);
  ASSERT_EQ(churn.size(), 1u);
  EXPECT_EQ(churn[0].kind, "vocab");
  EXPECT_LT(churn[0].onset_ms, churn[0].settled_ms) << "churn is gradual";

  const std::vector<DriftInjection> mix =
      InjectionsOf(Catalog("query_flip").spec);
  ASSERT_EQ(mix.size(), 1u);
  EXPECT_EQ(mix[0].kind, "query_mix");
}

// ---------------------------------------------------------------------
// Stream generation
// ---------------------------------------------------------------------

TEST(ScenarioStreamTest, TimestampsAreMonotoneAndBounded) {
  for (const std::string& name : ScenarioNames()) {
    const ScenarioCatalogEntry entry = Catalog(name);
    ScenarioStream stream(entry.spec);
    int64_t last_ts = 0;
    uint64_t objects = 0;
    uint64_t queries = 0;
    while (stream.HasNext()) {
      const ScenarioEvent event = stream.Next();
      const int64_t ts =
          event.is_query ? event.query.timestamp : event.object.timestamp;
      EXPECT_GE(ts, last_ts) << name << ": time ran backwards";
      EXPECT_GE(ts, 0) << name;
      EXPECT_LT(ts, entry.spec.duration_ms) << name;
      last_ts = ts;
      if (event.is_query) {
        ++queries;
        EXPECT_GE(ts, entry.spec.query_warmup_ms)
            << name << ": query before warm-up";
        EXPECT_TRUE(event.query.HasRange() || event.query.HasKeywords())
            << name;
      } else {
        ++objects;
        EXPECT_TRUE(entry.spec.bounds.Contains(event.object.loc)) << name;
        EXPECT_FALSE(event.object.keywords.empty()) << name;
      }
    }
    EXPECT_EQ(objects, entry.spec.objects) << name;
    EXPECT_GT(queries, 0u) << name;
    EXPECT_EQ(objects, stream.objects_produced()) << name;
    EXPECT_EQ(queries, stream.queries_produced()) << name;
  }
}

TEST(ScenarioStreamTest, EqualSpecsProduceEqualStreams) {
  const ScenarioCatalogEntry entry = Catalog("flip");
  ScenarioStream a(entry.spec);
  ScenarioStream b(entry.spec);
  while (a.HasNext()) {
    ASSERT_TRUE(b.HasNext());
    const ScenarioEvent ea = a.Next();
    const ScenarioEvent eb = b.Next();
    ASSERT_EQ(ea.is_query, eb.is_query);
    if (ea.is_query) {
      EXPECT_EQ(ea.query.timestamp, eb.query.timestamp);
      EXPECT_EQ(ea.query.keywords, eb.query.keywords);
      EXPECT_EQ(ea.query.HasRange(), eb.query.HasRange());
    } else {
      EXPECT_EQ(ea.object.loc.x, eb.object.loc.x);
      EXPECT_EQ(ea.object.keywords, eb.object.keywords);
      EXPECT_EQ(ea.object.timestamp, eb.object.timestamp);
    }
  }
  EXPECT_FALSE(b.HasNext());
}

TEST(ScenarioStreamTest, VocabChurnMigratesKeywordBand) {
  const ScenarioCatalogEntry entry = Catalog("vocab_churn");
  const ScenarioSpec& spec = entry.spec;
  ScenarioStream stream(spec);
  uint64_t index = 0;
  uint64_t old_band_before = 0, new_band_before = 0;
  uint64_t old_band_after = 0, new_band_after = 0;
  while (stream.HasNext()) {
    const ScenarioEvent event = stream.Next();
    if (event.is_query) continue;
    const double f = static_cast<double>(index++) /
                     static_cast<double>(spec.objects);
    for (const stream::KeywordId kw : event.object.keywords) {
      const bool new_band = kw >= spec.vocab_base_after;
      if (f < spec.vocab_shift_begin) {
        new_band ? ++new_band_before : ++old_band_before;
      } else if (f >= spec.vocab_shift_end) {
        new_band ? ++new_band_after : ++old_band_after;
      }
    }
  }
  // Strictly disjoint bands outside the churn window: new terms only
  // inject inside the ramp, old terms fully decay by its end.
  EXPECT_GT(old_band_before, 0u);
  EXPECT_EQ(new_band_before, 0u);
  EXPECT_GT(new_band_after, 0u);
  EXPECT_EQ(old_band_after, 0u);
}

TEST(ScenarioStreamTest, FlashCrowdMovesTheHotspot) {
  const ScenarioCatalogEntry entry = Catalog("flash_crowd");
  const ScenarioSpec& spec = entry.spec;
  ScenarioStream stream(spec);
  uint64_t index = 0;
  uint64_t in_home_before = 0, in_away_before = 0, n_before = 0;
  uint64_t in_home_after = 0, in_away_after = 0, n_after = 0;
  while (stream.HasNext()) {
    const ScenarioEvent event = stream.Next();
    if (event.is_query) continue;
    const double f = static_cast<double>(index++) /
                     static_cast<double>(spec.objects);
    const bool home = spec.cluster_before.Contains(event.object.loc);
    const bool away = spec.cluster_after.Contains(event.object.loc);
    if (f < spec.spatial_shift_begin) {
      ++n_before;
      if (home) ++in_home_before;
      if (away) ++in_away_before;
    } else {
      ++n_after;
      if (home) ++in_home_after;
      if (away) ++in_away_after;
    }
  }
  // ~70% cluster fraction plus background leakage (the away corner is
  // 4% of the bounds, so background contributes a few percent).
  EXPECT_GT(static_cast<double>(in_home_before) / n_before, 0.6);
  EXPECT_LT(static_cast<double>(in_away_before) / n_before, 0.1);
  EXPECT_GT(static_cast<double>(in_away_after) / n_after, 0.6);
  EXPECT_LT(static_cast<double>(in_home_after) / n_after, 0.1);
}

TEST(ScenarioStreamTest, BurstCompressesIngestButPacesQueries) {
  const ScenarioCatalogEntry entry = Catalog("burst");
  const ScenarioSpec& spec = entry.spec;
  ASSERT_GT(spec.query_pace_ms, 0);
  ScenarioStream stream(spec);
  // Count objects per fixed event-time span: one inside the burst
  // window, one well before it. The burst compresses its stretch of the
  // stream into 1/factor of its event time, so the in-burst span must
  // see several times the base density. The burst's event-time position
  // comes from the warp itself (the compression shifts it off the naive
  // fraction-of-duration location).
  const uint64_t burst_mid_object = static_cast<uint64_t>(
      static_cast<double>(spec.objects) *
      (spec.burst_begin + spec.burst_length / 2));
  const int64_t burst_center = stream.TimestampOfObject(burst_mid_object);
  const int64_t span = 100;
  uint64_t objects_in_burst = 0, objects_early = 0;
  std::vector<int64_t> query_ts;
  while (stream.HasNext()) {
    const ScenarioEvent event = stream.Next();
    if (event.is_query) {
      query_ts.push_back(event.query.timestamp);
      continue;
    }
    const int64_t ts = event.object.timestamp;
    if (ts >= burst_center - span && ts < burst_center + span) {
      ++objects_in_burst;
    }
    if (ts >= 1500 && ts < 1500 + 2 * span) ++objects_early;
  }
  EXPECT_GT(objects_in_burst, 4 * objects_early);
  // Queries stay paced in event time: one per pace interval, so the
  // count tracks (duration - warmup) / pace instead of spiking with
  // the object rate.
  const double expected = static_cast<double>(spec.duration_ms -
                                              spec.query_warmup_ms) /
                          static_cast<double>(spec.query_pace_ms);
  EXPECT_NEAR(static_cast<double>(query_ts.size()), expected,
              0.1 * expected);
}

TEST(ScenarioStreamTest, DiurnalWarpIsExactAtStreamEnd) {
  const ScenarioCatalogEntry entry = Catalog("diurnal");
  ScenarioStream stream(entry.spec);
  // t(1) = 1 at integer period counts: the warped stream still spans
  // the full duration.
  EXPECT_EQ(stream.TimestampOfObject(entry.spec.objects),
            entry.spec.duration_ms);
  EXPECT_EQ(stream.TimestampOfObject(0), 0);
}

// ---------------------------------------------------------------------
// Acceptance gates: every catalog scenario passes its own gate
// ---------------------------------------------------------------------

class ScenarioGateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioGateTest, PassesItsAcceptanceGate) {
  const ScenarioCatalogEntry entry = Catalog(GetParam());
  const ScenarioOutcome outcome = Replay(entry);
  for (const std::string& failure : outcome.gate_failures) {
    ADD_FAILURE() << GetParam() << ": " << failure;
  }
  EXPECT_TRUE(outcome.gates_passed);
  EXPECT_EQ(outcome.objects, entry.spec.objects);
  EXPECT_GT(outcome.incremental_queries, 0u);
  EXPECT_GT(outcome.mean_accuracy, 0.0);
  EXPECT_FALSE(outcome.accuracy_trajectory.empty());
}

INSTANTIATE_TEST_SUITE_P(Catalog, ScenarioGateTest,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Drift scenarios: recovery-within-bound and detection-within-bound
// ---------------------------------------------------------------------

class DriftScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DriftScenarioTest, DetectsAndRecoversWithinBounds) {
  const ScenarioCatalogEntry entry = Catalog(GetParam());
  ASSERT_TRUE(entry.gate.expects_detection);
  ASSERT_GE(entry.gate.max_recover_slices, 0);
  const ScenarioOutcome outcome = Replay(entry);
  ASSERT_FALSE(outcome.injections.empty());
  for (const InjectionOutcome& verdict : outcome.injections) {
    if (verdict.injection.kind != "query_mix") {
      EXPECT_TRUE(verdict.detected)
          << GetParam() << ": " << verdict.injection.kind
          << " injection was never detected";
      EXPECT_LE(verdict.detection_delay_queries,
                entry.gate.max_detection_delay_queries)
          << GetParam() << ": " << verdict.injection.kind;
    }
    EXPECT_TRUE(verdict.recovered)
        << GetParam() << ": accuracy never returned to tau";
    EXPECT_LE(verdict.recover_slices, entry.gate.max_recover_slices)
        << GetParam() << ": " << verdict.injection.kind;
  }
  EXPECT_GT(outcome.drift_detections, 0u);
}

INSTANTIATE_TEST_SUITE_P(Drift, DriftScenarioTest,
                         ::testing::Values("flip", "flash_crowd",
                                           "centroid_drift", "vocab_churn"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// DeepSampling-style prediction validation
// ---------------------------------------------------------------------

TEST(ScenarioRunnerTest, DeepSamplingScoresPredictions) {
  const ScenarioOutcome outcome = Replay(Catalog("deep_sampling"));
  EXPECT_GT(outcome.prediction_samples, 1000u);
  EXPECT_GT(outcome.accuracy_prediction_mae, 0.0);
  EXPECT_LE(outcome.accuracy_prediction_mae,
            outcome.gate.max_accuracy_prediction_mae);
  // Latency predictions are scored too (informational: wall clock is
  // not deterministic, so no bound is pinned).
  EXPECT_GE(outcome.latency_prediction_mae_ms, 0.0);
}

TEST(ScenarioRunnerTest, ResultJsonCarriesGateVerdict) {
  const ScenarioOutcome outcome = Replay(Catalog("flip"));
  const std::string json = ToResultJson(outcome);
  EXPECT_NE(json.find("\"experiment\":\"scenario_replay\""),
            std::string::npos);
  EXPECT_NE(json.find("\"point\":\"flip\""), std::string::npos);
  EXPECT_NE(json.find("\"tau_hit_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"detection_delay_queries_max\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"recover_slices_max\":"), std::string::npos);
  EXPECT_NE(json.find("\"cumulative_regret\":"), std::string::npos);
  EXPECT_NE(json.find("\"accuracy_trajectory\":["), std::string::npos);
  EXPECT_NE(json.find("\"gates_passed\":1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Deterministic replay: same scenario + seed -> bit-identical digest
// and identical accuracy-derived counters, at 0 and at 4 threads
// ---------------------------------------------------------------------

TEST(ScenarioReplayRegressionTest, BitIdenticalAcrossRunsAndThreadCounts) {
  const ScenarioCatalogEntry entry = Catalog("flip");
  const ScenarioOutcome first = Replay(entry, /*threads=*/0);
  const ScenarioOutcome again = Replay(entry, /*threads=*/0);
  const ScenarioOutcome pooled = Replay(entry, /*threads=*/4);
  const ScenarioOutcome pooled_again = Replay(entry, /*threads=*/4);

  for (const ScenarioOutcome* other : {&again, &pooled, &pooled_again}) {
    // The deterministic lifecycle digest is the strongest check: every
    // non-wall-clock bit of module state must match.
    EXPECT_EQ(first.state_crc, other->state_crc);
    // Accuracy-derived counters are exactly reproducible; latency
    // fields (e.g. latency_prediction_mae_ms) are deliberately not
    // compared.
    EXPECT_EQ(first.queries, other->queries);
    EXPECT_EQ(first.incremental_queries, other->incremental_queries);
    EXPECT_EQ(first.switches, other->switches);
    EXPECT_EQ(first.drift_detections, other->drift_detections);
    EXPECT_EQ(first.audit_entries, other->audit_entries);
    EXPECT_EQ(first.mean_accuracy, other->mean_accuracy);
    EXPECT_EQ(first.tau_hit_rate, other->tau_hit_rate);
    EXPECT_EQ(first.cumulative_regret, other->cumulative_regret);
    EXPECT_EQ(first.accuracy_trajectory, other->accuracy_trajectory);
    ASSERT_EQ(first.injections.size(), other->injections.size());
    for (size_t i = 0; i < first.injections.size(); ++i) {
      EXPECT_EQ(first.injections[i].detected, other->injections[i].detected);
      EXPECT_EQ(first.injections[i].detection_delay_queries,
                other->injections[i].detection_delay_queries);
      EXPECT_EQ(first.injections[i].recover_slices,
                other->injections[i].recover_slices);
    }
  }
  // Different seeds must actually change the stream (guards against a
  // seed that is silently ignored).
  auto reseeded = MakeScenario("flip", entry.spec.objects,
                               entry.spec.duration_ms, /*seed=*/77);
  ASSERT_TRUE(reseeded.ok());
  const ScenarioOutcome different = Replay(*reseeded);
  EXPECT_NE(first.state_crc, different.state_crc);
}

}  // namespace
}  // namespace latest::workload
