#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace latest::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasksToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroIndicesIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.Submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Indices 3 and 7 throw distinct types; the lowest index must win
  // regardless of which worker finishes first.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      pool.ParallelFor(16, [](size_t i) {
        if (i == 3) throw std::invalid_argument("three");
        if (i == 7) throw std::out_of_range("seven");
      });
      FAIL() << "ParallelFor must rethrow";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "three");
    } catch (...) {
      FAIL() << "wrong exception surfaced (scheduling-dependent rethrow)";
    }
  }
}

TEST(ThreadPoolTest, AllIndicesRunEvenWhenOneThrows) {
  ThreadPool pool(4);
  constexpr size_t kN = 32;
  std::vector<std::atomic<int>> visits(kN);
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&](size_t i) {
                                  visits[i].fetch_add(
                                      1, std::memory_order_relaxed);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    // One worker plus a slow head-of-line task forces the remaining
    // tasks to still be queued when the destructor runs.
    ThreadPool pool(1);
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineOnCallerThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const std::thread::id caller = std::this_thread::get_id();

  std::thread::id submit_thread;
  auto future = pool.Submit([&] { submit_thread = std::this_thread::get_id(); });
  // Inline mode completes before Submit returns.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(submit_thread, caller);

  std::vector<std::thread::id> for_threads(5);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) {
    for_threads[i] = std::this_thread::get_id();
    order.push_back(i);
  });
  for (const auto& id : for_threads) EXPECT_EQ(id, caller);
  // Inline mode preserves plain-loop visitation order.
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, ObserverSeesEveryTask) {
  struct CountingObserver : ThreadPool::Observer {
    std::atomic<int> queued{0};
    std::atomic<int> done{0};
    void OnTaskQueued(size_t) override {
      queued.fetch_add(1, std::memory_order_relaxed);
    }
    void OnTaskDone(double latency_ms, size_t) override {
      EXPECT_GE(latency_ms, 0.0);
      done.fetch_add(1, std::memory_order_relaxed);
    }
  };
  CountingObserver observer;
  {
    ThreadPool pool(2);
    pool.SetObserver(&observer);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 10; ++i) futures.push_back(pool.Submit([] {}));
    for (auto& f : futures) f.get();
    pool.ParallelFor(6, [](size_t) {});
  }
  // Submit notifies per task, ParallelFor once per batch.
  EXPECT_EQ(observer.queued.load(), 11);
  // Every task (10 submits + 6 parallel indices) reports completion.
  EXPECT_EQ(observer.done.load(), 16);
}

}  // namespace
}  // namespace latest::util
