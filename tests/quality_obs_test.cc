// Estimation-quality observability: per-estimator error accounting,
// the switch-decision audit trail with post-hoc counterfactuals, the
// flight recorder's self-describing postmortem bundles, the /statusz
// severity filter and /switchz page — and the acceptance scenario from
// the issue: an injected mid-stream workload flip must produce
// kDriftDetected events, an audited switch explaining the decision, and
// a bundle that parses back.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "obs/audit_trail.h"
#include "obs/error_accounting.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/statusz.h"
#include "persist/file_io.h"
#include "stream/object.h"
#include "stream/query.h"
#include "tests/test_http_client.h"
#include "tests/test_stream.h"
#include "util/json.h"
#include "util/rng.h"

namespace latest {
namespace {

using obs::ErrorAccountant;
using obs::EstimatorErrorStats;
using obs::FlightRecorder;
using obs::SwitchAuditEntry;
using obs::SwitchAuditTrail;
using estimators::EstimatorKind;

// ---------------------------------------------------------------------
// ErrorAccountant
// ---------------------------------------------------------------------

TEST(ErrorAccountantTest, PerfectEstimatesAreCleanSeries) {
  ErrorAccountant accountant(/*tau=*/0.62);
  for (int i = 0; i < 50; ++i) {
    accountant.Record(EstimatorKind::kRsl, 100.0, 100.0);
  }
  const EstimatorErrorStats stats = accountant.Stats(EstimatorKind::kRsl);
  EXPECT_EQ(stats.samples, 50u);
  EXPECT_DOUBLE_EQ(stats.ewma_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.ewma_accuracy, 1.0);
  EXPECT_EQ(stats.tau_violations, 0u);
  EXPECT_DOUBLE_EQ(stats.qerror_p50, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_qerror, 1.0);
}

TEST(ErrorAccountantTest, ViolationsAndQErrorAccumulate) {
  ErrorAccountant accountant(/*tau=*/0.62);
  // accuracy = 1 - 50/100 = 0.5 < tau: every sample violates.
  for (int i = 0; i < 10; ++i) {
    accountant.Record(EstimatorKind::kAasp, 50.0, 100.0);
  }
  const EstimatorErrorStats stats = accountant.Stats(EstimatorKind::kAasp);
  EXPECT_EQ(stats.samples, 10u);
  EXPECT_EQ(stats.tau_violations, 10u);
  EXPECT_DOUBLE_EQ(stats.tau_violation_rate, 1.0);
  EXPECT_NEAR(stats.ewma_relative_error, 0.5, 1e-9);
  EXPECT_GE(stats.qerror_p50, 2.0);  // q-error of 50 vs 100 is 2.
  EXPECT_DOUBLE_EQ(stats.max_qerror, 2.0);

  // Only measured kinds appear in AllStats.
  const std::vector<EstimatorErrorStats> all = accountant.AllStats();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].kind, EstimatorKind::kAasp);
}

TEST(ErrorAccountantTest, MetricsMirrorTheSeries) {
  obs::MetricsRegistry registry;
  ErrorAccountant accountant(/*tau=*/0.62);
  accountant.AttachMetrics(&registry);
  accountant.Record(EstimatorKind::kRsh, 80.0, 100.0);
  accountant.Record(EstimatorKind::kRsh, 90.0, 100.0);

  const obs::Counter* samples = registry.FindCounter(
      "latest_estimator_error_samples_total", {{"estimator", "RSH"}});
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value(), 2u);
  const obs::Gauge* ewma = registry.FindGauge(
      "latest_estimator_error_ewma_relative", {{"estimator", "RSH"}});
  ASSERT_NE(ewma, nullptr);
  EXPECT_GT(ewma->value(), 0.0);
  const obs::Histogram* qerror = registry.FindHistogram(
      "latest_estimator_error_qerror", {{"estimator", "RSH"}});
  ASSERT_NE(qerror, nullptr);
  EXPECT_EQ(qerror->count(), 2u);
}

TEST(ErrorAccountantTest, StaticHelpers) {
  EXPECT_DOUBLE_EQ(ErrorAccountant::RelativeError(150.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(ErrorAccountant::RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ErrorAccountant::QError(200.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(ErrorAccountant::QError(50.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(ErrorAccountant::QError(0.0, 0.0), 1.0);
}

// ---------------------------------------------------------------------
// SwitchAuditTrail
// ---------------------------------------------------------------------

SwitchAuditEntry MakeEntry(int32_t from, int32_t chosen) {
  SwitchAuditEntry entry;
  entry.timestamp = 1000;
  entry.query_count = 42;
  entry.trigger = "tree_infer";
  entry.features = {1.0, 0.5};
  entry.from_estimator = from;
  entry.chosen_estimator = chosen;
  entry.recommended_estimator = chosen;
  entry.monitor_accuracy = 0.5;
  return entry;
}

TEST(SwitchAuditTrailTest, ResolvesCounterfactualAndRegret) {
  SwitchAuditTrail trail(/*capacity=*/8, /*resolution_window=*/4);
  const uint64_t id = trail.Record(MakeEntry(/*from=*/0, /*chosen=*/1),
                                   /*num_kinds=*/3);
  EXPECT_EQ(id, 1u);

  // Four post-decision queries: the chosen kind (1) averages 0.6, kind 2
  // averages 0.9 — the counterfactual best, with regret 0.3.
  for (int i = 0; i < 4; ++i) {
    trail.ResolveQuery({{1, 0.6}, {2, 0.9}});
  }
  const std::vector<SwitchAuditEntry> entries = trail.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const SwitchAuditEntry& resolved = entries[0];
  ASSERT_TRUE(resolved.resolved);
  EXPECT_EQ(resolved.resolution_samples, 4u);
  EXPECT_EQ(resolved.counterfactual_best, 2);
  EXPECT_NEAR(resolved.regret, 0.3, 1e-9);
  EXPECT_NEAR(resolved.posthoc_accuracy[1], 0.6, 1e-9);
  EXPECT_NEAR(resolved.posthoc_accuracy[2], 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(resolved.posthoc_accuracy[0], -1.0);  // Unmeasured.

  const SwitchAuditTrail::Summary summary = trail.GetSummary();
  EXPECT_EQ(summary.total_recorded, 1u);
  EXPECT_EQ(summary.total_resolved, 1u);
  EXPECT_EQ(summary.optimal_choices, 0u);
  EXPECT_NEAR(summary.cumulative_regret, 0.3, 1e-9);
}

TEST(SwitchAuditTrailTest, OptimalChoiceHasZeroRegret) {
  SwitchAuditTrail trail(/*capacity=*/8, /*resolution_window=*/2);
  trail.Record(MakeEntry(0, 2), /*num_kinds=*/3);
  trail.ResolveQuery({{1, 0.4}, {2, 0.8}});
  trail.ResolveQuery({{1, 0.5}, {2, 0.9}});
  const std::vector<SwitchAuditEntry> entries = trail.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].resolved);
  EXPECT_EQ(entries[0].counterfactual_best, 2);
  EXPECT_DOUBLE_EQ(entries[0].regret, 0.0);
  EXPECT_EQ(trail.GetSummary().optimal_choices, 1u);
}

TEST(SwitchAuditTrailTest, RingEvictsOldestButSummaryIsLifetime) {
  SwitchAuditTrail trail(/*capacity=*/2, /*resolution_window=*/1);
  for (int i = 0; i < 5; ++i) {
    trail.Record(MakeEntry(0, 1), /*num_kinds=*/2);
    trail.ResolveQuery({{1, 0.5}});
  }
  const std::vector<SwitchAuditEntry> entries = trail.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 4u);  // Oldest retained.
  EXPECT_EQ(entries[1].id, 5u);
  EXPECT_EQ(trail.GetSummary().total_recorded, 5u);
  EXPECT_EQ(trail.GetSummary().total_resolved, 5u);
}

TEST(SwitchAuditTrailTest, UnmeasuredChosenKindCountsNoRegret) {
  SwitchAuditTrail trail(/*capacity=*/4, /*resolution_window=*/1);
  trail.Record(MakeEntry(0, 1), /*num_kinds=*/3);
  // Only kind 2 was measured after the switch; without the chosen kind's
  // own accuracy the counterfactual is named but regret stays 0 (there
  // is nothing sound to subtract).
  trail.ResolveQuery({{2, 0.9}});
  const std::vector<SwitchAuditEntry> entries = trail.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].resolved);
  EXPECT_EQ(entries[0].counterfactual_best, 2);
  EXPECT_DOUBLE_EQ(entries[0].regret, 0.0);
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, BundleParsesAndCountersAreDeltas) {
  obs::MetricsRegistry registry;
  obs::Counter* queries =
      registry.GetCounter("latest_queries_total", "test");
  obs::Gauge* accuracy =
      registry.GetGauge("latest_monitor_accuracy", "test");
  obs::EventLog events(16);

  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  recorder.AttachMetrics(&registry);
  recorder.AttachEventLog(&events);

  queries->Increment(10);
  accuracy->Set(0.9);
  recorder.Tick(/*timestamp=*/1000, /*query_count=*/10);
  queries->Increment(5);
  accuracy->Set(0.7);
  recorder.Tick(/*timestamp=*/2000, /*query_count=*/15);
  EXPECT_EQ(recorder.frames(), 2u);

  const std::string json =
      recorder.DumpJson("manual", {"scenario=unit_test"});
  const util::Result<util::JsonValue> parsed = util::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue& doc = parsed.value();

  EXPECT_EQ(doc.Get("bundle").AsString(), "latest_postmortem");
  EXPECT_EQ(doc.Get("version").AsInt(), obs::kPostmortemBundleVersion);
  EXPECT_EQ(doc.Get("reason").AsString(), "manual");
  ASSERT_EQ(doc.Get("annotations").size(), 1u);
  EXPECT_EQ(doc.Get("annotations").At(0).AsString(), "scenario=unit_test");

  ASSERT_EQ(doc.Get("frames").size(), 2u);
  const util::JsonValue& first = doc.Get("frames").At(0);
  const util::JsonValue& second = doc.Get("frames").At(1);
  EXPECT_EQ(first.Get("t").AsInt(), 1000);
  EXPECT_EQ(second.Get("q").AsInt(), 15);
  // First frame reports the lifetime counter; the second only the delta.
  EXPECT_DOUBLE_EQ(
      first.Get("samples").Get("latest_queries_total#delta").AsDouble(),
      10.0);
  EXPECT_DOUBLE_EQ(
      second.Get("samples").Get("latest_queries_total#delta").AsDouble(),
      5.0);
  // Gauges stay absolute.
  EXPECT_DOUBLE_EQ(
      second.Get("samples").Get("latest_monitor_accuracy").AsDouble(), 0.7);
}

TEST(FlightRecorderTest, RingKeepsNewestFrames) {
  obs::MetricsRegistry registry;
  registry.GetGauge("latest_g", "test")->Set(1.0);
  FlightRecorder::Options options;
  options.capacity = 3;
  FlightRecorder recorder(options);
  recorder.AttachMetrics(&registry);
  for (int i = 0; i < 10; ++i) {
    recorder.Tick(/*timestamp=*/i, /*query_count=*/static_cast<uint64_t>(i));
  }
  EXPECT_EQ(recorder.frames(), 3u);
  const util::Result<util::JsonValue> parsed =
      util::ParseJson(recorder.DumpJson("manual"));
  ASSERT_TRUE(parsed.ok());
  const util::JsonValue& frames = parsed.value().Get("frames");
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames.At(0).Get("t").AsInt(), 7);  // Oldest retained.
  EXPECT_EQ(frames.At(2).Get("t").AsInt(), 9);
}

TEST(FlightRecorderTest, WriteBundleProducesParseableFile) {
  obs::MetricsRegistry registry;
  registry.GetCounter("latest_c", "test")->Increment(3);
  FlightRecorder recorder;
  recorder.AttachMetrics(&registry);
  recorder.Tick(1, 1);

  const std::string dir = ::testing::TempDir() + "/flight_recorder_test";
  const util::Result<std::string> path =
      recorder.WriteBundle(dir, "slo_breach", {"rule=monitor_accuracy"});
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path.value().find("postmortem-slo_breach-1.json"),
            std::string::npos);
  EXPECT_EQ(recorder.bundles_written(), 1u);

  std::string contents;
  ASSERT_TRUE(persist::ReadFile(path.value(), &contents).ok());
  const util::Result<util::JsonValue> parsed = util::ParseJson(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Get("reason").AsString(), "slo_breach");
}

// ---------------------------------------------------------------------
// /statusz severity filter and /switchz
// ---------------------------------------------------------------------

obs::Event EventOfType(obs::EventType type) {
  obs::Event event;
  event.type = type;
  event.timestamp = 1;
  return event;
}

TEST(StatuszSeverityTest, FilterAndDropCounts) {
  obs::MetricsRegistry registry;
  obs::EventLog events(4);
  events.Append(EventOfType(obs::EventType::kPhaseChanged));     // info
  events.Append(EventOfType(obs::EventType::kDriftDetected));    // warning
  events.Append(EventOfType(obs::EventType::kSloBreached));      // error
  // Overflow the 4-slot ring with two more: the two oldest (info,
  // warning) are dropped and accounted per severity.
  events.Append(EventOfType(obs::EventType::kSwitched));          // info
  events.Append(EventOfType(obs::EventType::kModelReset));        // error
  events.Append(EventOfType(obs::EventType::kPrefillStarted));    // info
  EXPECT_EQ(events.dropped_by_severity(obs::EventSeverity::kInfo), 1u);
  EXPECT_EQ(events.dropped_by_severity(obs::EventSeverity::kWarning), 1u);
  EXPECT_EQ(events.dropped_by_severity(obs::EventSeverity::kError), 0u);

  obs::IntrospectionSources sources;
  sources.registry = &registry;
  sources.events = &events;
  obs::IntrospectionServer server(sources);
  ASSERT_TRUE(server.Start(/*port=*/0, /*slo_tick_ms=*/0).ok());

  const testing_support::HttpGetResult errors = testing_support::HttpGet(
      server.port(), "/statusz?severity=error");
  EXPECT_EQ(errors.status, 200);
  EXPECT_NE(errors.body.find("severity=error"), std::string::npos);
  EXPECT_NE(errors.body.find("[error]"), std::string::npos);
  EXPECT_NE(errors.body.find("slo_breached"), std::string::npos);
  EXPECT_EQ(errors.body.find("[info]"), std::string::npos);
  EXPECT_NE(errors.body.find("dropped: info=1 warning=1 error=0"),
            std::string::npos);

  // An unknown severity degrades to showing everything, with a note.
  const testing_support::HttpGetResult unknown = testing_support::HttpGet(
      server.port(), "/statusz?severity=catastrophic");
  EXPECT_NE(unknown.body.find("unknown severity"), std::string::npos);
  EXPECT_NE(unknown.body.find("[info]"), std::string::npos);
  server.Stop();
}

TEST(SwitchzTest, ServesAuditTrailAndJson) {
  obs::MetricsRegistry registry;
  SwitchAuditTrail trail(/*capacity=*/8, /*resolution_window=*/1);
  SwitchAuditEntry entry = MakeEntry(/*from=*/0, /*chosen=*/1);
  entry.trigger = "prefill";
  trail.Record(std::move(entry), estimators::kNumEstimatorKinds);
  trail.ResolveQuery({{1, 0.4}, {2, 0.9}});

  obs::IntrospectionSources sources;
  sources.registry = &registry;
  sources.audit = &trail;
  obs::IntrospectionServer server(sources);
  ASSERT_TRUE(server.Start(/*port=*/0, /*slo_tick_ms=*/0).ok());

  const testing_support::HttpGetResult html =
      testing_support::HttpGet(server.port(), "/switchz");
  EXPECT_EQ(html.status, 200);
  EXPECT_NE(html.body.find("switch-decision audit trail"), std::string::npos);
  EXPECT_NE(html.body.find("prefill"), std::string::npos);
  EXPECT_NE(html.body.find("H4096 -> RSL"), std::string::npos);

  const testing_support::HttpGetResult json =
      testing_support::HttpGet(server.port(), "/switchz?json");
  EXPECT_EQ(json.status, 200);
  const util::Result<util::JsonValue> parsed = util::ParseJson(json.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Get("recorded").AsInt(), 1);
  EXPECT_EQ(doc.Get("resolved").AsInt(), 1);
  ASSERT_EQ(doc.Get("entries").size(), 1u);
  EXPECT_EQ(doc.Get("entries").At(0).Get("trigger").AsString(), "prefill");
  // Measured accuracies were RSL=0.4, RSH=0.9: RSH is the counterfactual
  // best and the chosen RSL carries the regret.
  EXPECT_EQ(doc.Get("entries").At(0).Get("counterfactual_best").AsString(),
            "RSH");
  server.Stop();
}

// ---------------------------------------------------------------------
// Acceptance: injected drift through the full module
// ---------------------------------------------------------------------

// Mirrors tools/latest_stream_run: clustered objects whose dense corner
// and keyword vocabulary flip abruptly mid-stream.
stream::GeoTextObject FlippableObject(uint64_t i, uint64_t n,
                                      util::Rng* rng, bool flipped) {
  stream::GeoTextObject obj;
  obj.oid = i;
  if (rng->NextBool(0.7)) {
    obj.loc = flipped ? geo::Point{rng->NextDouble(60, 80),
                                   rng->NextDouble(60, 80)}
                      : geo::Point{rng->NextDouble(20, 40),
                                   rng->NextDouble(20, 40)};
  } else {
    obj.loc = {rng->NextDouble(0, 100), rng->NextDouble(0, 100)};
  }
  const stream::KeywordId base = flipped ? 50 : 0;
  const int num_kw = 1 + static_cast<int>(rng->NextBounded(3));
  for (int k = 0; k < num_kw; ++k) {
    const double u = rng->NextDouble();
    obj.keywords.push_back(base +
                           static_cast<stream::KeywordId>(u * u * 50));
  }
  stream::CanonicalizeKeywords(&obj.keywords);
  obj.timestamp = static_cast<stream::Timestamp>(8000 * i / n);
  return obj;
}

stream::Query FlippableQuery(util::Rng* rng, bool flipped) {
  stream::Query q;
  const stream::KeywordId base = flipped ? 50 : 0;
  const double u = rng->NextDouble();
  if (u < 0.70) {
    q.keywords = {base + static_cast<stream::KeywordId>(rng->NextBounded(50))};
    return q;
  }
  const geo::Point c{rng->NextDouble(10, 90), rng->NextDouble(10, 90)};
  q.range = geo::Rect::FromCenter(c, rng->NextDouble(5, 30),
                                  rng->NextDouble(5, 30));
  if (u >= 0.85) {
    q.keywords = {base + static_cast<stream::KeywordId>(rng->NextBounded(50))};
  }
  return q;
}

TEST(QualityObsAcceptanceTest, WorkloadFlipIsDetectedExplainedAndDumpable) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 40;
  config.monitor_window = 16;
  config.min_queries_between_switches = 16;
  config.estimator.reservoir_capacity = 500;
  config.maintain_shadow_estimators = true;
  config.alpha = 0.0;
  config.seed = 5;
  ASSERT_TRUE(config.quality.enabled);  // Default-on.
  auto created = core::LatestModule::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  core::LatestModule* module = created.value().get();

  constexpr uint64_t kObjects = 16000;
  constexpr uint64_t kFlipAt = kObjects / 2;
  util::Rng object_rng(13);
  util::Rng query_rng(99);
  for (uint64_t i = 0; i < kObjects; ++i) {
    const bool flipped = i >= kFlipAt;
    const stream::GeoTextObject obj =
        FlippableObject(i, kObjects, &object_rng, flipped);
    module->OnObject(obj);
    if (obj.timestamp < 1000 || i % 10 != 0) continue;
    stream::Query q = FlippableQuery(&query_rng, flipped);
    q.timestamp = obj.timestamp;
    module->OnQuery(q);
  }

  // (1) The injected drift was detected within the run: at least one
  // kDriftDetected event, with detections on the ingest feature series
  // or a per-estimator error series.
  const std::vector<obs::Event> drift_events =
      module->telemetry().events().SnapshotOfType(
          obs::EventType::kDriftDetected);
  ASSERT_FALSE(drift_events.empty());

  // (2) The switch audit explains at least one switch with a full
  // decision record: features, scores, and (once resolved) the
  // counterfactual best.
  ASSERT_NE(module->audit_trail(), nullptr);
  const std::vector<SwitchAuditEntry> entries =
      module->audit_trail()->Snapshot();
  ASSERT_FALSE(entries.empty());
  const SwitchAuditEntry& audited = entries.front();
  EXPECT_FALSE(audited.trigger.empty());
  EXPECT_EQ(audited.features.size(), 6u);  // 1 categorical + 5 numeric.
  EXPECT_EQ(audited.scores.size(), estimators::kNumEstimatorKinds);
  EXPECT_GE(audited.chosen_estimator, 0);
  bool any_resolved = false;
  for (const SwitchAuditEntry& entry : entries) {
    any_resolved = any_resolved || entry.resolved;
  }
  EXPECT_TRUE(any_resolved);

  // (3) Error accounting saw every shadow-measured kind.
  ASSERT_NE(module->error_accountant(), nullptr);
  EXPECT_GE(module->error_accountant()->AllStats().size(), 2u);

  // (4) A postmortem bundle dumps and parses, and carries the drift
  // events and audit entries.
  const std::string dir = ::testing::TempDir() + "/quality_obs_acceptance";
  const util::Result<std::string> path =
      module->DumpPostmortem("manual", dir);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  std::string contents;
  ASSERT_TRUE(persist::ReadFile(path.value(), &contents).ok());
  const util::Result<util::JsonValue> parsed = util::ParseJson(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Get("version").AsInt(), obs::kPostmortemBundleVersion);
  EXPECT_GT(doc.Get("frames").size(), 0u);
  EXPECT_GT(doc.Get("audit").size(), 0u);
  bool saw_drift_event = false;
  for (const util::JsonValue& event : doc.Get("events").items()) {
    saw_drift_event =
        saw_drift_event || event.Get("type").AsString() == "drift_detected";
  }
  EXPECT_TRUE(saw_drift_event);

  // kPostmortemDumped landed in the event log.
  EXPECT_EQ(module->telemetry()
                .events()
                .SnapshotOfType(obs::EventType::kPostmortemDumped)
                .size(),
            1u);
}

TEST(QualityObsConfigTest, DisabledQualityObsMeansNullComponents) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.quality.enabled = false;
  auto created = core::LatestModule::Create(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  core::LatestModule* module = created.value().get();
  EXPECT_EQ(module->error_accountant(), nullptr);
  EXPECT_EQ(module->drift_monitor(), nullptr);
  EXPECT_EQ(module->audit_trail(), nullptr);
  EXPECT_EQ(module->flight_recorder(), nullptr);
  const util::Result<std::string> dump = module->DumpPostmortem("manual");
  EXPECT_FALSE(dump.ok());
}

}  // namespace
}  // namespace latest
