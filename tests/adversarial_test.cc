// Robustness tests: degenerate and adversarial streams that stress every
// estimator and the module — point-mass locations, keyword-free objects,
// single-keyword vocabularies, bursty arrivals with multi-slice gaps, and
// outlier coordinates.

#include <cmath>

#include <gtest/gtest.h>

#include "core/latest_module.h"
#include "estimators/estimator.h"
#include "tests/test_stream.h"

namespace latest {
namespace {

using estimators::CreateEstimator;
using estimators::EstimatorKind;
using estimators::kNumEstimatorKinds;
using testing_support::MakeHybridQuery;
using testing_support::MakeKeywordQuery;
using testing_support::MakeSpatialQuery;
using testing_support::TestEstimatorConfig;

constexpr EstimatorKind kEveryKind[] = {
    EstimatorKind::kH4096, EstimatorKind::kRsl,  EstimatorKind::kRsh,
    EstimatorKind::kAasp,  EstimatorKind::kFfn,  EstimatorKind::kSpn,
    EstimatorKind::kCmSketch,
};

class AdversarialStreamTest : public ::testing::TestWithParam<EstimatorKind> {
 protected:
  std::unique_ptr<estimators::Estimator> Make() {
    return std::move(CreateEstimator(GetParam(), TestEstimatorConfig()))
        .value();
  }

  void CheckSane(const estimators::Estimator& est, const stream::Query& q) {
    const double e = est.Estimate(q);
    EXPECT_GE(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
};

TEST_P(AdversarialStreamTest, PointMassLocation) {
  // Every object at exactly one point: quadtrees hit their depth cap,
  // histograms put everything in one cell, clusters collapse.
  auto est = Make();
  for (int i = 0; i < 20000; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {50.0, 50.0};
    obj.keywords = {static_cast<stream::KeywordId>(i % 5)};
    obj.timestamp = i / 25;
    est->Insert(obj);
  }
  CheckSane(*est, MakeSpatialQuery({49, 49, 51, 51}));
  CheckSane(*est, MakeSpatialQuery({0, 0, 10, 10}));
  CheckSane(*est, MakeKeywordQuery({0}));
  CheckSane(*est, MakeHybridQuery({49, 49, 51, 51}, {0, 1}));
  // The tight box holds everything. Cell/bin-based estimators spread the
  // point mass uniformly over the containing cell (1.5-3 units per side,
  // diluting across BOTH dimensions: the coarsest resolution here keeps
  // (2/3.125)^2 ~ 10% of the mass inside the 2x2 box). The FFN is exempt:
  // it is workload-driven and has received no training feedback.
  if (GetParam() != EstimatorKind::kFfn) {
    EXPECT_GT(est->Estimate(MakeSpatialQuery({49, 49, 51, 51})),
              0.08 * static_cast<double>(est->seen_population()));
    // A full-domain box must capture (nearly) everything.
    EXPECT_GT(est->Estimate(MakeSpatialQuery({0, 0, 100, 100})),
              0.8 * static_cast<double>(est->seen_population()));
  }
}

TEST_P(AdversarialStreamTest, KeywordFreeObjects) {
  auto est = Make();
  for (int i = 0; i < 5000; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {static_cast<double>(i % 100), 50.0};
    obj.timestamp = i / 10;
    est->Insert(obj);  // No keywords at all.
  }
  CheckSane(*est, MakeKeywordQuery({7}));
  CheckSane(*est, MakeSpatialQuery({0, 0, 100, 100}));
  // No object carries keyword 7; sampling/sketch estimators must not
  // hallucinate more than a sliver.
  if (GetParam() == EstimatorKind::kRsl || GetParam() == EstimatorKind::kRsh) {
    EXPECT_DOUBLE_EQ(est->Estimate(MakeKeywordQuery({7})), 0.0);
  }
}

TEST_P(AdversarialStreamTest, SingleKeywordVocabulary) {
  auto est = Make();
  for (int i = 0; i < 5000; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {static_cast<double>(i % 100), static_cast<double>(i % 97)};
    obj.keywords = {42};
    obj.timestamp = i / 10;
    est->Insert(obj);
  }
  CheckSane(*est, MakeKeywordQuery({42}));
  // Everyone carries keyword 42: keyword-capable estimators should be
  // close to the full population.
  if (GetParam() == EstimatorKind::kRsl ||
      GetParam() == EstimatorKind::kRsh ||
      GetParam() == EstimatorKind::kCmSketch) {
    EXPECT_NEAR(est->Estimate(MakeKeywordQuery({42})) /
                    static_cast<double>(est->seen_population()),
                1.0, 0.05);
  }
}

TEST_P(AdversarialStreamTest, BurstyArrivalWithLongGaps) {
  // Bursts separated by gaps longer than the whole window: rotation fans
  // out many slices at once and everything from the previous burst
  // expires.
  auto est = Make();
  const auto config = TestEstimatorConfig();
  stream::SliceClock clock(config.window);
  for (int burst = 0; burst < 4; ++burst) {
    const stream::Timestamp base = burst * 5000;  // Window is 1000 ms.
    for (int i = 0; i < 1000; ++i) {
      stream::GeoTextObject obj;
      obj.oid = burst * 1000 + i;
      obj.loc = {static_cast<double>(i % 100), 30.0};
      obj.keywords = {static_cast<stream::KeywordId>(i % 10)};
      obj.timestamp = base + i / 10;
      const uint32_t rotations = clock.Advance(obj.timestamp);
      for (uint32_t r = 0; r < rotations; ++r) est->OnSliceRotate();
      est->Insert(obj);
    }
    // Only the current burst is inside the window.
    EXPECT_LE(est->seen_population(), 1000u);
    CheckSane(*est, MakeSpatialQuery({0, 0, 100, 100}));
  }
}

TEST_P(AdversarialStreamTest, OutlierCoordinatesAreClamped) {
  auto est = Make();
  for (int i = 0; i < 2000; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    // Every fourth object is far outside the configured bounds.
    obj.loc = (i % 4 == 0) ? geo::Point{1e6, -1e6}
                           : geo::Point{50.0, 50.0};
    obj.keywords = {1};
    obj.timestamp = i / 10;
    est->Insert(obj);
  }
  CheckSane(*est, MakeSpatialQuery({0, 0, 100, 100}));
  CheckSane(*est, MakeSpatialQuery({-1e7, -1e7, 1e7, 1e7}));
  CheckSane(*est, MakeKeywordQuery({1}));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AdversarialStreamTest, ::testing::ValuesIn(kEveryKind),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      return estimators::EstimatorKindName(info.param);
    });

// --------------------------------------------------------------------
// Module-level degenerate streams.

TEST(AdversarialModuleTest, QueriesOnAnEmptyWindow) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 5;
  config.monitor_window = 4;
  auto module = std::move(core::LatestModule::Create(config)).value();

  // Fill one window, then leave a gap so everything expires, then query.
  for (int i = 0; i < 1000; ++i) {
    stream::GeoTextObject obj;
    obj.oid = i;
    obj.loc = {50, 50};
    obj.keywords = {1};
    obj.timestamp = i;
    module->OnObject(obj);
  }
  stream::GeoTextObject late;
  late.oid = 1000;
  late.loc = {50, 50};
  late.keywords = {1};
  late.timestamp = 10000;  // 10 windows later.
  module->OnObject(late);

  stream::Query q = testing_support::MakeSpatialQuery({0, 0, 100, 100});
  q.timestamp = 10001;
  const auto outcome = module->OnQuery(q);
  EXPECT_EQ(outcome.actual, 1u);
  EXPECT_TRUE(std::isfinite(outcome.estimate));
}

TEST(AdversarialModuleTest, AllQueriesMatchNothing) {
  core::LatestConfig config;
  config.bounds = testing_support::kTestBounds;
  config.window.window_length_ms = 1000;
  config.window.num_slices = 10;
  config.pretrain_queries = 10;
  config.monitor_window = 8;
  auto module = std::move(core::LatestModule::Create(config)).value();
  const auto objects = testing_support::MakeClusteredObjects(3000, 31, 2000);
  for (const auto& obj : objects) {
    module->OnObject(obj);
    if (obj.timestamp >= 1000 && obj.oid % 20 == 0) {
      // A region outside the data domain: actual is always 0.
      stream::Query q =
          testing_support::MakeSpatialQuery({200, 200, 300, 300});
      q.timestamp = obj.timestamp;
      const auto outcome = module->OnQuery(q);
      EXPECT_EQ(outcome.actual, 0u);
      EXPECT_TRUE(std::isfinite(outcome.estimate));
    }
  }
}

}  // namespace
}  // namespace latest
