// Telemetry bundle: one metrics registry, one lifecycle event log, and
// one query-trace collector, owned together so instrumented components
// share a single exposition surface.

#ifndef LATEST_OBS_TELEMETRY_H_
#define LATEST_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/query_trace.h"

namespace latest::obs {

/// Sizing knobs for a telemetry bundle. The defaults cost a few tens of
/// kilobytes — cheap enough to leave on everywhere.
struct TelemetryConfig {
  /// Lifecycle events retained (ring; oldest overwritten).
  size_t event_log_capacity = 1024;

  /// Trace every Nth query through the stage timer; 0 disables tracing.
  uint32_t trace_sample_every = 64;

  /// Sampled traces retained (ring; oldest overwritten).
  size_t trace_capacity = 256;
};

/// Shared observability state of one instrumented module.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryConfig& config = TelemetryConfig());
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  TraceCollector& traces() { return traces_; }
  const TraceCollector& traces() const { return traces_; }

 private:
  MetricsRegistry registry_;
  EventLog events_;
  TraceCollector traces_;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_TELEMETRY_H_
