#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

namespace latest::obs {

namespace {

std::atomic<Profiler*> g_profiler{nullptr};

/// Best-effort symbol for one return address: demangled function name
/// when the dynamic symbol table has it, else the raw address.
std::string SymbolFor(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      // Folded-stack separators are ';' and ' '; scrub both.
      for (char& c : out) {
        if (c == ';' || c == ' ') c = '_';
      }
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%zx",
                reinterpret_cast<size_t>(pc));
  return buffer;
}

}  // namespace

void SetProfiler(Profiler* profiler) {
  g_profiler.store(profiler, std::memory_order_release);
}

Profiler* GetProfiler() {
  return g_profiler.load(std::memory_order_acquire);
}

Profiler::Profiler() : Profiler(Options()) {}

Profiler::Profiler(Options options) : options_(options) {
  ring_.resize(std::max<size_t>(1, options_.max_samples));
  // First backtrace() call may dlopen libgcc (which allocates); do it
  // now so the signal handler never does.
  void* warmup[4];
  backtrace(warmup, 4);
}

Profiler::~Profiler() {
  if (GetProfiler() == this) SetProfiler(nullptr);
}

void Profiler::SigprofHandler(int /*signum*/) {
  const int saved_errno = errno;
  Profiler* profiler = GetProfiler();
  if (profiler != nullptr &&
      profiler->armed_.load(std::memory_order_acquire)) {
    const size_t slot =
        profiler->claimed_.fetch_add(1, std::memory_order_relaxed);
    if (slot < profiler->ring_.size()) {
      Sample& sample = profiler->ring_[slot];
      sample.depth = backtrace(
          sample.pc, static_cast<int>(Options::kMaxDepth));
      profiler->published_.fetch_add(1, std::memory_order_release);
    }
  }
  errno = saved_errno;
}

std::string Profiler::CollectFolded(double seconds) {
  std::lock_guard<std::mutex> collection(collect_mu_);
  seconds = std::min(std::max(seconds, 0.05), 120.0);

  claimed_.store(0, std::memory_order_relaxed);
  published_.store(0, std::memory_order_relaxed);

  struct sigaction action;
  struct sigaction previous;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &Profiler::SigprofHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &previous) != 0) return "";

  armed_.store(true, std::memory_order_release);
  const long interval_us =
      std::max(1000L, 1000000L / std::max(1, options_.hz));
  itimerval timer{};
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  setitimer(ITIMER_PROF, &timer, nullptr);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ITIMER_PROF only ticks on consumed CPU time: an idle window yields
  // nothing. Burn a sliver of CPU here so a scrape of a quiet server
  // still returns at least this collector's own stack.
  if (claimed_.load(std::memory_order_relaxed) == 0) {
    const auto burn_deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(120);
    volatile uint64_t sink = 0;
    while (claimed_.load(std::memory_order_relaxed) == 0 &&
           std::chrono::steady_clock::now() < burn_deadline) {
      for (int i = 0; i < 4096; ++i) {
        sink = sink + static_cast<uint64_t>(i);
      }
    }
  }

  itimerval disarm{};
  setitimer(ITIMER_PROF, &disarm, nullptr);
  armed_.store(false, std::memory_order_release);

  // Wait out any handler that claimed a slot before the disarm.
  const size_t produced =
      std::min(claimed_.load(std::memory_order_acquire), ring_.size());
  const auto drain_deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(200);
  while (published_.load(std::memory_order_acquire) < produced &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::yield();
  }
  sigaction(SIGPROF, &previous, nullptr);

  last_samples_.store(produced, std::memory_order_relaxed);
  collections_.fetch_add(1, std::memory_order_relaxed);

  std::string folded = Symbolize(produced);
  if (!folded.empty()) {
    std::lock_guard<std::mutex> lock(last_mu_);
    last_folded_ = folded;
  }
  return folded;
}

std::string Profiler::Symbolize(size_t produced) {
  // Aggregate identical stacks first, then symbolize each distinct
  // frame once.
  std::map<std::vector<void*>, uint64_t> stacks;
  for (size_t i = 0; i < produced; ++i) {
    const Sample& sample = ring_[i];
    const int depth = std::min<int>(
        sample.depth, static_cast<int>(Options::kMaxDepth));
    if (depth <= 0) continue;
    stacks[std::vector<void*>(sample.pc, sample.pc + depth)] += 1;
  }
  if (stacks.empty()) return "";

  std::unordered_map<void*, std::string> symbols;
  auto symbol = [&symbols](void* pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, SymbolFor(pc)).first;
    }
    return it->second;
  };

  std::vector<std::pair<std::string, uint64_t>> lines;
  lines.reserve(stacks.size());
  for (const auto& [stack, count] : stacks) {
    // backtrace() is leaf-first; the handler itself plus the kernel's
    // signal trampoline sit at the leaf end — drop through them so the
    // folded stack starts at the interrupted frame.
    size_t skip = 0;
    for (size_t i = 0; i < stack.size(); ++i) {
      if (symbol(stack[i]).find("SigprofHandler") != std::string::npos) {
        skip = std::min(i + 2, stack.size());
        break;
      }
    }
    std::string line;
    for (size_t i = stack.size(); i > skip; --i) {  // Root-first.
      if (!line.empty()) line += ";";
      line += symbol(stack[i - 1]);
    }
    if (line.empty()) continue;
    lines.emplace_back(std::move(line), count);
  }
  if (lines.empty()) return "";

  // Merge stacks that folded to the same symbolized line.
  std::sort(lines.begin(), lines.end());
  std::vector<std::pair<std::string, uint64_t>> merged;
  for (auto& [line, count] : lines) {
    if (!merged.empty() && merged.back().first == line) {
      merged.back().second += count;
    } else {
      merged.emplace_back(std::move(line), count);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  std::string out;
  for (const auto& [line, count] : merged) {
    out += line;
    out += " ";
    out += std::to_string(count);
    out += "\n";
  }
  return out;
}

std::string Profiler::LastFolded() const {
  std::lock_guard<std::mutex> lock(last_mu_);
  return last_folded_;
}

}  // namespace latest::obs
