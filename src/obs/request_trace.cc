#include "obs/request_trace.h"

#include <algorithm>
#include <atomic>

namespace latest::obs {

namespace {
std::atomic<RequestTraceStore*> g_request_trace{nullptr};
}  // namespace

void SetRequestTraceStore(RequestTraceStore* store) {
  g_request_trace.store(store, std::memory_order_release);
}

RequestTraceStore* GetRequestTraceStore() {
  return g_request_trace.load(std::memory_order_acquire);
}

RequestTraceStore::RequestTraceStore(size_t recent_capacity, size_t top_k)
    : recent_capacity_(std::max<size_t>(1, recent_capacity)),
      top_k_(std::max<size_t>(1, top_k)) {
  ring_.reserve(recent_capacity_);
  slowest_.reserve(top_k_ + 1);
}

void RequestTraceStore::Append(Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < recent_capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % recent_capacity_;
}

void RequestTraceStore::CompleteFlush(uint64_t batch_seq,
                                      int64_t flush_micros,
                                      std::vector<Record>* completed) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& record : ring_) {
    if (record.batch_seq != batch_seq || record.flushed) continue;
    record.flushed = true;
    record.flush_ns =
        std::max<int64_t>(0, flush_micros - record.handoff_micros) * 1000;
    record.total_ns =
        std::max<int64_t>(0, flush_micros - record.admit_micros) * 1000;
    if (completed != nullptr) completed->push_back(record);
    // Promote onto the slowest-K board (insertion sort: the board is
    // tiny and mostly already sorted).
    if (slowest_.size() < top_k_ ||
        record.total_ns > slowest_.back().total_ns) {
      const auto at = std::upper_bound(
          slowest_.begin(), slowest_.end(), record,
          [](const Record& a, const Record& b) {
            return a.total_ns > b.total_ns;
          });
      slowest_.insert(at, record);
      if (slowest_.size() > top_k_) slowest_.pop_back();
    }
  }
}

std::vector<RequestTraceStore::Record> RequestTraceStore::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Record> out;
  out.reserve(ring_.size());
  if (ring_.size() < recent_capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::vector<RequestTraceStore::Record> RequestTraceStore::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

uint64_t RequestTraceStore::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace latest::obs
