#include "obs/telemetry.h"

namespace latest::obs {

Telemetry::Telemetry(const TelemetryConfig& config)
    : events_(config.event_log_capacity),
      traces_(config.trace_sample_every, config.trace_capacity, &registry_) {
  events_.AttachMetrics(&registry_);
}

}  // namespace latest::obs
