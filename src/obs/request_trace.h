// Per-request stage waterfalls for the serving data plane.
//
// The serve path records one RequestTraceStore::Record per completed
// request: identifiers (request id, wire trace id, connection), the
// request class, and the duration of every serving stage —
// queue_wait → batch_form → module → serialize → flush — plus the
// module's internal attribution for queries (ground truth vs estimator
// vs tree inference). Stages are contiguous by construction, so their
// sum reconciles with the end-to-end latency; /requestz renders the
// slowest retained requests as waterfalls and an e2e test asserts the
// reconciliation.
//
// Flush happens on the IO thread after the batch thread has already
// built the record, so records are appended flush-incomplete and
// patched by CompleteFlush(batch_seq): only then do they become
// eligible for the slowest-K board, keeping its totals final.
//
// Strictly observational and bounded: a fixed recent ring plus a fixed
// slowest-K board, all under one mutex that only the serve threads and
// scrape handlers touch.

#ifndef LATEST_OBS_REQUEST_TRACE_H_
#define LATEST_OBS_REQUEST_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace latest::obs {

class RequestTraceStore {
 public:
  enum class RequestClass : uint8_t { kQuery = 0, kIngest = 1 };

  struct Record {
    uint64_t request_id = 0;
    uint64_t trace_id = 0;  // 0 when the client sent no trace context.
    uint64_t conn_id = 0;
    uint64_t batch_seq = 0;  // Flush-patch key.
    RequestClass request_class = RequestClass::kQuery;
    bool trace_sampled = false;
    /// Pre-allocated id of the request's root span (0 when the request
    /// is not span-traced); the module_run span on the batch thread
    /// parents under it before the root itself is emitted at flush.
    uint64_t root_span_id = 0;

    /// Steady-clock stage boundaries, microseconds since the steady
    /// epoch. Each boundary ends one stage and starts the next, so the
    /// stage durations sum to the end-to-end latency by construction.
    int64_t arrival_micros = 0;    // Socket readability (io_read start).
    int64_t admit_micros = 0;      // FIFO admission (queue_wait start).
    int64_t dequeue_micros = 0;    // Batch drain (batch_form start).
    int64_t run_start_micros = 0;  // Module run start (module start).
    int64_t run_end_micros = 0;    // Module run end (serialize start).
    int64_t handoff_micros = 0;    // Outbox handoff (flush start).

    /// Stage durations, nanoseconds (derived from the stamps above at
    /// append time). `flush_ns` and `total_ns` stay 0 until
    /// CompleteFlush patches them.
    int64_t queue_wait_ns = 0;
    int64_t batch_form_ns = 0;
    int64_t module_ns = 0;
    int64_t serialize_ns = 0;
    int64_t flush_ns = 0;
    int64_t total_ns = 0;  // admit -> flush complete.

    /// Module-internal attribution (queries only), nanoseconds.
    int64_t ground_truth_ns = 0;
    int64_t estimate_ns = 0;
    int64_t model_ns = 0;

    bool flushed = false;
  };

  explicit RequestTraceStore(size_t recent_capacity = 256,
                             size_t top_k = 32);
  RequestTraceStore(const RequestTraceStore&) = delete;
  RequestTraceStore& operator=(const RequestTraceStore&) = delete;

  /// Appends one flush-incomplete record (batch thread, at serialize
  /// time). Overwrites the oldest record once the ring is full.
  void Append(Record record);

  /// Finalises every retained record of `batch_seq`: flush duration
  /// from the outbox handoff to `flush_micros`, total from admission,
  /// and promotion onto the slowest-K board (IO thread, after the
  /// batch's responses left the socket buffer). When `completed` is
  /// non-null the finalised records are appended to it so the caller
  /// can emit spans without re-scanning the ring.
  void CompleteFlush(uint64_t batch_seq, int64_t flush_micros,
                     std::vector<Record>* completed = nullptr);

  /// Recent records, oldest first (flushed or not).
  std::vector<Record> Recent() const;

  /// Slowest flushed records, largest total first.
  std::vector<Record> Slowest() const;

  /// Records appended over the store's lifetime.
  uint64_t total_appended() const;

  size_t recent_capacity() const { return recent_capacity_; }
  size_t top_k() const { return top_k_; }

 private:
  const size_t recent_capacity_;
  const size_t top_k_;

  mutable std::mutex mu_;
  std::vector<Record> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::vector<Record> slowest_;  // Sorted, largest total_ns first.
};

/// Installs (or clears, with null) the process-global request-trace
/// store read by /requestz and /statusz. Mirrors the span collector:
/// introspection handlers resolve the pointer at request time, so the
/// HTTP server can be created before the serve plane. The caller keeps
/// ownership and must clear before destruction.
void SetRequestTraceStore(RequestTraceStore* store);
RequestTraceStore* GetRequestTraceStore();

}  // namespace latest::obs

#endif  // LATEST_OBS_REQUEST_TRACE_H_
