#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace latest::obs {

namespace {

void AppendJsonEscaped(std::string_view raw, std::string* out) {
  for (const char c : raw) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Microseconds with sub-µs precision — the unit of trace-event "ts".
void AppendMicros(int64_t nanos, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1000.0);
  *out += buf;
}

}  // namespace

std::string TraceEventJson(const SpanCollector& collector,
                           const std::string& process_name) {
  std::vector<SpanRecord> spans = collector.Snapshot();
  // Perfetto accepts any order, but a time-sorted stream diffs cleanly
  // and keeps goldens stable.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
         "{\"name\":\"";
  AppendJsonEscaped(process_name, &out);
  out += "\"}}";

  std::set<uint32_t> tids;
  for (const SpanRecord& span : spans) tids.insert(span.tid);
  for (const uint32_t tid : tids) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"latest-thread-%u\"}}",
                  tid, tid);
    out += buf;
  }

  for (const SpanRecord& span : spans) {
    out += ",{\"name\":\"";
    AppendJsonEscaped(span.name != nullptr ? span.name : "span", &out);
    out += "\",\"cat\":\"latest\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%u,\"ts\":", span.tid);
    out += buf;
    AppendMicros(span.start_ns, &out);
    out += ",\"dur\":";
    AppendMicros(span.duration_ns, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"id\":%llu,\"parent\":%llu,"
                  "\"trace_id\":%llu}}",
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent_id),
                  static_cast<unsigned long long>(span.trace_id));
    out += buf;
  }
  out += "]}";
  return out;
}

util::Status WriteTraceEventFile(const SpanCollector& collector,
                                 const std::string& path,
                                 const std::string& process_name) {
  const std::string json = TraceEventJson(collector, process_name);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::NotFound("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != json.size() || !flushed) {
    return util::Status::DataLoss("short write to trace file: " + path);
  }
  return util::Status::Ok();
}

}  // namespace latest::obs
