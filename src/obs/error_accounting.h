// Per-estimator online error accounting over the ground-truth log.
//
// The scoreboard (core/scoreboard.h) keeps a single EWMA accuracy per
// (query type, estimator) for the switch decision; it answers "who is
// best right now" but not "how wrong has RS-L been lately, and is that
// getting worse". The ErrorAccountant keeps richer error statistics per
// estimator kind — EWMA relative error, q-error quantiles, and the rate
// of tau violations — fed from the same measurements the lifecycle
// already produces when ground truth lands. DeepSampling-style
// governance (pick the estimator by predicted error) and ROADMAP item 5
// (drift-aware replay) both start from exactly this series.
//
// Strictly observational: nothing here feeds back into lifecycle
// decisions and nothing is persisted, so snapshot fingerprints and the
// determinism contract are untouched.

#ifndef LATEST_OBS_ERROR_ACCOUNTING_H_
#define LATEST_OBS_ERROR_ACCOUNTING_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "estimators/estimator.h"

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class Gauge;            // obs/metrics_registry.h
class Histogram;        // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h

/// Error statistics of one estimator kind, as accumulated so far.
struct EstimatorErrorStats {
  estimators::EstimatorKind kind = estimators::EstimatorKind::kH4096;
  /// Ground-truth measurements folded in.
  uint64_t samples = 0;
  /// EWMA of relative error |est - actual| / max(actual, 1).
  double ewma_relative_error = 0.0;
  /// EWMA of accuracy (1 - relative error, floored at 0) — the same
  /// quantity the switch monitor thresholds against tau.
  double ewma_accuracy = 0.0;
  /// Measurements whose accuracy fell below tau.
  uint64_t tau_violations = 0;
  /// Lifetime tau-violation rate in [0, 1].
  double tau_violation_rate = 0.0;
  /// q-error quantiles from the histogram (1 == perfect).
  double qerror_p50 = 1.0;
  double qerror_p95 = 1.0;
  double qerror_p99 = 1.0;
  /// Largest q-error seen.
  double max_qerror = 1.0;
};

/// Maintains per-estimator error series and mirrors them into
/// `latest_estimator_error_*` registry metrics. Thread-safe; callers
/// feed it from the query path at ground-truth time.
class ErrorAccountant {
 public:
  /// `tau` is the switch threshold violations are counted against;
  /// `ewma_alpha` is the smoothing factor of the error EWMAs.
  explicit ErrorAccountant(double tau, double ewma_alpha = 0.05);

  /// Registers the exported metric families. The registry must outlive
  /// the accountant. Metrics carry an `estimator` label per kind:
  ///   latest_estimator_error_samples_total
  ///   latest_estimator_error_ewma_relative
  ///   latest_estimator_error_ewma_accuracy
  ///   latest_estimator_error_tau_violations_total
  ///   latest_estimator_error_tau_violation_rate
  ///   latest_estimator_error_qerror (histogram)
  void AttachMetrics(MetricsRegistry* registry);

  /// Folds one ground-truth measurement into `kind`'s series.
  /// `estimate` is the estimator's selectivity prediction, `actual` the
  /// exact count once ground truth landed.
  void Record(estimators::EstimatorKind kind, double estimate,
              double actual);

  /// Current statistics for one kind (zeros when never measured).
  EstimatorErrorStats Stats(estimators::EstimatorKind kind) const;

  /// Statistics for every kind with at least one sample.
  std::vector<EstimatorErrorStats> AllStats() const;

  /// The EWMA relative error of `kind` — the series the per-estimator
  /// drift detectors subscribe to.
  double EwmaRelativeError(estimators::EstimatorKind kind) const;

  double tau() const { return tau_; }

  /// Relative error of one prediction: |est - actual| / max(actual, 1).
  static double RelativeError(double estimate, double actual);

  /// q-error of one prediction: max(e/a, a/e) with both floored at 1.
  static double QError(double estimate, double actual);

 private:
  struct Slot {
    uint64_t samples = 0;
    double ewma_relative_error = 0.0;
    double ewma_accuracy = 0.0;
    uint64_t tau_violations = 0;
    double max_qerror = 1.0;
    // Exported instances, resolved once at AttachMetrics.
    Counter* samples_counter = nullptr;
    Gauge* ewma_relative_gauge = nullptr;
    Gauge* ewma_accuracy_gauge = nullptr;
    Counter* tau_violation_counter = nullptr;
    Gauge* tau_violation_rate_gauge = nullptr;
    Histogram* qerror_histogram = nullptr;
    // Local quantile histogram, always present (registry optional).
    std::vector<uint64_t> qerror_buckets;
  };

  void FillStats(const Slot& slot, estimators::EstimatorKind kind,
                 EstimatorErrorStats* out) const;
  double QErrorQuantileLocked(const Slot& slot, double q) const;

  const double tau_;
  const double ewma_alpha_;
  mutable std::mutex mu_;
  Slot slots_[estimators::kNumEstimatorKinds];
};

/// Bucket ladder for q-error histograms: geometric 1..1024 plus +Inf.
std::vector<double> QErrorBuckets();

}  // namespace latest::obs

#endif  // LATEST_OBS_ERROR_ACCOUNTING_H_
