// Declarative SLO drift monitors over registry series.
//
// The paper's accuracy monitor — "moving-average accuracy fell below
// beta·tau, start pre-filling" — is one instance of a general pattern:
// watch a time series, compare it against a threshold, debounce, and act
// on the crossing edge. SloMonitor generalizes it to *any* metric the
// registry exports: each SloRule names a series (gauge, counter, or a
// histogram quantile), a comparison, a threshold, and a debounce width in
// evaluation ticks. Crossing edges emit structured kSloBreached /
// kSloRecovered events into the lifecycle EventLog and flip per-rule
// `latest_slo_breached{rule=...}` gauges plus the aggregate
// `latest_slo_degraded` gauge that /healthz serves.
//
// Evaluation is pull-based and thread-safe: call EvaluateAll from a
// ticker thread (the introspection server does this), from the stream
// thread every N queries, or from a test — rules see the same registry
// either way. Reading a missing series is not an error; the rule reports
// "no data" and does not breach.

#ifndef LATEST_OBS_SLO_MONITOR_H_
#define LATEST_OBS_SLO_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"

namespace latest::obs {

/// One declarative threshold rule over a registry series.
struct SloRule {
  /// Stable rule id; becomes the `rule` label and the event note.
  std::string name;

  /// Registry family name of the watched series.
  std::string metric;
  /// Label set selecting the instance (empty for unlabeled series).
  LabelSet labels;

  /// How to read the series.
  enum class Source : uint32_t {
    kGauge = 0,
    kCounter = 1,
    /// Interpolated quantile of a histogram family (see `quantile`).
    kHistogramQuantile = 2,
  };
  Source source = Source::kGauge;
  /// Quantile in (0, 1] for kHistogramQuantile (0.99 = p99).
  double quantile = 0.99;

  /// Breach condition: the rule is unhealthy while `value op threshold`.
  enum class Op : uint32_t { kBelow = 0, kAbove = 1 };
  Op op = Op::kBelow;
  double threshold = 0.0;

  /// Consecutive breaching evaluations before the rule fires (debounce).
  uint32_t for_ticks = 1;

  /// Human-readable rationale shown on /statusz.
  std::string description;
};

/// Point-in-time state of one rule.
struct SloRuleState {
  SloRule rule;
  bool has_value = false;   // False when the series does not exist yet.
  double last_value = 0.0;  // Last observed value (when has_value).
  bool breached = false;    // Debounced breach state.
  uint32_t consecutive_bad = 0;  // Current run of breaching evaluations.
  uint64_t breaches = 0;    // Lifetime breach transitions.
};

/// Evaluates a set of SloRules against one registry; emits lifecycle
/// events on breach/recovery edges. Thread-safe.
class SloMonitor {
 public:
  /// Both pointers are borrowed and must outlive the monitor. `events`
  /// may be null (gauges only, no structured records).
  SloMonitor(MetricsRegistry* registry, EventLog* events);
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void AddRule(const SloRule& rule);

  /// Evaluates every rule once; returns the number currently breached.
  /// `timestamp` stamps emitted events (stream event time when the
  /// caller has it, 0 otherwise).
  size_t EvaluateAll(int64_t timestamp = 0);

  /// True while at least one rule is breached (drives /healthz).
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Names of currently-breached rules.
  std::vector<std::string> BreachedRules() const;

  std::vector<SloRuleState> States() const;

  size_t num_rules() const;
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  struct RuleEntry {
    SloRuleState state;
    Gauge* breached_gauge = nullptr;
    Counter* breaches_counter = nullptr;
  };

  /// Reads the rule's series; false when the series is absent.
  bool ReadValue(const SloRule& rule, double* out) const;

  MetricsRegistry* registry_;
  EventLog* events_;
  mutable std::mutex mu_;
  std::vector<RuleEntry> rules_;
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> evaluations_{0};
  Gauge* degraded_gauge_ = nullptr;
  Gauge* rules_gauge_ = nullptr;
};

/// The default rule set for a LATEST deployment: the paper's accuracy
/// monitor (moving accuracy below the switch threshold tau), estimate
/// p99 latency, WAL replay lag, resident-slice growth, and drift
/// (monitored series inside their post-detection cooldown, from
/// obs/drift_detector.h — self-recovering because the gauge decays once
/// the series is stable again). Callers tune or replace per deployment;
/// thresholds <= 0 skip that rule (max_active_drift < 0 skips drift; 0
/// means "any active drift breaches").
std::vector<SloRule> DefaultLatestSloRules(double tau,
                                           double p99_latency_ms = 50.0,
                                           double max_wal_lag_records = 1e6,
                                           double max_resident_slices = 0.0,
                                           double max_active_drift = 0.0);

/// SLO rules for the serving data plane (latest_serve_* series from
/// net/serve_server): p99 admission-to-response latency and query
/// admission queue depth. Breaching either flips /healthz to degraded,
/// which in turn shrinks the serve plane's effective query capacity —
/// the feedback loop that sheds load before the estimation path
/// saturates. Thresholds <= 0 skip that rule.
std::vector<SloRule> ServeSloRules(double p99_query_latency_ms = 250.0,
                                   double max_query_queue_depth = 3072.0);

}  // namespace latest::obs

#endif  // LATEST_OBS_SLO_MONITOR_H_
