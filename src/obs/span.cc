#include "obs/span.h"

#include <algorithm>

namespace latest::obs {

namespace {

std::atomic<SpanCollector*> g_collector{nullptr};

/// Sequential thread-track ids, assigned on a thread's first sampled span.
std::atomic<uint32_t> g_next_tid{1};

struct SpanTls {
  uint64_t parent_id = 0;  // Innermost open sampled span on this thread.
  uint64_t trace_id = 0;   // Trace of the innermost open sampled tree.
  uint32_t depth = 0;      // Open spans (sampled or not) on this thread.
  bool sampling = false;   // Root decision, inherited by children.
  uint32_t tid = 0;        // 0 until assigned.
};

SpanTls& Tls() {
  thread_local SpanTls tls;
  return tls;
}

}  // namespace

SpanCollector::SpanCollector(size_t capacity, uint32_t sample_every,
                             MetricsRegistry* registry)
    : capacity_(std::max<size_t>(1, capacity)),
      sample_every_(sample_every),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
  if (registry != nullptr) {
    recorded_counter_ = registry->GetCounter(
        "latest_spans_recorded_total",
        "Trace spans recorded over the collector lifetime");
    dropped_counter_ = registry->GetCounter(
        "latest_spans_dropped_total",
        "Trace spans overwritten by ring wraparound (lost to export)");
  }
}

void SpanCollector::Record(const SpanRecord& record) {
  if (recorded_counter_ != nullptr) recorded_counter_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

uint64_t SpanCollector::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t SpanCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<SpanRecord> SpanCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

void SpanCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

void SetSpanCollector(SpanCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
}

SpanCollector* GetSpanCollector() {
  return g_collector.load(std::memory_order_acquire);
}

uint32_t CurrentThreadTid() {
  SpanTls& tls = Tls();
  if (tls.tid == 0) {
    tls.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tls.tid;
}

TraceContext Span::context() const {
  TraceContext ctx;
  if (collector_ != nullptr) {
    ctx.trace_id = trace_id_;
    ctx.span_id = id_;
    ctx.sampled = true;
  }
  return ctx;
}

void Span::Begin(const char* name) {
  SpanCollector* collector = GetSpanCollector();
  if (collector == nullptr) return;  // Cleared since the inline check.
  SpanTls& tls = Tls();
  if (tls.depth == 0) tls.sampling = collector->SampleRoot();
  ++tls.depth;
  depth_tracked_ = true;
  if (!tls.sampling) return;
  collector_ = collector;
  name_ = name;
  id_ = collector->NextId();
  saved_parent_ = tls.parent_id;
  saved_trace_ = tls.trace_id;
  tls.parent_id = id_;
  // A fresh root names its trace after itself; children inherit.
  if (saved_parent_ == 0) tls.trace_id = id_;
  trace_id_ = tls.trace_id;
  if (tls.tid == 0) {
    tls.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  start_ns_ = collector->NowNanos();
}

void Span::BeginLinked(const char* name, const TraceContext& parent) {
  SpanCollector* collector = GetSpanCollector();
  if (collector == nullptr) return;  // Cleared since the inline check.
  SpanTls& tls = Tls();
  ++tls.depth;
  depth_tracked_ = true;
  linked_ = true;
  saved_sampling_ = tls.sampling;
  tls.sampling = parent.sampled;
  if (!parent.sampled) return;
  collector_ = collector;
  name_ = name;
  id_ = collector->NextId();
  saved_parent_ = tls.parent_id;
  saved_trace_ = tls.trace_id;
  tls.parent_id = id_;
  tls.trace_id = parent.trace_id;
  trace_id_ = parent.trace_id;
  // The record parents under the remote span, not this thread's stack.
  remote_parent_ = parent.span_id;
  if (tls.tid == 0) {
    tls.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  start_ns_ = collector->NowNanos();
}

void Span::Finish() {
  SpanTls& tls = Tls();
  if (collector_ != nullptr) {
    SpanRecord record;
    record.name = name_;
    record.start_ns = start_ns_;
    record.duration_ns = collector_->NowNanos() - start_ns_;
    record.tid = tls.tid;
    record.id = id_;
    record.parent_id = linked_ ? remote_parent_ : saved_parent_;
    record.trace_id = trace_id_;
    tls.parent_id = saved_parent_;
    tls.trace_id = saved_trace_;
    collector_->Record(record);
  }
  if (linked_) tls.sampling = saved_sampling_;
  if (tls.depth > 0) --tls.depth;
}

}  // namespace latest::obs
