// Switch-decision audit trail with post-hoc counterfactuals.
//
// Every estimator switch (and every Hoeffding-tree inference that
// recommended one) becomes an audit entry recording what the decision
// saw: the feature vector handed to the tree, the scoreboard score of
// every estimator, the active/chosen/recommended kinds, and the monitor
// accuracy that tripped the threshold. Once ground truth lands for the
// following queries, the entry is *resolved*: the mean measured
// accuracy per estimator over the post-decision window names the
// counterfactual best, and `regret = best_mean - chosen_mean` says what
// the decision cost. The ring is served at /switchz with a cumulative
// regret summary.
//
// Entries use plain ints for estimator kinds (like obs/event_log.h) so
// the trail stays below core in the dependency order. Strictly
// observational; never persisted.

#ifndef LATEST_OBS_AUDIT_TRAIL_H_
#define LATEST_OBS_AUDIT_TRAIL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class Gauge;            // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h

/// One audited switch decision.
struct SwitchAuditEntry {
  /// Monotone id (1-based over the trail's lifetime).
  uint64_t id = 0;
  /// Stream event time (ms) and lifetime query count at decision time.
  int64_t timestamp = 0;
  uint64_t query_count = 0;
  /// What fired the decision: "tree_infer" (model recommendation taken)
  /// or "fallback" (threshold switch without a usable recommendation).
  std::string trigger;
  /// Feature vector handed to the Hoeffding tree.
  std::vector<double> features;
  /// Scoreboard weighted score per estimator kind (indexed by kind;
  /// NaN-free: unmeasured kinds report 0).
  std::vector<double> scores;
  /// Estimator kinds as ints (-1 = none).
  int32_t from_estimator = -1;
  int32_t chosen_estimator = -1;
  int32_t recommended_estimator = -1;
  /// Monitor moving accuracy when the decision fired.
  double monitor_accuracy = 0.0;

  // ---- Post-hoc resolution (valid once `resolved`) ----
  bool resolved = false;
  /// Ground-truth queries folded into the resolution window.
  uint32_t resolution_samples = 0;
  /// Mean measured accuracy per kind over the window (kinds without
  /// measurements report -1).
  std::vector<double> posthoc_accuracy;
  /// Kind with the best post-hoc mean (-1 when nothing measured).
  int32_t counterfactual_best = -1;
  /// best_mean - chosen_mean (0 when the choice was optimal).
  double regret = 0.0;
};

/// Bounded ring of audit entries. Thread-safe. The producer records
/// decisions as they fire and streams post-decision measurements into
/// ResolveTick until each entry's window fills.
class SwitchAuditTrail {
 public:
  /// `capacity` bounds retained entries; `resolution_window` is the
  /// number of post-decision ground-truth queries a counterfactual
  /// averages over.
  explicit SwitchAuditTrail(size_t capacity = 256,
                            uint32_t resolution_window = 32);

  /// Exports:
  ///   latest_audit_entries_total, latest_audit_resolved_total,
  ///   latest_audit_cumulative_regret, latest_audit_last_regret
  /// The registry must outlive the trail.
  void AttachMetrics(MetricsRegistry* registry);

  /// Records a decision; returns its id. `num_kinds` sizes the
  /// post-hoc accumulator (scores/posthoc vectors are normalised to it).
  uint64_t Record(SwitchAuditEntry entry, size_t num_kinds);

  /// Streams one post-decision ground-truth query: `measurements` holds
  /// the measured (kind, accuracy) pairs of that query (the active
  /// estimator plus any shadows). Every entry still inside its
  /// resolution window folds them in and advances by one tick.
  void ResolveQuery(
      const std::vector<std::pair<int32_t, double>>& measurements);

  /// Retained entries, oldest first.
  std::vector<SwitchAuditEntry> Snapshot() const;

  struct Summary {
    uint64_t total_recorded = 0;
    uint64_t total_resolved = 0;
    /// Sum of regret over resolved entries (lifetime, not just ring).
    double cumulative_regret = 0.0;
    /// Resolved entries whose chosen kind was the counterfactual best.
    uint64_t optimal_choices = 0;
  };
  Summary GetSummary() const;

  size_t capacity() const { return capacity_; }
  uint32_t resolution_window() const { return resolution_window_; }

 private:
  struct Pending {
    uint64_t id = 0;
    /// Per-kind accuracy sums and counts over the window.
    std::vector<double> sum;
    std::vector<uint32_t> count;
    uint32_t ticks = 0;
  };

  void FinalizeLocked(const Pending& pending);
  SwitchAuditEntry* FindLocked(uint64_t id);

  const size_t capacity_;
  const uint32_t resolution_window_;
  mutable std::mutex mu_;
  std::vector<SwitchAuditEntry> ring_;
  size_t next_ = 0;
  uint64_t next_id_ = 1;
  std::vector<Pending> pending_;
  Summary summary_;
  Counter* entries_counter_ = nullptr;
  Counter* resolved_counter_ = nullptr;
  Gauge* cumulative_regret_gauge_ = nullptr;
  Gauge* last_regret_gauge_ = nullptr;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_AUDIT_TRAIL_H_
