#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>

#include "estimators/estimator.h"
#include "obs/metrics_registry.h"

namespace latest::obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kPhaseChanged:
      return "phase_changed";
    case EventType::kAccuracyBelowPrefillThreshold:
      return "accuracy_below_prefill_threshold";
    case EventType::kAccuracyBelowSwitchThreshold:
      return "accuracy_below_switch_threshold";
    case EventType::kAccuracyRecovered:
      return "accuracy_recovered";
    case EventType::kPrefillStarted:
      return "prefill_started";
    case EventType::kPrefillAborted:
      return "prefill_aborted";
    case EventType::kSwitched:
      return "switched";
    case EventType::kModelRetrained:
      return "model_retrained";
    case EventType::kModelReset:
      return "model_reset";
    case EventType::kSloBreached:
      return "slo_breached";
    case EventType::kSloRecovered:
      return "slo_recovered";
    case EventType::kDriftDetected:
      return "drift_detected";
    case EventType::kPostmortemDumped:
      return "postmortem_dumped";
  }
  return "unknown";
}

EventSeverity SeverityOf(EventType type) {
  switch (type) {
    case EventType::kPhaseChanged:
    case EventType::kAccuracyRecovered:
    case EventType::kPrefillStarted:
    case EventType::kPrefillAborted:
    case EventType::kSwitched:
    case EventType::kModelRetrained:
    case EventType::kSloRecovered:
      return EventSeverity::kInfo;
    case EventType::kAccuracyBelowPrefillThreshold:
    case EventType::kAccuracyBelowSwitchThreshold:
    case EventType::kDriftDetected:
      return EventSeverity::kWarning;
    case EventType::kModelReset:
    case EventType::kSloBreached:
    case EventType::kPostmortemDumped:
      return EventSeverity::kError;
  }
  return EventSeverity::kInfo;
}

const char* SeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarning:
      return "warning";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

bool ParseSeverity(const std::string& text, EventSeverity* out) {
  for (size_t i = 0; i < kNumEventSeverities; ++i) {
    const EventSeverity severity = static_cast<EventSeverity>(i);
    if (text == SeverityName(severity)) {
      *out = severity;
      return true;
    }
  }
  return false;
}

EventLog::EventLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void EventLog::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  appended_counter_ = registry->GetCounter(
      "latest_events_appended_total",
      "Lifecycle events appended to the bounded event log");
  dropped_counter_ = registry->GetCounter(
      "latest_events_dropped_total",
      "Lifecycle events overwritten by ring wraparound (lost to export)");
}

void EventLog::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    const size_t lost = static_cast<size_t>(SeverityOf(ring_[next_].type));
    ++dropped_by_severity_[lost];
    ring_[next_] = event;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  }
  if (appended_counter_ != nullptr) appended_counter_->Increment();
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

uint64_t EventLog::dropped_by_severity(EventSeverity severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_by_severity_[static_cast<size_t>(severity)];
}

std::vector<Event> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // `next_` points at the oldest entry once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::vector<Event> EventLog::SnapshotOfType(EventType type) const {
  std::vector<Event> all = Snapshot();
  std::vector<Event> out;
  for (const Event& event : all) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

std::vector<Event> EventLog::SnapshotOfSeverity(EventSeverity severity) const {
  std::vector<Event> all = Snapshot();
  std::vector<Event> out;
  for (const Event& event : all) {
    if (SeverityOf(event.type) == severity) out.push_back(event);
  }
  return out;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

namespace {

const char* PhaseLabel(int32_t phase) {
  switch (phase) {
    case 0:
      return "warmup";
    case 1:
      return "pretraining";
    case 2:
      return "incremental";
  }
  return "unknown";
}

const char* KindLabel(int32_t kind) {
  if (kind < 0 ||
      kind >= static_cast<int32_t>(estimators::kNumEstimatorKinds)) {
    return "-";
  }
  return estimators::EstimatorKindName(
      static_cast<estimators::EstimatorKind>(kind));
}

}  // namespace

std::string FormatEvent(const Event& event) {
  char line[256];
  switch (event.type) {
    case EventType::kPhaseChanged:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] phase_changed %s -> %s",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    PhaseLabel(static_cast<int32_t>(event.detail)),
                    PhaseLabel(event.phase));
      break;
    case EventType::kSwitched:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] switched %s -> %s "
                    "(monitor_accuracy=%.3f, recommended=%s)",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    KindLabel(event.from_estimator),
                    KindLabel(event.to_estimator), event.monitor_accuracy,
                    KindLabel(event.recommended));
      break;
    case EventType::kPrefillStarted:
    case EventType::kPrefillAborted:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] %s candidate=%s "
                    "(active=%s, monitor_accuracy=%.3f)",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    EventTypeName(event.type), KindLabel(event.to_estimator),
                    KindLabel(event.from_estimator), event.monitor_accuracy);
      break;
    case EventType::kAccuracyBelowPrefillThreshold:
    case EventType::kAccuracyBelowSwitchThreshold:
    case EventType::kAccuracyRecovered:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] %s threshold=%.3f "
                    "monitor_accuracy=%.3f (active=%s)",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    EventTypeName(event.type), event.detail,
                    event.monitor_accuracy, KindLabel(event.from_estimator));
      break;
    case EventType::kModelRetrained:
    case EventType::kModelReset:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] %s (mean_error=%.3f)",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    EventTypeName(event.type), event.detail);
      break;
    case EventType::kSloBreached:
    case EventType::kSloRecovered:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] %s rule=%s value=%.4f",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    EventTypeName(event.type), event.note.c_str(),
                    event.detail);
      break;
    case EventType::kDriftDetected:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] drift_detected series=%s value=%.4f",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    event.note.c_str(), event.detail);
      break;
    case EventType::kPostmortemDumped:
      std::snprintf(line, sizeof(line),
                    "[t=%lld q=%llu] postmortem_dumped reason=%s",
                    static_cast<long long>(event.timestamp),
                    static_cast<unsigned long long>(event.query_count),
                    event.note.c_str());
      break;
  }
  return line;
}

std::string FormatEventLog(const EventLog& log) {
  std::string out;
  for (const Event& event : log.Snapshot()) {
    out += FormatEvent(event);
    out += "\n";
  }
  return out;
}

}  // namespace latest::obs
