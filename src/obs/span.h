// End-to-end span tracing of the LATEST runtime.
//
// A Span is an RAII scope timer: construction opens the span, destruction
// closes it and appends one SpanRecord to a thread-safe bounded ring. A
// thread-local stack links spans into parent/child trees (ingest →
// slice_seal → evict; query → ground_truth / estimate / model_update /
// switch), and the collector stamps every record with a stable per-thread
// id so the export (obs/trace_export.h) renders one track per thread.
//
// Cost model. Tracing is off by default: the process-global collector
// pointer is null and the Span constructor is a single relaxed atomic
// load plus one branch — cheap enough to leave LATEST_SPAN annotations on
// every hot path, including per-object ingest (verified by
// bench_ingest_throughput). When a collector is installed, sampling
// happens per *root* span: every Nth root is traced and its children ride
// along, so one sampled query yields its complete stage tree while the
// other N-1 queries still pay only the pointer check plus a thread-local
// depth update.

#ifndef LATEST_OBS_SPAN_H_
#define LATEST_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics_registry.h"

namespace latest::obs {

/// One closed span. `name` must point at a string literal (records
/// outlive the scope that created them).
struct SpanRecord {
  const char* name = nullptr;
  /// Start offset from the collector's epoch, nanoseconds.
  int64_t start_ns = 0;
  /// Wall-clock duration, nanoseconds.
  int64_t duration_ns = 0;
  /// Stable per-thread track id (1-based, assignment order).
  uint32_t tid = 0;
  /// Collector-unique span id (1-based) and parent span id (0 = root).
  uint64_t id = 0;
  uint64_t parent_id = 0;
  /// Request-scoped trace id shared by every span in one trace tree.
  /// For locally rooted trees this is the root span's id; for trees
  /// continued from a remote client it is the client-generated id from
  /// the wire trace-context. 0 on legacy records.
  uint64_t trace_id = 0;
};

/// Portable handle for continuing a span tree on another thread (or,
/// via the wire protocol, another process). A span's context() can be
/// handed to a different thread, which opens a child with
/// `Span(name, context)` — linkage survives because the parent span id
/// travels with the handle instead of living in thread-local state.
struct TraceContext {
  uint64_t trace_id = 0;
  /// The span to parent under (0 = new root within the trace).
  uint64_t span_id = 0;
  /// Whether the originating tree was selected for recording. A
  /// continued span inherits this instead of re-rolling root sampling,
  /// so one request is either traced end-to-end or not at all.
  bool sampled = false;
};

/// Bounded, thread-safe ring of closed spans plus the root-sampling
/// decision. Install with SetSpanCollector to enable tracing process-wide.
class SpanCollector {
 public:
  /// Traces every `sample_every`-th root span (1 = all, 0 = none).
  /// `registry` (optional) receives recorded/dropped counters so ring
  /// loss is visible on /metrics.
  explicit SpanCollector(size_t capacity, uint32_t sample_every = 1,
                         MetricsRegistry* registry = nullptr);
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Root-sampling decision; increments the root counter.
  bool SampleRoot() {
    if (sample_every_ == 0) return false;
    return roots_seen_.fetch_add(1, std::memory_order_relaxed) %
               sample_every_ ==
           0;
  }

  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Nanoseconds since the collector's construction (steady clock).
  int64_t NowNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Converts a steady_clock timestamp expressed as microseconds since
  /// the steady epoch (the serve plane's tick domain) into this
  /// collector's ns-since-construction domain. Both clocks are
  /// steady_clock, so the conversion is one subtraction.
  int64_t NanosFromSteadyMicros(int64_t steady_micros) const {
    const int64_t epoch_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            epoch_.time_since_epoch())
            .count();
    return steady_micros * 1000 - epoch_ns;
  }

  void Record(const SpanRecord& record);

  /// Spans recorded over the collector's lifetime.
  uint64_t recorded() const;
  /// Spans overwritten by ring wraparound (lost to the export).
  uint64_t dropped() const;
  /// Root spans that consulted the sampler (traced or not).
  uint64_t roots_seen() const {
    return roots_seen_.load(std::memory_order_relaxed);
  }

  uint32_t sample_every() const { return sample_every_; }
  size_t capacity() const { return capacity_; }

  /// Retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  void Clear();

 private:
  const size_t capacity_;
  const uint32_t sample_every_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> roots_seen_{0};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  Counter* recorded_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
};

/// Installs (or clears, with null) the process-global collector. The
/// caller keeps ownership and must not destroy the collector until after
/// clearing it here and letting in-flight spans close.
void SetSpanCollector(SpanCollector* collector);

/// The installed collector, or null when tracing is disabled.
SpanCollector* GetSpanCollector();

/// The calling thread's stable track id, assigning one on first use.
/// Lets code that synthesizes SpanRecords directly (e.g. retroactive
/// queue_wait spans built from batcher ticks) stamp them onto the same
/// track as this thread's RAII spans.
uint32_t CurrentThreadTid();

/// RAII scope span. `name` must be a string literal. When tracing is
/// globally disabled the constructor costs one atomic load and one
/// branch and the destructor one branch.
class Span {
 public:
  explicit Span(const char* name) {
    if (GetSpanCollector() != nullptr) Begin(name);
  }

  /// Continues a span tree carried over from another thread (or from
  /// the wire): the new span parents under `parent.span_id`, inherits
  /// `parent.trace_id`, and bypasses root sampling — `parent.sampled`
  /// decides recording, so a request is traced end-to-end or not at
  /// all. Children opened on this thread while the span is live link
  /// under it as usual.
  Span(const char* name, const TraceContext& parent) {
    if (GetSpanCollector() != nullptr) BeginLinked(name, parent);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (depth_tracked_) Finish();
  }

  /// Whether this span was selected for recording.
  bool sampled() const { return collector_ != nullptr; }

  /// Handle for continuing this tree on another thread. For an
  /// unsampled span the context is unsampled too (ids zero), which a
  /// downstream `Span(name, ctx)` treats as "do not record".
  TraceContext context() const;

 private:
  void Begin(const char* name);
  void BeginLinked(const char* name, const TraceContext& parent);
  void Finish();

  SpanCollector* collector_ = nullptr;  // Null when unsampled.
  bool depth_tracked_ = false;
  bool linked_ = false;  // Opened via TraceContext continuation.
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t saved_parent_ = 0;
  uint64_t saved_trace_ = 0;
  uint64_t remote_parent_ = 0;  // Wire/cross-thread parent span id.
  bool saved_sampling_ = false;
};

}  // namespace latest::obs

/// Scope-span annotation: `LATEST_SPAN("ground_truth");` times the
/// enclosing scope under that name when tracing is enabled.
#define LATEST_SPAN_CONCAT_(a, b) a##b
#define LATEST_SPAN_CONCAT(a, b) LATEST_SPAN_CONCAT_(a, b)
#define LATEST_SPAN(name) \
  ::latest::obs::Span LATEST_SPAN_CONCAT(latest_span_, __LINE__)(name)

#endif  // LATEST_OBS_SPAN_H_
