#include "obs/audit_trail.h"

#include <algorithm>

#include "obs/metrics_registry.h"

namespace latest::obs {

SwitchAuditTrail::SwitchAuditTrail(size_t capacity,
                                   uint32_t resolution_window)
    : capacity_(std::max<size_t>(1, capacity)),
      resolution_window_(std::max<uint32_t>(1, resolution_window)) {
  ring_.reserve(capacity_);
}

void SwitchAuditTrail::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_counter_ = registry->GetCounter(
      "latest_audit_entries_total",
      "Switch decisions recorded in the audit trail");
  resolved_counter_ = registry->GetCounter(
      "latest_audit_resolved_total",
      "Audit entries whose counterfactual window completed");
  cumulative_regret_gauge_ = registry->GetGauge(
      "latest_audit_cumulative_regret",
      "Sum of (counterfactual best - chosen) mean accuracy over resolved "
      "switch decisions");
  last_regret_gauge_ = registry->GetGauge(
      "latest_audit_last_regret",
      "Regret of the most recently resolved switch decision");
}

uint64_t SwitchAuditTrail::Record(SwitchAuditEntry entry, size_t num_kinds) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = next_id_++;
  entry.scores.resize(num_kinds, 0.0);
  entry.posthoc_accuracy.assign(num_kinds, -1.0);

  Pending pending;
  pending.id = entry.id;
  pending.sum.assign(num_kinds, 0.0);
  pending.count.assign(num_kinds, 0);
  pending_.push_back(std::move(pending));

  const uint64_t id = entry.id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % capacity_;
  }
  ++summary_.total_recorded;
  if (entries_counter_ != nullptr) entries_counter_->Increment();
  return id;
}

SwitchAuditEntry* SwitchAuditTrail::FindLocked(uint64_t id) {
  for (SwitchAuditEntry& entry : ring_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

void SwitchAuditTrail::FinalizeLocked(const Pending& pending) {
  SwitchAuditEntry* entry = FindLocked(pending.id);
  if (entry == nullptr) return;  // Overwritten by ring wraparound.
  entry->resolved = true;
  entry->resolution_samples = pending.ticks;
  int32_t best = -1;
  double best_mean = -1.0;
  for (size_t k = 0; k < pending.sum.size(); ++k) {
    if (pending.count[k] == 0) continue;
    const double mean =
        pending.sum[k] / static_cast<double>(pending.count[k]);
    entry->posthoc_accuracy[k] = mean;
    if (mean > best_mean) {
      best_mean = mean;
      best = static_cast<int32_t>(k);
    }
  }
  entry->counterfactual_best = best;
  double chosen_mean = -1.0;
  if (entry->chosen_estimator >= 0 &&
      entry->chosen_estimator <
          static_cast<int32_t>(entry->posthoc_accuracy.size())) {
    chosen_mean = entry->posthoc_accuracy[entry->chosen_estimator];
  }
  // Regret is only meaningful when the chosen kind was itself measured
  // in the window (shadow estimators make this the common case).
  entry->regret = (best >= 0 && chosen_mean >= 0.0)
                      ? std::max(0.0, best_mean - chosen_mean)
                      : 0.0;

  ++summary_.total_resolved;
  summary_.cumulative_regret += entry->regret;
  if (entry->counterfactual_best == entry->chosen_estimator ||
      entry->regret == 0.0) {
    ++summary_.optimal_choices;
  }
  if (resolved_counter_ != nullptr) resolved_counter_->Increment();
  if (cumulative_regret_gauge_ != nullptr) {
    cumulative_regret_gauge_->Set(summary_.cumulative_regret);
  }
  if (last_regret_gauge_ != nullptr) last_regret_gauge_->Set(entry->regret);
}

void SwitchAuditTrail::ResolveQuery(
    const std::vector<std::pair<int32_t, double>>& measurements) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return;
  for (Pending& pending : pending_) {
    for (const auto& [kind, accuracy] : measurements) {
      if (kind >= 0 && kind < static_cast<int32_t>(pending.sum.size())) {
        pending.sum[kind] += accuracy;
        ++pending.count[kind];
      }
    }
    ++pending.ticks;
  }
  // Finalize completed windows (usually at most the oldest).
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (Pending& pending : pending_) {
    if (pending.ticks >= resolution_window_) {
      FinalizeLocked(pending);
    } else {
      still_pending.push_back(std::move(pending));
    }
  }
  pending_.swap(still_pending);
}

std::vector<SwitchAuditEntry> SwitchAuditTrail::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SwitchAuditEntry> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

SwitchAuditTrail::Summary SwitchAuditTrail::GetSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return summary_;
}

}  // namespace latest::obs
