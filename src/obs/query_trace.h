// Sampled per-stage timing of the estimate path.
//
// A single latency number per query hides *where* the time goes: raw-text
// tokenization and keyword interning, the estimator probe itself, the
// exact ground-truth evaluation on the system log, or the Hoeffding-tree
// update. The trace collector times those stages for every Nth query,
// keeps the recent traces in a bounded ring for inspection, and feeds a
// per-stage latency histogram family so stage percentiles are available
// from the metrics registry.

#ifndef LATEST_OBS_QUERY_TRACE_H_
#define LATEST_OBS_QUERY_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace latest::obs {

/// Stages of the estimate path, in execution order.
enum class TraceStage : uint32_t {
  /// String tokenization + keyword interning (service layer; 0 for
  /// queries submitted with pre-interned keyword ids).
  kTokenize = 0,
  /// Exact ground-truth evaluation on the system log.
  kGroundTruth = 1,
  /// Estimator probes (active + candidate + shadows).
  kEstimate = 2,
  /// Feature build, Hoeffding-tree training, monitor and switch logic.
  kModelUpdate = 3,
};

inline constexpr uint32_t kNumTraceStages = 4;

/// Stable display name ("tokenize", "ground_truth", ...).
const char* TraceStageName(TraceStage stage);

/// Stage timings of one sampled query.
struct QueryTrace {
  /// Module-lifetime query ordinal (0-based).
  uint64_t query_ordinal = 0;
  /// Stream event time (ms) of the query.
  int64_t timestamp = 0;
  /// Lifecycle phase (0 warmup, 1 pretraining, 2 incremental).
  int32_t phase = 0;
  /// Active EstimatorKind index at answer time.
  int32_t active_estimator = -1;
  /// Wall-clock per stage, ms.
  std::array<double, kNumTraceStages> stage_ms{};
  /// End-to-end wall clock of the query, ms.
  double total_ms = 0.0;
};

/// Collects every Nth query's trace into a bounded ring and into
/// per-stage histograms registered under `latest_stage_latency_ms`.
class TraceCollector {
 public:
  /// `sample_every` == 0 disables tracing entirely. `registry` may be
  /// null (ring only, no histograms).
  TraceCollector(uint32_t sample_every, size_t capacity,
                 MetricsRegistry* registry);

  /// Whether the query with this module-lifetime ordinal should be traced.
  /// Skips are counted into `latest_traces_skipped_total` so the sampling
  /// rate is auditable from /metrics.
  bool ShouldSample(uint64_t ordinal) const {
    const bool sample = sample_every_ != 0 && ordinal % sample_every_ == 0;
    if (!sample && skipped_counter_ != nullptr) {
      skipped_counter_->Increment();
    }
    return sample;
  }

  void Record(const QueryTrace& trace);

  /// Traces recorded over the collector's lifetime.
  uint64_t recorded() const;

  /// Traces overwritten by ring wraparound (lost to Snapshot).
  uint64_t dropped() const;

  /// Retained traces, oldest first.
  std::vector<QueryTrace> Snapshot() const;

  uint32_t sample_every() const { return sample_every_; }
  size_t capacity() const { return capacity_; }

 private:
  uint32_t sample_every_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<QueryTrace> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::array<Histogram*, kNumTraceStages> stage_histograms_{};
  Histogram* total_histogram_ = nullptr;
  Counter* recorded_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* skipped_counter_ = nullptr;
};

/// One-line human-readable rendering of a trace.
std::string FormatTrace(const QueryTrace& trace);

}  // namespace latest::obs

#endif  // LATEST_OBS_QUERY_TRACE_H_
