// The live introspection plane: one embedded HTTP server exposing the
// telemetry a running LATEST instance already collects.
//
// Endpoints:
//   /          index of registered endpoints
//   /metrics   Prometheus text exposition (version 0.0.4)
//   /vars      JSON exposition of the same registry
//   /healthz   JSON health verdict; 200 while healthy, 503 once any SLO
//              rule is breached or the checkpoint freshness bound is blown
//   /statusz   human-readable lifecycle page: phase, active/candidate
//              estimator, monitor accuracy vs the tau and tau/beta
//              thresholds, window occupancy, pool queue depth, WAL lag,
//              scoreboard, SLO rule states, stage latencies, recent events
//   /tracez    span/trace collector status; /tracez?dump returns the
//              retained spans as Chrome trace-event JSON for Perfetto
//   /requestz  serve-plane request waterfalls: top-K slowest requests
//              with per-stage latency attribution (queue_wait →
//              batch_form → module → serialize → flush); ?json for the
//              machine-readable form
//   /profilez  sampling self-profiler: ?seconds=N (default 2) samples
//              the process with SIGPROF and returns folded stacks for
//              flamegraph tooling
//
// Everything is rendered from thread-safe sources (the metrics registry,
// event log, trace/span collectors, SLO monitor), never from live module
// state, so scrapes race with the ingest thread without synchronization
// beyond what those sources already provide. The server optionally runs a
// ticker thread that re-evaluates the SLO monitor at a fixed cadence, so
// /healthz stays fresh even when the stream is idle.

#ifndef LATEST_OBS_STATUSZ_H_
#define LATEST_OBS_STATUSZ_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/http_server.h"
#include "util/status.h"

namespace latest::obs {

class DriftMonitor;
class ErrorAccountant;
class EventLog;
class FlightRecorder;
class MetricsRegistry;
class SloMonitor;
class SwitchAuditTrail;
class TraceCollector;

/// Borrowed data sources; all must outlive the server. Only `registry`
/// is required — null members simply leave the matching sections out.
struct IntrospectionSources {
  MetricsRegistry* registry = nullptr;
  EventLog* events = nullptr;
  TraceCollector* traces = nullptr;
  SloMonitor* slo = nullptr;
  /// Estimation-quality plane (obs/error_accounting.h & friends).
  ErrorAccountant* errors = nullptr;
  DriftMonitor* drift = nullptr;
  SwitchAuditTrail* audit = nullptr;
  FlightRecorder* flight = nullptr;
  // Spans (/tracez), request waterfalls (/requestz), and the sampling
  // profiler (/profilez) are read through their process-global accessors
  // (obs/span.h, obs/request_trace.h, obs/profiler.h) at request time,
  // so the pages see whatever the running process has installed — even
  // components created after this server started.
};

/// Static deployment facts rendered on /statusz (thresholds are config,
/// not series, so they cannot be read back out of the registry).
struct IntrospectionInfo {
  /// Accuracy switch threshold tau; <= 0 hides the threshold row.
  double tau = 0.0;
  /// Pre-fill threshold tau/beta; <= 0 hides the row.
  double prefill_threshold = 0.0;
  /// Free-form deployment label shown in the page header.
  std::string instance = "latest";
};

class IntrospectionServer {
 public:
  explicit IntrospectionServer(IntrospectionSources sources,
                               IntrospectionInfo info = {});
  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;
  ~IntrospectionServer();

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving. When
  /// `slo_tick_ms` > 0 and an SLO monitor is wired, also starts a ticker
  /// thread calling SloMonitor::EvaluateAll every `slo_tick_ms`.
  util::Status Start(uint16_t port, uint32_t slo_tick_ms = 1000);

  void Stop();

  bool running() const { return server_.running(); }
  uint16_t port() const { return server_.port(); }
  uint64_t requests_served() const { return server_.requests_served(); }

  /// True while the instance should answer /healthz with 503.
  bool degraded() const;

  // Handlers, exposed for tests (each renders one endpoint's body).
  HttpResponse HandleMetrics(const HttpRequest& request) const;
  HttpResponse HandleVars(const HttpRequest& request) const;
  HttpResponse HandleHealthz(const HttpRequest& request) const;
  HttpResponse HandleStatusz(const HttpRequest& request) const;
  HttpResponse HandleTracez(const HttpRequest& request) const;
  /// Switch-decision audit trail with regret summary; ?json for the
  /// machine-readable form.
  HttpResponse HandleSwitchz(const HttpRequest& request) const;
  /// Serve-plane request waterfalls (process-global RequestTraceStore);
  /// ?json for the machine-readable form.
  HttpResponse HandleRequestz(const HttpRequest& request) const;
  /// Runs the process-global sampling profiler for ?seconds=N (default
  /// 2) and returns folded stacks. Blocks the serving thread for the
  /// whole window by design.
  HttpResponse HandleProfilez(const HttpRequest& request) const;
  HttpResponse HandleIndex(const HttpRequest& request) const;

 private:
  void SloTickerLoop(uint32_t tick_ms);

  IntrospectionSources sources_;
  IntrospectionInfo info_;
  HttpServer server_;
  std::thread ticker_;
  std::atomic<bool> ticker_running_{false};
};

}  // namespace latest::obs

#endif  // LATEST_OBS_STATUSZ_H_
