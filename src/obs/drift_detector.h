// Online drift detection over error and ingest-feature series.
//
// Two complementary detectors per monitored series:
//
//   * Page–Hinkley: a CUSUM-style test on the deviation of each sample
//     from the running mean. Cheap (O(1) state), fast on abrupt steps,
//     parameterised by a tolerated slack `delta` and a decision
//     threshold `lambda`.
//   * AdwinLite: an ADWIN-flavoured adaptive window — a bounded ring of
//     recent samples, repeatedly split into "older | recent" halves at
//     exponentially spaced cut points; a drift fires when any split's
//     sub-window means differ by more than the Hoeffding bound
//     eps = sqrt(ln(2/confidence)/2 * (1/n0 + 1/n1)). Slower to react
//     than PH on big steps but catches slow ramps PH's slack absorbs,
//     and self-tunes to the series variance.
//
// DriftMonitor multiplexes named series over both detectors, emits one
// kDriftDetected event per firing (with a cooldown so a sustained shift
// does not spam the log), exports `latest_drift_*` metrics, and exposes
// an `active drift` gauge that DefaultLatestSloRules thresholds —
// "active" decays after `cooldown_ticks` samples so the SLO recovers
// once the series has been stable again, unlike a latched counter.
//
// Strictly observational: detections never feed back into lifecycle
// decisions (determinism contract), they only page humans and SLOs.

#ifndef LATEST_OBS_DRIFT_DETECTOR_H_
#define LATEST_OBS_DRIFT_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class Gauge;            // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h
class EventLog;         // obs/event_log.h

/// Page–Hinkley test for upward mean shifts. Reset() after a detection
/// to re-arm.
class PageHinkley {
 public:
  /// `delta` is the tolerated per-sample slack (shifts smaller than
  /// delta never fire); `lambda` the cumulative-deviation threshold;
  /// `min_samples` suppresses detections before the mean has settled.
  ///
  /// The cumulative statistic under a stationary series is a reflected
  /// random walk whose excursions scale like sigma^2 / (2 * delta), so
  /// lambda must sit well above that to keep the false-positive rate
  /// negligible. The defaults tolerate uniform +/-0.05 sample noise
  /// (sigma ~= 0.029, expected excursion ~= 0.04) while a 0.3+ mean
  /// step still accumulates fast enough to fire within a handful of
  /// samples.
  PageHinkley(double delta = 0.01, double lambda = 0.5,
              uint64_t min_samples = 30);

  /// Folds one sample; true when a drift is detected by this sample.
  bool Update(double value);

  void Reset();

  uint64_t samples() const { return samples_; }
  double mean() const { return mean_; }
  /// Current cumulative test statistic (m_t - M_t).
  double statistic() const { return cumulative_ - minimum_; }

 private:
  const double delta_;
  const double lambda_;
  const uint64_t min_samples_;
  uint64_t samples_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double minimum_ = 0.0;
};

/// ADWIN-style adaptive window over a bounded sample ring.
class AdwinLite {
 public:
  /// `confidence` is the Hoeffding delta (smaller = fewer false
  /// positives); `max_window` bounds memory; `min_samples` the smallest
  /// window checked for a cut.
  AdwinLite(double confidence = 0.002, size_t max_window = 256,
            uint64_t min_samples = 32);

  /// Folds one sample; true when the window was cut (drift). On
  /// detection the stale prefix is discarded, so the detector re-arms
  /// on the post-change distribution automatically.
  bool Update(double value);

  void Reset();

  size_t window_size() const { return window_.size(); }
  double window_mean() const;

 private:
  const double confidence_;
  const size_t max_window_;
  const uint64_t min_samples_;
  std::deque<double> window_;
  double window_sum_ = 0.0;
  uint64_t samples_ = 0;
};

/// A detection, as reported by DriftMonitor::Drains.
struct DriftDetection {
  std::string series;
  /// "page_hinkley" or "adwin".
  std::string detector;
  /// The sample value that triggered the detection.
  double value = 0.0;
  /// Samples folded into this series when the detection fired.
  uint64_t sample_index = 0;
  /// Stream event time (ms) and lifetime query count passed to Observe —
  /// what the replay harness uses to compute time-to-detect against an
  /// injected drift's onset.
  int64_t timestamp = 0;
  uint64_t query_count = 0;
};

/// Multiplexes named series over PH + AdwinLite pairs, with cooldown,
/// events, and metrics. Thread-safe.
class DriftMonitor {
 public:
  struct Options {
    double ph_delta = 0.01;
    double ph_lambda = 0.5;
    uint64_t ph_min_samples = 30;
    double adwin_confidence = 0.002;
    size_t adwin_max_window = 256;
    uint64_t adwin_min_samples = 32;
    /// Samples after a detection during which further detections on the
    /// same series are coalesced and `active` stays raised.
    uint64_t cooldown_samples = 64;
  };

  DriftMonitor();
  explicit DriftMonitor(Options options);

  /// Registers a series. Idempotent; Observe auto-registers unknown
  /// names, so calling this is only needed to pre-create metrics.
  void AddSeries(const std::string& name);

  /// Exports:
  ///   latest_drift_detections_total{series=...}
  ///   latest_drift_active{series=...}   (1 during cooldown, else 0)
  ///   latest_drift_active_series        (count of series in cooldown)
  /// The registry must outlive the monitor.
  void AttachMetrics(MetricsRegistry* registry);

  /// Events (kDriftDetected) are appended here on detection; optional.
  void AttachEventLog(EventLog* event_log);

  /// Folds one sample into `series`. `timestamp`/`query_count` annotate
  /// the event on detection. Returns true when a (non-coalesced) drift
  /// was detected by this sample.
  bool Observe(const std::string& series, double value,
               int64_t timestamp = 0, uint64_t query_count = 0);

  /// Detections since the last drain, oldest first.
  std::vector<DriftDetection> Drain();

  /// Lifetime detections on one series (coalesced ones excluded).
  uint64_t detections(const std::string& series) const;

  /// Series currently inside their post-detection cooldown.
  uint64_t active_series() const;

 private:
  struct Series {
    PageHinkley ph;
    AdwinLite adwin;
    uint64_t samples = 0;
    uint64_t detections = 0;
    /// Samples remaining in the post-detection cooldown (0 = armed).
    uint64_t cooldown_left = 0;
    Counter* detections_counter = nullptr;
    Gauge* active_gauge = nullptr;
  };

  Series* GetSeriesLocked(const std::string& name);
  void ExportActiveLocked();

  const Options options_;
  mutable std::mutex mu_;
  // Insertion-ordered so exposition and tests are deterministic.
  std::vector<std::pair<std::string, Series>> series_;
  std::vector<DriftDetection> pending_;
  MetricsRegistry* registry_ = nullptr;
  EventLog* event_log_ = nullptr;
  Gauge* active_series_gauge_ = nullptr;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_DRIFT_DETECTOR_H_
