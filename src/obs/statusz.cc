#include "obs/statusz.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "estimators/estimator.h"
#include "obs/audit_trail.h"
#include "obs/drift_detector.h"
#include "obs/error_accounting.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/query_trace.h"
#include "obs/request_trace.h"
#include "obs/slo_monitor.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace latest::obs {

namespace {

constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

const char* PhaseName(int32_t phase) {
  switch (phase) {
    case 0:
      return "warmup";
    case 1:
      return "pretraining";
    case 2:
      return "incremental";
  }
  return "unknown";
}

const char* EstimatorName(int32_t kind) {
  if (kind < 0 ||
      kind >= static_cast<int32_t>(estimators::kNumEstimatorKinds)) {
    return "-";
  }
  return estimators::EstimatorKindName(
      static_cast<estimators::EstimatorKind>(kind));
}

double GaugeOr(const MetricsRegistry* registry, std::string_view name,
               double fallback, const LabelSet& labels = {}) {
  const Gauge* gauge = registry->FindGauge(name, labels);
  return gauge != nullptr ? gauge->value() : fallback;
}

double CounterOr(const MetricsRegistry* registry, std::string_view name,
                 double fallback, const LabelSet& labels = {}) {
  const Counter* counter = registry->FindCounter(name, labels);
  return counter != nullptr ? static_cast<double>(counter->value()) : fallback;
}

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
}

void AppendJsonEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

void AppendHtmlEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      default:
        *out += c;
    }
  }
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionSources sources,
                                         IntrospectionInfo info)
    : sources_(sources), info_(std::move(info)) {
  server_.Handle("/", [this](const HttpRequest& request) {
    return HandleIndex(request);
  });
  server_.Handle("/metrics", [this](const HttpRequest& request) {
    return HandleMetrics(request);
  });
  server_.Handle("/vars", [this](const HttpRequest& request) {
    return HandleVars(request);
  });
  server_.Handle("/healthz", [this](const HttpRequest& request) {
    return HandleHealthz(request);
  });
  server_.Handle("/statusz", [this](const HttpRequest& request) {
    return HandleStatusz(request);
  });
  server_.Handle("/tracez", [this](const HttpRequest& request) {
    return HandleTracez(request);
  });
  server_.Handle("/switchz", [this](const HttpRequest& request) {
    return HandleSwitchz(request);
  });
  server_.Handle("/requestz", [this](const HttpRequest& request) {
    return HandleRequestz(request);
  });
  server_.Handle("/profilez", [this](const HttpRequest& request) {
    return HandleProfilez(request);
  });
}

IntrospectionServer::~IntrospectionServer() { Stop(); }

util::Status IntrospectionServer::Start(uint16_t port, uint32_t slo_tick_ms) {
  if (sources_.registry == nullptr) {
    return util::Status::InvalidArgument(
        "IntrospectionServer requires a metrics registry");
  }
  util::Status status = server_.Start(port);
  if (!status.ok()) return status;
  if (slo_tick_ms > 0 && sources_.slo != nullptr) {
    ticker_running_.store(true, std::memory_order_release);
    ticker_ = std::thread([this, slo_tick_ms] { SloTickerLoop(slo_tick_ms); });
  }
  return util::Status::Ok();
}

void IntrospectionServer::Stop() {
  if (ticker_running_.exchange(false, std::memory_order_acq_rel)) {
    if (ticker_.joinable()) ticker_.join();
  }
  server_.Stop();
}

void IntrospectionServer::SloTickerLoop(uint32_t tick_ms) {
  // Sleep in short slices so Stop() never waits a full tick.
  constexpr uint32_t kSliceMs = 20;
  uint32_t elapsed = tick_ms;  // Evaluate immediately on startup.
  while (ticker_running_.load(std::memory_order_acquire)) {
    if (elapsed >= tick_ms) {
      elapsed = 0;
      sources_.slo->EvaluateAll();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMs));
    elapsed += kSliceMs;
  }
}

bool IntrospectionServer::degraded() const {
  return sources_.slo != nullptr && sources_.slo->degraded();
}

HttpResponse IntrospectionServer::HandleMetrics(const HttpRequest&) const {
  HttpResponse response;
  response.content_type = std::string(kPrometheusContentType);
  response.body = sources_.registry->PrometheusText();
  return response;
}

HttpResponse IntrospectionServer::HandleVars(const HttpRequest&) const {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = sources_.registry->Json();
  return response;
}

HttpResponse IntrospectionServer::HandleHealthz(const HttpRequest&) const {
  const MetricsRegistry* registry = sources_.registry;
  const bool is_degraded = degraded();
  const int32_t phase =
      static_cast<int32_t>(GaugeOr(registry, "latest_phase", -1.0));
  const double wal_lag = GaugeOr(registry, "persist_wal_lag_records", -1.0);

  std::string body = "{\"status\":\"";
  body += is_degraded ? "degraded" : "ok";
  body += "\",\"phase\":\"";
  body += phase >= 0 ? PhaseName(phase) : "unknown";
  body += "\"";
  if (wal_lag >= 0.0) {
    AppendF(&body, ",\"wal_lag_records\":%.0f", wal_lag);
  }
  body += ",\"breached_rules\":[";
  if (sources_.slo != nullptr) {
    bool first = true;
    for (const std::string& rule : sources_.slo->BreachedRules()) {
      if (!first) body += ",";
      first = false;
      body += "\"";
      AppendJsonEscaped(&body, rule);
      body += "\"";
    }
  }
  body += "]}\n";

  HttpResponse response;
  response.status = is_degraded ? 503 : 200;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse IntrospectionServer::HandleStatusz(
    const HttpRequest& request) const {
  const MetricsRegistry* registry = sources_.registry;
  std::string page =
      "<!DOCTYPE html><html><head><title>latest statusz</title></head>"
      "<body><pre>\n";
  AppendF(&page, "=== LATEST introspection: %s ===\n\n",
          info_.instance.c_str());

  // Lifecycle.
  const int32_t phase =
      static_cast<int32_t>(GaugeOr(registry, "latest_phase", -1.0));
  const int32_t active =
      static_cast<int32_t>(GaugeOr(registry, "latest_active_estimator", -1.0));
  const int32_t candidate = static_cast<int32_t>(
      GaugeOr(registry, "latest_candidate_estimator", -1.0));
  const double accuracy = GaugeOr(registry, "latest_monitor_accuracy", 0.0);
  page += "-- lifecycle --\n";
  AppendF(&page, "phase:              %s\n",
          phase >= 0 ? PhaseName(phase) : "unknown");
  AppendF(&page, "active estimator:   %s\n", EstimatorName(active));
  AppendF(&page, "candidate:          %s\n", EstimatorName(candidate));
  AppendF(&page, "monitor accuracy:   %.4f", accuracy);
  if (info_.tau > 0.0 && info_.prefill_threshold > 0.0) {
    const char* verdict = accuracy < info_.tau              ? "BELOW TAU"
                          : accuracy < info_.prefill_threshold ? "below prefill"
                                                               : "healthy";
    AppendF(&page, "  (switch tau=%.3f, prefill=%.3f: %s)", info_.tau,
            info_.prefill_threshold, verdict);
  }
  page += "\n";
  AppendF(&page, "queries answered:   %.0f\n",
          CounterOr(registry, "latest_queries_total", 0.0));
  AppendF(&page, "switches:           %.0f\n",
          CounterOr(registry, "latest_switches_total", 0.0));

  // Window / store occupancy.
  page += "\n-- window store --\n";
  AppendF(&page, "window population:  %.0f\n",
          GaugeOr(registry, "latest_window_population", 0.0));
  AppendF(&page, "live rows:          %.0f\n",
          GaugeOr(registry, "latest_store_live_rows", 0.0));
  AppendF(&page, "resident slices:    %.0f\n",
          GaugeOr(registry, "latest_store_slices_resident", 0.0));
  AppendF(&page, "arena bytes:        %.0f\n",
          GaugeOr(registry, "latest_store_arena_bytes", 0.0));

  // Threads / persistence.
  page += "\n-- runtime --\n";
  AppendF(&page, "pool queue depth:   %.0f\n",
          GaugeOr(registry, "latest_pool_queue_depth", 0.0,
                  {{"pool", "estimation"}}));
  AppendF(&page, "wal lag (records):  %.0f\n",
          GaugeOr(registry, "persist_wal_lag_records", 0.0));
  AppendF(&page, "wal bytes:          %.0f\n",
          GaugeOr(registry, "persist_wal_bytes", 0.0));
  AppendF(&page, "snapshots taken:    %.0f\n",
          CounterOr(registry, "persist_snapshots_total", 0.0));

  // Serving data plane (present once a ServeServer has registered its
  // metrics into this registry).
  if (registry->FindCounter("latest_serve_frames_in_total", {}) !=
      nullptr) {
    page += "\n-- serving data plane --\n";
    AppendF(&page, "connections:        %.0f\n",
            GaugeOr(registry, "latest_serve_connections", 0.0));
    AppendF(&page, "queue depth:        query=%.0f ingest=%.0f\n",
            GaugeOr(registry, "latest_serve_queue_depth", 0.0,
                    {{"class", "query"}}),
            GaugeOr(registry, "latest_serve_queue_depth", 0.0,
                    {{"class", "ingest"}}));
    AppendF(&page, "frames:             in=%.0f out=%.0f\n",
            CounterOr(registry, "latest_serve_frames_in_total", 0.0),
            CounterOr(registry, "latest_serve_frames_out_total", 0.0));
    AppendF(&page, "served:             queries=%.0f ingests=%.0f\n",
            CounterOr(registry, "latest_serve_queries_total", 0.0),
            CounterOr(registry, "latest_serve_ingests_total", 0.0));
    AppendF(&page, "shed:               query=%.0f ingest=%.0f\n",
            CounterOr(registry, "latest_serve_shed_total", 0.0,
                      {{"class", "query"}}),
            CounterOr(registry, "latest_serve_shed_total", 0.0,
                      {{"class", "ingest"}}));
    const Histogram* batch_size =
        registry->FindHistogram("latest_serve_batch_size", {});
    if (batch_size != nullptr && batch_size->count() > 0) {
      AppendF(&page,
              "batch size:         p50=%.1f p95=%.1f p99=%.1f n=%" PRIu64
              "\n",
              batch_size->Quantile(0.5), batch_size->Quantile(0.95),
              batch_size->Quantile(0.99), batch_size->count());
    }
    for (const char* klass : {"query", "ingest"}) {
      const Histogram* wait = registry->FindHistogram(
          "latest_serve_queue_wait_ms", {{"class", klass}});
      if (wait == nullptr || wait->count() == 0) continue;
      AppendF(&page,
              "queue wait (%s): %sp50=%.3fms p99=%.3fms n=%" PRIu64 "\n",
              klass, std::string_view(klass) == "query" ? " " : "",
              wait->Quantile(0.5), wait->Quantile(0.99), wait->count());
    }
    if (const RequestTraceStore* requests = GetRequestTraceStore()) {
      AppendF(&page, "requests traced:    %" PRIu64 " (see /requestz)\n",
              requests->total_appended());
    }
  }

  // Scoreboard: moving-average accuracy per (query type, estimator).
  const std::vector<MetricsRegistry::Sample> scoreboard =
      registry->Samples("latest_scoreboard_accuracy");
  if (!scoreboard.empty()) {
    page += "\n-- scoreboard (moving accuracy) --\n";
    for (const MetricsRegistry::Sample& sample : scoreboard) {
      std::string labels;
      for (const auto& [key, value] : sample.labels) {
        if (!labels.empty()) labels += " ";
        labels += key + "=" + value;
      }
      AppendF(&page, "  %-40s %.4f", labels.c_str(), sample.value);
      if (info_.tau > 0.0) {
        page += sample.value < info_.tau ? "  [below tau]" : "";
      }
      page += "\n";
    }
  }

  // Stage latency percentiles.
  bool stage_header = false;
  for (uint32_t s = 0; s < kNumTraceStages; ++s) {
    const char* stage = TraceStageName(static_cast<TraceStage>(s));
    const Histogram* histogram = registry->FindHistogram(
        "latest_stage_latency_ms", {{"stage", stage}});
    if (histogram == nullptr || histogram->count() == 0) continue;
    if (!stage_header) {
      page += "\n-- stage latency (ms, sampled) --\n";
      stage_header = true;
    }
    AppendF(&page, "  %-12s p50=%.4f p95=%.4f p99=%.4f n=%" PRIu64 "\n",
            stage, histogram->Quantile(0.5), histogram->Quantile(0.95),
            histogram->Quantile(0.99), histogram->count());
  }

  // SLO rules.
  if (sources_.slo != nullptr) {
    page += "\n-- slo rules --\n";
    for (const SloRuleState& state : sources_.slo->States()) {
      const char* verdict = state.breached    ? "BREACHED"
                            : !state.has_value ? "no data"
                                               : "ok";
      AppendF(&page, "  %-24s %-8s value=%.4f threshold=%s%.4f",
              state.rule.name.c_str(), verdict, state.last_value,
              state.rule.op == SloRule::Op::kBelow ? "<" : ">",
              state.rule.threshold);
      if (!state.rule.description.empty()) {
        page += "  (";
        AppendHtmlEscaped(&page, state.rule.description);
        page += ")";
      }
      page += "\n";
    }
  }

  // Per-estimator error accounting.
  if (sources_.errors != nullptr) {
    const std::vector<EstimatorErrorStats> stats = sources_.errors->AllStats();
    if (!stats.empty()) {
      page += "\n-- estimator error accounting --\n";
      page +=
          "  estimator   samples  ewma_rel  ewma_acc  tau_viol  "
          "qerr_p50  qerr_p95  qerr_p99\n";
      for (const EstimatorErrorStats& stat : stats) {
        AppendF(&page,
                "  %-10s %8" PRIu64
                "  %8.4f  %8.4f  %7.1f%%  %8.2f  %8.2f  %8.2f\n",
                estimators::EstimatorKindName(stat.kind), stat.samples,
                stat.ewma_relative_error, stat.ewma_accuracy,
                100.0 * stat.tau_violation_rate, stat.qerror_p50,
                stat.qerror_p95, stat.qerror_p99);
      }
    }
  }

  // Drift detectors.
  if (sources_.drift != nullptr) {
    AppendF(&page, "\n-- drift --\nactive series:      %" PRIu64 "\n",
            sources_.drift->active_series());
  }

  // Recent lifecycle events (newest last). `?severity=info|warning|error`
  // filters; drop counts per severity show what the bounded ring lost.
  if (sources_.events != nullptr) {
    const std::string severity_param = request.QueryParam("severity");
    EventSeverity filter = EventSeverity::kInfo;
    const bool filtered =
        !severity_param.empty() && ParseSeverity(severity_param, &filter);
    std::vector<Event> events = filtered
                                    ? sources_.events->SnapshotOfSeverity(filter)
                                    : sources_.events->Snapshot();
    if (filtered) {
      AppendF(&page, "\n-- recent events (severity=%s) --\n",
              SeverityName(filter));
    } else if (!severity_param.empty()) {
      AppendF(&page,
              "\n-- recent events (unknown severity \"%s\"; showing all) --\n",
              severity_param.c_str());
    } else {
      page += "\n-- recent events --\n";
    }
    AppendF(&page, "  dropped: info=%" PRIu64 " warning=%" PRIu64
                   " error=%" PRIu64 "\n",
            sources_.events->dropped_by_severity(EventSeverity::kInfo),
            sources_.events->dropped_by_severity(EventSeverity::kWarning),
            sources_.events->dropped_by_severity(EventSeverity::kError));
    constexpr size_t kMaxShown = 20;
    const size_t start =
        events.size() > kMaxShown ? events.size() - kMaxShown : 0;
    for (size_t i = start; i < events.size(); ++i) {
      page += "  [";
      page += SeverityName(SeverityOf(events[i].type));
      page += "] ";
      AppendHtmlEscaped(&page, FormatEvent(events[i]));
      page += "\n";
    }
    if (events.empty()) page += "  (none)\n";
  }

  AppendF(&page, "\nrequests served: %" PRIu64 "\n",
          server_.requests_served());
  page += "</pre></body></html>\n";

  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(page);
  return response;
}

HttpResponse IntrospectionServer::HandleTracez(
    const HttpRequest& request) const {
  HttpResponse response;
  SpanCollector* spans = GetSpanCollector();
  if (request.HasQueryParam("dump")) {
    if (spans == nullptr) {
      response.status = 404;
      response.body = "span tracing is not enabled (no collector installed)\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = TraceEventJson(*spans, info_.instance);
    return response;
  }

  std::string body = "tracez\n\n";
  if (spans == nullptr) {
    body += "span collector: not installed\n";
  } else {
    AppendF(&body,
            "span collector: capacity=%zu sample_every=%u\n"
            "roots seen:     %" PRIu64 "\n"
            "recorded:       %" PRIu64 "\n"
            "dropped:        %" PRIu64 "\n",
            spans->capacity(), spans->sample_every(), spans->roots_seen(),
            spans->recorded(), spans->dropped());
    body += "\nGET /tracez?dump for Chrome trace-event JSON "
            "(load in Perfetto / chrome://tracing)\n";
  }
  if (sources_.traces != nullptr) {
    AppendF(&body,
            "\nquery traces:   sample_every=%u capacity=%zu\n"
            "recorded:       %" PRIu64 "\n"
            "dropped:        %" PRIu64 "\n",
            sources_.traces->sample_every(), sources_.traces->capacity(),
            sources_.traces->recorded(), sources_.traces->dropped());
    std::vector<QueryTrace> recent = sources_.traces->Snapshot();
    constexpr size_t kMaxShown = 10;
    const size_t start =
        recent.size() > kMaxShown ? recent.size() - kMaxShown : 0;
    for (size_t i = start; i < recent.size(); ++i) {
      body += "  " + FormatTrace(recent[i]) + "\n";
    }
  }
  response.body = std::move(body);
  return response;
}

HttpResponse IntrospectionServer::HandleSwitchz(
    const HttpRequest& request) const {
  HttpResponse response;
  if (sources_.audit == nullptr) {
    response.status = 404;
    response.body = "switch audit trail is not enabled\n";
    return response;
  }
  const SwitchAuditTrail::Summary summary = sources_.audit->GetSummary();
  const std::vector<SwitchAuditEntry> entries = sources_.audit->Snapshot();

  if (request.HasQueryParam("json")) {
    std::string body;
    AppendF(&body,
            "{\"recorded\":%" PRIu64 ",\"resolved\":%" PRIu64
            ",\"optimal\":%" PRIu64 ",\"cumulative_regret\":%.6f",
            summary.total_recorded, summary.total_resolved,
            summary.optimal_choices, summary.cumulative_regret);
    body += ",\"entries\":[";
    for (size_t i = 0; i < entries.size(); ++i) {
      const SwitchAuditEntry& entry = entries[i];
      if (i > 0) body += ",";
      AppendF(&body,
              "{\"id\":%" PRIu64 ",\"t\":%" PRId64 ",\"q\":%" PRIu64
              ",\"trigger\":\"",
              entry.id, entry.timestamp, entry.query_count);
      AppendJsonEscaped(&body, entry.trigger);
      AppendF(&body,
              "\",\"from\":\"%s\",\"chosen\":\"%s\",\"recommended\":\"%s\""
              ",\"monitor_accuracy\":%.6f,\"resolved\":%s",
              EstimatorName(entry.from_estimator),
              EstimatorName(entry.chosen_estimator),
              EstimatorName(entry.recommended_estimator),
              entry.monitor_accuracy, entry.resolved ? "true" : "false");
      body += ",\"features\":[";
      for (size_t f = 0; f < entry.features.size(); ++f) {
        if (f > 0) body += ",";
        AppendF(&body, "%.6f", entry.features[f]);
      }
      body += "]";
      if (entry.resolved) {
        AppendF(&body, ",\"counterfactual_best\":\"%s\",\"regret\":%.6f",
                EstimatorName(entry.counterfactual_best), entry.regret);
      }
      body += "}";
    }
    body += "]}\n";
    response.content_type = "application/json";
    response.body = std::move(body);
    return response;
  }

  std::string page =
      "<!DOCTYPE html><html><head><title>latest switchz</title></head>"
      "<body><pre>\n";
  AppendF(&page, "=== switch-decision audit trail: %s ===\n\n",
          info_.instance.c_str());
  AppendF(&page,
          "recorded:          %" PRIu64 "\nresolved:          %" PRIu64
          "\noptimal choices:   %" PRIu64 "\ncumulative regret: %.4f\n",
          summary.total_recorded, summary.total_resolved,
          summary.optimal_choices, summary.cumulative_regret);
  if (summary.total_resolved > 0) {
    AppendF(&page, "mean regret:       %.4f\n",
            summary.cumulative_regret /
                static_cast<double>(summary.total_resolved));
  }
  page += "\n-- entries (oldest first) --\n";
  for (const SwitchAuditEntry& entry : entries) {
    AppendF(&page,
            "#%" PRIu64 " [t=%" PRId64 " q=%" PRIu64 "] %s %s -> %s "
            "(recommended=%s, monitor_accuracy=%.4f)\n",
            entry.id, entry.timestamp, entry.query_count,
            entry.trigger.c_str(), EstimatorName(entry.from_estimator),
            EstimatorName(entry.chosen_estimator),
            EstimatorName(entry.recommended_estimator),
            entry.monitor_accuracy);
    page += "   features: [";
    for (size_t f = 0; f < entry.features.size(); ++f) {
      if (f > 0) page += ", ";
      AppendF(&page, "%.4f", entry.features[f]);
    }
    page += "]\n   scores:   ";
    bool first_score = true;
    for (size_t k = 0; k < entry.scores.size(); ++k) {
      if (entry.scores[k] == 0.0) continue;
      if (!first_score) page += ", ";
      first_score = false;
      AppendF(&page, "%s=%.4f", EstimatorName(static_cast<int32_t>(k)),
              entry.scores[k]);
    }
    if (first_score) page += "(none)";
    page += "\n";
    if (entry.resolved) {
      AppendF(&page,
              "   post-hoc: best=%s regret=%.4f over %u queries (",
              EstimatorName(entry.counterfactual_best), entry.regret,
              entry.resolution_samples);
      bool first_acc = true;
      for (size_t k = 0; k < entry.posthoc_accuracy.size(); ++k) {
        if (entry.posthoc_accuracy[k] < 0.0) continue;
        if (!first_acc) page += ", ";
        first_acc = false;
        AppendF(&page, "%s=%.4f", EstimatorName(static_cast<int32_t>(k)),
                entry.posthoc_accuracy[k]);
      }
      page += ")\n";
    } else {
      page += "   post-hoc: (unresolved)\n";
    }
  }
  if (entries.empty()) page += "  (no switch decisions recorded)\n";
  page += "\nGET /switchz?json for the machine-readable form\n";
  page += "</pre></body></html>\n";
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(page);
  return response;
}

namespace {

const char* RequestClassName(RequestTraceStore::RequestClass klass) {
  return klass == RequestTraceStore::RequestClass::kQuery ? "query"
                                                          : "ingest";
}

void AppendRecordJson(std::string* out,
                      const RequestTraceStore::Record& record) {
  AppendF(out,
          "{\"request_id\":%" PRIu64 ",\"trace_id\":%" PRIu64
          ",\"conn\":%" PRIu64 ",\"batch_seq\":%" PRIu64
          ",\"class\":\"%s\",\"sampled\":%s,\"root_span_id\":%" PRIu64,
          record.request_id, record.trace_id, record.conn_id,
          record.batch_seq, RequestClassName(record.request_class),
          record.trace_sampled ? "true" : "false", record.root_span_id);
  AppendF(out,
          ",\"stages_ns\":{\"queue_wait\":%" PRId64
          ",\"batch_form\":%" PRId64 ",\"module\":%" PRId64
          ",\"serialize\":%" PRId64 ",\"flush\":%" PRId64 "}",
          record.queue_wait_ns, record.batch_form_ns, record.module_ns,
          record.serialize_ns, record.flush_ns);
  AppendF(out,
          ",\"module_detail_ns\":{\"ground_truth\":%" PRId64
          ",\"estimate\":%" PRId64 ",\"model\":%" PRId64 "}",
          record.ground_truth_ns, record.estimate_ns, record.model_ns);
  AppendF(out, ",\"total_ns\":%" PRId64 ",\"flushed\":%s}",
          record.total_ns, record.flushed ? "true" : "false");
}

void AppendWaterfall(std::string* out,
                     const RequestTraceStore::Record& record) {
  AppendF(out,
          "req=%016" PRIx64 " trace=%016" PRIx64
          " class=%-6s total=%.3fms%s\n",
          record.request_id, record.trace_id,
          RequestClassName(record.request_class),
          static_cast<double>(record.total_ns) / 1e6,
          record.trace_sampled ? "  [sampled]" : "");
  struct StageCell {
    const char* name;
    int64_t ns;
  };
  const StageCell stages[] = {{"queue_wait", record.queue_wait_ns},
                              {"batch_form", record.batch_form_ns},
                              {"module", record.module_ns},
                              {"serialize", record.serialize_ns},
                              {"flush", record.flush_ns}};
  // One proportional bar per stage, scaled so the whole request spans
  // kBarWidth characters.
  constexpr int kBarWidth = 50;
  const double total =
      static_cast<double>(std::max<int64_t>(1, record.total_ns));
  for (const StageCell& stage : stages) {
    const int width = static_cast<int>(
        static_cast<double>(stage.ns) / total * kBarWidth + 0.5);
    AppendF(out, "    %-10s %8.3fms  ", stage.name,
            static_cast<double>(stage.ns) / 1e6);
    for (int i = 0; i < width; ++i) *out += '#';
    *out += '\n';
  }
  if (record.request_class == RequestTraceStore::RequestClass::kQuery) {
    AppendF(out,
            "    module detail: ground_truth=%.3fms estimate=%.3fms "
            "model=%.3fms\n",
            static_cast<double>(record.ground_truth_ns) / 1e6,
            static_cast<double>(record.estimate_ns) / 1e6,
            static_cast<double>(record.model_ns) / 1e6);
  }
}

}  // namespace

HttpResponse IntrospectionServer::HandleRequestz(
    const HttpRequest& request) const {
  HttpResponse response;
  RequestTraceStore* store = GetRequestTraceStore();
  if (store == nullptr) {
    response.status = 404;
    response.body =
        "request tracing is not enabled (no serve plane running)\n";
    return response;
  }
  const std::vector<RequestTraceStore::Record> slowest = store->Slowest();
  const std::vector<RequestTraceStore::Record> recent = store->Recent();

  if (request.HasQueryParam("json")) {
    std::string body;
    AppendF(&body,
            "{\"total_appended\":%" PRIu64 ",\"recent_retained\":%zu"
            ",\"slowest\":[",
            store->total_appended(), recent.size());
    for (size_t i = 0; i < slowest.size(); ++i) {
      if (i > 0) body += ",";
      AppendRecordJson(&body, slowest[i]);
    }
    body += "],\"recent\":[";
    for (size_t i = 0; i < recent.size(); ++i) {
      if (i > 0) body += ",";
      AppendRecordJson(&body, recent[i]);
    }
    body += "]}\n";
    response.content_type = "application/json";
    response.body = std::move(body);
    return response;
  }

  std::string page =
      "<!DOCTYPE html><html><head><title>latest requestz</title></head>"
      "<body><pre>\n";
  AppendF(&page, "=== serve-plane request waterfalls: %s ===\n\n",
          info_.instance.c_str());
  AppendF(&page,
          "requests traced: %" PRIu64 " (recent ring %zu/%zu, slowest "
          "board %zu/%zu)\n",
          store->total_appended(), recent.size(), store->recent_capacity(),
          slowest.size(), store->top_k());
  page +=
      "stages: queue_wait -> batch_form -> module -> serialize -> flush "
      "(contiguous; sums to total)\n";
  page += "\n-- slowest requests --\n";
  for (size_t i = 0; i < slowest.size(); ++i) {
    AppendF(&page, "\n#%zu ", i + 1);
    AppendWaterfall(&page, slowest[i]);
  }
  if (slowest.empty()) page += "  (no flushed requests yet)\n";
  page += "\nGET /requestz?json for the machine-readable form\n";
  page += "</pre></body></html>\n";
  response.content_type = "text/html; charset=utf-8";
  response.body = std::move(page);
  return response;
}

HttpResponse IntrospectionServer::HandleProfilez(
    const HttpRequest& request) const {
  HttpResponse response;
  Profiler* profiler = GetProfiler();
  if (profiler == nullptr) {
    response.status = 404;
    response.body = "profiler is not enabled (no profiler installed)\n";
    return response;
  }
  double seconds = 2.0;
  const std::string param = request.QueryParam("seconds");
  if (!param.empty()) {
    seconds = std::strtod(param.c_str(), nullptr);
    if (seconds <= 0.0) seconds = 2.0;
  }
  const std::string folded = profiler->CollectFolded(seconds);
  response.content_type = "text/plain; charset=utf-8";
  if (folded.empty()) {
    response.body = "(no samples: the process consumed no CPU time "
                    "during the window)\n";
  } else {
    response.body = folded;
  }
  return response;
}

HttpResponse IntrospectionServer::HandleIndex(const HttpRequest&) const {
  std::string body = "latest introspection endpoints:\n";
  for (const std::string& path : server_.paths()) {
    body += "  " + path + "\n";
  }
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

}  // namespace latest::obs
