#include "obs/query_trace.h"

#include <algorithm>
#include <cstdio>

namespace latest::obs {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kTokenize:
      return "tokenize";
    case TraceStage::kGroundTruth:
      return "ground_truth";
    case TraceStage::kEstimate:
      return "estimate";
    case TraceStage::kModelUpdate:
      return "model_update";
  }
  return "unknown";
}

TraceCollector::TraceCollector(uint32_t sample_every, size_t capacity,
                               MetricsRegistry* registry)
    : sample_every_(sample_every), capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
  if (registry != nullptr) {
    for (uint32_t s = 0; s < kNumTraceStages; ++s) {
      stage_histograms_[s] = registry->GetHistogram(
          "latest_stage_latency_ms",
          "Per-stage wall clock of sampled estimate-path queries (ms)",
          Histogram::LatencyBucketsMs(),
          {{"stage", TraceStageName(static_cast<TraceStage>(s))}});
    }
    total_histogram_ = registry->GetHistogram(
        "latest_query_total_latency_ms",
        "End-to-end wall clock of sampled queries (ms)",
        Histogram::LatencyBucketsMs());
    recorded_counter_ = registry->GetCounter(
        "latest_traces_recorded_total",
        "Query traces recorded by the sampled stage timer");
    dropped_counter_ = registry->GetCounter(
        "latest_traces_dropped_total",
        "Query traces overwritten by ring wraparound (lost to export)");
    skipped_counter_ = registry->GetCounter(
        "latest_traces_skipped_total",
        "Queries that bypassed stage tracing because of sampling");
  }
}

void TraceCollector::Record(const QueryTrace& trace) {
  for (uint32_t s = 0; s < kNumTraceStages; ++s) {
    if (stage_histograms_[s] != nullptr) {
      stage_histograms_[s]->Observe(trace.stage_ms[s]);
    }
  }
  if (total_histogram_ != nullptr) total_histogram_->Observe(trace.total_ms);
  if (recorded_counter_ != nullptr) recorded_counter_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

uint64_t TraceCollector::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<QueryTrace> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::string FormatTrace(const QueryTrace& trace) {
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "[q=%llu t=%lld] total=%.4fms tokenize=%.4f ground_truth=%.4f "
      "estimate=%.4f model_update=%.4f",
      static_cast<unsigned long long>(trace.query_ordinal),
      static_cast<long long>(trace.timestamp), trace.total_ms,
      trace.stage_ms[static_cast<uint32_t>(TraceStage::kTokenize)],
      trace.stage_ms[static_cast<uint32_t>(TraceStage::kGroundTruth)],
      trace.stage_ms[static_cast<uint32_t>(TraceStage::kEstimate)],
      trace.stage_ms[static_cast<uint32_t>(TraceStage::kModelUpdate)]);
  return line;
}

}  // namespace latest::obs
