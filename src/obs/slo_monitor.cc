#include "obs/slo_monitor.h"

#include <algorithm>
#include <cstdio>

namespace latest::obs {

SloMonitor::SloMonitor(MetricsRegistry* registry, EventLog* events)
    : registry_(registry), events_(events) {
  degraded_gauge_ = registry_->GetGauge(
      "latest_slo_degraded",
      "1 while at least one SLO rule is breached (drives /healthz)");
  rules_gauge_ = registry_->GetGauge("latest_slo_rules",
                                    "Number of installed SLO rules");
}

void SloMonitor::AddRule(const SloRule& rule) {
  RuleEntry entry;
  entry.state.rule = rule;
  entry.breached_gauge = registry_->GetGauge(
      "latest_slo_breached", "1 while this SLO rule is breached",
      {{"rule", rule.name}});
  entry.breaches_counter = registry_->GetCounter(
      "latest_slo_breaches_total", "Breach transitions of this SLO rule",
      {{"rule", rule.name}});
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(entry));
  rules_gauge_->Set(static_cast<double>(rules_.size()));
}

bool SloMonitor::ReadValue(const SloRule& rule, double* out) const {
  switch (rule.source) {
    case SloRule::Source::kGauge: {
      const Gauge* gauge = registry_->FindGauge(rule.metric, rule.labels);
      if (gauge == nullptr) return false;
      *out = gauge->value();
      return true;
    }
    case SloRule::Source::kCounter: {
      const Counter* counter = registry_->FindCounter(rule.metric, rule.labels);
      if (counter == nullptr) return false;
      *out = static_cast<double>(counter->value());
      return true;
    }
    case SloRule::Source::kHistogramQuantile: {
      const Histogram* histogram =
          registry_->FindHistogram(rule.metric, rule.labels);
      if (histogram == nullptr || histogram->count() == 0) return false;
      *out = histogram->Quantile(rule.quantile);
      return true;
    }
  }
  return false;
}

size_t SloMonitor::EvaluateAll(int64_t timestamp) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  size_t breached_now = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (RuleEntry& entry : rules_) {
    SloRuleState& state = entry.state;
    double value = 0.0;
    state.has_value = ReadValue(state.rule, &value);
    if (state.has_value) state.last_value = value;

    bool bad = false;
    if (state.has_value) {
      bad = state.rule.op == SloRule::Op::kBelow
                ? value < state.rule.threshold
                : value > state.rule.threshold;
    }
    state.consecutive_bad = bad ? state.consecutive_bad + 1 : 0;

    const uint32_t debounce = std::max<uint32_t>(1, state.rule.for_ticks);
    const bool breached = state.consecutive_bad >= debounce;
    if (breached && !state.breached) {
      ++state.breaches;
      entry.breaches_counter->Increment();
      if (events_ != nullptr) {
        Event event;
        event.type = EventType::kSloBreached;
        event.timestamp = timestamp;
        event.detail = state.last_value;
        event.note = state.rule.name;
        events_->Append(event);
      }
    } else if (!breached && state.breached) {
      if (events_ != nullptr) {
        Event event;
        event.type = EventType::kSloRecovered;
        event.timestamp = timestamp;
        event.detail = state.last_value;
        event.note = state.rule.name;
        events_->Append(event);
      }
    }
    state.breached = breached;
    entry.breached_gauge->Set(breached ? 1.0 : 0.0);
    if (breached) ++breached_now;
  }
  degraded_.store(breached_now > 0, std::memory_order_relaxed);
  degraded_gauge_->Set(breached_now > 0 ? 1.0 : 0.0);
  return breached_now;
}

std::vector<std::string> SloMonitor::BreachedRules() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const RuleEntry& entry : rules_) {
    if (entry.state.breached) out.push_back(entry.state.rule.name);
  }
  return out;
}

std::vector<SloRuleState> SloMonitor::States() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloRuleState> out;
  out.reserve(rules_.size());
  for (const RuleEntry& entry : rules_) out.push_back(entry.state);
  return out;
}

size_t SloMonitor::num_rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

std::vector<SloRule> DefaultLatestSloRules(double tau, double p99_latency_ms,
                                           double max_wal_lag_records,
                                           double max_resident_slices,
                                           double max_active_drift) {
  std::vector<SloRule> rules;
  if (tau > 0.0) {
    SloRule accuracy;
    accuracy.name = "monitor_accuracy";
    accuracy.metric = "latest_monitor_accuracy";
    accuracy.source = SloRule::Source::kGauge;
    accuracy.op = SloRule::Op::kBelow;
    accuracy.threshold = tau;
    accuracy.for_ticks = 3;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "moving-average estimate accuracy below tau=%.3f", tau);
    accuracy.description = desc;
    rules.push_back(std::move(accuracy));
  }
  if (p99_latency_ms > 0.0) {
    SloRule latency;
    latency.name = "estimate_p99_latency";
    latency.metric = "latest_stage_latency_ms";
    latency.labels = {{"stage", "estimate"}};
    latency.source = SloRule::Source::kHistogramQuantile;
    latency.quantile = 0.99;
    latency.op = SloRule::Op::kAbove;
    latency.threshold = p99_latency_ms;
    latency.for_ticks = 2;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "p99 estimate-stage latency above %.1fms", p99_latency_ms);
    latency.description = desc;
    rules.push_back(std::move(latency));
  }
  if (max_wal_lag_records > 0.0) {
    SloRule wal;
    wal.name = "wal_replay_lag";
    wal.metric = "persist_wal_lag_records";
    wal.source = SloRule::Source::kGauge;
    wal.op = SloRule::Op::kAbove;
    wal.threshold = max_wal_lag_records;
    wal.for_ticks = 2;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "WAL records past the last snapshot above %.0f "
                  "(recovery time at risk)",
                  max_wal_lag_records);
    wal.description = desc;
    rules.push_back(std::move(wal));
  }
  if (max_resident_slices > 0.0) {
    SloRule slices;
    slices.name = "resident_slices";
    slices.metric = "latest_store_slices_resident";
    slices.source = SloRule::Source::kGauge;
    slices.op = SloRule::Op::kAbove;
    slices.threshold = max_resident_slices;
    slices.for_ticks = 2;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "resident window slices above %.0f (eviction stalled)",
                  max_resident_slices);
    slices.description = desc;
    rules.push_back(std::move(slices));
  }
  if (max_active_drift >= 0.0) {
    SloRule drift;
    drift.name = "drift_active";
    drift.metric = "latest_drift_active_series";
    drift.source = SloRule::Source::kGauge;
    drift.op = SloRule::Op::kAbove;
    drift.threshold = max_active_drift;
    drift.for_ticks = 1;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "more than %.0f monitored series in active drift "
                  "(error or ingest distribution shifted)",
                  max_active_drift);
    drift.description = desc;
    rules.push_back(std::move(drift));
  }
  return rules;
}

std::vector<SloRule> ServeSloRules(double p99_query_latency_ms,
                                   double max_query_queue_depth) {
  std::vector<SloRule> rules;
  if (p99_query_latency_ms > 0.0) {
    SloRule latency;
    latency.name = "serve_p99_latency";
    latency.metric = "latest_serve_query_latency_ms";
    latency.source = SloRule::Source::kHistogramQuantile;
    latency.quantile = 0.99;
    latency.op = SloRule::Op::kAbove;
    latency.threshold = p99_query_latency_ms;
    latency.for_ticks = 2;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "p99 serve admission-to-response latency above %.1fms",
                  p99_query_latency_ms);
    latency.description = desc;
    rules.push_back(std::move(latency));
  }
  if (max_query_queue_depth > 0.0) {
    SloRule depth;
    depth.name = "serve_query_queue";
    depth.metric = "latest_serve_queue_depth";
    depth.labels = {{"class", "query"}};
    depth.source = SloRule::Source::kGauge;
    depth.op = SloRule::Op::kAbove;
    depth.threshold = max_query_queue_depth;
    depth.for_ticks = 1;
    char desc[128];
    std::snprintf(desc, sizeof(desc),
                  "serve query admission queue above %.0f "
                  "(batch thread falling behind)",
                  max_query_queue_depth);
    depth.description = desc;
    rules.push_back(std::move(depth));
  }
  return rules;
}

}  // namespace latest::obs
