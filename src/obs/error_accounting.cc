#include "obs/error_accounting.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics_registry.h"

namespace latest::obs {

namespace {

const char* KindLabel(estimators::EstimatorKind kind) {
  return estimators::EstimatorKindName(kind);
}

}  // namespace

std::vector<double> QErrorBuckets() {
  // q-error is >= 1 by construction; a geometric ladder keeps the p99
  // readable both for near-perfect estimators (1.0x..2x) and badly
  // mis-calibrated ones (100x+).
  return {1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0, 64.0,
          128.0, 256.0, 512.0, 1024.0};
}

ErrorAccountant::ErrorAccountant(double tau, double ewma_alpha)
    : tau_(tau), ewma_alpha_(std::clamp(ewma_alpha, 1e-4, 1.0)) {
  const size_t num_buckets = QErrorBuckets().size() + 1;  // +Inf overflow.
  for (Slot& slot : slots_) {
    slot.qerror_buckets.assign(num_buckets, 0);
  }
}

void ErrorAccountant::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    const auto kind = static_cast<estimators::EstimatorKind>(k);
    const std::string label = KindLabel(kind);
    Slot& slot = slots_[k];
    slot.samples_counter = registry->GetCounter(
        "latest_estimator_error_samples_total",
        "Ground-truth measurements folded into the error accountant",
        {{"estimator", label}});
    slot.ewma_relative_gauge = registry->GetGauge(
        "latest_estimator_error_ewma_relative",
        "EWMA relative error |est-actual|/max(actual,1) per estimator",
        {{"estimator", label}});
    slot.ewma_accuracy_gauge = registry->GetGauge(
        "latest_estimator_error_ewma_accuracy",
        "EWMA accuracy (1 - relative error, floored at 0) per estimator",
        {{"estimator", label}});
    slot.tau_violation_counter = registry->GetCounter(
        "latest_estimator_error_tau_violations_total",
        "Measurements whose accuracy fell below the switch threshold tau",
        {{"estimator", label}});
    slot.tau_violation_rate_gauge = registry->GetGauge(
        "latest_estimator_error_tau_violation_rate",
        "Lifetime fraction of measurements violating tau per estimator",
        {{"estimator", label}});
    slot.qerror_histogram = registry->GetHistogram(
        "latest_estimator_error_qerror",
        "q-error max(est/actual, actual/est) per estimator",
        QErrorBuckets(), {{"estimator", label}});
  }
}

double ErrorAccountant::RelativeError(double estimate, double actual) {
  const double est = std::max(estimate, 0.0);
  return std::abs(est - actual) / std::max(actual, 1.0);
}

double ErrorAccountant::QError(double estimate, double actual) {
  const double est = std::max(estimate, 1.0);
  const double act = std::max(actual, 1.0);
  return std::max(est / act, act / est);
}

void ErrorAccountant::Record(estimators::EstimatorKind kind, double estimate,
                             double actual) {
  const double rel = RelativeError(estimate, actual);
  const double accuracy = std::max(0.0, 1.0 - rel);
  const double qerror = QError(estimate, actual);

  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[static_cast<uint32_t>(kind)];
  if (slot.samples == 0) {
    slot.ewma_relative_error = rel;
    slot.ewma_accuracy = accuracy;
  } else {
    slot.ewma_relative_error += ewma_alpha_ * (rel - slot.ewma_relative_error);
    slot.ewma_accuracy += ewma_alpha_ * (accuracy - slot.ewma_accuracy);
  }
  ++slot.samples;
  if (accuracy < tau_) ++slot.tau_violations;
  slot.max_qerror = std::max(slot.max_qerror, qerror);

  const std::vector<double> bounds = QErrorBuckets();
  size_t bucket = bounds.size();  // Overflow by default.
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (qerror <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++slot.qerror_buckets[bucket];

  if (slot.samples_counter != nullptr) slot.samples_counter->Increment();
  if (slot.ewma_relative_gauge != nullptr) {
    slot.ewma_relative_gauge->Set(slot.ewma_relative_error);
  }
  if (slot.ewma_accuracy_gauge != nullptr) {
    slot.ewma_accuracy_gauge->Set(slot.ewma_accuracy);
  }
  if (accuracy < tau_ && slot.tau_violation_counter != nullptr) {
    slot.tau_violation_counter->Increment();
  }
  if (slot.tau_violation_rate_gauge != nullptr) {
    slot.tau_violation_rate_gauge->Set(static_cast<double>(slot.tau_violations) /
                                       static_cast<double>(slot.samples));
  }
  if (slot.qerror_histogram != nullptr) slot.qerror_histogram->Observe(qerror);
}

double ErrorAccountant::QErrorQuantileLocked(const Slot& slot,
                                             double q) const {
  if (slot.samples == 0) return 1.0;
  const std::vector<double> bounds = QErrorBuckets();
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(slot.samples)));
  uint64_t seen = 0;
  for (size_t i = 0; i < slot.qerror_buckets.size(); ++i) {
    seen += slot.qerror_buckets[i];
    if (seen >= rank) {
      // Overflow samples report the largest finite bound.
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

void ErrorAccountant::FillStats(const Slot& slot,
                                estimators::EstimatorKind kind,
                                EstimatorErrorStats* out) const {
  out->kind = kind;
  out->samples = slot.samples;
  out->ewma_relative_error = slot.ewma_relative_error;
  out->ewma_accuracy = slot.ewma_accuracy;
  out->tau_violations = slot.tau_violations;
  out->tau_violation_rate =
      slot.samples == 0 ? 0.0
                        : static_cast<double>(slot.tau_violations) /
                              static_cast<double>(slot.samples);
  out->qerror_p50 = QErrorQuantileLocked(slot, 0.50);
  out->qerror_p95 = QErrorQuantileLocked(slot, 0.95);
  out->qerror_p99 = QErrorQuantileLocked(slot, 0.99);
  out->max_qerror = slot.max_qerror;
}

EstimatorErrorStats ErrorAccountant::Stats(
    estimators::EstimatorKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  EstimatorErrorStats out;
  FillStats(slots_[static_cast<uint32_t>(kind)], kind, &out);
  return out;
}

std::vector<EstimatorErrorStats> ErrorAccountant::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EstimatorErrorStats> out;
  for (uint32_t k = 0; k < estimators::kNumEstimatorKinds; ++k) {
    if (slots_[k].samples == 0) continue;
    EstimatorErrorStats stats;
    FillStats(slots_[k], static_cast<estimators::EstimatorKind>(k), &stats);
    out.push_back(stats);
  }
  return out;
}

double ErrorAccountant::EwmaRelativeError(
    estimators::EstimatorKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[static_cast<uint32_t>(kind)].ewma_relative_error;
}

}  // namespace latest::obs
