#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include <sys/stat.h>

#include "estimators/estimator.h"
#include "obs/audit_trail.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "persist/file_io.h"
#include "util/json.h"

namespace latest::obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<size_t>(n, sizeof(buffer) - 1));
}

/// JSON number rendering that survives round-trip: integers print
/// without exponent, everything else with enough digits.
void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    AppendF(out, "%.0f", value);
  } else {
    AppendF(out, "%.17g", value);
  }
}

std::string RenderLabels(const LabelSet& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ",";
    out += key;
    out += "=";
    out += value;
  }
  return out;
}

const char* KindLabel(int32_t kind) {
  if (kind < 0 ||
      kind >= static_cast<int32_t>(estimators::kNumEstimatorKinds)) {
    return "-";
  }
  return estimators::EstimatorKindName(
      static_cast<estimators::EstimatorKind>(kind));
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  ring_.reserve(std::max<size_t>(1, options_.capacity));
}

void FlightRecorder::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  dumps_counter_ = registry->GetCounter(
      "latest_postmortem_dumps_total",
      "Flight-recorder postmortem bundles written");
}

void FlightRecorder::AttachEventLog(const EventLog* event_log) {
  std::lock_guard<std::mutex> lock(mu_);
  event_log_ = event_log;
}

void FlightRecorder::AttachAuditTrail(const SwitchAuditTrail* audit_trail) {
  std::lock_guard<std::mutex> lock(mu_);
  audit_trail_ = audit_trail;
}

void FlightRecorder::AttachSpans(const SpanCollector* spans) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_ = spans;
}

void FlightRecorder::AttachProfiler(const Profiler* profiler) {
  std::lock_guard<std::mutex> lock(mu_);
  profiler_ = profiler;
}

size_t FlightRecorder::frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::bundles_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_written_;
}

void FlightRecorder::Tick(int64_t timestamp, uint64_t query_count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry_ == nullptr) return;

  Frame frame;
  frame.timestamp = timestamp;
  frame.query_count = query_count;
  std::vector<std::pair<std::string, double>> counter_values;

  for (const std::string& prefix : options_.sample_prefixes) {
    for (const MetricsRegistry::Sample& sample : registry_->Samples(prefix)) {
      FrameSample out;
      out.name = sample.name;
      out.labels = RenderLabels(sample.labels);
      out.is_counter =
          sample.kind == MetricsRegistry::Sample::Kind::kCounter;
      if (out.is_counter) {
        // Counters become deltas against the previous frame so a bundle
        // reads as rates; the first frame reports the lifetime value.
        const std::string key = out.name + "{" + out.labels + "}";
        counter_values.emplace_back(key, sample.value);
        double previous = 0.0;
        for (const auto& [k, v] : last_counter_values_) {
          if (k == key) {
            previous = v;
            break;
          }
        }
        out.value = sample.value - previous;
      } else {
        out.value = sample.value;
      }
      frame.samples.push_back(std::move(out));
    }
  }
  last_counter_values_ = std::move(counter_values);

  const size_t capacity = std::max<size_t>(1, options_.capacity);
  if (ring_.size() < capacity) {
    ring_.push_back(std::move(frame));
  } else {
    ring_[next_] = std::move(frame);
    next_ = (next_ + 1) % capacity;
  }
}

std::string FlightRecorder::DumpJsonLocked(
    const std::string& reason,
    const std::vector<std::string>& annotations) const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"bundle\":\"latest_postmortem\",\"version\":";
  AppendF(&out, "%d", kPostmortemBundleVersion);
  out += ",\"reason\":\"";
  out += util::JsonEscape(reason);
  out += "\",\"annotations\":[";
  for (size_t i = 0; i < annotations.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += util::JsonEscape(annotations[i]);
    out += "\"";
  }
  out += "]";

  // ---- Frames, oldest first ----
  out += ",\"frames\":[";
  const size_t n = ring_.size();
  const size_t capacity = std::max<size_t>(1, options_.capacity);
  const size_t start = n < capacity ? 0 : next_;
  for (size_t i = 0; i < n; ++i) {
    const Frame& frame = ring_[(start + i) % n];
    if (i > 0) out += ",";
    AppendF(&out, "{\"t\":%" PRId64 ",\"q\":%" PRIu64 ",\"samples\":{",
            frame.timestamp, frame.query_count);
    for (size_t s = 0; s < frame.samples.size(); ++s) {
      const FrameSample& sample = frame.samples[s];
      if (s > 0) out += ",";
      out += "\"";
      out += util::JsonEscape(sample.name);
      if (!sample.labels.empty()) {
        out += "{";
        out += util::JsonEscape(sample.labels);
        out += "}";
      }
      if (sample.is_counter) out += "#delta";
      out += "\":";
      AppendNumber(&out, sample.value);
    }
    out += "}}";
  }
  out += "]";

  // ---- Recent events ----
  out += ",\"events\":[";
  if (event_log_ != nullptr) {
    std::vector<Event> events = event_log_->Snapshot();
    const size_t skip = events.size() > options_.max_events
                            ? events.size() - options_.max_events
                            : 0;
    bool first = true;
    for (size_t i = skip; i < events.size(); ++i) {
      const Event& event = events[i];
      if (!first) out += ",";
      first = false;
      AppendF(&out,
              "{\"t\":%" PRId64 ",\"q\":%" PRIu64
              ",\"type\":\"%s\",\"severity\":\"%s\"",
              event.timestamp, event.query_count, EventTypeName(event.type),
              SeverityName(SeverityOf(event.type)));
      AppendF(&out, ",\"phase\":%d,\"from\":\"%s\",\"to\":\"%s\"",
              event.phase, KindLabel(event.from_estimator),
              KindLabel(event.to_estimator));
      out += ",\"monitor_accuracy\":";
      AppendNumber(&out, event.monitor_accuracy);
      out += ",\"detail\":";
      AppendNumber(&out, event.detail);
      out += ",\"note\":\"";
      out += util::JsonEscape(event.note);
      out += "\"}";
    }
  }
  out += "]";

  // ---- Recent audit entries ----
  out += ",\"audit\":[";
  if (audit_trail_ != nullptr) {
    std::vector<SwitchAuditEntry> entries = audit_trail_->Snapshot();
    const size_t skip = entries.size() > options_.max_audit_entries
                            ? entries.size() - options_.max_audit_entries
                            : 0;
    bool first = true;
    for (size_t i = skip; i < entries.size(); ++i) {
      const SwitchAuditEntry& entry = entries[i];
      if (!first) out += ",";
      first = false;
      AppendF(&out,
              "{\"id\":%" PRIu64 ",\"t\":%" PRId64 ",\"q\":%" PRIu64
              ",\"trigger\":\"%s\"",
              entry.id, entry.timestamp, entry.query_count,
              entry.trigger.c_str());
      AppendF(&out, ",\"from\":\"%s\",\"chosen\":\"%s\",\"recommended\":\"%s\"",
              KindLabel(entry.from_estimator),
              KindLabel(entry.chosen_estimator),
              KindLabel(entry.recommended_estimator));
      out += ",\"monitor_accuracy\":";
      AppendNumber(&out, entry.monitor_accuracy);
      out += ",\"features\":[";
      for (size_t f = 0; f < entry.features.size(); ++f) {
        if (f > 0) out += ",";
        AppendNumber(&out, entry.features[f]);
      }
      out += "],\"scores\":{";
      bool first_score = true;
      for (size_t k = 0; k < entry.scores.size(); ++k) {
        if (entry.scores[k] == 0.0) continue;
        if (!first_score) out += ",";
        first_score = false;
        out += "\"";
        out += KindLabel(static_cast<int32_t>(k));
        out += "\":";
        AppendNumber(&out, entry.scores[k]);
      }
      out += "}";
      AppendF(&out, ",\"resolved\":%s", entry.resolved ? "true" : "false");
      if (entry.resolved) {
        AppendF(&out, ",\"counterfactual_best\":\"%s\",\"regret\":",
                KindLabel(entry.counterfactual_best));
        AppendNumber(&out, entry.regret);
        out += ",\"posthoc_accuracy\":{";
        bool first_acc = true;
        for (size_t k = 0; k < entry.posthoc_accuracy.size(); ++k) {
          if (entry.posthoc_accuracy[k] < 0.0) continue;
          if (!first_acc) out += ",";
          first_acc = false;
          out += "\"";
          out += KindLabel(static_cast<int32_t>(k));
          out += "\":";
          AppendNumber(&out, entry.posthoc_accuracy[k]);
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += "]";

  // ---- Regret summary ----
  if (audit_trail_ != nullptr) {
    const SwitchAuditTrail::Summary summary = audit_trail_->GetSummary();
    AppendF(&out,
            ",\"audit_summary\":{\"recorded\":%" PRIu64
            ",\"resolved\":%" PRIu64 ",\"optimal\":%" PRIu64
            ",\"cumulative_regret\":",
            summary.total_recorded, summary.total_resolved,
            summary.optimal_choices);
    AppendNumber(&out, summary.cumulative_regret);
    out += "}";
  }

  // ---- Span summaries (newest, name + duration only) ----
  out += ",\"spans\":[";
  if (spans_ != nullptr) {
    std::vector<SpanRecord> records = spans_->Snapshot();
    const size_t skip = records.size() > options_.max_spans
                            ? records.size() - options_.max_spans
                            : 0;
    bool first = true;
    for (size_t i = skip; i < records.size(); ++i) {
      const SpanRecord& record = records[i];
      if (!first) out += ",";
      first = false;
      AppendF(&out,
              "{\"name\":\"%s\",\"start_ns\":%" PRId64
              ",\"duration_ns\":%" PRId64 ",\"tid\":%u}",
              record.name != nullptr ? record.name : "", record.start_ns,
              record.duration_ns, record.tid);
    }
  }
  out += "]";

  // ---- Most recent CPU profile (folded stacks; already collected, so
  // dumping never blocks for a sampling window) ----
  if (profiler_ != nullptr) {
    const std::string folded = profiler_->LastFolded();
    if (!folded.empty()) {
      AppendF(&out, ",\"profile\":{\"collections\":%" PRIu64
                    ",\"samples\":%" PRIu64 ",\"folded\":",
              profiler_->collections(), profiler_->last_sample_count());
      out += "\"";
      out += util::JsonEscape(folded);
      out += "\"}";
    }
  }
  out += "}";
  return out;
}

std::string FlightRecorder::DumpJson(
    const std::string& reason,
    const std::vector<std::string>& annotations) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DumpJsonLocked(reason, annotations);
}

util::Result<std::string> FlightRecorder::WriteBundle(
    const std::string& dir, const std::string& reason,
    const std::vector<std::string>& annotations) {
  std::string body;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body = DumpJsonLocked(reason, annotations);
    seq = ++bundles_written_;
  }
  // Best-effort create; AtomicWriteFile reports the real failure if the
  // directory is still unusable.
  ::mkdir(dir.c_str(), 0755);
  char name[128];
  std::snprintf(name, sizeof(name), "postmortem-%s-%" PRIu64 ".json",
                reason.c_str(), seq);
  const std::string path = dir + "/" + name;
  const util::Status status = persist::AtomicWriteFile(path, body);
  if (!status.ok()) return status;
  if (dumps_counter_ != nullptr) dumps_counter_->Increment();
  return path;
}

}  // namespace latest::obs
