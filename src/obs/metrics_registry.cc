#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace latest::obs {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

// --------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket > 0 &&
        static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  // Everything beyond the last finite bound: the best statement the
  // histogram can make is "at least the largest bound".
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ex_mu_);
  ex_ring_.clear();
  ex_next_ = 0;
}

void Histogram::EnableExemplars(size_t capacity, double quantile) {
  std::lock_guard<std::mutex> lock(ex_mu_);
  ex_capacity_ = std::max<size_t>(1, capacity);
  ex_quantile_ = std::clamp(quantile, 0.0, 1.0);
  ex_ring_.clear();
  ex_ring_.reserve(ex_capacity_);
  ex_next_ = 0;
  ex_enabled_.store(true, std::memory_order_release);
}

void Histogram::ObserveWithExemplar(double value, uint64_t trace_id,
                                    uint64_t request_id) {
  Observe(value);
  if (!ex_enabled_.load(std::memory_order_acquire)) return;
  // Capture tail samples only: at or above the configured quantile of
  // the distribution seen so far. The first handful always capture so a
  // short run still has something to show.
  if (count() >= 16 && value < Quantile(ex_quantile_)) return;
  std::lock_guard<std::mutex> lock(ex_mu_);
  const Exemplar exemplar{value, trace_id, request_id};
  if (ex_ring_.size() < ex_capacity_) {
    ex_ring_.push_back(exemplar);
  } else {
    ex_ring_[ex_next_] = exemplar;
  }
  ex_next_ = (ex_next_ + 1) % ex_capacity_;
}

std::vector<Histogram::Exemplar> Histogram::Exemplars() const {
  std::lock_guard<std::mutex> lock(ex_mu_);
  std::vector<Exemplar> out;
  out.reserve(ex_ring_.size());
  if (ex_ring_.size() < ex_capacity_) {
    out = ex_ring_;
  } else {
    out.insert(out.end(), ex_ring_.begin() + static_cast<ptrdiff_t>(ex_next_),
               ex_ring_.end());
    out.insert(out.end(), ex_ring_.begin(),
               ex_ring_.begin() + static_cast<ptrdiff_t>(ex_next_));
  }
  return out;
}

std::vector<double> Histogram::LatencyBucketsMs() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,  0.5,
          1.0,   2.0,   5.0,   10.0, 20.0, 50.0, 100.0, 250.0, 1000.0};
}

std::vector<double> Histogram::UnitIntervalBuckets(uint32_t num_buckets) {
  std::vector<double> bounds;
  bounds.reserve(num_buckets);
  for (uint32_t i = 1; i <= num_buckets; ++i) {
    bounds.push_back(static_cast<double>(i) /
                     static_cast<double>(num_buckets));
  }
  return bounds;
}

// --------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(MetricType type,
                                                    std::string_view name,
                                                    const LabelSet& labels) {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      // Re-registering an existing (name, labels) under a different kind
      // is a programming error.
      assert(entry->type == type);
      (void)type;
      return entry.get();
    }
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::FindAnyOrNull(
    std::string_view name, const LabelSet& labels) const {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) return entry.get();
  }
  return nullptr;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindAnyOrNull(name, labels);
  return entry != nullptr ? entry->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name,
                                        const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindAnyOrNull(name, labels);
  return entry != nullptr ? entry->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name, const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindAnyOrNull(name, labels);
  return entry != nullptr ? entry->histogram.get() : nullptr;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples(
    std::string_view name_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& entry : entries_) {
    if (entry->name.compare(0, name_prefix.size(), name_prefix) != 0) {
      continue;
    }
    Sample sample;
    sample.name = entry->name;
    sample.labels = entry->labels;
    switch (entry->type) {
      case MetricType::kCounter:
        sample.kind = Sample::Kind::kCounter;
        sample.value = static_cast<double>(entry->counter->value());
        break;
      case MetricType::kGauge:
        sample.kind = Sample::Kind::kGauge;
        sample.value = entry->gauge->value();
        break;
      case MetricType::kHistogram:
        sample.kind = Sample::Kind::kHistogram;
        sample.value = static_cast<double>(entry->histogram->count());
        sample.histogram = entry->histogram.get();
        break;
    }
    out.push_back(std::move(sample));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Sample& a, const Sample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(MetricType::kCounter, name, labels)) {
    return existing->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kCounter;
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->labels = std::move(labels);
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(MetricType::kGauge, name, labels)) {
    return existing->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kGauge;
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->labels = std::move(labels);
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> upper_bounds,
                                         LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = FindOrNull(MetricType::kHistogram, name, labels)) {
    return existing->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->type = MetricType::kHistogram;
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->labels = std::move(labels);
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

namespace {

void AppendEscaped(std::string_view raw, std::string* out) {
  for (const char c : raw) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// HELP text escaping per the exposition format: only backslash and line
/// feed (double quotes stay literal in help lines).
void AppendHelpEscaped(std::string_view raw, std::string* out) {
  for (const char c : raw) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// Renders `{k1="v1",k2="v2"}`; `extra` appends one more pair (used for
/// the `le` bound of histogram buckets). Empty label sets render nothing.
std::string RenderLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(value, &out);
    out += "\"";
  };
  for (const auto& [key, value] : labels) append(key, value);
  if (extra != nullptr) append(extra->first, extra->second);
  out += "}";
  return out;
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

std::string FormatU64(uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(v));
  return buffer;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(entry.get());
  // Stable-sort by (family, label set): families group so # HELP/# TYPE
  // appear exactly once each, and instances within a family expose in a
  // registration-order-independent sequence.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry* a, const Entry* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->labels < b->labels;
                   });

  std::string out;
  const std::string* previous_family = nullptr;
  for (const Entry* entry : sorted) {
    if (previous_family == nullptr || *previous_family != entry->name) {
      out += "# HELP " + entry->name + " ";
      AppendHelpEscaped(entry->help, &out);
      out += "\n";
      out += "# TYPE " + entry->name + " ";
      switch (entry->type) {
        case MetricType::kCounter:
          out += "counter";
          break;
        case MetricType::kGauge:
          out += "gauge";
          break;
        case MetricType::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
      previous_family = &entry->name;
    }
    switch (entry->type) {
      case MetricType::kCounter:
        out += entry->name + RenderLabels(entry->labels, nullptr) + " " +
               FormatU64(entry->counter->value()) + "\n";
        break;
      case MetricType::kGauge:
        out += entry->name + RenderLabels(entry->labels, nullptr) + " " +
               FormatDouble(entry->gauge->value()) + "\n";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          const std::pair<std::string, std::string> le{
              "le", FormatDouble(h.upper_bounds()[i])};
          out += entry->name + "_bucket" + RenderLabels(entry->labels, &le) +
                 " " + FormatU64(cumulative) + "\n";
        }
        const std::pair<std::string, std::string> le_inf{"le", "+Inf"};
        out += entry->name + "_bucket" + RenderLabels(entry->labels, &le_inf) +
               " " + FormatU64(h.count()) + "\n";
        out += entry->name + "_sum" + RenderLabels(entry->labels, nullptr) +
               " " + FormatDouble(h.sum()) + "\n";
        out += entry->name + "_count" + RenderLabels(entry->labels, nullptr) +
               " " + FormatU64(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const auto& entry : entries_) {
    if (!first_metric) out += ",";
    first_metric = false;
    out += "{\"name\":\"";
    AppendEscaped(entry->name, &out);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : entry->labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"";
      AppendEscaped(key, &out);
      out += "\":\"";
      AppendEscaped(value, &out);
      out += "\"";
    }
    out += "},";
    switch (entry->type) {
      case MetricType::kCounter:
        out += "\"type\":\"counter\",\"value\":" +
               FormatU64(entry->counter->value());
        break;
      case MetricType::kGauge:
        out += "\"type\":\"gauge\",\"value\":" +
               FormatDouble(entry->gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        out += "\"type\":\"histogram\",\"count\":" + FormatU64(h.count()) +
               ",\"sum\":" + FormatDouble(h.sum()) +
               ",\"p50\":" + FormatDouble(h.Quantile(0.50)) +
               ",\"p95\":" + FormatDouble(h.Quantile(0.95)) +
               ",\"p99\":" + FormatDouble(h.Quantile(0.99)) + ",\"buckets\":[";
        for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"le\":" + FormatDouble(h.upper_bounds()[i]) +
                 ",\"count\":" + FormatU64(h.bucket_count(i)) + "}";
        }
        out += ",{\"le\":\"+Inf\",\"count\":" +
               FormatU64(h.bucket_count(h.upper_bounds().size())) + "}]";
        if (h.exemplars_enabled()) {
          out += ",\"exemplars\":[";
          bool first_exemplar = true;
          for (const auto& exemplar : h.Exemplars()) {
            if (!first_exemplar) out += ",";
            first_exemplar = false;
            out += "{\"value\":" + FormatDouble(exemplar.value) +
                   ",\"trace_id\":" + FormatU64(exemplar.trace_id) +
                   ",\"request_id\":" + FormatU64(exemplar.request_id) + "}";
          }
          out += "]";
        }
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace latest::obs
