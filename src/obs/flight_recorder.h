// Black-box flight recorder and postmortem bundles.
//
// Aircraft-style black box for the estimation plane: a bounded ring of
// periodic *frames* — each a timestamped capture of selected metric
// families (counters rendered as deltas against the previous frame so a
// bundle shows rates, not lifetime totals). On a trigger — SLO breach,
// fatal signal, operator request — the recorder serialises the retained
// frames together with the recent event log, switch-audit entries, and
// span summaries into one self-describing JSON bundle, written with the
// persist layer's atomic-file helper so a crash mid-dump never leaves a
// torn file. `tools/latest_postmortem` pretty-prints a bundle; tests
// parse it back with util/json.h.
//
// Strictly observational; the recorder never influences the lifecycle
// and its state is never persisted.

#ifndef LATEST_OBS_FLIGHT_RECORDER_H_
#define LATEST_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h
class EventLog;         // obs/event_log.h
class SwitchAuditTrail;  // obs/audit_trail.h
class SpanCollector;     // obs/span.h
class Profiler;          // obs/profiler.h

/// Bundle format version; bump on incompatible layout changes. The
/// version is embedded in every bundle so inspectors can refuse or
/// adapt instead of mis-reading.
inline constexpr int kPostmortemBundleVersion = 1;

class FlightRecorder {
 public:
  struct Options {
    /// Frames retained (ring).
    size_t capacity = 120;
    /// Metric family-name prefixes captured per frame. Empty prefix
    /// captures everything (bundle size scales with registry size).
    std::vector<std::string> sample_prefixes = {"latest_"};
    /// Events / audit entries / spans included in a bundle (newest).
    size_t max_events = 256;
    size_t max_audit_entries = 64;
    size_t max_spans = 128;
  };

  FlightRecorder();
  explicit FlightRecorder(Options options);

  /// Data sources; all optional, all must outlive the recorder.
  void AttachMetrics(MetricsRegistry* registry);
  void AttachEventLog(const EventLog* event_log);
  void AttachAuditTrail(const SwitchAuditTrail* audit_trail);
  void AttachSpans(const SpanCollector* spans);
  /// Bundles include the profiler's most recent folded CPU profile
  /// (LastFolded — already collected; a dump never blocks for a
  /// sampling window).
  void AttachProfiler(const Profiler* profiler);

  /// Captures one frame: the current values of the selected metric
  /// families, stamped with stream time and query count. Counters are
  /// stored as deltas against the previous frame.
  void Tick(int64_t timestamp, uint64_t query_count);

  /// Frames currently retained.
  size_t frames() const;

  /// Serialises the retained frames plus recent events, audit entries,
  /// and span summaries into one self-describing JSON document.
  /// `reason` tags the trigger ("slo_breach", "signal", "shutdown",
  /// "manual"); `annotations` (optional "key=value" strings) travel
  /// verbatim in the bundle header.
  std::string DumpJson(const std::string& reason,
                       const std::vector<std::string>& annotations = {}) const;

  /// DumpJson + atomic write to `<dir>/postmortem-<reason>-<seq>.json`.
  /// Returns the written path. Creates `dir` when missing.
  util::Result<std::string> WriteBundle(
      const std::string& dir, const std::string& reason,
      const std::vector<std::string>& annotations = {});

  /// Bundles written over the recorder's lifetime.
  uint64_t bundles_written() const;

 private:
  struct FrameSample {
    std::string name;
    std::string labels;  // Rendered "k=v,k=v" (empty when unlabelled).
    double value = 0.0;
    bool is_counter = false;
  };
  struct Frame {
    int64_t timestamp = 0;
    uint64_t query_count = 0;
    std::vector<FrameSample> samples;
  };

  std::string DumpJsonLocked(const std::string& reason,
                             const std::vector<std::string>& annotations)
      const;

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Frame> ring_;
  size_t next_ = 0;
  /// Raw (non-delta) counter values of the latest frame, keyed by
  /// name + labels, for delta computation.
  std::vector<std::pair<std::string, double>> last_counter_values_;
  uint64_t bundles_written_ = 0;
  MetricsRegistry* registry_ = nullptr;
  const EventLog* event_log_ = nullptr;
  const SwitchAuditTrail* audit_trail_ = nullptr;
  const SpanCollector* spans_ = nullptr;
  const Profiler* profiler_ = nullptr;
  Counter* dumps_counter_ = nullptr;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_FLIGHT_RECORDER_H_
