#include "obs/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"

namespace latest::obs {

PageHinkley::PageHinkley(double delta, double lambda, uint64_t min_samples)
    : delta_(delta), lambda_(lambda), min_samples_(std::max<uint64_t>(2, min_samples)) {}

bool PageHinkley::Update(double value) {
  ++samples_;
  mean_ += (value - mean_) / static_cast<double>(samples_);
  // Deviation above the running mean, minus the tolerated slack. The
  // cumulative sum only grows while samples sit persistently above the
  // historical mean; its running minimum anchors the test.
  cumulative_ += value - mean_ - delta_;
  minimum_ = std::min(minimum_, cumulative_);
  if (samples_ < min_samples_) return false;
  return cumulative_ - minimum_ > lambda_;
}

void PageHinkley::Reset() {
  samples_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
}

AdwinLite::AdwinLite(double confidence, size_t max_window,
                     uint64_t min_samples)
    : confidence_(std::clamp(confidence, 1e-9, 0.5)),
      max_window_(std::max<size_t>(8, max_window)),
      min_samples_(std::max<uint64_t>(8, min_samples)) {}

double AdwinLite::window_mean() const {
  return window_.empty()
             ? 0.0
             : window_sum_ / static_cast<double>(window_.size());
}

bool AdwinLite::Update(double value) {
  ++samples_;
  window_.push_back(value);
  window_sum_ += value;
  if (window_.size() > max_window_) {
    window_sum_ -= window_.front();
    window_.pop_front();
  }
  const size_t n = window_.size();
  if (samples_ < min_samples_ || n < 2 * 4) return false;

  // Check exponentially spaced cuts from the recent end: the newest 4,
  // 8, 16, ... samples against everything older. Exponential spacing
  // keeps the per-update cost at O(log n) mean computations while still
  // bracketing any change point within a factor of two.
  double suffix_sum = 0.0;
  size_t suffix_len = 0;
  size_t next_check = 4;
  const double ln_term = std::log(2.0 / confidence_);
  for (size_t i = 0; i < n - 4; ++i) {
    suffix_sum += window_[n - 1 - i];
    ++suffix_len;
    if (suffix_len != next_check) continue;
    next_check *= 2;
    const size_t prefix_len = n - suffix_len;
    const double suffix_mean =
        suffix_sum / static_cast<double>(suffix_len);
    const double prefix_mean = (window_sum_ - suffix_sum) /
                               static_cast<double>(prefix_len);
    const double inv_harmonic = 1.0 / static_cast<double>(suffix_len) +
                                1.0 / static_cast<double>(prefix_len);
    const double eps = std::sqrt(ln_term / 2.0 * inv_harmonic);
    if (std::abs(suffix_mean - prefix_mean) > eps) {
      // Drop the stale prefix: the window restarts on the post-change
      // distribution, which re-arms the detector without a hard reset.
      while (window_.size() > suffix_len) {
        window_sum_ -= window_.front();
        window_.pop_front();
      }
      return true;
    }
  }
  return false;
}

void AdwinLite::Reset() {
  window_.clear();
  window_sum_ = 0.0;
  samples_ = 0;
}

DriftMonitor::DriftMonitor() : DriftMonitor(Options()) {}

DriftMonitor::DriftMonitor(Options options) : options_(options) {}

DriftMonitor::Series* DriftMonitor::GetSeriesLocked(const std::string& name) {
  for (auto& [existing, series] : series_) {
    if (existing == name) return &series;
  }
  series_.emplace_back(
      name, Series{PageHinkley(options_.ph_delta, options_.ph_lambda,
                               options_.ph_min_samples),
                   AdwinLite(options_.adwin_confidence,
                             options_.adwin_max_window,
                             options_.adwin_min_samples)});
  Series* series = &series_.back().second;
  if (registry_ != nullptr) {
    series->detections_counter = registry_->GetCounter(
        "latest_drift_detections_total",
        "Drift detections per monitored series (cooldown-coalesced)",
        {{"series", name}});
    series->active_gauge = registry_->GetGauge(
        "latest_drift_active",
        "1 while the series is inside its post-detection cooldown",
        {{"series", name}});
  }
  return series;
}

void DriftMonitor::AddSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GetSeriesLocked(name);
}

void DriftMonitor::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  active_series_gauge_ = registry->GetGauge(
      "latest_drift_active_series",
      "Monitored series currently inside their post-detection cooldown");
  for (auto& [name, series] : series_) {
    series.detections_counter = registry->GetCounter(
        "latest_drift_detections_total",
        "Drift detections per monitored series (cooldown-coalesced)",
        {{"series", name}});
    series.active_gauge = registry->GetGauge(
        "latest_drift_active",
        "1 while the series is inside its post-detection cooldown",
        {{"series", name}});
  }
}

void DriftMonitor::AttachEventLog(EventLog* event_log) {
  std::lock_guard<std::mutex> lock(mu_);
  event_log_ = event_log;
}

void DriftMonitor::ExportActiveLocked() {
  if (active_series_gauge_ == nullptr) return;
  uint64_t active = 0;
  for (const auto& [name, series] : series_) {
    if (series.cooldown_left > 0) ++active;
  }
  active_series_gauge_->Set(static_cast<double>(active));
}

bool DriftMonitor::Observe(const std::string& series_name, double value,
                           int64_t timestamp, uint64_t query_count) {
  EventLog* event_log = nullptr;
  Event event;
  bool detected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Series* series = GetSeriesLocked(series_name);
    ++series->samples;

    const bool ph_fired = series->ph.Update(value);
    const bool adwin_fired = series->adwin.Update(value);
    if (ph_fired) series->ph.Reset();  // Re-arm on the new regime.

    if (series->cooldown_left > 0) {
      // Coalesce: a sustained shift raises one detection, not one per
      // sample. The cooldown re-extends while detectors keep firing so
      // `active` reflects "still drifting", and decays once quiet.
      --series->cooldown_left;
      if (ph_fired || adwin_fired) {
        series->cooldown_left = options_.cooldown_samples;
      }
      if (series->cooldown_left == 0 && series->active_gauge != nullptr) {
        series->active_gauge->Set(0.0);
      }
      ExportActiveLocked();
      return false;
    }

    if (!ph_fired && !adwin_fired) return false;

    detected = true;
    ++series->detections;
    series->cooldown_left = options_.cooldown_samples;
    if (series->detections_counter != nullptr) {
      series->detections_counter->Increment();
    }
    if (series->active_gauge != nullptr) series->active_gauge->Set(1.0);
    ExportActiveLocked();

    DriftDetection detection;
    detection.series = series_name;
    detection.detector = ph_fired ? "page_hinkley" : "adwin";
    detection.value = value;
    detection.sample_index = series->samples;
    detection.timestamp = timestamp;
    detection.query_count = query_count;
    pending_.push_back(detection);

    if (event_log_ != nullptr) {
      event.type = EventType::kDriftDetected;
      event.timestamp = timestamp;
      event.query_count = query_count;
      event.detail = value;
      event.note = series_name + "/" + detection.detector;
      event_log = event_log_;
    }
  }
  // Append outside mu_ (the event log has its own lock; keeps lock
  // ordering trivially acyclic).
  if (event_log != nullptr) event_log->Append(event);
  return detected;
}

std::vector<DriftDetection> DriftMonitor::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DriftDetection> out;
  out.swap(pending_);
  return out;
}

uint64_t DriftMonitor::detections(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, series] : series_) {
    if (existing == name) return series.detections;
  }
  return 0;
}

uint64_t DriftMonitor::active_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t active = 0;
  for (const auto& [name, series] : series_) {
    if (series.cooldown_left > 0) ++active;
  }
  return active;
}

}  // namespace latest::obs
