// Structured event log of the LATEST lifecycle.
//
// The switch log of the original module answered "when did LATEST
// switch"; an operator also needs "why": which thresholds were crossed,
// what the learning model recommended, which pre-fills were started and
// then abandoned, and when the model was dropped for retraining. Every
// lifecycle decision appends one typed Event to a bounded ring; the ring
// overwrites its oldest entries so a long-running deployment holds the
// recent decision history at a fixed memory cost.

#ifndef LATEST_OBS_EVENT_LOG_H_
#define LATEST_OBS_EVENT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h

/// Lifecycle event kinds, ordered roughly by when they appear in a
/// stream's life.
enum class EventType : uint32_t {
  /// Phase machine advanced (warmup -> pretraining -> incremental).
  kPhaseChanged = 0,
  /// Moving accuracy fell below the pre-fill threshold tau/beta.
  kAccuracyBelowPrefillThreshold = 1,
  /// Moving accuracy fell below the switch threshold tau.
  kAccuracyBelowSwitchThreshold = 2,
  /// Moving accuracy recovered above the pre-fill threshold.
  kAccuracyRecovered = 3,
  /// A replacement estimator started pre-filling (Section V-D).
  kPrefillStarted = 4,
  /// Accuracy recovered before the switch fired; candidate discarded.
  kPrefillAborted = 5,
  /// The active estimator was switched.
  kSwitched = 6,
  /// The automatic retraining trigger dropped the learning model.
  kModelRetrained = 7,
  /// The model was reset manually (ResetModel / failed restore).
  kModelReset = 8,
  /// A declarative SLO rule started breaching (obs/slo_monitor.h).
  kSloBreached = 9,
  /// A breached SLO rule returned inside its threshold.
  kSloRecovered = 10,
  /// A drift detector fired over an error or ingest-feature series
  /// (obs/drift_detector.h). `note` names the series.
  kDriftDetected = 11,
  /// The flight recorder wrote a postmortem bundle; `note` holds the
  /// trigger reason ("slo_breach", "signal", "shutdown", ...).
  kPostmortemDumped = 12,
};

/// Stable display name ("phase_changed", "prefill_started", ...).
const char* EventTypeName(EventType type);

/// Coarse severity classes for filtering the event stream. Each
/// EventType maps to exactly one severity (SeverityOf), so severity is
/// derived, never stored.
enum class EventSeverity : uint32_t {
  kInfo = 0,     // Routine lifecycle progress (phase change, recovery).
  kWarning = 1,  // Degradation signals (threshold crossings, drift).
  kError = 2,    // Breaches and forced resets (SLO breach, model reset).
};

constexpr size_t kNumEventSeverities = 3;

/// The fixed severity class of an event type.
EventSeverity SeverityOf(EventType type);

/// Stable display name ("info", "warning", "error").
const char* SeverityName(EventSeverity severity);

/// Parses a severity name (as produced by SeverityName); returns false
/// on unknown input. Used by the /statusz ?severity= query filter.
bool ParseSeverity(const std::string& text, EventSeverity* out);

/// One lifecycle event. Estimator fields hold EstimatorKind indices, or
/// -1 when not applicable, so the log stays a plain-data type without a
/// dependency on the core module headers.
struct Event {
  EventType type = EventType::kPhaseChanged;
  /// Stream event time (ms) when the event fired.
  int64_t timestamp = 0;
  /// Queries answered over the module lifetime when the event fired.
  uint64_t query_count = 0;
  /// Lifecycle phase at emission (0 warmup, 1 pretraining, 2 incremental).
  int32_t phase = 0;
  /// Estimator the event moves away from (-1 when not applicable).
  int32_t from_estimator = -1;
  /// Estimator the event moves toward (-1 when not applicable).
  int32_t to_estimator = -1;
  /// The learning model's recommendation at decision time (-1 when the
  /// decision did not consult the model).
  int32_t recommended = -1;
  /// Moving-average accuracy of the monitor at emission.
  double monitor_accuracy = 0.0;
  /// Event-specific payload: the crossed threshold for threshold events,
  /// the previous phase for kPhaseChanged, mean error for retrains, the
  /// observed series value for SLO events.
  double detail = 0.0;
  /// Free-form tag: the rule name for SLO events, empty otherwise.
  std::string note;
};

/// Bounded ring of lifecycle events; appends overwrite the oldest entry
/// once `capacity` is reached. Thread-safe (event rates are low).
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);

  /// Mirrors append/drop volumes into `latest_events_appended_total` and
  /// `latest_events_dropped_total` so bounded-ring loss is visible on
  /// /metrics instead of silent. The registry must outlive the log.
  void AttachMetrics(MetricsRegistry* registry);

  void Append(const Event& event);

  size_t capacity() const { return capacity_; }

  /// Events currently retained (<= capacity).
  size_t size() const;

  /// Events appended over the log's lifetime, including overwritten ones.
  uint64_t total_appended() const;

  /// Events overwritten by ring wraparound (lost to Snapshot).
  uint64_t dropped() const;

  /// Events of one severity overwritten by ring wraparound. Lets the
  /// /statusz severity filter report what its view is missing.
  uint64_t dropped_by_severity(EventSeverity severity) const;

  /// Retained events, oldest first.
  std::vector<Event> Snapshot() const;

  /// Retained events of one type, oldest first.
  std::vector<Event> SnapshotOfType(EventType type) const;

  /// Retained events of one severity, oldest first.
  std::vector<Event> SnapshotOfSeverity(EventSeverity severity) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  size_t capacity_;
  size_t next_ = 0;     // Ring write position.
  uint64_t total_ = 0;  // Lifetime appends.
  uint64_t dropped_by_severity_[kNumEventSeverities] = {0, 0, 0};
  Counter* appended_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
};

/// One-line human-readable rendering of an event.
std::string FormatEvent(const Event& event);

/// Multi-line rendering of the whole retained log, oldest first.
std::string FormatEventLog(const EventLog& log);

}  // namespace latest::obs

#endif  // LATEST_OBS_EVENT_LOG_H_
