// Structured event log of the LATEST lifecycle.
//
// The switch log of the original module answered "when did LATEST
// switch"; an operator also needs "why": which thresholds were crossed,
// what the learning model recommended, which pre-fills were started and
// then abandoned, and when the model was dropped for retraining. Every
// lifecycle decision appends one typed Event to a bounded ring; the ring
// overwrites its oldest entries so a long-running deployment holds the
// recent decision history at a fixed memory cost.

#ifndef LATEST_OBS_EVENT_LOG_H_
#define LATEST_OBS_EVENT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace latest::obs {

class Counter;          // obs/metrics_registry.h
class MetricsRegistry;  // obs/metrics_registry.h

/// Lifecycle event kinds, ordered roughly by when they appear in a
/// stream's life.
enum class EventType : uint32_t {
  /// Phase machine advanced (warmup -> pretraining -> incremental).
  kPhaseChanged = 0,
  /// Moving accuracy fell below the pre-fill threshold tau/beta.
  kAccuracyBelowPrefillThreshold = 1,
  /// Moving accuracy fell below the switch threshold tau.
  kAccuracyBelowSwitchThreshold = 2,
  /// Moving accuracy recovered above the pre-fill threshold.
  kAccuracyRecovered = 3,
  /// A replacement estimator started pre-filling (Section V-D).
  kPrefillStarted = 4,
  /// Accuracy recovered before the switch fired; candidate discarded.
  kPrefillAborted = 5,
  /// The active estimator was switched.
  kSwitched = 6,
  /// The automatic retraining trigger dropped the learning model.
  kModelRetrained = 7,
  /// The model was reset manually (ResetModel / failed restore).
  kModelReset = 8,
  /// A declarative SLO rule started breaching (obs/slo_monitor.h).
  kSloBreached = 9,
  /// A breached SLO rule returned inside its threshold.
  kSloRecovered = 10,
};

/// Stable display name ("phase_changed", "prefill_started", ...).
const char* EventTypeName(EventType type);

/// One lifecycle event. Estimator fields hold EstimatorKind indices, or
/// -1 when not applicable, so the log stays a plain-data type without a
/// dependency on the core module headers.
struct Event {
  EventType type = EventType::kPhaseChanged;
  /// Stream event time (ms) when the event fired.
  int64_t timestamp = 0;
  /// Queries answered over the module lifetime when the event fired.
  uint64_t query_count = 0;
  /// Lifecycle phase at emission (0 warmup, 1 pretraining, 2 incremental).
  int32_t phase = 0;
  /// Estimator the event moves away from (-1 when not applicable).
  int32_t from_estimator = -1;
  /// Estimator the event moves toward (-1 when not applicable).
  int32_t to_estimator = -1;
  /// The learning model's recommendation at decision time (-1 when the
  /// decision did not consult the model).
  int32_t recommended = -1;
  /// Moving-average accuracy of the monitor at emission.
  double monitor_accuracy = 0.0;
  /// Event-specific payload: the crossed threshold for threshold events,
  /// the previous phase for kPhaseChanged, mean error for retrains, the
  /// observed series value for SLO events.
  double detail = 0.0;
  /// Free-form tag: the rule name for SLO events, empty otherwise.
  std::string note;
};

/// Bounded ring of lifecycle events; appends overwrite the oldest entry
/// once `capacity` is reached. Thread-safe (event rates are low).
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);

  /// Mirrors append/drop volumes into `latest_events_appended_total` and
  /// `latest_events_dropped_total` so bounded-ring loss is visible on
  /// /metrics instead of silent. The registry must outlive the log.
  void AttachMetrics(MetricsRegistry* registry);

  void Append(const Event& event);

  size_t capacity() const { return capacity_; }

  /// Events currently retained (<= capacity).
  size_t size() const;

  /// Events appended over the log's lifetime, including overwritten ones.
  uint64_t total_appended() const;

  /// Events overwritten by ring wraparound (lost to Snapshot).
  uint64_t dropped() const;

  /// Retained events, oldest first.
  std::vector<Event> Snapshot() const;

  /// Retained events of one type, oldest first.
  std::vector<Event> SnapshotOfType(EventType type) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  size_t capacity_;
  size_t next_ = 0;     // Ring write position.
  uint64_t total_ = 0;  // Lifetime appends.
  Counter* appended_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
};

/// One-line human-readable rendering of an event.
std::string FormatEvent(const Event& event);

/// Multi-line rendering of the whole retained log, oldest first.
std::string FormatEventLog(const EventLog& log);

}  // namespace latest::obs

#endif  // LATEST_OBS_EVENT_LOG_H_
