// Minimal dependency-free HTTP/1.1 exposition server.
//
// One dedicated thread accepts loopback connections and serves registered
// GET handlers — enough protocol for `curl`, Prometheus scrapes, and a
// browser, and nothing more: requests are parsed permissively (request
// line + headers, bodies ignored), every response carries Content-Length
// and `Connection: close`, and malformed input yields a 400 instead of
// tearing the connection down. Connections are handled serially on the
// server thread; concurrent scrapers queue in the listen backlog, which
// bounds the server's resource cost at one socket regardless of client
// count. Receive/send timeouts keep a stalled client from wedging the
// exposition plane.
//
// Handlers run on the server thread, concurrently with the instrumented
// workload — everything they touch must be thread-safe (the metrics
// registry, event log, trace collectors, and SLO monitor all are).

#ifndef LATEST_OBS_HTTP_SERVER_H_
#define LATEST_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "util/status.h"

namespace latest::obs {

/// A parsed request: method, path, and the raw query string (text after
/// '?', not decoded).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;

  /// True when the query string contains `key` as a bare flag or k=v pair.
  bool HasQueryParam(std::string_view key) const;

  /// The value of `key` in the query string, or "" when absent or a bare
  /// flag. No percent-decoding (exposition params are plain tokens).
  std::string QueryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Blocking accept-loop HTTP server on a dedicated thread.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();

  /// Registers a handler for an exact path ("/metrics"). Must be called
  /// before Start.
  void Handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread. Fails when the port is taken or the
  /// server is already running.
  util::Status Start(uint16_t port);

  /// Stops the accept thread and closes the listen socket. Idempotent;
  /// also called by the destructor. In-flight requests finish first.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolved after Start when 0 was requested).
  uint16_t port() const { return port_; }

  /// Requests answered (any status) over the server lifetime.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Registered paths, sorted (for the index page).
  std::vector<std::string> paths() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  uint16_t port_ = 0;
  net::Fd listen_fd_;
  net::SelfPipe wake_;  // Self-pipe unblocking the accept poll.
};

}  // namespace latest::obs

#endif  // LATEST_OBS_HTTP_SERVER_H_
