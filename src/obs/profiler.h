// Sampling self-profiler: SIGPROF wall-in of where the process burns
// CPU, served as collapsed folded stacks ready for flamegraph tooling.
//
// Collection model. CollectFolded(seconds) installs a SIGPROF handler,
// arms setitimer(ITIMER_PROF) at the configured rate, sleeps out the
// window, disarms, and symbolizes. ITIMER_PROF ticks on consumed CPU
// time and the kernel delivers SIGPROF to a currently-running thread,
// so samples land on whichever threads are actually hot (the batch
// thread under query load, the IO thread under connection churn) — an
// idle process yields few or no samples by design.
//
// Signal safety. The handler does the minimum: claim a slot in a
// preallocated sample ring with one relaxed fetch_add, capture raw
// program counters with backtrace(3), publish with a release counter.
// No allocation, no locks, no formatting. backtrace() itself is
// pre-warmed at construction (its first call may load libgcc with
// malloc — after that glibc's implementation is allocation-free).
// Symbolization (dladdr + demangling) runs lazily on the collecting
// thread after the timer is disarmed, never in signal context.
//
// One collection at a time: concurrent CollectFolded calls serialize on
// an internal mutex, so concurrent /profilez scrapes queue instead of
// fighting over the process-wide itimer. Cost when idle is zero — no
// timer, no handler, nothing on any hot path.

#ifndef LATEST_OBS_PROFILER_H_
#define LATEST_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace latest::obs {

class Profiler {
 public:
  struct Options {
    /// Samples per second of consumed CPU time. 97 (prime) avoids
    /// lockstep with millisecond-periodic work like the batch tick.
    int hz = 97;
    /// Sample ring capacity; collection stops recording (but keeps
    /// counting) once full.
    size_t max_samples = 8192;
    /// Frames captured per sample.
    static constexpr size_t kMaxDepth = 48;
  };

  Profiler();  // Default options.
  explicit Profiler(Options options);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler();

  /// Samples the process for `seconds` of wall time, then returns the
  /// profile as folded stacks: one line per distinct stack,
  /// "outermost;...;leaf count\n", sorted by count descending. Returns
  /// an empty string when the process consumed no CPU in the window.
  /// Blocks the calling thread for the whole window.
  std::string CollectFolded(double seconds);

  /// The most recent non-empty CollectFolded result (for postmortem
  /// bundles, which must not block for a sampling window).
  std::string LastFolded() const;

  /// Samples recorded by the most recent collection.
  uint64_t last_sample_count() const {
    return last_samples_.load(std::memory_order_relaxed);
  }

  /// Collections completed over the profiler's lifetime.
  uint64_t collections() const {
    return collections_.load(std::memory_order_relaxed);
  }

 private:
  struct Sample {
    int32_t depth = 0;
    void* pc[Options::kMaxDepth];
  };

  static void SigprofHandler(int signum);
  std::string Symbolize(size_t produced);

  const Options options_;
  std::vector<Sample> ring_;
  std::atomic<size_t> claimed_{0};    // Slots handed to handlers.
  std::atomic<size_t> published_{0};  // Slots fully written.
  std::atomic<bool> armed_{false};

  std::mutex collect_mu_;  // One collection at a time.
  mutable std::mutex last_mu_;
  std::string last_folded_;
  std::atomic<uint64_t> last_samples_{0};
  std::atomic<uint64_t> collections_{0};
};

/// Installs (or clears, with null) the process-global profiler used by
/// /profilez and postmortem bundles. The caller keeps ownership; the
/// SIGPROF handler consults this pointer, so clear it before
/// destruction.
void SetProfiler(Profiler* profiler);
Profiler* GetProfiler();

}  // namespace latest::obs

#endif  // LATEST_OBS_PROFILER_H_
