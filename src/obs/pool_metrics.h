// Registry-backed telemetry for a util::ThreadPool.
//
// The pool lives in the dependency-free util layer and only knows an
// abstract Observer; this adapter implements it against a
// MetricsRegistry so every pool exports a queue-depth gauge and a task
// latency histogram under a stable `pool` label:
//
//   latest_pool_queue_depth{pool="portfolio"}
//   latest_pool_task_latency_ms{pool="portfolio"} (histogram)
//   latest_pool_tasks_total{pool="portfolio"}
//
// Callbacks fire on worker threads; all updates go through the
// registry's relaxed-atomic handles, so attaching telemetry adds no
// locks to the task path.

#ifndef LATEST_OBS_POOL_METRICS_H_
#define LATEST_OBS_POOL_METRICS_H_

#include <string>

#include "obs/metrics_registry.h"
#include "util/thread_pool.h"

namespace latest::obs {

/// MetricsRegistry-backed ThreadPool observer.
class ThreadPoolMetrics : public util::ThreadPool::Observer {
 public:
  /// Registers the pool's metric instances under label {pool=pool_name}.
  /// The registry must outlive this object.
  ThreadPoolMetrics(MetricsRegistry* registry, const std::string& pool_name);

  /// Registers the metrics and installs this object as `pool`'s
  /// observer in one step.
  static void Attach(util::ThreadPool* pool, MetricsRegistry* registry,
                     const std::string& pool_name,
                     std::unique_ptr<ThreadPoolMetrics>* out);

  void OnTaskQueued(size_t queue_depth) override;
  void OnTaskDone(double latency_ms, size_t queue_depth) override;

 private:
  Gauge* queue_depth_ = nullptr;
  Histogram* task_latency_ms_ = nullptr;
  Counter* tasks_total_ = nullptr;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_POOL_METRICS_H_
