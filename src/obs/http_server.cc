#include "obs/http_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"

namespace latest::obs {

namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;
constexpr int kIoTimeoutMs = 2000;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

using net::SendAll;

/// `include_body` false (HEAD) still advertises the entity length.
void WriteResponse(int fd, const HttpResponse& response,
                   bool include_body = true) {
  char header[256];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  if (header_len <= 0) return;
  if (!SendAll(fd, header, static_cast<size_t>(header_len))) return;
  if (include_body) {
    SendAll(fd, response.body.data(), response.body.size());
  }
}

/// Reads until the end of the header block, a size cap, or a timeout.
/// Returns false on socket error / oversized request.
bool ReadRequestHead(int fd, std::string* out) {
  char buffer[4096];
  while (out->find("\r\n\r\n") == std::string::npos &&
         out->find("\n\n") == std::string::npos) {
    if (out->size() > kMaxRequestBytes) return false;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    out->append(buffer, static_cast<size_t>(n));
  }
  return true;
}

/// Parses "GET /path?query HTTP/1.1"; false on malformed input.
bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const size_t line_end = head.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t first_space = line.find(' ');
  if (first_space == std::string::npos || first_space == 0) return false;
  const size_t second_space = line.find(' ', first_space + 1);
  if (second_space == std::string::npos ||
      second_space == first_space + 1) {
    return false;
  }
  if (line.compare(second_space + 1, 5, "HTTP/") != 0) return false;
  request->method = line.substr(0, first_space);
  std::string target =
      line.substr(first_space + 1, second_space - first_space - 1);
  const size_t question = target.find('?');
  if (question == std::string::npos) {
    request->path = std::move(target);
  } else {
    request->path = target.substr(0, question);
    request->query = target.substr(question + 1);
  }
  return !request->path.empty() && request->path[0] == '/';
}

}  // namespace

bool HttpRequest::HasQueryParam(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    const size_t eq = param.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? param : param.substr(0, eq);
    if (name == key) return true;
    if (end == query.size()) break;
    pos = end + 1;
  }
  return false;
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    const size_t eq = param.find('=');
    if (eq != std::string_view::npos && param.substr(0, eq) == key) {
      return std::string(param.substr(eq + 1));
    }
    if (end == query.size()) break;
    pos = end + 1;
  }
  return "";
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

std::vector<std::string> HttpServer::paths() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

util::Status HttpServer::Start(uint16_t port) {
  if (running()) {
    return util::Status::FailedPrecondition("server already running");
  }
  auto listen_fd = net::ListenLoopback(port, /*backlog=*/64, &port_);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = std::move(listen_fd).value();
  if (const auto pipe_status = wake_.Open(); !pipe_status.ok()) {
    listen_fd_.Reset();
    return pipe_status;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll so the accept loop observes the stop flag.
  wake_.Notify();
  if (thread_.joinable()) thread_.join();
  listen_fd_.Reset();
  wake_.Close();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_.get(), POLLIN, 0};
    fds[1] = {wake_.read_fd(), POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/500);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check the flag.
    if (fds[1].revents != 0) break;  // Woken by Stop().
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (client < 0) continue;
    net::SetIoTimeouts(client, kIoTimeoutMs);
    ServeConnection(client);
    ::close(client);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    // Oversized or torn request: answer 400 if the peer still listens.
    WriteResponse(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "bad request\n"});
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  HttpRequest request;
  HttpResponse response;
  if (!ParseRequestLine(head, &request)) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = {405, "text/plain; charset=utf-8",
                "only GET is supported\n"};
  } else {
    const auto it = handlers_.find(request.path);
    if (it == handlers_.end()) {
      std::string body = "not found; registered endpoints:\n";
      for (const auto& [path, handler] : handlers_) {
        body += "  " + path + "\n";
      }
      response = {404, "text/plain; charset=utf-8", std::move(body)};
    } else {
      response = it->second(request);
    }
  }
  WriteResponse(fd, response, /*include_body=*/request.method != "HEAD");
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace latest::obs
