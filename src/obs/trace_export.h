// Chrome trace-event export of collected spans.
//
// Serializes a SpanCollector's retained spans as the JSON Object Format
// of the Chrome trace-event specification — directly loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Every span becomes one complete
// ("ph":"X") event on its thread's track; metadata events name the
// process and threads so the UI shows stable labels.

#ifndef LATEST_OBS_TRACE_EXPORT_H_
#define LATEST_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/span.h"
#include "util/status.h"

namespace latest::obs {

/// Renders the collector's retained spans as a Chrome trace-event JSON
/// document: {"displayTimeUnit":"ms","traceEvents":[...]}.
/// `process_name` labels the single process track.
std::string TraceEventJson(const SpanCollector& collector,
                           const std::string& process_name = "latest");

/// Writes TraceEventJson to `path` (truncating). IO errors surface as
/// util::Status.
util::Status WriteTraceEventFile(const SpanCollector& collector,
                                 const std::string& path,
                                 const std::string& process_name = "latest");

}  // namespace latest::obs

#endif  // LATEST_OBS_TRACE_EXPORT_H_
