#include "obs/pool_metrics.h"

#include <memory>

namespace latest::obs {

ThreadPoolMetrics::ThreadPoolMetrics(MetricsRegistry* registry,
                                     const std::string& pool_name) {
  const LabelSet labels = {{"pool", pool_name}};
  queue_depth_ = registry->GetGauge(
      "latest_pool_queue_depth", "Tasks waiting in the thread-pool queue",
      labels);
  task_latency_ms_ = registry->GetHistogram(
      "latest_pool_task_latency_ms",
      "Wall clock of thread-pool task execution (ms)",
      Histogram::LatencyBucketsMs(), labels);
  tasks_total_ = registry->GetCounter(
      "latest_pool_tasks_total", "Tasks executed by the thread pool",
      labels);
}

void ThreadPoolMetrics::Attach(util::ThreadPool* pool,
                               MetricsRegistry* registry,
                               const std::string& pool_name,
                               std::unique_ptr<ThreadPoolMetrics>* out) {
  *out = std::make_unique<ThreadPoolMetrics>(registry, pool_name);
  pool->SetObserver(out->get());
}

void ThreadPoolMetrics::OnTaskQueued(size_t queue_depth) {
  queue_depth_->Set(static_cast<double>(queue_depth));
}

void ThreadPoolMetrics::OnTaskDone(double latency_ms, size_t queue_depth) {
  queue_depth_->Set(static_cast<double>(queue_depth));
  task_latency_ms_->Observe(latency_ms);
  tasks_total_->Increment();
}

}  // namespace latest::obs
