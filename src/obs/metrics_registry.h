// Lock-cheap metrics primitives and a named registry with Prometheus-text
// and JSON exposition.
//
// Counters and gauges are single atomics; histograms are fixed-bucket
// arrays of atomic counters. The estimate hot path therefore pays a
// handful of relaxed atomic operations per query. The registry itself is
// only locked during registration and exposition, never on the update
// path: Get* hands out stable pointers that callers cache.
//
// Naming follows the Prometheus conventions: snake_case metric families,
// `_total` suffix on counters, base units spelled out in the name
// (`latest_estimate_latency_ms`). Label sets distinguish instances of a
// family (`latest_estimate_latency_ms{estimator="RSH"}`).

#ifndef LATEST_OBS_METRICS_REGISTRY_H_
#define LATEST_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace latest::obs {

/// Label set attached to one metric instance: ordered (key, value) pairs.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Adds `delta` to an atomic double with a CAS loop (portable across
/// standard libraries that lack atomic<double>::fetch_add).
void AtomicAddDouble(std::atomic<double>* target, double delta);

/// Monotonically increasing counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move in both directions.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(&value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram of non-negative samples with Prometheus-style
/// cumulative exposition and interpolated quantile queries.
class Histogram {
 public:
  /// One captured tail sample: the observed value plus the request-scoped
  /// identifiers that let an operator pivot from "the p99 is high" to the
  /// exact traced request that paid it (/tracez?dump, /requestz).
  struct Exemplar {
    double value = 0.0;
    uint64_t trace_id = 0;
    uint64_t request_id = 0;
  };

  /// `upper_bounds` must be strictly increasing and non-empty; an implicit
  /// +Inf overflow bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Turns on exemplar capture: a bounded ring of `capacity` exemplars,
  /// refreshed by ObserveWithExemplar calls whose value lands at or above
  /// the current `quantile` estimate (the first few samples always
  /// capture, so short runs still surface a tail). Not thread-safe
  /// against concurrent observations — call during setup.
  void EnableExemplars(size_t capacity, double quantile = 0.95);
  bool exemplars_enabled() const {
    return ex_enabled_.load(std::memory_order_relaxed);
  }

  /// Observe() plus tail-exemplar capture. When exemplars are disabled
  /// this is exactly Observe(value).
  void ObserveWithExemplar(double value, uint64_t trace_id,
                           uint64_t request_id);

  /// Retained exemplars, oldest first. Empty when disabled.
  std::vector<Exemplar> Exemplars() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate for q in [0, 1] by linear interpolation inside the
  /// owning bucket (the first bucket interpolates from 0). Samples landing
  /// in the overflow bucket report the largest finite bound. 0 when empty.
  double Quantile(double q) const;

  /// Percentile convenience: Percentile(95) == Quantile(0.95).
  double Percentile(double p) const { return Quantile(p / 100.0); }

  /// Finite upper bounds (excludes the implicit +Inf bucket).
  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Non-cumulative count of bucket `i`, i in [0, upper_bounds().size()];
  /// the last index is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

  /// Default latency bucket ladder in milliseconds: a 1-2-5 series from
  /// 1us to 1s, wide enough for estimator probes and exact evaluation.
  static std::vector<double> LatencyBucketsMs();

  /// Equi-width buckets over [0, 1] for accuracy-style ratios.
  static std::vector<double> UnitIntervalBuckets(uint32_t num_buckets = 20);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};

  // Exemplar ring; only touched by ObserveWithExemplar/Exemplars and only
  // when enabled, so plain Observe stays mutex-free.
  std::atomic<bool> ex_enabled_{false};
  double ex_quantile_ = 0.95;
  size_t ex_capacity_ = 0;
  mutable std::mutex ex_mu_;
  std::vector<Exemplar> ex_ring_;
  size_t ex_next_ = 0;
};

/// Named metrics registry. Get-or-create semantics: the same
/// (name, labels) pair always returns the same instance; instances stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  /// `upper_bounds` is only consulted when the instance is created.
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> upper_bounds,
                          LabelSet labels = {});

  /// Read-only lookup: the instance registered under (name, labels), or
  /// null when absent. Unlike Get*, never creates. The returned pointer
  /// stays valid for the registry's lifetime.
  const Counter* FindCounter(std::string_view name,
                             const LabelSet& labels = {}) const;
  const Gauge* FindGauge(std::string_view name,
                         const LabelSet& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const LabelSet& labels = {}) const;

  /// Flat read of one instance per registered metric, sorted like the
  /// exposition (by name, then labels). For histograms `value` is the
  /// sample count. `name_prefix` filters by family-name prefix.
  struct Sample {
    std::string name;
    LabelSet labels;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    double value = 0.0;
    const Histogram* histogram = nullptr;  // Set for histogram samples.
  };
  std::vector<Sample> Samples(std::string_view name_prefix = "") const;

  /// Number of registered metric instances.
  size_t size() const;

  /// Prometheus text exposition format (version 0.0.4): families sorted
  /// by name with exactly one # HELP / # TYPE header each, label sets
  /// stable-sorted within a family, label values and help text escaped
  /// per the format spec, histograms as cumulative `_bucket` series plus
  /// `_sum` / `_count`.
  std::string PrometheusText() const;

  /// JSON exposition: {"metrics": [...]} with per-histogram p50/p95/p99.
  std::string Json() const;

 private:
  enum class MetricType { kCounter, kGauge, kHistogram };

  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(MetricType type, std::string_view name,
                    const LabelSet& labels);
  const Entry* FindAnyOrNull(std::string_view name,
                             const LabelSet& labels) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace latest::obs

#endif  // LATEST_OBS_METRICS_REGISTRY_H_
