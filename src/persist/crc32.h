// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// section and WAL record integrity.
//
// Durability needs corruption *detection*, not cryptographic strength: a
// torn write, a flipped bit, or a truncated tail must be recognized so
// recovery can fall back to the previous good state instead of loading
// garbage. CRC-32 is the standard tool for this job (filesystems, WALs of
// SQLite/RocksDB/Postgres all use a 32-bit CRC per page or record).

#ifndef LATEST_PERSIST_CRC32_H_
#define LATEST_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace latest::persist {

/// CRC-32 of a byte range. `seed` chains partial computations:
/// Crc32(ab) == Crc32(b, len_b, Crc32(a, len_a)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace latest::persist

#endif  // LATEST_PERSIST_CRC32_H_
