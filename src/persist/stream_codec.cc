#include "persist/stream_codec.h"

namespace latest::persist {

namespace {

void EncodeKeywords(const std::vector<stream::KeywordId>& keywords,
                    util::BinaryWriter* writer) {
  writer->WriteU64(keywords.size());
  writer->WriteBytes(keywords.data(),
                     keywords.size() * sizeof(stream::KeywordId));
}

bool DecodeKeywords(util::BinaryReader* reader,
                    std::vector<stream::KeywordId>* keywords) {
  uint64_t count;
  if (!reader->ReadU64(&count) ||
      reader->remaining() < count * sizeof(stream::KeywordId)) {
    return false;
  }
  keywords->resize(count);
  return reader->ReadBytes(keywords->data(),
                           count * sizeof(stream::KeywordId));
}

}  // namespace

void EncodeObject(const stream::GeoTextObject& obj,
                  util::BinaryWriter* writer) {
  writer->WriteU64(obj.oid);
  writer->WriteDouble(obj.loc.x);
  writer->WriteDouble(obj.loc.y);
  writer->WriteI64(obj.timestamp);
  EncodeKeywords(obj.keywords, writer);
}

bool DecodeObject(util::BinaryReader* reader, stream::GeoTextObject* obj) {
  return reader->ReadU64(&obj->oid) && reader->ReadDouble(&obj->loc.x) &&
         reader->ReadDouble(&obj->loc.y) &&
         reader->ReadI64(&obj->timestamp) &&
         DecodeKeywords(reader, &obj->keywords);
}

void EncodeQuery(const stream::Query& q, util::BinaryWriter* writer) {
  writer->WriteBool(q.range.has_value());
  const geo::Rect rect = q.range.value_or(geo::Rect{});
  writer->WriteDouble(rect.min_x);
  writer->WriteDouble(rect.min_y);
  writer->WriteDouble(rect.max_x);
  writer->WriteDouble(rect.max_y);
  writer->WriteI64(q.timestamp);
  EncodeKeywords(q.keywords, writer);
}

bool DecodeQuery(util::BinaryReader* reader, stream::Query* q) {
  bool has_range;
  geo::Rect rect;
  if (!reader->ReadBool(&has_range) || !reader->ReadDouble(&rect.min_x) ||
      !reader->ReadDouble(&rect.min_y) || !reader->ReadDouble(&rect.max_x) ||
      !reader->ReadDouble(&rect.max_y) || !reader->ReadI64(&q->timestamp)) {
    return false;
  }
  q->range = has_range ? std::optional<geo::Rect>(rect) : std::nullopt;
  return DecodeKeywords(reader, &q->keywords);
}

}  // namespace latest::persist
