// Write-ahead log of stream events arriving after the last snapshot.
//
// File layout:
//   u32 magic "LWAL", u32 version, u64 start_seq
//   records, each framed as
//     u32 length   (of the record body)
//     u32 crc      (CRC-32 of the record body)
//     body: u32 type (1=object, 2=query), u64 seq, payload (stream_codec)
//
// Appends are buffered and flushed+fsync'd every `group_commit_every`
// records (group commit), so a crash loses at most the last unsynced
// group. The reader stops at the first frame whose length runs past the
// file or whose CRC mismatches — the torn tail a crash mid-append leaves
// behind — and reports how many bytes were valid so recovery can
// truncate.

#ifndef LATEST_PERSIST_WAL_H_
#define LATEST_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/stream_codec.h"
#include "util/status.h"

namespace latest::persist {

inline constexpr uint32_t kWalMagic = 0x4C41574Cu;  // "LWAL".
inline constexpr uint32_t kWalVersion = 1;

enum class WalRecordType : uint32_t {
  kObject = 1,
  kQuery = 2,
};

/// Appends stream events to a WAL file with group-commit fsync.
class WalWriter {
 public:
  /// Creates (truncates) `path` and writes the header. Sequence numbers
  /// continue from `start_seq` (the covering snapshot's sequence):
  /// the first record carries start_seq + 1.
  static util::Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint64_t start_seq,
      uint32_t group_commit_every = 64);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  util::Status AppendObject(const stream::GeoTextObject& obj);
  util::Status AppendQuery(const stream::Query& q);

  /// Flushes buffered records and fsyncs. Idempotent.
  util::Status Sync();

  /// Records appended since Create.
  uint64_t appended() const { return next_seq_ - start_seq_ - 1; }
  uint64_t next_seq() const { return next_seq_; }
  /// fsync calls issued (group commits + explicit Syncs with dirty data).
  uint64_t syncs() const { return syncs_; }
  /// Bytes written to the file, including buffered-but-unsynced bytes.
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, uint64_t start_seq,
            uint32_t group_commit_every);

  util::Status Append(WalRecordType type, const std::string& payload);
  util::Status Flush();

  std::string path_;
  int fd_;
  uint64_t start_seq_;
  uint64_t next_seq_;
  uint32_t group_commit_every_;
  uint32_t pending_ = 0;  // Records buffered since the last fsync.
  uint64_t syncs_ = 0;
  uint64_t bytes_written_ = 0;
  std::string buffer_;
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kObject;
  uint64_t seq = 0;
  stream::GeoTextObject object;  // Valid when type == kObject.
  stream::Query query;           // Valid when type == kQuery.
};

/// Reads a WAL file, stopping cleanly at a torn tail.
class WalReader {
 public:
  /// Parses the header and every intact record. A torn or corrupt tail is
  /// NOT an error: reading stops there, torn_tail() turns true, and
  /// valid_bytes() marks the truncation point. Only a missing file or a
  /// bad header fails.
  util::Status Open(const std::string& path);

  uint64_t start_seq() const { return start_seq_; }
  const std::vector<WalRecord>& records() const { return records_; }
  bool torn_tail() const { return torn_tail_; }
  /// File prefix (bytes) covered by the header and intact records.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  uint64_t start_seq_ = 0;
  std::vector<WalRecord> records_;
  bool torn_tail_ = false;
  uint64_t valid_bytes_ = 0;
};

}  // namespace latest::persist

#endif  // LATEST_PERSIST_WAL_H_
