#include "persist/checkpoint_manager.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/span.h"
#include "persist/checkpoint_format.h"
#include "persist/file_io.h"
#include "util/stopwatch.h"

namespace latest::persist {

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".ckpt";

}  // namespace

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020" PRIu64 "%s", kSnapshotPrefix,
                seq, kSnapshotSuffix);
  return dir + "/" + name;
}

std::string WalPath(const std::string& dir, uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%020" PRIu64 ".log", seq);
  return dir + "/" + name;
}

bool ParseSnapshotName(const std::string& filename, uint64_t* seq) {
  const std::string_view name(filename);
  const std::string_view prefix(kSnapshotPrefix);
  const std::string_view suffix(kSnapshotSuffix);
  if (name.size() <= prefix.size() + suffix.size() ||
      name.substr(0, prefix.size()) != prefix ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return false;
  }
  const std::string digits(
      name.substr(prefix.size(),
                  name.size() - prefix.size() - suffix.size()));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *seq = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

CheckpointManager::CheckpointManager(const DurabilityConfig& config,
                                     core::LatestModule* module)
    : config_(config), module_(module) {
  if (config_.keep_snapshots == 0) config_.keep_snapshots = 1;
  RegisterMetrics();
}

void CheckpointManager::RegisterMetrics() {
  obs::MetricsRegistry& registry = module_->telemetry().registry();
  snapshots_counter_ = registry.GetCounter(
      "persist_snapshots_total", "Checkpoint snapshots committed");
  wal_records_counter_ = registry.GetCounter(
      "persist_wal_records_total", "Stream events appended to the WAL");
  wal_fsyncs_counter_ = registry.GetCounter(
      "persist_wal_fsyncs_total", "WAL group-commit fsync calls");
  snapshot_bytes_gauge_ = registry.GetGauge(
      "persist_snapshot_bytes", "Size of the last committed snapshot");
  wal_bytes_gauge_ = registry.GetGauge(
      "persist_wal_bytes", "Bytes written to the current WAL");
  wal_lag_gauge_ = registry.GetGauge(
      "persist_wal_lag_records",
      "Events logged since the last snapshot (replay cost on recovery)");
  snapshot_duration_histogram_ = registry.GetHistogram(
      "persist_snapshot_duration_ms",
      "Wall clock of snapshot serialization + commit (ms)",
      obs::Histogram::LatencyBucketsMs());
}

uint64_t CheckpointManager::sequence() const {
  return module_->objects_ingested() + module_->queries_answered();
}

util::Result<std::unique_ptr<CheckpointManager>> CheckpointManager::Attach(
    const DurabilityConfig& config, core::LatestModule* module) {
  if (!std::filesystem::is_directory(config.dir)) {
    return util::Status::InvalidArgument("checkpoint dir does not exist: " +
                                         config.dir);
  }
  std::unique_ptr<CheckpointManager> manager(
      new CheckpointManager(config, module));
  LATEST_RETURN_IF_ERROR(manager->Checkpoint());
  return manager;
}

util::Status CheckpointManager::Checkpoint() {
  LATEST_SPAN("snapshot");
  const util::Stopwatch watch;
  const uint64_t seq = sequence();
  CheckpointWriter writer;
  util::BinaryWriter* meta = writer.AddSection(kSectionMeta);
  meta->WriteU64(module_->objects_ingested());
  meta->WriteU64(module_->queries_answered());
  meta->WriteU32(static_cast<uint32_t>(module_->phase()));
  util::BinaryWriter* body = writer.AddSection(kSectionModule);
  module_->SaveState(body);
  const std::string image = writer.Finish(seq);
  LATEST_RETURN_IF_ERROR(
      AtomicWriteFile(SnapshotPath(config_.dir, seq), image));

  // Rotate the WAL: events after this snapshot land in a fresh log. The
  // old WAL (covered by the new snapshot) is deleted by pruning.
  wal_.reset();  // Syncs + closes the previous log.
  auto wal = WalWriter::Create(WalPath(config_.dir, seq), seq,
                               config_.wal_group_commit);
  LATEST_RETURN_IF_ERROR(wal.status());
  wal_ = std::move(wal).value();
  LATEST_RETURN_IF_ERROR(SyncDir(config_.dir));

  last_snapshot_seq_ = seq;
  ++snapshots_taken_;
  Prune();

  snapshots_counter_->Increment();
  snapshot_bytes_gauge_->Set(static_cast<double>(image.size()));
  wal_lag_gauge_->Set(0.0);
  wal_bytes_gauge_->Set(static_cast<double>(wal_->bytes_written()));
  snapshot_duration_histogram_->Observe(watch.ElapsedMillis());
  return util::Status::Ok();
}

void CheckpointManager::Prune() {
  std::vector<uint64_t> seqs = ListSnapshots(config_.dir);
  for (size_t i = config_.keep_snapshots; i < seqs.size(); ++i) {
    std::error_code ec;  // Best effort; stale files are harmless.
    std::filesystem::remove(SnapshotPath(config_.dir, seqs[i]), ec);
    std::filesystem::remove(WalPath(config_.dir, seqs[i]), ec);
  }
}

util::Status CheckpointManager::MaybeCheckpoint() {
  const uint64_t lag = sequence() - last_snapshot_seq_;
  wal_lag_gauge_->Set(static_cast<double>(lag));
  wal_bytes_gauge_->Set(static_cast<double>(wal_->bytes_written()));
  if (config_.checkpoint_every != 0 && lag >= config_.checkpoint_every) {
    return Checkpoint();
  }
  return util::Status::Ok();
}

util::Status CheckpointManager::OnObject(const stream::GeoTextObject& obj) {
  const uint64_t syncs_before = wal_->syncs();
  {
    LATEST_SPAN("wal_append");
    LATEST_RETURN_IF_ERROR(wal_->AppendObject(obj));
  }
  wal_records_counter_->Increment();
  wal_fsyncs_counter_->Increment(wal_->syncs() - syncs_before);
  module_->OnObject(obj);
  return MaybeCheckpoint();
}

util::Result<core::QueryOutcome> CheckpointManager::OnQuery(
    const stream::Query& q) {
  const uint64_t syncs_before = wal_->syncs();
  {
    LATEST_SPAN("wal_append");
    LATEST_RETURN_IF_ERROR(wal_->AppendQuery(q));
  }
  wal_records_counter_->Increment();
  wal_fsyncs_counter_->Increment(wal_->syncs() - syncs_before);
  core::QueryOutcome outcome = module_->OnQuery(q);
  LATEST_RETURN_IF_ERROR(MaybeCheckpoint());
  return outcome;
}

util::Status CheckpointManager::Sync() {
  const uint64_t syncs_before = wal_->syncs();
  LATEST_RETURN_IF_ERROR(wal_->Sync());
  wal_fsyncs_counter_->Increment(wal_->syncs() - syncs_before);
  return util::Status::Ok();
}

std::vector<uint64_t> CheckpointManager::ListSnapshots(
    const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t seq;
    if (ParseSnapshotName(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

util::Result<CheckpointManager::Recovered> CheckpointManager::Recover(
    const std::string& dir, const core::LatestConfig& config) {
  Recovered result;
  const std::vector<uint64_t> seqs = ListSnapshots(dir);
  for (const uint64_t seq : seqs) {
    CheckpointReader reader;
    if (!reader.Open(SnapshotPath(dir, seq)).ok()) {
      ++result.snapshots_skipped;
      continue;
    }
    // Verify every section, not just the one we load: corruption anywhere
    // in the file disqualifies the snapshot (its sibling sections are part
    // of the same commit and a future format version may need them).
    if (!reader.Verify().ok()) {
      ++result.snapshots_skipped;
      continue;
    }
    auto section = reader.Section(kSectionModule);
    if (!section.ok()) {
      ++result.snapshots_skipped;
      continue;
    }
    // A fresh module per attempt: LoadState leaves a partially restored
    // module unusable on failure.
    auto module = core::LatestModule::Create(config);
    LATEST_RETURN_IF_ERROR(module.status());
    if (!(*module)->LoadState(&section.value()).ok()) {
      ++result.snapshots_skipped;
      continue;
    }
    result.module = std::move(module).value();
    result.snapshot_seq = seq;
    break;
  }
  if (result.module == nullptr) {
    return util::Status::NotFound(
        "no loadable snapshot in " + dir +
        (seqs.empty() ? " (directory has none)"
                      : " (all candidates corrupt)"));
  }

  // Replay the WAL tail. A missing WAL (crash between snapshot commit and
  // WAL creation) or a bad WAL header replays nothing; a torn tail stops
  // replay at the last intact record.
  WalReader wal;
  const util::Status wal_status = wal.Open(WalPath(dir, result.snapshot_seq));
  if (wal_status.ok() && wal.start_seq() == result.snapshot_seq) {
    for (const WalRecord& record : wal.records()) {
      if (record.type == WalRecordType::kObject) {
        result.module->OnObject(record.object);
        ++result.replayed_objects;
      } else {
        result.module->OnQuery(record.query);
        ++result.replayed_queries;
      }
    }
    result.torn_wal_tail = wal.torn_tail();
  } else if (wal_status.code() != util::StatusCode::kNotFound) {
    result.torn_wal_tail = true;
  }
  return result;
}

}  // namespace latest::persist
