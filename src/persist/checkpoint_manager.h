// Durable operation of a LatestModule: periodic versioned snapshots plus
// a WAL of every stream event since the last snapshot.
//
// Protocol:
//   - Attach() writes snapshot-<seq>.ckpt of the module's current state
//     and opens wal-<seq>.log next to it. <seq> is the number of stream
//     events (objects + queries) the module has consumed — a recovered
//     process continues the same numbering because the module's lifetime
//     counters are part of the snapshot.
//   - OnObject/OnQuery append to the WAL *before* forwarding to the
//     module (write-ahead), then trigger an automatic checkpoint every
//     `checkpoint_every` events.
//   - Checkpoint() snapshots, rotates to a fresh WAL, and prunes old
//     snapshot/WAL pairs beyond `keep_snapshots`.
//   - Recover() scans the directory for the newest loadable snapshot
//     (corrupt ones — bad CRC anywhere — fall back to the previous),
//     replays the matching WAL up to its first torn record, and returns
//     the reconstructed module. Because every decision input is inside
//     the snapshot and the WAL replays the exact event suffix, the
//     recovered module continues bit-identically to an uninterrupted run.
//
// Group commit bounds loss: a crash forfeits at most the last
// `wal_group_commit - 1` appended events (they were never acknowledged
// durable). Everything synced is recovered exactly.

#ifndef LATEST_PERSIST_CHECKPOINT_MANAGER_H_
#define LATEST_PERSIST_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/latest_module.h"
#include "persist/wal.h"
#include "util/status.h"

namespace latest::persist {

/// Knobs of the durability subsystem.
struct DurabilityConfig {
  /// Directory holding snapshot-<seq>.ckpt / wal-<seq>.log pairs. Must
  /// exist.
  std::string dir;

  /// Stream events (objects + queries) between automatic checkpoints;
  /// 0 disables automatic checkpointing (manual Checkpoint() only).
  uint64_t checkpoint_every = 0;

  /// WAL records per group-commit fsync (1 = fsync every record).
  uint32_t wal_group_commit = 64;

  /// Snapshot/WAL pairs retained after a checkpoint (>= 1). Older pairs
  /// are deleted; keeping two means one full corruption fallback level.
  uint32_t keep_snapshots = 2;
};

/// Composed file names, shared with the inspector tool.
std::string SnapshotPath(const std::string& dir, uint64_t seq);
std::string WalPath(const std::string& dir, uint64_t seq);
/// Parses <seq> out of a snapshot file name; false when the name does not
/// match the snapshot-<seq>.ckpt pattern.
bool ParseSnapshotName(const std::string& filename, uint64_t* seq);

/// Section names inside a snapshot file.
inline constexpr char kSectionMeta[] = "meta";
inline constexpr char kSectionModule[] = "module";

/// Wraps a LatestModule with write-ahead logging and checkpointing.
class CheckpointManager {
 public:
  /// Takes an immediate snapshot of `module` (so a WAL base always
  /// exists) and opens a fresh WAL. The module is borrowed and must
  /// outlive the manager.
  static util::Result<std::unique_ptr<CheckpointManager>> Attach(
      const DurabilityConfig& config, core::LatestModule* module);

  /// Logs the object durably (write-ahead), forwards it to the module,
  /// and checkpoints when the automatic interval elapsed.
  util::Status OnObject(const stream::GeoTextObject& obj);

  /// Same for a query; the outcome is the module's.
  util::Result<core::QueryOutcome> OnQuery(const stream::Query& q);

  /// Snapshot now + rotate the WAL + prune old pairs.
  util::Status Checkpoint();

  /// Forces the WAL's buffered tail to disk.
  util::Status Sync();

  /// Stream events the module has consumed (snapshot sequence base).
  uint64_t sequence() const;
  uint64_t last_snapshot_seq() const { return last_snapshot_seq_; }
  uint64_t snapshots_taken() const { return snapshots_taken_; }

  /// What Recover reconstructed, and how.
  struct Recovered {
    std::unique_ptr<core::LatestModule> module;
    uint64_t snapshot_seq = 0;     // Sequence of the snapshot loaded.
    uint64_t replayed_objects = 0; // WAL records replayed.
    uint64_t replayed_queries = 0;
    uint32_t snapshots_skipped = 0;  // Corrupt snapshots fallen through.
    bool torn_wal_tail = false;      // WAL ended in a torn/corrupt record.
  };

  /// Loads the newest intact snapshot in `dir` into a fresh module built
  /// from `config` and replays its WAL tail. Corrupt snapshots (any CRC
  /// or structural failure) degrade to the previous one; NotFound when no
  /// loadable snapshot exists (caller starts fresh).
  static util::Result<Recovered> Recover(const std::string& dir,
                                         const core::LatestConfig& config);

  /// Snapshot sequences present in `dir`, descending (newest first).
  static std::vector<uint64_t> ListSnapshots(const std::string& dir);

 private:
  CheckpointManager(const DurabilityConfig& config,
                    core::LatestModule* module);

  util::Status MaybeCheckpoint();
  void RegisterMetrics();
  void Prune();

  DurabilityConfig config_;
  core::LatestModule* module_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t last_snapshot_seq_ = 0;
  uint64_t snapshots_taken_ = 0;

  obs::Counter* snapshots_counter_ = nullptr;
  obs::Counter* wal_records_counter_ = nullptr;
  obs::Counter* wal_fsyncs_counter_ = nullptr;
  obs::Gauge* snapshot_bytes_gauge_ = nullptr;
  obs::Gauge* wal_bytes_gauge_ = nullptr;
  obs::Gauge* wal_lag_gauge_ = nullptr;
  obs::Histogram* snapshot_duration_histogram_ = nullptr;
};

}  // namespace latest::persist

#endif  // LATEST_PERSIST_CHECKPOINT_MANAGER_H_
