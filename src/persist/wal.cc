#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/span.h"
#include "persist/crc32.h"
#include "persist/file_io.h"

namespace latest::persist {

namespace {

util::Status Errno(const std::string& op, const std::string& path) {
  return util::Status::Internal(op + " " + path + ": " +
                                std::strerror(errno));
}

util::Status WriteAll(int fd, std::string_view bytes,
                      const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, uint64_t start_seq,
    uint32_t group_commit_every) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  std::unique_ptr<WalWriter> writer(new WalWriter(
      path, fd, start_seq, group_commit_every == 0 ? 1 : group_commit_every));
  util::BinaryWriter header;
  header.WriteU32(kWalMagic);
  header.WriteU32(kWalVersion);
  header.WriteU64(start_seq);
  LATEST_RETURN_IF_ERROR(WriteAll(fd, header.buffer(), path));
  writer->bytes_written_ = header.buffer().size();
  // The header must be durable before the file name is relied upon; one
  // fsync here plus the directory sync by the caller covers creation.
  if (::fsync(fd) != 0) return Errno("fsync", path);
  return writer;
}

WalWriter::WalWriter(std::string path, int fd, uint64_t start_seq,
                     uint32_t group_commit_every)
    : path_(std::move(path)),
      fd_(fd),
      start_seq_(start_seq),
      next_seq_(start_seq + 1),
      group_commit_every_(group_commit_every) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    Sync();
    ::close(fd_);
  }
}

util::Status WalWriter::Append(WalRecordType type,
                               const std::string& payload) {
  util::BinaryWriter body;
  body.WriteU32(static_cast<uint32_t>(type));
  body.WriteU64(next_seq_);
  body.WriteBytes(payload.data(), payload.size());
  util::BinaryWriter frame;
  frame.WriteU32(static_cast<uint32_t>(body.buffer().size()));
  frame.WriteU32(Crc32(body.buffer()));
  buffer_.append(frame.buffer());
  buffer_.append(body.buffer());
  ++next_seq_;
  ++pending_;
  if (pending_ >= group_commit_every_) return Sync();
  return util::Status::Ok();
}

util::Status WalWriter::AppendObject(const stream::GeoTextObject& obj) {
  util::BinaryWriter payload;
  EncodeObject(obj, &payload);
  return Append(WalRecordType::kObject, payload.buffer());
}

util::Status WalWriter::AppendQuery(const stream::Query& q) {
  util::BinaryWriter payload;
  EncodeQuery(q, &payload);
  return Append(WalRecordType::kQuery, payload.buffer());
}

util::Status WalWriter::Flush() {
  if (buffer_.empty()) return util::Status::Ok();
  LATEST_RETURN_IF_ERROR(WriteAll(fd_, buffer_, path_));
  bytes_written_ += buffer_.size();
  buffer_.clear();
  return util::Status::Ok();
}

util::Status WalWriter::Sync() {
  if (pending_ == 0 && buffer_.empty()) return util::Status::Ok();
  LATEST_SPAN("wal_fsync");
  LATEST_RETURN_IF_ERROR(Flush());
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  pending_ = 0;
  ++syncs_;
  return util::Status::Ok();
}

util::Status WalReader::Open(const std::string& path) {
  std::string bytes;
  LATEST_RETURN_IF_ERROR(ReadFile(path, &bytes));
  records_.clear();
  torn_tail_ = false;
  util::BinaryReader reader(bytes);
  uint32_t magic;
  uint32_t version;
  if (!reader.ReadU32(&magic) || magic != kWalMagic) {
    return util::Status::DataLoss("wal: bad magic in " + path);
  }
  if (!reader.ReadU32(&version) || version != kWalVersion) {
    return util::Status::DataLoss("wal: unsupported version in " + path);
  }
  if (!reader.ReadU64(&start_seq_)) {
    return util::Status::DataLoss("wal: truncated header in " + path);
  }
  valid_bytes_ = bytes.size() - reader.remaining();
  uint64_t expected_seq = start_seq_ + 1;
  while (!reader.exhausted()) {
    uint32_t length;
    uint32_t crc;
    if (!reader.ReadU32(&length) || !reader.ReadU32(&crc) ||
        reader.remaining() < length) {
      // A frame header or body ran past the file: torn final append.
      torn_tail_ = true;
      break;
    }
    const std::string_view body(bytes.data() +
                                    (bytes.size() - reader.remaining()),
                                length);
    if (Crc32(body) != crc) {
      torn_tail_ = true;
      break;
    }
    util::BinaryReader body_reader(body);
    WalRecord record;
    uint32_t type;
    bool ok = body_reader.ReadU32(&type) && body_reader.ReadU64(&record.seq);
    if (ok) {
      switch (type) {
        case static_cast<uint32_t>(WalRecordType::kObject):
          record.type = WalRecordType::kObject;
          ok = DecodeObject(&body_reader, &record.object);
          break;
        case static_cast<uint32_t>(WalRecordType::kQuery):
          record.type = WalRecordType::kQuery;
          ok = DecodeQuery(&body_reader, &record.query);
          break;
        default:
          ok = false;
      }
    }
    ok = ok && body_reader.exhausted() && record.seq == expected_seq;
    if (!ok) {
      // The CRC matched but the content is not a well-formed next record;
      // treat like a torn tail rather than replaying garbage.
      torn_tail_ = true;
      break;
    }
    reader.Skip(length);
    records_.push_back(std::move(record));
    valid_bytes_ = bytes.size() - reader.remaining();
    ++expected_seq;
  }
  return util::Status::Ok();
}

}  // namespace latest::persist
