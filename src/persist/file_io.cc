#include "persist/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace latest::persist {

namespace {

util::Status Errno(const std::string& op, const std::string& path) {
  return util::Status::Internal(op + " " + path + ": " +
                                std::strerror(errno));
}

}  // namespace

util::Status ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return util::Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return util::Status::Ok();
}

util::Status AtomicWriteFile(const std::string& path,
                             std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  return SyncDir(DirName(path));
}

util::Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return util::Status::Ok();
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace latest::persist
