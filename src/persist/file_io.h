// POSIX file helpers for the durability subsystem.
//
// Checkpoint files are committed atomically: the image is written to a
// temporary sibling, fsync'd, renamed over the final name, and the parent
// directory is fsync'd so the rename itself is durable. A crash at any
// point leaves either the previous file or the new one — never a torn
// mix.

#ifndef LATEST_PERSIST_FILE_IO_H_
#define LATEST_PERSIST_FILE_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace latest::persist {

/// Reads an entire file into `out`. NotFound when it does not exist.
util::Status ReadFile(const std::string& path, std::string* out);

/// Atomically replaces `path` with `bytes` (temp file + fsync + rename +
/// directory fsync).
util::Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// fsync on the directory itself, making renames/creates in it durable.
util::Status SyncDir(const std::string& dir);

/// The directory component of a path ("." when none).
std::string DirName(const std::string& path);

}  // namespace latest::persist

#endif  // LATEST_PERSIST_FILE_IO_H_
