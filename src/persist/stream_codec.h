// Wire encoding of stream events (objects and queries) for WAL records.
//
// Layouts (little-endian, util::BinaryWriter):
//   object: u64 oid, double x, double y, i64 timestamp,
//           u64 num_keywords, raw u32 keyword ids
//   query:  u32 has_range, 4 doubles (min_x min_y max_x max_y, zero when
//           absent), i64 timestamp, u64 num_keywords, raw u32 keyword ids

#ifndef LATEST_PERSIST_STREAM_CODEC_H_
#define LATEST_PERSIST_STREAM_CODEC_H_

#include "stream/object.h"
#include "stream/query.h"
#include "util/serialization.h"

namespace latest::persist {

void EncodeObject(const stream::GeoTextObject& obj,
                  util::BinaryWriter* writer);
bool DecodeObject(util::BinaryReader* reader, stream::GeoTextObject* obj);

void EncodeQuery(const stream::Query& q, util::BinaryWriter* writer);
bool DecodeQuery(util::BinaryReader* reader, stream::Query* q);

}  // namespace latest::persist

#endif  // LATEST_PERSIST_STREAM_CODEC_H_
