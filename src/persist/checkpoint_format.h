// Versioned, checksummed snapshot container (the ".ckpt" file format).
//
// A checkpoint is a set of named sections, each independently CRC-32
// protected, preceded by a fixed header and a section table:
//
//   u32  magic            "LCKP" (bytes 4C 43 4B 50)
//   u32  format version   (kCheckpointVersion)
//   u64  sequence         stream events covered by this snapshot
//   u32  num_sections
//   u32  table_crc        CRC-32 of the section-table bytes
//   table: per section    name (u64 len + bytes), u64 offset, u64 size,
//                         u32 crc
//   payloads              concatenated section bytes
//
// All integers are little-endian fixed width (util::BinaryWriter). The
// per-section CRC localizes corruption: a flipped byte in one section is
// reported as exactly that section failing verification, and the reader
// never hands out unverified bytes. Files are committed via
// AtomicWriteFile, so a crash during checkpointing leaves the previous
// snapshot intact.

#ifndef LATEST_PERSIST_CHECKPOINT_FORMAT_H_
#define LATEST_PERSIST_CHECKPOINT_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace latest::persist {

inline constexpr uint32_t kCheckpointMagic = 0x504B434Cu;  // "LCKP".
inline constexpr uint32_t kCheckpointVersion = 1;

/// Builds a checkpoint image section by section.
class CheckpointWriter {
 public:
  /// Opens a new section; write its payload through the returned writer.
  /// The pointer stays valid until the CheckpointWriter is destroyed.
  /// Section names must be unique (not enforced; the reader returns the
  /// first match).
  util::BinaryWriter* AddSection(std::string name);

  /// Serializes header + table + payloads into one image.
  std::string Finish(uint64_t sequence) const;

  /// Finish + atomic write to `path`.
  util::Status CommitToFile(const std::string& path,
                            uint64_t sequence) const;

 private:
  struct Section {
    std::string name;
    // Owned by pointer so AddSection results stay stable across growth.
    std::unique_ptr<util::BinaryWriter> payload;
  };
  std::vector<Section> sections_;
};

/// Parses and verifies a checkpoint image.
class CheckpointReader {
 public:
  struct SectionInfo {
    std::string name;
    uint64_t offset = 0;  // Absolute offset of the payload in the file.
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  /// Reads the file and parses header + section table (structural checks
  /// plus the table CRC; payload CRCs are checked per access/Verify).
  util::Status Open(const std::string& path);

  /// Same, over an in-memory image (the buffer is copied).
  util::Status Parse(std::string image);

  uint64_t sequence() const { return sequence_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }
  size_t file_size() const { return image_.size(); }

  /// Recomputes one section's CRC; DataLoss on mismatch.
  util::Status VerifySection(const SectionInfo& info) const;

  /// Verifies every section.
  util::Status Verify() const;

  /// CRC-verifies the named section and returns a bounds-checked reader
  /// over its payload. NotFound / DataLoss on failure.
  util::Result<util::BinaryReader> Section(std::string_view name) const;

 private:
  std::string image_;
  uint64_t sequence_ = 0;
  std::vector<SectionInfo> sections_;
};

}  // namespace latest::persist

#endif  // LATEST_PERSIST_CHECKPOINT_FORMAT_H_
