#include "persist/checkpoint_format.h"

#include <utility>

#include "persist/crc32.h"
#include "persist/file_io.h"

namespace latest::persist {

namespace {

// magic + version + sequence + num_sections + table_crc.
constexpr size_t kFixedHeaderBytes = 4 + 4 + 8 + 4 + 4;
// The header CRC covers sequence + num_sections (the fields after the
// equality-checked magic/version) chained with the section table, so no
// single header byte can flip undetected.
uint32_t HeaderAndTableCrc(uint64_t sequence, uint32_t num_sections,
                           std::string_view table) {
  util::BinaryWriter covered;
  covered.WriteU64(sequence);
  covered.WriteU32(num_sections);
  return Crc32(table, Crc32(covered.buffer()));
}

}  // namespace

util::BinaryWriter* CheckpointWriter::AddSection(std::string name) {
  sections_.push_back(
      Section{std::move(name), std::make_unique<util::BinaryWriter>()});
  return sections_.back().payload.get();
}

std::string CheckpointWriter::Finish(uint64_t sequence) const {
  // The table references absolute payload offsets, so it must be laid out
  // before the offsets are known — build it twice: once to measure, once
  // for real. Offsets shift by the table size only, which is identical in
  // both passes because name lengths and entry counts are fixed.
  const auto build_table = [&](uint64_t payload_base) {
    util::BinaryWriter table;
    uint64_t offset = payload_base;
    for (const Section& section : sections_) {
      table.WriteString(section.name);
      table.WriteU64(offset);
      const std::string& bytes = section.payload->buffer();
      table.WriteU64(bytes.size());
      table.WriteU32(Crc32(bytes));
      offset += bytes.size();
    }
    return table.TakeBuffer();
  };
  const size_t table_size = build_table(0).size();
  const std::string table = build_table(kFixedHeaderBytes + table_size);

  util::BinaryWriter out;
  out.WriteU32(kCheckpointMagic);
  out.WriteU32(kCheckpointVersion);
  out.WriteU64(sequence);
  out.WriteU32(static_cast<uint32_t>(sections_.size()));
  out.WriteU32(HeaderAndTableCrc(
      sequence, static_cast<uint32_t>(sections_.size()), table));
  out.WriteBytes(table.data(), table.size());
  for (const Section& section : sections_) {
    const std::string& bytes = section.payload->buffer();
    out.WriteBytes(bytes.data(), bytes.size());
  }
  return out.TakeBuffer();
}

util::Status CheckpointWriter::CommitToFile(const std::string& path,
                                            uint64_t sequence) const {
  return AtomicWriteFile(path, Finish(sequence));
}

util::Status CheckpointReader::Open(const std::string& path) {
  std::string image;
  LATEST_RETURN_IF_ERROR(ReadFile(path, &image));
  return Parse(std::move(image));
}

util::Status CheckpointReader::Parse(std::string image) {
  image_ = std::move(image);
  sections_.clear();
  util::BinaryReader reader(image_);
  uint32_t magic;
  uint32_t version;
  uint32_t num_sections;
  uint32_t table_crc;
  if (!reader.ReadU32(&magic) || magic != kCheckpointMagic) {
    return util::Status::DataLoss("checkpoint: bad magic");
  }
  if (!reader.ReadU32(&version) || version != kCheckpointVersion) {
    return util::Status::DataLoss("checkpoint: unsupported format version");
  }
  if (!reader.ReadU64(&sequence_) || !reader.ReadU32(&num_sections) ||
      !reader.ReadU32(&table_crc)) {
    return util::Status::DataLoss("checkpoint: truncated header");
  }
  const size_t table_start = image_.size() - reader.remaining();
  for (uint32_t i = 0; i < num_sections; ++i) {
    SectionInfo info;
    if (!reader.ReadString(&info.name) || !reader.ReadU64(&info.offset) ||
        !reader.ReadU64(&info.size) || !reader.ReadU32(&info.crc)) {
      return util::Status::DataLoss("checkpoint: truncated section table");
    }
    if (info.offset > image_.size() ||
        info.size > image_.size() - info.offset) {
      return util::Status::DataLoss("checkpoint: section out of bounds");
    }
    sections_.push_back(std::move(info));
  }
  const size_t table_end = image_.size() - reader.remaining();
  const std::string_view table_bytes(image_.data() + table_start,
                                     table_end - table_start);
  if (HeaderAndTableCrc(sequence_, num_sections, table_bytes) != table_crc) {
    return util::Status::DataLoss("checkpoint: header/table CRC mismatch");
  }
  return util::Status::Ok();
}

util::Status CheckpointReader::VerifySection(const SectionInfo& info) const {
  const std::string_view payload(image_.data() + info.offset, info.size);
  if (Crc32(payload) != info.crc) {
    return util::Status::DataLoss("checkpoint: section '" + info.name +
                                  "' CRC mismatch");
  }
  return util::Status::Ok();
}

util::Status CheckpointReader::Verify() const {
  for (const SectionInfo& info : sections_) {
    LATEST_RETURN_IF_ERROR(VerifySection(info));
  }
  return util::Status::Ok();
}

util::Result<util::BinaryReader> CheckpointReader::Section(
    std::string_view name) const {
  for (const SectionInfo& info : sections_) {
    if (info.name != name) continue;
    LATEST_RETURN_IF_ERROR(VerifySection(info));
    return util::BinaryReader(
        std::string_view(image_.data() + info.offset, info.size));
  }
  return util::Status::NotFound("checkpoint: no section named '" +
                                std::string(name) + "'");
}

}  // namespace latest::persist
