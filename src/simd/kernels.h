// Runtime-dispatched SIMD kernels over the columnar window store's raw
// arrays.
//
// PR 3 laid the window out as slice-partitioned SoA columns precisely so
// hot loops could be vectorized; this layer supplies those loops. Every
// kernel has a scalar, an SSE2, and an AVX2 implementation selected at
// runtime from one process-global tier, and every implementation is
// bit-identical: kernels either produce integers (match bitmaps, counts,
// cell ids) or reuse the exact floating-point operation sequence of the
// scalar path (same subtract/divide/compare ordering), so switching tiers
// can never change a count, an estimate, or a persisted state CRC.
//
// Match bitmaps are dense little-endian words: bit i of mask[i / 64] is
// element i, trailing bits of the last word are zero. Producers write
// exactly MaskWords(n) words; consumers may therefore AND/OR/popcount
// whole words without masking the tail.
//
// Dispatch: the active tier starts at the highest the CPU supports,
// optionally lowered by the LATEST_SIMD_TIER environment variable
// ("scalar", "sse2", "avx2" — requests above hardware support clamp
// down), and can be forced per-process with SetActiveTier (tests iterate
// it to cross-check tiers). Builds with LATEST_SIMD_DISABLED (or non-x86
// targets) compile the scalar tier only.

#ifndef LATEST_SIMD_KERNELS_H_
#define LATEST_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "geo/point.h"
#include "geo/rect.h"
#include "stream/keyword_arena.h"
#include "stream/object.h"

namespace latest::simd {

/// Instruction-set tier a kernel call executes at. Ordered: a tier is
/// usable iff it is <= HighestSupportedTier().
enum class KernelTier : int {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
};

/// Short stable name ("scalar", "sse2", "avx2").
const char* KernelTierName(KernelTier tier);

/// Best tier this build + CPU can execute.
KernelTier HighestSupportedTier();

/// Tier kernels currently dispatch to.
KernelTier ActiveTier();

/// Forces the dispatch tier; false (and no change) when the tier exceeds
/// hardware/build support. Not synchronized against concurrent kernel
/// calls: set it at startup or between test sections, not mid-scan.
bool SetActiveTier(KernelTier tier);

/// Words needed for an n-bit match bitmap.
constexpr size_t MaskWords(size_t n) { return (n + 63) / 64; }

// --- Spatial kernels -------------------------------------------------------

/// Writes the closed-open rect-containment bitmap of n points: bit i set
/// iff r.Contains(locs[i]). Writes MaskWords(n) words, trailing bits zero.
void RectContainMask(const geo::Point* locs, size_t n, const geo::Rect& r,
                     uint64_t* mask);

/// Number of points contained in r (RectContainMask + popcount, fused so
/// no bitmap is materialized).
uint64_t RectContainCount(const geo::Point* locs, size_t n,
                          const geo::Rect& r);

/// Vectorized 2-D histogram cell ids: cells[i] = the uniform-grid cell of
/// locs[i], bit-identical to geo::Grid::CellOf (same divide, truncate, and
/// border-clamp sequence). `cell_w`/`cell_h` must be the grid's exact cell
/// extents (Grid::cell_width()/cell_height()).
void HistogramCellIds(const geo::Point* locs, size_t n, const geo::Rect& bounds,
                      double cell_w, double cell_h, uint32_t cols,
                      uint32_t rows, uint32_t* cells);

/// Strided HistogramCellIds: the i-th point is read at `first + i * stride`
/// bytes, so callers can map locations embedded in larger records (e.g. a
/// GeoTextObject array) without first copying them into a dense buffer.
/// `stride` is in bytes and must keep every read in bounds; results are
/// bit-identical to HistogramCellIds over the same points.
void HistogramCellIdsStrided(const geo::Point* first, size_t stride, size_t n,
                             const geo::Rect& bounds, double cell_w,
                             double cell_h, uint32_t cols, uint32_t rows,
                             uint32_t* cells);

// --- Timestamp kernels -----------------------------------------------------

/// Writes the window-liveness bitmap: bit i set iff ts[i] >= cutoff.
/// Writes MaskWords(n) words, trailing bits zero.
void TimestampGeMask(const stream::Timestamp* ts, size_t n,
                     stream::Timestamp cutoff, uint64_t* mask);

/// First index with ts[i] >= cutoff in a non-decreasing timestamp column
/// (n when none). The store's slices and per-cell row lists are in arrival
/// order, so this resolves a window cutoff to a live-range start.
size_t LowerBoundTimestamp(const stream::Timestamp* ts, size_t n,
                           stream::Timestamp cutoff);

// --- Bitmap kernels --------------------------------------------------------

/// dst[w] &= src[w] over `words` words.
void MaskAnd(uint64_t* dst, const uint64_t* src, size_t words);

/// dst[w] |= src[w] over `words` words.
void MaskOr(uint64_t* dst, const uint64_t* src, size_t words);

/// Total set bits across `words` words.
uint64_t MaskPopcount(const uint64_t* mask, size_t words);

/// Popcount of the word-wise AND of two bitmaps (no temporary).
uint64_t MaskAndPopcount(const uint64_t* a, const uint64_t* b, size_t words);

/// ORs the nbits-bit bitmap `src` into `dst` starting at dst bit
/// `bit_offset` (dst must have capacity for bit_offset + nbits bits).
/// Merges per-slice masks, whose row runs start at arbitrary bit offsets,
/// into one store-wide bitmap.
void MaskOrShifted(uint64_t* dst, size_t bit_offset, const uint64_t* src,
                   size_t nbits);

// --- Keyword kernels -------------------------------------------------------

/// True iff the sorted keyword sets share an id. Tier-dispatched: long
/// spans are probed with vector compares (8 ids per step on AVX2), short
/// ones fall back to the galloping/merge test of
/// stream::KeywordSetsIntersect. Results are identical at every tier.
bool AnyKeywordIntersect(const stream::KeywordId* span, size_t span_len,
                         const stream::KeywordId* q, size_t q_len);

/// Per-row keyword-membership bitmap over a slice's keyword column: bit i
/// set iff the span of row i (resolved against `arena_data`) intersects
/// the sorted query set. Writes MaskWords(n) words, trailing bits zero.
void KeywordMatchMask(const stream::KeywordSpan* spans,
                      const stream::KeywordId* arena_data, size_t n,
                      const stream::KeywordId* q, size_t q_len,
                      uint64_t* mask);

/// Gathered-row variant: row_kws[i] is (keyword pointer, length) of row i
/// (the batch scan paths gather these per cell/leaf).
void KeywordMatchMask(
    const std::pair<const stream::KeywordId*, uint32_t>* row_kws, size_t n,
    const stream::KeywordId* q, size_t q_len, uint64_t* mask);

}  // namespace latest::simd

#endif  // LATEST_SIMD_KERNELS_H_
