#include "simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

// LATEST_SIMD_X86 gates every intrinsic body. The scalar tier is the only
// one compiled on other targets or under -DLATEST_DISABLE_SIMD=ON, and it
// is the reference all vector tiers are cross-checked against
// (tests/simd_kernels_test.cc, tests/batch_crosscheck_test.cc).
#if defined(__x86_64__) && !defined(LATEST_SIMD_DISABLED)
#define LATEST_SIMD_X86 1
#include <immintrin.h>
#else
#define LATEST_SIMD_X86 0
#endif

#if LATEST_SIMD_X86
#define LATEST_TARGET_AVX2 __attribute__((target("avx2,popcnt")))
#endif

namespace latest::simd {

namespace {

void ZeroMask(uint64_t* mask, size_t n) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
}

// Only the vector tiers take the all-pass shortcut; the scalar build
// compiles without a caller.
[[maybe_unused]] void FillMask(uint64_t* mask, size_t n) {
  const size_t words = MaskWords(n);
  if (words == 0) return;
  std::memset(mask, 0xff, words * sizeof(uint64_t));
  if (n & 63) mask[words - 1] = ~uint64_t{0} >> (64 - (n & 63));
}

// Probing a sorted span with vector compare-equal only pays off once the
// span is a couple of cache lines long; below this both SIMD tiers defer
// to the galloping/merge scalar test.
constexpr size_t kSimdProbeMinLen = 16;

// --- Scalar reference implementations --------------------------------------

void RectContainMaskScalar(const geo::Point* locs, size_t n,
                           const geo::Rect& r, uint64_t* mask) {
  ZeroMask(mask, n);
  for (size_t i = 0; i < n; ++i) {
    if (r.Contains(locs[i])) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

uint64_t RectContainCountScalar(const geo::Point* locs, size_t n,
                                const geo::Rect& r) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += r.Contains(locs[i]) ? 1 : 0;
  return count;
}

void TimestampGeMaskScalar(const stream::Timestamp* ts, size_t n,
                           stream::Timestamp cutoff, uint64_t* mask) {
  ZeroMask(mask, n);
  for (size_t i = 0; i < n; ++i) {
    if (ts[i] >= cutoff) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

// Mirrors geo::Grid::CellOf exactly (same subtract/divide/truncate/clamp
// sequence) so histogram batch inserts land in the same cells as the
// scalar insert path.
uint32_t CellIdScalar(const geo::Point& p, const geo::Rect& bounds,
                      double cell_w, double cell_h, uint32_t cols,
                      uint32_t rows) {
  auto clamp_idx = [](double v, uint32_t n) {
    if (v < 0) return 0u;
    const auto i = static_cast<int64_t>(v);
    if (i >= static_cast<int64_t>(n)) return n - 1;
    return static_cast<uint32_t>(i);
  };
  const uint32_t col = clamp_idx((p.x - bounds.min_x) / cell_w, cols);
  const uint32_t row = clamp_idx((p.y - bounds.min_y) / cell_h, rows);
  return row * cols + col;
}

void HistogramCellIdsScalar(const geo::Point* locs, size_t n,
                            const geo::Rect& bounds, double cell_w,
                            double cell_h, uint32_t cols, uint32_t rows,
                            uint32_t* cells) {
  for (size_t i = 0; i < n; ++i) {
    cells[i] = CellIdScalar(locs[i], bounds, cell_w, cell_h, cols, rows);
  }
}

void HistogramCellIdsStridedScalar(const geo::Point* first, size_t stride,
                                   size_t n, const geo::Rect& bounds,
                                   double cell_w, double cell_h, uint32_t cols,
                                   uint32_t rows, uint32_t* cells) {
  const auto* base = reinterpret_cast<const unsigned char*>(first);
  for (size_t i = 0; i < n; ++i) {
    const auto& p = *reinterpret_cast<const geo::Point*>(base + i * stride);
    cells[i] = CellIdScalar(p, bounds, cell_w, cell_h, cols, rows);
  }
}

void MaskAndScalar(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

void MaskOrScalar(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

uint64_t MaskPopcountScalar(const uint64_t* mask, size_t words) {
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(mask[w]));
  }
  return count;
}

uint64_t MaskAndPopcountScalar(const uint64_t* a, const uint64_t* b,
                               size_t words) {
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

#if LATEST_SIMD_X86

// --- SSE2 tier (x86-64 baseline, no target attribute needed) ---------------
//
// SSE2 carries the 2-lane double compares the rect kernels need and
// 4-lane 32-bit compare-equal for keyword probing; it lacks 64-bit integer
// compares and 32-bit lane multiplies, so the timestamp and histogram
// kernels stay scalar at this tier.

void RectContainMaskSSE2(const geo::Point* locs, size_t n, const geo::Rect& r,
                         uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128d lo = _mm_setr_pd(r.min_x, r.min_y);
  const __m128d hi = _mm_setr_pd(r.max_x, r.max_y);
  for (size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_loadu_pd(reinterpret_cast<const double*>(locs + i));
    const int m = _mm_movemask_pd(
        _mm_and_pd(_mm_cmpge_pd(v, lo), _mm_cmplt_pd(v, hi)));
    if (m == 3) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

uint64_t RectContainCountSSE2(const geo::Point* locs, size_t n,
                              const geo::Rect& r) {
  const __m128d lo = _mm_setr_pd(r.min_x, r.min_y);
  const __m128d hi = _mm_setr_pd(r.max_x, r.max_y);
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const __m128d v = _mm_loadu_pd(reinterpret_cast<const double*>(locs + i));
    const int m = _mm_movemask_pd(
        _mm_and_pd(_mm_cmpge_pd(v, lo), _mm_cmplt_pd(v, hi)));
    count += (m == 3) ? 1 : 0;
  }
  return count;
}

// `a` must be the shorter sorted set, `b` the longer; b_len >=
// kSimdProbeMinLen. Probes each id of `a` through `b` 4 lanes at a time,
// resuming from the previous probe position (both sets ascend) and
// stopping a probe as soon as the block maximum passes the id.
bool AnyKeywordIntersectSSE2(const stream::KeywordId* a, size_t a_len,
                             const stream::KeywordId* b, size_t b_len) {
  size_t pos = 0;
  for (size_t j = 0; j < a_len; ++j) {
    const stream::KeywordId id = a[j];
    const __m128i needle = _mm_set1_epi32(static_cast<int>(id));
    bool decided = false;
    while (pos + 4 <= b_len) {
      const __m128i blk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + pos));
      if (_mm_movemask_epi8(_mm_cmpeq_epi32(blk, needle)) != 0) return true;
      if (b[pos + 3] > id) {
        decided = true;  // id < block max and not in it: absent from b.
        break;
      }
      pos += 4;
    }
    if (decided) continue;
    for (size_t k = pos; k < b_len; ++k) {
      if (b[k] == id) return true;
      if (b[k] > id) break;
    }
  }
  return false;
}

// --- AVX2 tier --------------------------------------------------------------

// Points are stored AoS ({x, y} pairs), so one 256-bit load covers two
// points [x0, y0, x1, y1]. Comparing against [min_x, min_y, min_x, min_y]
// and [max_x, max_y, max_x, max_y] and folding the 4-bit movemask with
// t = m & (m >> 1) leaves point verdicts at bits 0 and 2 — no
// deinterleave needed on the containment path. _CMP_GE_OQ / _CMP_LT_OQ
// are ordered (false on NaN), matching Rect::Contains exactly.
LATEST_TARGET_AVX2 inline uint64_t RectNibble4(const geo::Point* locs,
                                               __m256d lo, __m256d hi) {
  const __m256d v0 =
      _mm256_loadu_pd(reinterpret_cast<const double*>(locs));
  const __m256d v1 =
      _mm256_loadu_pd(reinterpret_cast<const double*>(locs + 2));
  const unsigned m0 = static_cast<unsigned>(_mm256_movemask_pd(_mm256_and_pd(
      _mm256_cmp_pd(v0, lo, _CMP_GE_OQ), _mm256_cmp_pd(v0, hi, _CMP_LT_OQ))));
  const unsigned m1 = static_cast<unsigned>(_mm256_movemask_pd(_mm256_and_pd(
      _mm256_cmp_pd(v1, lo, _CMP_GE_OQ), _mm256_cmp_pd(v1, hi, _CMP_LT_OQ))));
  const unsigned t0 = m0 & (m0 >> 1);  // Point bits at 0 and 2.
  const unsigned t1 = m1 & (m1 >> 1);
  return (t0 & 1u) | ((t0 >> 1) & 2u) | (((t1 & 1u) | ((t1 >> 1) & 2u)) << 2);
}

LATEST_TARGET_AVX2 void RectContainMaskAVX2(const geo::Point* locs, size_t n,
                                            const geo::Rect& r,
                                            uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256d lo = _mm256_setr_pd(r.min_x, r.min_y, r.min_x, r.min_y);
  const __m256d hi = _mm256_setr_pd(r.max_x, r.max_y, r.max_x, r.max_y);
  size_t i = 0;
  // 4 divides 64, so a nibble at bit (i & 63) never crosses a word.
  for (; i + 4 <= n; i += 4) {
    mask[i >> 6] |= RectNibble4(locs + i, lo, hi) << (i & 63);
  }
  for (; i < n; ++i) {
    if (r.Contains(locs[i])) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

LATEST_TARGET_AVX2 uint64_t RectContainCountAVX2(const geo::Point* locs,
                                                 size_t n,
                                                 const geo::Rect& r) {
  const __m256d lo = _mm256_setr_pd(r.min_x, r.min_y, r.min_x, r.min_y);
  const __m256d hi = _mm256_setr_pd(r.max_x, r.max_y, r.max_x, r.max_y);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    count += static_cast<uint64_t>(
        __builtin_popcountll(RectNibble4(locs + i, lo, hi)));
  }
  for (; i < n; ++i) count += r.Contains(locs[i]) ? 1 : 0;
  return count;
}

LATEST_TARGET_AVX2 void TimestampGeMaskAVX2(const stream::Timestamp* ts,
                                            size_t n, stream::Timestamp cutoff,
                                            uint64_t* mask) {
  if (cutoff == std::numeric_limits<stream::Timestamp>::min()) {
    FillMask(mask, n);  // Every timestamp passes; cutoff - 1 would wrap.
    return;
  }
  ZeroMask(mask, n);
  const __m256i c = _mm256_set1_epi64x(cutoff - 1);  // ts >= cutoff <=> ts > c
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + i));
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, c))));
    mask[i >> 6] |= static_cast<uint64_t>(m) << (i & 63);
  }
  for (; i < n; ++i) {
    if (ts[i] >= cutoff) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

// Bit-identical to CellIdScalar: the subtract and _mm256_div_pd are the
// same IEEE operations in the same order, and the double-domain clamp
// v' = min(max(v, 0), n - 1) truncates to the same index as the scalar
// int64 clamp for every v < 2^63 (v < 0 -> 0; v in [n-1, n) and v >= n
// both land on n - 1; in-range v truncates unchanged). n - 1 is exact in
// a double and fits int32 (the dispatch wrapper bounds cols/rows).
LATEST_TARGET_AVX2 void HistogramCellIdsAVX2(const geo::Point* locs, size_t n,
                                             const geo::Rect& bounds,
                                             double cell_w, double cell_h,
                                             uint32_t cols, uint32_t rows,
                                             uint32_t* cells) {
  const __m256d origin =
      _mm256_setr_pd(bounds.min_x, bounds.min_y, bounds.min_x, bounds.min_y);
  const __m256d inv_wh = _mm256_setr_pd(cell_w, cell_h, cell_w, cell_h);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d col_max = _mm256_set1_pd(static_cast<double>(cols - 1));
  const __m256d row_max = _mm256_set1_pd(static_cast<double>(rows - 1));
  const __m128i cols_v = _mm_set1_epi32(static_cast<int>(cols));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(locs + i));
    const __m256d v1 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(locs + i + 2));
    const __m256d s0 = _mm256_div_pd(_mm256_sub_pd(v0, origin), inv_wh);
    const __m256d s1 = _mm256_div_pd(_mm256_sub_pd(v1, origin), inv_wh);
    // Deinterleave: lanes come out in point order [0, 2, 1, 3].
    __m256d xs = _mm256_unpacklo_pd(s0, s1);
    __m256d ys = _mm256_unpackhi_pd(s0, s1);
    xs = _mm256_min_pd(_mm256_max_pd(xs, zero), col_max);
    ys = _mm256_min_pd(_mm256_max_pd(ys, zero), row_max);
    const __m128i col_i = _mm256_cvttpd_epi32(xs);
    const __m128i row_i = _mm256_cvttpd_epi32(ys);
    __m128i cell = _mm_add_epi32(_mm_mullo_epi32(row_i, cols_v), col_i);
    cell = _mm_shuffle_epi32(cell, _MM_SHUFFLE(3, 1, 2, 0));  // [0,2,1,3]->[0..3]
    _mm_storeu_si128(reinterpret_cast<__m128i*>(cells + i), cell);
  }
  for (; i < n; ++i) {
    cells[i] = CellIdScalar(locs[i], bounds, cell_w, cell_h, cols, rows);
  }
}

// Same math as HistogramCellIdsAVX2 (so bit-identical to CellIdScalar);
// only the loads differ: each point is a 128-bit load at its own strided
// address, pairs fused into the 256-bit lanes the contiguous kernel loads
// directly.
LATEST_TARGET_AVX2 void HistogramCellIdsStridedAVX2(
    const geo::Point* first, size_t stride, size_t n, const geo::Rect& bounds,
    double cell_w, double cell_h, uint32_t cols, uint32_t rows,
    uint32_t* cells) {
  const auto* base = reinterpret_cast<const unsigned char*>(first);
  const __m256d origin =
      _mm256_setr_pd(bounds.min_x, bounds.min_y, bounds.min_x, bounds.min_y);
  const __m256d inv_wh = _mm256_setr_pd(cell_w, cell_h, cell_w, cell_h);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d col_max = _mm256_set1_pd(static_cast<double>(cols - 1));
  const __m256d row_max = _mm256_set1_pd(static_cast<double>(rows - 1));
  const __m128i cols_v = _mm_set1_epi32(static_cast<int>(cols));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const unsigned char* q = base + i * stride;
    const __m128d p0 = _mm_loadu_pd(reinterpret_cast<const double*>(q));
    const __m128d p1 =
        _mm_loadu_pd(reinterpret_cast<const double*>(q + stride));
    const __m128d p2 =
        _mm_loadu_pd(reinterpret_cast<const double*>(q + 2 * stride));
    const __m128d p3 =
        _mm_loadu_pd(reinterpret_cast<const double*>(q + 3 * stride));
    const __m256d v0 = _mm256_set_m128d(p1, p0);
    const __m256d v1 = _mm256_set_m128d(p3, p2);
    const __m256d s0 = _mm256_div_pd(_mm256_sub_pd(v0, origin), inv_wh);
    const __m256d s1 = _mm256_div_pd(_mm256_sub_pd(v1, origin), inv_wh);
    // Deinterleave: lanes come out in point order [0, 2, 1, 3].
    __m256d xs = _mm256_unpacklo_pd(s0, s1);
    __m256d ys = _mm256_unpackhi_pd(s0, s1);
    xs = _mm256_min_pd(_mm256_max_pd(xs, zero), col_max);
    ys = _mm256_min_pd(_mm256_max_pd(ys, zero), row_max);
    const __m128i col_i = _mm256_cvttpd_epi32(xs);
    const __m128i row_i = _mm256_cvttpd_epi32(ys);
    __m128i cell = _mm_add_epi32(_mm_mullo_epi32(row_i, cols_v), col_i);
    cell = _mm_shuffle_epi32(cell, _MM_SHUFFLE(3, 1, 2, 0));  // [0,2,1,3]->[0..3]
    _mm_storeu_si128(reinterpret_cast<__m128i*>(cells + i), cell);
  }
  for (; i < n; ++i) {
    const auto& p = *reinterpret_cast<const geo::Point*>(base + i * stride);
    cells[i] = CellIdScalar(p, bounds, cell_w, cell_h, cols, rows);
  }
}

LATEST_TARGET_AVX2 void MaskAndAVX2(uint64_t* dst, const uint64_t* src,
                                    size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

LATEST_TARGET_AVX2 void MaskOrAVX2(uint64_t* dst, const uint64_t* src,
                                   size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(a, b));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

// Same source as the scalar popcounts; the popcnt target attribute lets
// the compiler emit the hardware instruction instead of the bit-trick
// sequence the baseline build uses.
LATEST_TARGET_AVX2 uint64_t MaskPopcountAVX2(const uint64_t* mask,
                                             size_t words) {
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(mask[w]));
  }
  return count;
}

LATEST_TARGET_AVX2 uint64_t MaskAndPopcountAVX2(const uint64_t* a,
                                                const uint64_t* b,
                                                size_t words) {
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

// 8-lane variant of AnyKeywordIntersectSSE2; same contract.
LATEST_TARGET_AVX2 bool AnyKeywordIntersectAVX2(const stream::KeywordId* a,
                                                size_t a_len,
                                                const stream::KeywordId* b,
                                                size_t b_len) {
  size_t pos = 0;
  for (size_t j = 0; j < a_len; ++j) {
    const stream::KeywordId id = a[j];
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(id));
    bool decided = false;
    while (pos + 8 <= b_len) {
      const __m256i blk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + pos));
      if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(blk, needle)) != 0) {
        return true;
      }
      if (b[pos + 7] > id) {
        decided = true;
        break;
      }
      pos += 8;
    }
    if (decided) continue;
    for (size_t k = pos; k < b_len; ++k) {
      if (b[k] == id) return true;
      if (b[k] > id) break;
    }
  }
  return false;
}

#endif  // LATEST_SIMD_X86

// --- Tier selection ---------------------------------------------------------

bool ParseTierName(const char* s, KernelTier* out) {
  if (std::strcmp(s, "scalar") == 0 || std::strcmp(s, "0") == 0) {
    *out = KernelTier::kScalar;
  } else if (std::strcmp(s, "sse2") == 0 || std::strcmp(s, "1") == 0) {
    *out = KernelTier::kSSE2;
  } else if (std::strcmp(s, "avx2") == 0 || std::strcmp(s, "2") == 0) {
    *out = KernelTier::kAVX2;
  } else {
    return false;
  }
  return true;
}

std::atomic<int>& ActiveTierSlot() {
  static std::atomic<int> slot{[] {
    KernelTier tier = HighestSupportedTier();
    if (const char* env = std::getenv("LATEST_SIMD_TIER")) {
      KernelTier requested;
      if (ParseTierName(env, &requested) && requested < tier) tier = requested;
    }
    return static_cast<int>(tier);
  }()};
  return slot;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSSE2:
      return "sse2";
    case KernelTier::kAVX2:
      return "avx2";
  }
  return "unknown";
}

KernelTier HighestSupportedTier() {
#if LATEST_SIMD_X86
  static const KernelTier highest =
      (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt"))
          ? KernelTier::kAVX2
          : KernelTier::kSSE2;
  return highest;
#else
  return KernelTier::kScalar;
#endif
}

KernelTier ActiveTier() {
  return static_cast<KernelTier>(
      ActiveTierSlot().load(std::memory_order_relaxed));
}

bool SetActiveTier(KernelTier tier) {
  if (tier > HighestSupportedTier()) return false;
  ActiveTierSlot().store(static_cast<int>(tier), std::memory_order_relaxed);
  return true;
}

// --- Dispatch wrappers ------------------------------------------------------

void RectContainMask(const geo::Point* locs, size_t n, const geo::Rect& r,
                     uint64_t* mask) {
#if LATEST_SIMD_X86
  switch (ActiveTier()) {
    case KernelTier::kAVX2:
      RectContainMaskAVX2(locs, n, r, mask);
      return;
    case KernelTier::kSSE2:
      RectContainMaskSSE2(locs, n, r, mask);
      return;
    case KernelTier::kScalar:
      break;
  }
#endif
  RectContainMaskScalar(locs, n, r, mask);
}

uint64_t RectContainCount(const geo::Point* locs, size_t n,
                          const geo::Rect& r) {
#if LATEST_SIMD_X86
  switch (ActiveTier()) {
    case KernelTier::kAVX2:
      return RectContainCountAVX2(locs, n, r);
    case KernelTier::kSSE2:
      return RectContainCountSSE2(locs, n, r);
    case KernelTier::kScalar:
      break;
  }
#endif
  return RectContainCountScalar(locs, n, r);
}

void HistogramCellIds(const geo::Point* locs, size_t n, const geo::Rect& bounds,
                      double cell_w, double cell_h, uint32_t cols,
                      uint32_t rows, uint32_t* cells) {
#if LATEST_SIMD_X86
  // The vector clamp converts through int32 lanes; absurdly large grids
  // (never built in practice) take the scalar path instead.
  if (ActiveTier() == KernelTier::kAVX2 && cols <= (1u << 30) &&
      rows <= (1u << 30)) {
    HistogramCellIdsAVX2(locs, n, bounds, cell_w, cell_h, cols, rows, cells);
    return;
  }
#endif
  HistogramCellIdsScalar(locs, n, bounds, cell_w, cell_h, cols, rows, cells);
}

void HistogramCellIdsStrided(const geo::Point* first, size_t stride, size_t n,
                             const geo::Rect& bounds, double cell_w,
                             double cell_h, uint32_t cols, uint32_t rows,
                             uint32_t* cells) {
#if LATEST_SIMD_X86
  // Same int32-lane clamp bound as the contiguous dispatch.
  if (ActiveTier() == KernelTier::kAVX2 && cols <= (1u << 30) &&
      rows <= (1u << 30)) {
    HistogramCellIdsStridedAVX2(first, stride, n, bounds, cell_w, cell_h, cols,
                                rows, cells);
    return;
  }
#endif
  HistogramCellIdsStridedScalar(first, stride, n, bounds, cell_w, cell_h, cols,
                                rows, cells);
}

void TimestampGeMask(const stream::Timestamp* ts, size_t n,
                     stream::Timestamp cutoff, uint64_t* mask) {
#if LATEST_SIMD_X86
  // SSE2 has no 64-bit integer compare; that tier stays scalar here.
  if (ActiveTier() == KernelTier::kAVX2) {
    TimestampGeMaskAVX2(ts, n, cutoff, mask);
    return;
  }
#endif
  TimestampGeMaskScalar(ts, n, cutoff, mask);
}

size_t LowerBoundTimestamp(const stream::Timestamp* ts, size_t n,
                           stream::Timestamp cutoff) {
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ts[mid] < cutoff) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void MaskAnd(uint64_t* dst, const uint64_t* src, size_t words) {
#if LATEST_SIMD_X86
  if (ActiveTier() == KernelTier::kAVX2) {
    MaskAndAVX2(dst, src, words);
    return;
  }
#endif
  MaskAndScalar(dst, src, words);
}

void MaskOr(uint64_t* dst, const uint64_t* src, size_t words) {
#if LATEST_SIMD_X86
  if (ActiveTier() == KernelTier::kAVX2) {
    MaskOrAVX2(dst, src, words);
    return;
  }
#endif
  MaskOrScalar(dst, src, words);
}

uint64_t MaskPopcount(const uint64_t* mask, size_t words) {
#if LATEST_SIMD_X86
  if (ActiveTier() == KernelTier::kAVX2) return MaskPopcountAVX2(mask, words);
#endif
  return MaskPopcountScalar(mask, words);
}

uint64_t MaskAndPopcount(const uint64_t* a, const uint64_t* b, size_t words) {
#if LATEST_SIMD_X86
  if (ActiveTier() == KernelTier::kAVX2) {
    return MaskAndPopcountAVX2(a, b, words);
  }
#endif
  return MaskAndPopcountScalar(a, b, words);
}

void MaskOrShifted(uint64_t* dst, size_t bit_offset, const uint64_t* src,
                   size_t nbits) {
  if (nbits == 0) return;
  const size_t words = MaskWords(nbits);
  const size_t word_off = bit_offset >> 6;
  const unsigned shift = static_cast<unsigned>(bit_offset & 63);
  if (shift == 0) {
    MaskOr(dst + word_off, src, words);
    return;
  }
  for (size_t w = 0; w + 1 < words; ++w) {
    dst[word_off + w] |= src[w] << shift;
    dst[word_off + w + 1] |= src[w] >> (64 - shift);
  }
  const size_t last = words - 1;
  dst[word_off + last] |= src[last] << shift;
  // The spill word exists only when the last source bits shift past the
  // word boundary; writing it unconditionally could touch one word beyond
  // the promised bit_offset + nbits capacity.
  const size_t rem = nbits - last * 64;
  if (rem + shift > 64) dst[word_off + last + 1] |= src[last] >> (64 - shift);
}

bool AnyKeywordIntersect(const stream::KeywordId* span, size_t span_len,
                         const stream::KeywordId* q, size_t q_len) {
#if LATEST_SIMD_X86
  const stream::KeywordId* small = span;
  size_t small_len = span_len;
  const stream::KeywordId* big = q;
  size_t big_len = q_len;
  if (small_len > big_len) {
    small = q;
    small_len = q_len;
    big = span;
    big_len = span_len;
  }
  if (small_len > 0 && big_len >= kSimdProbeMinLen) {
    switch (ActiveTier()) {
      case KernelTier::kAVX2:
        return AnyKeywordIntersectAVX2(small, small_len, big, big_len);
      case KernelTier::kSSE2:
        return AnyKeywordIntersectSSE2(small, small_len, big, big_len);
      case KernelTier::kScalar:
        break;
    }
  }
#endif
  return stream::KeywordSetsIntersect(span, span_len, q, q_len);
}

void KeywordMatchMask(const stream::KeywordSpan* spans,
                      const stream::KeywordId* arena_data, size_t n,
                      const stream::KeywordId* q, size_t q_len,
                      uint64_t* mask) {
  ZeroMask(mask, n);
  if (q_len == 0) return;
  for (size_t i = 0; i < n; ++i) {
    const stream::KeywordSpan s = spans[i];
    if (s.len != 0 &&
        AnyKeywordIntersect(arena_data + s.offset, s.len, q, q_len)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

void KeywordMatchMask(
    const std::pair<const stream::KeywordId*, uint32_t>* row_kws, size_t n,
    const stream::KeywordId* q, size_t q_len, uint64_t* mask) {
  ZeroMask(mask, n);
  if (q_len == 0) return;
  for (size_t i = 0; i < n; ++i) {
    if (row_kws[i].second != 0 &&
        AnyKeywordIntersect(row_kws[i].first, row_kws[i].second, q, q_len)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

}  // namespace latest::simd
