#include "geo/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::geo {

Grid::Grid(const Rect& bounds, uint32_t cols, uint32_t rows)
    : bounds_(bounds),
      cols_(cols),
      rows_(rows),
      cell_w_(bounds.Width() / cols),
      cell_h_(bounds.Height() / rows) {
  assert(bounds.IsValid());
  assert(cols > 0 && rows > 0);
}

uint32_t Grid::CellOf(const Point& p) const {
  auto clamp_idx = [](double v, uint32_t n) {
    if (v < 0) return 0u;
    const auto i = static_cast<int64_t>(v);
    if (i >= static_cast<int64_t>(n)) return n - 1;
    return static_cast<uint32_t>(i);
  };
  const uint32_t col = clamp_idx((p.x - bounds_.min_x) / cell_w_, cols_);
  const uint32_t row = clamp_idx((p.y - bounds_.min_y) / cell_h_, rows_);
  return row * cols_ + col;
}

Rect Grid::CellRect(uint32_t cell) const {
  const auto [col, row] = CellCoords(cell);
  Rect r;
  r.min_x = bounds_.min_x + col * cell_w_;
  r.min_y = bounds_.min_y + row * cell_h_;
  r.max_x = r.min_x + cell_w_;
  r.max_y = r.min_y + cell_h_;
  return r;
}

bool Grid::CellRange(const Rect& r, uint32_t* col_lo, uint32_t* row_lo,
                     uint32_t* col_hi, uint32_t* row_hi) const {
  if (!r.IsValid() || !r.Intersects(bounds_)) return false;
  const Rect c = r.Intersection(bounds_);
  auto lo_idx = [](double offset, double cell, uint32_t n) {
    const auto i = static_cast<int64_t>(std::floor(offset / cell));
    return static_cast<uint32_t>(std::clamp<int64_t>(i, 0, n - 1));
  };
  auto hi_idx = [](double offset, double cell, uint32_t n) {
    // Half-open query max edge: a max exactly on a cell boundary does not
    // reach the next cell.
    const double scaled = offset / cell;
    int64_t i = static_cast<int64_t>(std::ceil(scaled)) - 1;
    if (static_cast<double>(i + 1) < scaled) i += 1;  // Guard FP rounding.
    return static_cast<uint32_t>(std::clamp<int64_t>(i, 0, n - 1));
  };
  *col_lo = lo_idx(c.min_x - bounds_.min_x, cell_w_, cols_);
  *row_lo = lo_idx(c.min_y - bounds_.min_y, cell_h_, rows_);
  *col_hi = hi_idx(c.max_x - bounds_.min_x, cell_w_, cols_);
  *row_hi = hi_idx(c.max_y - bounds_.min_y, cell_h_, rows_);
  if (*col_hi < *col_lo || *row_hi < *row_lo) return false;
  return true;
}

}  // namespace latest::geo
