// Uniform grid partitioning of a bounding box into cols x rows cells.
//
// Shared by the 2-D histogram estimator (H4096), the hybrid reservoir
// hashmap (RSH), and the exact Grid index: all three need the same
// point -> cell and cell -> rect arithmetic.

#ifndef LATEST_GEO_GRID_H_
#define LATEST_GEO_GRID_H_

#include <cstdint>
#include <utility>

#include "geo/point.h"
#include "geo/rect.h"

namespace latest::geo {

/// Immutable description of a uniform grid over a bounding box.
class Grid {
 public:
  /// bounds must be valid; cols and rows must be > 0.
  Grid(const Rect& bounds, uint32_t cols, uint32_t rows);

  /// Total number of cells (cols * rows).
  uint32_t num_cells() const { return cols_ * rows_; }
  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }
  const Rect& bounds() const { return bounds_; }

  /// Exact per-cell extents (the values CellOf divides by); batch cell-id
  /// kernels must use these, not recomputed ratios, to stay bit-identical.
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// Cell id of the cell containing p. Points outside the bounds are
  /// clamped to the border cells (streams occasionally carry outliers).
  uint32_t CellOf(const Point& p) const;

  /// (col, row) coordinates of a cell id.
  std::pair<uint32_t, uint32_t> CellCoords(uint32_t cell) const {
    return {cell % cols_, cell / cols_};
  }

  /// Spatial extent of a cell.
  Rect CellRect(uint32_t cell) const;

  /// Inclusive [col_lo, col_hi] x [row_lo, row_hi] range of cells that
  /// intersect `r`. Returns false when r misses the grid entirely.
  bool CellRange(const Rect& r, uint32_t* col_lo, uint32_t* row_lo,
                 uint32_t* col_hi, uint32_t* row_hi) const;

 private:
  Rect bounds_;
  uint32_t cols_;
  uint32_t rows_;
  double cell_w_;
  double cell_h_;
};

}  // namespace latest::geo

#endif  // LATEST_GEO_GRID_H_
