// Axis-aligned rectangles: query ranges, grid cells, quadtree cells.

#ifndef LATEST_GEO_RECT_H_
#define LATEST_GEO_RECT_H_

#include "geo/point.h"

namespace latest::geo {

/// Closed-open axis-aligned rectangle [min_x, max_x) x [min_y, max_y).
///
/// The closed-open convention makes disjoint grid cells tile the space with
/// every point belonging to exactly one cell, which the histogram and
/// quadtree estimators rely on.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Builds a rectangle from a center point and full side lengths.
  static Rect FromCenter(const Point& center, double width, double height);

  /// True iff the rectangle has positive area.
  bool IsValid() const { return max_x > min_x && max_y > min_y; }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  /// Point containment under the closed-open convention.
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x < max_x && p.y >= min_y && p.y < max_y;
  }

  /// True iff `other` lies entirely inside this rectangle.
  bool ContainsRect(const Rect& other) const {
    return other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  /// True iff the two rectangles share any area.
  bool Intersects(const Rect& other) const {
    return min_x < other.max_x && other.min_x < max_x && min_y < other.max_y &&
           other.min_y < max_y;
  }

  /// The overlapping region; an invalid (zero-area) Rect when disjoint.
  Rect Intersection(const Rect& other) const;

  /// Fraction of this rectangle's area covered by `other`, in [0, 1].
  /// Used for fractional-overlap estimation in grid/quadtree cells.
  double OverlapFraction(const Rect& other) const;

  /// Clamps a point into the rectangle (half-open: max edges are excluded
  /// by the smallest representable margin of the given extent fraction).
  Point Clamp(const Point& p) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

}  // namespace latest::geo

#endif  // LATEST_GEO_RECT_H_
