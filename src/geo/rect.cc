#include "geo/rect.h"

#include <algorithm>

namespace latest::geo {

Rect Rect::FromCenter(const Point& center, double width, double height) {
  return Rect{center.x - width / 2, center.y - height / 2,
              center.x + width / 2, center.y + height / 2};
}

Rect Rect::Intersection(const Rect& other) const {
  Rect r;
  r.min_x = std::max(min_x, other.min_x);
  r.min_y = std::max(min_y, other.min_y);
  r.max_x = std::min(max_x, other.max_x);
  r.max_y = std::min(max_y, other.max_y);
  if (!r.IsValid()) return Rect{};  // Degenerate: zero area.
  return r;
}

double Rect::OverlapFraction(const Rect& other) const {
  if (!IsValid()) return 0.0;
  const Rect inter = Intersection(other);
  if (!inter.IsValid()) return 0.0;
  return inter.Area() / Area();
}

Point Rect::Clamp(const Point& p) const {
  // Nudge inside the half-open max edges so the result tests as contained.
  const double eps_x = Width() * 1e-12;
  const double eps_y = Height() * 1e-12;
  Point out;
  out.x = std::clamp(p.x, min_x, max_x - eps_x);
  out.y = std::clamp(p.y, min_y, max_y - eps_y);
  return out;
}

}  // namespace latest::geo
