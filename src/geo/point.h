// Two-dimensional point in longitude/latitude coordinates.

#ifndef LATEST_GEO_POINT_H_
#define LATEST_GEO_POINT_H_

namespace latest::geo {

/// A location in 2-D space. `x` is longitude, `y` is latitude, both in
/// degrees. Plain Euclidean geometry over the degree coordinates is used
/// throughout (as in the paper's grid/quadtree estimators).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace latest::geo

#endif  // LATEST_GEO_POINT_H_
