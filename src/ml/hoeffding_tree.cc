#include "ml/hoeffding_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace latest::ml {

namespace {

// Entropy of raw uint64 counts.
double EntropyOfCounts(const std::vector<uint64_t>& counts) {
  double total = 0.0;
  for (const uint64_t c : counts) total += static_cast<double>(c);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

double HoeffdingBound(double range, double delta, uint64_t n) {
  if (n == 0) return range;
  return std::sqrt(range * range * std::log(1.0 / delta) /
                   (2.0 * static_cast<double>(n)));
}

util::Status HoeffdingTreeConfig::Validate() const {
  if (grace_period == 0) {
    return util::Status::InvalidArgument("grace_period must be > 0");
  }
  if (split_confidence <= 0.0 || split_confidence >= 1.0) {
    return util::Status::InvalidArgument(
        "split_confidence must be in (0, 1)");
  }
  if (tie_threshold < 0.0) {
    return util::Status::InvalidArgument("tie_threshold must be >= 0");
  }
  if (numeric_split_candidates == 0) {
    return util::Status::InvalidArgument(
        "numeric_split_candidates must be > 0");
  }
  return util::Status::Ok();
}

struct HoeffdingTree::Node {
  bool is_leaf = true;
  uint32_t depth = 0;

  // Leaf payload.
  LeafStats stats;

  // Internal payload.
  bool split_is_numeric = false;
  uint32_t split_attribute = 0;
  double split_threshold = 0.0;
  std::vector<std::unique_ptr<Node>> children;

  /// Child index for a feature vector at an internal node.
  size_t RouteChild(const FeatureVector& features) const {
    if (split_is_numeric) {
      return features.numeric[split_attribute] <= split_threshold ? 0 : 1;
    }
    const int v = features.categorical[split_attribute];
    assert(v >= 0 && static_cast<size_t>(v) < children.size());
    return static_cast<size_t>(v);
  }
};

HoeffdingTree::HoeffdingTree(const FeatureSchema& schema,
                             const HoeffdingTreeConfig& config)
    : schema_(schema), config_(config), root_(std::make_unique<Node>()) {
  assert(schema.num_classes >= 2);
  assert(config.Validate().ok());
  InitLeafStats(root_.get());
}

HoeffdingTree::~HoeffdingTree() = default;
HoeffdingTree::HoeffdingTree(HoeffdingTree&&) noexcept = default;
HoeffdingTree& HoeffdingTree::operator=(HoeffdingTree&&) noexcept = default;

void HoeffdingTree::InitLeafStats(Node* node) {
  auto& s = node->stats;
  s.class_counts.assign(schema_.num_classes, 0);
  s.categorical_counts.resize(schema_.num_categorical());
  for (uint32_t a = 0; a < schema_.num_categorical(); ++a) {
    s.categorical_counts[a].assign(
        static_cast<size_t>(schema_.categorical_cardinalities[a]) *
            schema_.num_classes,
        0);
  }
  s.numeric_observers.assign(
      schema_.num_numeric,
      std::vector<GaussianEstimator>(schema_.num_classes));
  s.seen = 0;
  s.seen_at_last_attempt = 0;
}

HoeffdingTree::Node* HoeffdingTree::ReachLeaf(
    const FeatureVector& features) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[node->RouteChild(features)].get();
  }
  return node;
}

void HoeffdingTree::UpdateLeafStats(Node* node,
                                    const TrainingExample& example) {
  auto& s = node->stats;
  const uint32_t label = example.label;
  assert(label < schema_.num_classes);
  ++s.class_counts[label];
  for (uint32_t a = 0; a < schema_.num_categorical(); ++a) {
    const int v = example.features.categorical[a];
    assert(v >= 0 &&
           static_cast<uint32_t>(v) < schema_.categorical_cardinalities[a]);
    ++s.categorical_counts[a][static_cast<size_t>(v) * schema_.num_classes +
                              label];
  }
  for (uint32_t a = 0; a < schema_.num_numeric; ++a) {
    s.numeric_observers[a][label].Add(example.features.numeric[a]);
  }
  ++s.seen;
}

void HoeffdingTree::Train(const TrainingExample& example) {
  assert(example.features.categorical.size() == schema_.num_categorical());
  assert(example.features.numeric.size() == schema_.num_numeric);
  Node* leaf = ReachLeaf(example.features);
  UpdateLeafStats(leaf, example);
  ++num_trained_;
  if (leaf->stats.seen - leaf->stats.seen_at_last_attempt >=
          config_.grace_period &&
      leaf->depth < config_.max_depth) {
    AttemptSplit(leaf);
  }
}

HoeffdingTree::SplitCandidate HoeffdingTree::BestCategoricalSplit(
    const LeafStats& stats, uint32_t attr) const {
  const uint32_t arity = schema_.categorical_cardinalities[attr];
  const double total = static_cast<double>(stats.seen);
  const double parent_entropy = EntropyOfCounts(stats.class_counts);
  double weighted_child_entropy = 0.0;
  std::vector<uint64_t> child_counts(schema_.num_classes);
  for (uint32_t v = 0; v < arity; ++v) {
    uint64_t child_total = 0;
    for (uint32_t c = 0; c < schema_.num_classes; ++c) {
      child_counts[c] =
          stats.categorical_counts[attr]
                                  [static_cast<size_t>(v) *
                                       schema_.num_classes +
                                   c];
      child_total += child_counts[c];
    }
    if (child_total == 0) continue;
    weighted_child_entropy += (static_cast<double>(child_total) / total) *
                              EntropyOfCounts(child_counts);
  }
  SplitCandidate cand;
  cand.gain = parent_entropy - weighted_child_entropy;
  cand.is_numeric = false;
  cand.attribute = attr;
  return cand;
}

HoeffdingTree::SplitCandidate HoeffdingTree::BestNumericSplit(
    const LeafStats& stats, uint32_t attr) const {
  SplitCandidate best;
  best.is_numeric = true;
  best.attribute = attr;

  // Candidate thresholds: an even grid over the observed attribute range
  // across all classes.
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (uint32_t c = 0; c < schema_.num_classes; ++c) {
    const auto& obs = stats.numeric_observers[attr][c];
    if (obs.count() == 0) continue;
    if (!any) {
      lo = obs.min();
      hi = obs.max();
      any = true;
    } else {
      lo = std::min(lo, obs.min());
      hi = std::max(hi, obs.max());
    }
  }
  if (!any || hi <= lo) return best;  // gain stays -1: not splittable.

  const double parent_entropy = EntropyOfCounts(stats.class_counts);
  const double total = static_cast<double>(stats.seen);
  std::vector<double> below(schema_.num_classes);
  std::vector<double> above(schema_.num_classes);
  const uint32_t k = config_.numeric_split_candidates;
  for (uint32_t i = 1; i <= k; ++i) {
    const double thr = lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(k + 1);
    double below_total = 0.0;
    double above_total = 0.0;
    for (uint32_t c = 0; c < schema_.num_classes; ++c) {
      const auto& obs = stats.numeric_observers[attr][c];
      const double b = obs.CountBelow(thr);
      below[c] = b;
      above[c] = static_cast<double>(obs.count()) - b;
      below_total += below[c];
      above_total += above[c];
    }
    if (below_total < 1.0 || above_total < 1.0) continue;
    const double gain = parent_entropy -
                        (below_total / total) * Entropy(below) -
                        (above_total / total) * Entropy(above);
    if (gain > best.gain) {
      best.gain = gain;
      best.threshold = thr;
    }
  }
  return best;
}

void HoeffdingTree::ApplySplit(Node* node, const SplitCandidate& split) {
  node->is_leaf = false;
  node->split_is_numeric = split.is_numeric;
  node->split_attribute = split.attribute;
  node->split_threshold = split.threshold;
  const size_t fanout =
      split.is_numeric
          ? 2
          : schema_.categorical_cardinalities[split.attribute];
  node->children.resize(fanout);
  for (auto& child : node->children) {
    child = std::make_unique<Node>();
    child->depth = node->depth + 1;
    InitLeafStats(child.get());
    // Seed each child with the parent class distribution so majority-class
    // prediction stays sensible until the child sees its own data.
    child->stats.class_counts = node->stats.class_counts;
  }
  num_leaves_ += fanout - 1;
  ++num_splits_;
  depth_ = std::max(depth_, node->depth + 1);
  // Release leaf statistics of the now-internal node.
  node->stats = LeafStats{};
}

void HoeffdingTree::AttemptSplit(Node* node) {
  auto& s = node->stats;
  s.seen_at_last_attempt = s.seen;

  // A pure leaf cannot gain from splitting.
  uint32_t classes_present = 0;
  for (const uint64_t c : s.class_counts) classes_present += (c > 0);
  if (classes_present <= 1) return;

  SplitCandidate best;
  SplitCandidate second;
  auto consider = [&](const SplitCandidate& cand) {
    if (cand.gain > best.gain) {
      second = best;
      best = cand;
    } else if (cand.gain > second.gain) {
      second = cand;
    }
  };
  for (uint32_t a = 0; a < schema_.num_categorical(); ++a) {
    consider(BestCategoricalSplit(s, a));
  }
  for (uint32_t a = 0; a < schema_.num_numeric; ++a) {
    consider(BestNumericSplit(s, a));
  }
  if (best.gain <= 0.0) return;

  const double range = std::log2(static_cast<double>(schema_.num_classes));
  const double epsilon =
      HoeffdingBound(range, config_.split_confidence, s.seen);
  const double second_gain = std::max(second.gain, 0.0);
  if (best.gain - second_gain > epsilon || epsilon < config_.tie_threshold) {
    ApplySplit(node, best);
  }
}

uint32_t HoeffdingTree::Predict(const FeatureVector& features) const {
  const Node* leaf = ReachLeaf(features);
  const auto& counts = leaf->stats.class_counts;
  return static_cast<uint32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

std::vector<double> HoeffdingTree::PredictDistribution(
    const FeatureVector& features) const {
  const Node* leaf = ReachLeaf(features);
  const auto& counts = leaf->stats.class_counts;
  double total = 0.0;
  for (const uint64_t c : counts) total += static_cast<double>(c);
  std::vector<double> dist(schema_.num_classes);
  if (total <= 0.0) {
    std::fill(dist.begin(), dist.end(), 1.0 / schema_.num_classes);
    return dist;
  }
  for (uint32_t c = 0; c < schema_.num_classes; ++c) {
    dist[c] = static_cast<double>(counts[c]) / total;
  }
  return dist;
}

void HoeffdingTree::Reset() {
  root_ = std::make_unique<Node>();
  InitLeafStats(root_.get());
  num_trained_ = 0;
  num_leaves_ = 1;
  num_splits_ = 0;
  depth_ = 0;
}


void HoeffdingTree::SerializeNode(const Node& node,
                                  util::BinaryWriter* writer) const {
  writer->WriteBool(node.is_leaf);
  if (!node.is_leaf) {
    writer->WriteBool(node.split_is_numeric);
    writer->WriteU32(node.split_attribute);
    writer->WriteDouble(node.split_threshold);
    writer->WriteU32(static_cast<uint32_t>(node.children.size()));
    for (const auto& child : node.children) {
      SerializeNode(*child, writer);
    }
    return;
  }
  const LeafStats& s = node.stats;
  for (const uint64_t c : s.class_counts) writer->WriteU64(c);
  for (const auto& matrix : s.categorical_counts) {
    for (const uint64_t c : matrix) writer->WriteU64(c);
  }
  for (const auto& per_class : s.numeric_observers) {
    for (const GaussianEstimator& obs : per_class) {
      writer->WriteU64(obs.count());
      writer->WriteDouble(obs.mean());
      writer->WriteDouble(obs.m2());
      writer->WriteDouble(obs.min());
      writer->WriteDouble(obs.max());
    }
  }
  writer->WriteU64(s.seen);
  writer->WriteU64(s.seen_at_last_attempt);
}

void HoeffdingTree::Serialize(util::BinaryWriter* writer) const {
  writer->WriteU32(schema_.num_categorical());
  for (const uint32_t card : schema_.categorical_cardinalities) {
    writer->WriteU32(card);
  }
  writer->WriteU32(schema_.num_numeric);
  writer->WriteU32(schema_.num_classes);
  writer->WriteU64(num_trained_);
  writer->WriteU64(num_leaves_);
  writer->WriteU64(num_splits_);
  writer->WriteU32(depth_);
  SerializeNode(*root_, writer);
}

bool HoeffdingTree::RestoreNode(Node* node, util::BinaryReader* reader,
                                uint32_t depth) {
  if (depth > config_.max_depth) return false;
  node->depth = depth;
  if (!reader->ReadBool(&node->is_leaf)) return false;
  if (!node->is_leaf) {
    uint32_t fanout;
    if (!reader->ReadBool(&node->split_is_numeric) ||
        !reader->ReadU32(&node->split_attribute) ||
        !reader->ReadDouble(&node->split_threshold) ||
        !reader->ReadU32(&fanout)) {
      return false;
    }
    // Sanity: the split must be valid under the schema.
    if (node->split_is_numeric) {
      if (node->split_attribute >= schema_.num_numeric || fanout != 2) {
        return false;
      }
    } else {
      if (node->split_attribute >= schema_.num_categorical() ||
          fanout !=
              schema_.categorical_cardinalities[node->split_attribute]) {
        return false;
      }
    }
    node->children.resize(fanout);
    for (auto& child : node->children) {
      child = std::make_unique<Node>();
      InitLeafStats(child.get());
      if (!RestoreNode(child.get(), reader, depth + 1)) return false;
    }
    node->stats = LeafStats{};
    return true;
  }
  InitLeafStats(node);
  LeafStats& s = node->stats;
  for (uint64_t& c : s.class_counts) {
    if (!reader->ReadU64(&c)) return false;
  }
  for (auto& matrix : s.categorical_counts) {
    for (uint64_t& c : matrix) {
      if (!reader->ReadU64(&c)) return false;
    }
  }
  for (auto& per_class : s.numeric_observers) {
    for (GaussianEstimator& obs : per_class) {
      uint64_t count;
      double mean;
      double m2;
      double lo;
      double hi;
      if (!reader->ReadU64(&count) || !reader->ReadDouble(&mean) ||
          !reader->ReadDouble(&m2) || !reader->ReadDouble(&lo) ||
          !reader->ReadDouble(&hi)) {
        return false;
      }
      obs = GaussianEstimator::FromMoments(count, mean, m2, lo, hi);
    }
  }
  if (!reader->ReadU64(&s.seen) ||
      !reader->ReadU64(&s.seen_at_last_attempt)) {
    return false;
  }
  return true;
}

util::Status HoeffdingTree::Restore(util::BinaryReader* reader) {
  auto fail = [this](const char* what) {
    Reset();
    return util::Status::InvalidArgument(
        std::string("corrupt tree snapshot: ") + what);
  };
  uint32_t num_categorical;
  if (!reader->ReadU32(&num_categorical) ||
      num_categorical != schema_.num_categorical()) {
    return fail("categorical attribute count mismatch");
  }
  for (uint32_t a = 0; a < num_categorical; ++a) {
    uint32_t card;
    if (!reader->ReadU32(&card) ||
        card != schema_.categorical_cardinalities[a]) {
      return fail("categorical cardinality mismatch");
    }
  }
  uint32_t num_numeric;
  uint32_t num_classes;
  if (!reader->ReadU32(&num_numeric) || num_numeric != schema_.num_numeric ||
      !reader->ReadU32(&num_classes) ||
      num_classes != schema_.num_classes) {
    return fail("numeric/class schema mismatch");
  }
  uint64_t trained;
  uint64_t leaves;
  uint64_t splits;
  uint32_t depth;
  if (!reader->ReadU64(&trained) || !reader->ReadU64(&leaves) ||
      !reader->ReadU64(&splits) || !reader->ReadU32(&depth)) {
    return fail("truncated header");
  }
  auto root = std::make_unique<Node>();
  InitLeafStats(root.get());
  root_ = std::move(root);
  if (!RestoreNode(root_.get(), reader, 0)) {
    return fail("truncated or invalid node data");
  }
  num_trained_ = trained;
  num_leaves_ = leaves;
  num_splits_ = splits;
  depth_ = depth;
  return util::Status::Ok();
}

}  // namespace latest::ml
